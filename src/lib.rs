#![warn(missing_docs)]

//! Façade crate re-exporting the entire R2D3 reproduction workspace.
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-vs-measured comparison.

pub use r2d3_aging as aging;
pub use r2d3_atpg as atpg;
pub use r2d3_core as engine;
pub use r2d3_isa as isa;
pub use r2d3_netlist as netlist;
pub use r2d3_physical as physical;
pub use r2d3_pipeline_sim as pipeline_sim;
pub use r2d3_thermal as thermal;
