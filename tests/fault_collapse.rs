//! Property tests for structural fault collapsing: on randomly generated
//! netlists, the collapsed campaign (simulate one representative per
//! equivalence class, expand verdicts to members) must be byte-identical
//! to the uncollapsed full-re-evaluation oracle — statuses, first
//! detecting pattern indices, and applied-pattern counts — and every
//! collapsed pair must share detection words on every pattern block.

use proptest::prelude::*;
use r2d3_atpg::campaign::{run_campaign, run_campaign_reference, CampaignConfig};
use r2d3_atpg::collapse::FaultClasses;
use r2d3_atpg::fault::all_faults;
use r2d3_netlist::{FaultCone, FaultSim, GateKind, NetId, Netlist, NetlistBuilder, SimScratch};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random combinational netlist (same generator family as
/// `incremental_sim.rs`).
fn random_netlist(seed: u64) -> Netlist {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = NetlistBuilder::new();
    let num_inputs = rng.gen_range(2usize..10);
    let mut nets = b.inputs(num_inputs);
    let num_gates = rng.gen_range(5usize..120);
    for _ in 0..num_gates {
        let kind = match rng.gen_range(0u32..9) {
            0 => GateKind::Buf,
            1 => GateKind::Not,
            2 => GateKind::And,
            3 => GateKind::Or,
            4 => GateKind::Nand,
            5 => GateKind::Nor,
            6 => GateKind::Xor,
            7 => GateKind::Xnor,
            _ => GateKind::Mux,
        };
        let picks: Vec<NetId> =
            (0..kind.arity()).map(|_| nets[rng.gen_range(0..nets.len())]).collect();
        nets.push(b.gate(kind, &picks));
    }
    let mut observed = 0usize;
    for &net in &nets {
        if rng.gen_bool(0.15) {
            b.output(net);
            observed += 1;
        }
    }
    if observed == 0 {
        let last = *nets.last().unwrap();
        b.output(last);
    }
    b.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn collapsed_campaign_matches_uncollapsed_oracle(
        shape_seed in 0u64..(1u64 << 48),
        pattern_seed in 0u64..(1u64 << 48),
    ) {
        let nl = random_netlist(shape_seed);
        let faults = all_faults(&nl);
        let config = CampaignConfig { max_patterns: 512, seed: pattern_seed, threads: 1 };
        // `run_campaign` collapses internally; the reference simulates
        // every fault by full re-evaluation. Expanded verdicts must be
        // byte-identical, down to first-detection pattern indices.
        let collapsed = run_campaign(&nl, &faults, &config);
        let oracle = run_campaign_reference(&nl, &faults, &config);
        prop_assert_eq!(collapsed.statuses(), oracle.statuses());
        prop_assert_eq!(collapsed.patterns_applied(), oracle.patterns_applied());
    }

    #[test]
    fn collapsed_classmates_share_detection_words(
        shape_seed in 0u64..(1u64 << 48),
        pattern_seed in 0u64..(1u64 << 48),
    ) {
        // The determinism contract behind verdict expansion: every fault
        // shares its representative's detection word on every block.
        let nl = random_netlist(shape_seed);
        let classes = FaultClasses::build(&nl);
        let sim = FaultSim::new(&nl);
        let mut cone = FaultCone::new();
        let mut scratch = SimScratch::new();
        let mut rng = StdRng::seed_from_u64(pattern_seed);
        for _ in 0..4 {
            let inputs: Vec<u64> = (0..nl.num_inputs()).map(|_| rng.gen()).collect();
            let good = nl.eval_all(&inputs);
            for fault in all_faults(&nl) {
                let rep = classes.representative(fault);
                if rep == fault {
                    continue;
                }
                sim.cone_into(fault.net, &mut cone);
                sim.eval_stuck(&good, (fault.net, fault.stuck), &cone, &mut scratch);
                let fault_word = sim.detect_word(&good, &scratch);
                sim.cone_into(rep.net, &mut cone);
                sim.eval_stuck(&good, (rep.net, rep.stuck), &cone, &mut scratch);
                let rep_word = sim.detect_word(&good, &scratch);
                prop_assert_eq!(
                    fault_word, rep_word,
                    "{} vs representative {}", fault, rep
                );
            }
        }
    }
}
