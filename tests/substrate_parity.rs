//! Cross-substrate parity: the *same* R2D3 engine drives both the
//! behavioral simulator and the gate-level netlist substrate through the
//! same fault scenario, and must reach the same verdicts.
//!
//! This is the contract of the `ReliabilitySubstrate` abstraction: the
//! detect → diagnose → repair loop is substrate-agnostic, so a permanent
//! EXU fault at the same stage must produce the identical believed-faulty
//! set and identical post-repair pipeline count on either backend.

use r2d3::engine::substrate::{NetlistSubstrate, NetlistSubstrateConfig, ReliabilitySubstrate};
use r2d3::engine::{EngineEvent, R2d3Config, R2d3Engine};
use r2d3::isa::kernels::gemv;
use r2d3::isa::Unit;
use r2d3::pipeline_sim::{FaultEffect, StageId, System3d, SystemConfig};

/// Runs epochs until a repair happened (or `max_epochs`), returning all
/// events. Works on any substrate — that is the point of the test.
fn run_until_repaired<S: ReliabilitySubstrate>(
    engine: &mut R2d3Engine<S>,
    sys: &mut S,
    max_epochs: usize,
) -> Vec<EngineEvent> {
    let mut all = Vec::new();
    for _ in 0..max_epochs {
        all.extend(engine.run_epoch(sys).expect("epoch"));
        if !engine.metrics().believed_faulty.is_empty() {
            break;
        }
    }
    all
}

fn last_formed(events: &[EngineEvent]) -> Option<usize> {
    events.iter().rev().find_map(|e| match e {
        EngineEvent::Repaired { pipelines_formed } => Some(*pipelines_formed),
        _ => None,
    })
}

fn behavioral_system(pipelines: usize) -> System3d {
    let mut sys = System3d::new(&SystemConfig { pipelines, ..Default::default() });
    for p in 0..pipelines {
        sys.load_program(p, gemv(16, 16, p as u64 + 1).program().clone()).unwrap();
    }
    sys
}

#[test]
fn same_permanent_fault_reaches_same_verdict_on_both_substrates() {
    let victim = StageId::new(2, Unit::Exu);
    let config = R2d3Config::default();

    // Behavioral backend: architectural stuck-at on the EXU output.
    let mut behav = behavioral_system(6);
    behav.inject_fault(victim, FaultEffect { bit: 0, stuck: true }).unwrap();
    let mut engine_b: R2d3Engine<System3d> = R2d3Engine::builder().config(config).build().unwrap();
    let events_b = run_until_repaired(&mut engine_b, &mut behav, 64);

    // Gate-level backend: stuck-at-1 on an observed output net of the
    // same stage's EXU netlist.
    let mut gate = NetlistSubstrate::new(&NetlistSubstrateConfig::default());
    let fault = gate.output_fault(Unit::Exu, 0, true);
    gate.inject_fault(victim, fault).unwrap();
    let mut engine_n: R2d3Engine<NetlistSubstrate> =
        R2d3Engine::builder().config(config).build().unwrap();
    let events_n = run_until_repaired(&mut engine_n, &mut gate, 64);

    // Identical diagnosis…
    assert!(
        engine_b.is_believed_faulty(victim),
        "behavioral backend missed the fault: {events_b:?}"
    );
    assert_eq!(
        engine_b.metrics().believed_faulty,
        engine_n.metrics().believed_faulty,
        "substrates disagree on the faulty set"
    );
    let perm = |events: &[EngineEvent]| {
        events.iter().any(|e| matches!(e, EngineEvent::Permanent { stage } if *stage == victim))
    };
    assert!(perm(&events_b), "behavioral: no Permanent verdict: {events_b:?}");
    assert!(perm(&events_n), "netlist: no Permanent verdict: {events_n:?}");

    // …and identical repair outcome: 7 healthy EXU layers still form all
    // six pipelines on either backend.
    let formed_b = last_formed(&events_b).expect("behavioral repair event");
    let formed_n = last_formed(&events_n).expect("netlist repair event");
    assert_eq!(formed_b, formed_n, "substrates disagree on pipelines formed");
    assert_eq!(formed_b, 6);

    // The faulty stage serves no pipeline on either backend.
    for sys_formed in [
        (0..6).filter_map(|p| behav.fabric().stage_for(p, Unit::Exu)).collect::<Vec<_>>(),
        (0..6).filter_map(|p| gate.stage_for(p, Unit::Exu)).collect::<Vec<_>>(),
    ] {
        assert_eq!(sys_formed.len(), 6);
        assert!(!sys_formed.contains(&victim), "victim stage still mapped");
    }
}

#[test]
fn healthy_netlist_substrate_raises_no_false_positives() {
    let mut gate = NetlistSubstrate::new(&NetlistSubstrateConfig::default());
    let mut engine: R2d3Engine<NetlistSubstrate> = R2d3Engine::builder().build().unwrap();
    for _ in 0..8 {
        let events = engine.run_epoch(&mut gate).unwrap();
        assert!(
            !events.iter().any(|e| matches!(e, EngineEvent::Symptom { .. })),
            "false positive on a healthy gate-level stack: {events:?}"
        );
    }
    assert!(engine.metrics().believed_faulty.is_empty());
    for p in 0..gate.pipeline_count() {
        assert!(gate.retired(p) > 0, "pipe {p} made no progress");
        assert!(!gate.pipeline_corrupted(p));
    }
}

#[test]
fn netlist_substrate_recovers_corrupted_pipelines_after_repair() {
    // The pipeline that ran through the faulty stage is tainted; after
    // diagnosis + repair the engine must roll it back (epoch-committed
    // checkpoint) or restart it, leaving no corrupted pipeline behind.
    let victim = StageId::new(0, Unit::Lsu);
    let mut gate = NetlistSubstrate::new(&NetlistSubstrateConfig::default());
    let fault = gate.output_fault(Unit::Lsu, 1, false);
    gate.inject_fault(victim, fault).unwrap();
    let mut engine: R2d3Engine<NetlistSubstrate> = R2d3Engine::builder().build().unwrap();

    let events = run_until_repaired(&mut engine, &mut gate, 64);
    assert!(engine.is_believed_faulty(victim), "LSU fault missed: {events:?}");

    // One more clean epoch after repair: nothing may remain corrupted.
    engine.run_epoch(&mut gate).unwrap();
    for p in 0..gate.pipeline_count() {
        assert!(!gate.pipeline_corrupted(p), "pipe {p} still corrupted after recovery");
    }
}
