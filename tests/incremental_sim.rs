//! Property test: the incremental, cone-restricted fault-simulation
//! engine is bit-identical to the full-re-evaluation oracle
//! (`Netlist::eval_all_stuck`) on randomly generated netlists — and the
//! 256-lane (`[u64; 4]`) wide walk is bit-identical, lane group by lane
//! group, to four independent narrow walks.

use proptest::prelude::*;
use r2d3_netlist::{
    pack_blocks, FaultCone, FaultSim, GateKind, NetId, Netlist, NetlistBuilder, SimScratch,
    WideScratch,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds a random combinational netlist: a few primary inputs, a random
/// DAG of gates over already-driven nets, and a random observed subset.
fn random_netlist(seed: u64) -> Netlist {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = NetlistBuilder::new();
    let num_inputs = rng.gen_range(2usize..10);
    let mut nets = b.inputs(num_inputs);
    let num_gates = rng.gen_range(5usize..120);
    for _ in 0..num_gates {
        let kind = match rng.gen_range(0u32..9) {
            0 => GateKind::Buf,
            1 => GateKind::Not,
            2 => GateKind::And,
            3 => GateKind::Or,
            4 => GateKind::Nand,
            5 => GateKind::Nor,
            6 => GateKind::Xor,
            7 => GateKind::Xnor,
            _ => GateKind::Mux,
        };
        let picks: Vec<NetId> =
            (0..kind.arity()).map(|_| nets[rng.gen_range(0..nets.len())]).collect();
        nets.push(b.gate(kind, &picks));
    }
    let mut observed = 0usize;
    for &net in &nets {
        if rng.gen_bool(0.15) {
            b.output(net);
            observed += 1;
        }
    }
    if observed == 0 {
        let last = *nets.last().unwrap();
        b.output(last);
    }
    b.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn incremental_fault_sim_matches_oracle(
        shape_seed in 0u64..(1u64 << 48),
        pattern_seed in 0u64..(1u64 << 48),
    ) {
        let nl = random_netlist(shape_seed);
        let sim = FaultSim::new(&nl);
        let mut cone = FaultCone::new();
        let mut scratch = SimScratch::new();

        let mut det_scratch = SimScratch::new();
        let mut rng = StdRng::seed_from_u64(pattern_seed);
        let inputs: Vec<u64> = (0..nl.num_inputs()).map(|_| rng.gen()).collect();
        let good = nl.eval_all(&inputs);
        let good_out = nl.output_values(&good);

        // Every stuck-at fault on every net, both polarities.
        for net in 0..nl.num_nets() as u32 {
            let net = NetId(net);
            sim.cone_into(net, &mut cone);
            for stuck in [false, true] {
                let oracle = nl.eval_all_stuck(&inputs, (net, stuck));
                sim.eval_stuck(&good, (net, stuck), &cone, &mut scratch);
                for n in 0..nl.num_nets() as u32 {
                    prop_assert_eq!(
                        scratch.value(&good, NetId(n)),
                        oracle[n as usize],
                        "net n{} differs for fault ({}, sa{})",
                        n,
                        net,
                        u8::from(stuck)
                    );
                }
                let mut oracle_diff = 0u64;
                for (o, g) in nl.outputs().iter().zip(&good_out) {
                    oracle_diff |= oracle[o.index()] ^ g;
                }
                prop_assert_eq!(sim.detect_word(&good, &scratch), oracle_diff);

                // The levelized event-walk detection variant (used by
                // campaigns) must agree on detection and on the first
                // detecting lane.
                sim.eval_stuck_detect(&good, (net, stuck), &mut det_scratch);
                let det = sim.detect_word(&good, &det_scratch);
                prop_assert_eq!(det != 0, oracle_diff != 0);
                if oracle_diff != 0 {
                    prop_assert_eq!(det.trailing_zeros(), oracle_diff.trailing_zeros());
                }

                // The both-polarity flip walk, masked by this polarity's
                // excitation lanes, must agree with the oracle too.
                sim.eval_flip_detect(&good, net, &mut det_scratch);
                let excite = if stuck { !good[net.index()] } else { good[net.index()] };
                let flip = sim.detect_word(&good, &det_scratch) & excite;
                prop_assert_eq!(flip != 0, oracle_diff != 0);
                if oracle_diff != 0 {
                    prop_assert_eq!(flip.trailing_zeros(), oracle_diff.trailing_zeros());
                }
            }
        }
    }

    #[test]
    fn wide_fault_sim_matches_narrow_per_lane_group(
        shape_seed in 0u64..(1u64 << 48),
        pattern_seed in 0u64..(1u64 << 48),
    ) {
        let nl = random_netlist(shape_seed);
        let sim = FaultSim::new(&nl);
        let mut cone = FaultCone::new();
        let mut narrow = SimScratch::new();
        let mut wide = WideScratch::<4>::new();
        let mut det = WideScratch::<4>::new();

        let mut rng = StdRng::seed_from_u64(pattern_seed);
        let blocks: Vec<Vec<u64>> = (0..4)
            .map(|_| (0..nl.num_inputs()).map(|_| rng.gen()).collect())
            .collect();
        let goods: Vec<Vec<u64>> = blocks.iter().map(|b| nl.eval_all(b)).collect();
        let packed = pack_blocks::<4>(&goods.iter().map(Vec::as_slice).collect::<Vec<_>>());

        for net in 0..nl.num_nets() as u32 {
            let net = NetId(net);
            sim.cone_into(net, &mut cone);
            for stuck in [false, true] {
                sim.eval_stuck_wide(&packed, (net, stuck), &cone, &mut wide);
                let words = wide.detect_words();
                let mut first = None;
                for (g, good) in goods.iter().enumerate() {
                    sim.eval_stuck(good, (net, stuck), &cone, &mut narrow);
                    for n in 0..nl.num_nets() as u32 {
                        prop_assert_eq!(
                            wide.value(&packed, NetId(n))[g],
                            narrow.value(good, NetId(n)),
                            "net n{} lane group {} for fault ({}, sa{})",
                            n,
                            g,
                            net,
                            u8::from(stuck)
                        );
                    }
                    let word = sim.detect_word(good, &narrow);
                    prop_assert_eq!(words[g], word, "detect word, lane group {}", g);
                    if first.is_none() && word != 0 {
                        first = Some((g, word.trailing_zeros()));
                    }
                }
                // The campaign's group-aware accounting consumes only
                // the earliest detecting (block, lane) pair; the wide
                // detect walk must reproduce it exactly.
                if sim.eval_stuck_detect_wide(&packed, (net, stuck), &mut det) {
                    let dw = det.detect_words();
                    let got = (0..4).find(|&g| dw[g] != 0).map(|g| (g, dw[g].trailing_zeros()));
                    prop_assert_eq!(got.is_some(), first.is_some());
                    if let (Some(a), Some(b)) = (got, first) {
                        prop_assert_eq!(a, b, "first detecting (block, lane)");
                    }
                }
            }
        }
    }
}
