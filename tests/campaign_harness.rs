//! End-to-end checks of the adversarial fault-injection campaign harness:
//! deterministic reports, failure-free sweeps on both substrates, and the
//! harness catching a deliberately re-introduced checkpoint-integrity bug.

use r2d3::engine::campaign::{
    generate_scenarios, render_report, run_campaign, run_substrate_sweep, CampaignConfig,
    FaultKind, Outcome, ScenarioSpace, SubstrateKind,
};
use r2d3::engine::checkpoint::CheckpointConfig;

fn small_config(seed: u64) -> CampaignConfig {
    CampaignConfig { seed, scenarios_per_substrate: 18, ..Default::default() }
}

#[test]
fn same_seed_renders_byte_identical_reports() {
    let a = render_report(&run_campaign(&small_config(0xCA3A)));
    let b = render_report(&run_campaign(&small_config(0xCA3A)));
    assert_eq!(a, b, "same seed must produce a byte-identical campaign report");

    let c = render_report(&run_campaign(&small_config(0x5EED)));
    assert_ne!(a, c, "different seeds must explore different scenarios");
}

#[test]
fn sweep_is_failure_free_on_both_substrates() {
    let report = run_campaign(&small_config(0xCA3A));
    assert_eq!(report.total_scenarios(), 36);
    assert_eq!(report.substrates.len(), 2);
    for sub in &report.substrates {
        assert_eq!(
            sub.outcome_count(Outcome::Misdiagnosed),
            0,
            "{}: healthy hardware was condemned",
            sub.substrate
        );
        assert_eq!(
            sub.outcome_count(Outcome::SilentCorruption),
            0,
            "{}: corruption survived unnoticed",
            sub.substrate
        );
        assert_eq!(
            sub.outcome_count(Outcome::EngineFailure),
            0,
            "{}: the engine errored",
            sub.substrate
        );
        // The sweep is not vacuous: the engine actually handled faults.
        assert!(
            sub.outcome_count(Outcome::DetectedRepaired) > sub.results.len() / 2,
            "{}: too few scenarios manifested",
            sub.substrate
        );
    }
    // Both substrates ran the *same* scenario list.
    let ids = |i: usize| report.substrates[i].results.iter().map(|r| r.id).collect::<Vec<_>>();
    assert_eq!(ids(0), ids(1));
}

/// The harness as a regression oracle: re-introduce the historical
/// restore-blindly checkpoint bug (`verify_integrity: false` skips the
/// digest check at recovery) and the campaign's checkpoint-corruption
/// scenarios classify as silent corruption; with the integrity check on,
/// the very same scenarios are detected and repaired.
#[test]
fn reintroduced_checkpoint_bug_is_caught_and_fix_restores_integrity() {
    let space =
        ScenarioSpace { seed: 0xCA3A, count: 27, pipelines: 5, layers: 8, settle_epochs: 8 };
    let scenarios: Vec<_> = generate_scenarios(&space)
        .into_iter()
        .filter(|s| matches!(s.kind, FaultKind::CheckpointCorrupt))
        .collect();
    assert!(scenarios.len() >= 3, "need several checkpoint-corruption scenarios");

    // Pre-fix engine: restores whatever the checkpoint store returns.
    let mut buggy = CampaignConfig { shrink: false, ..Default::default() };
    buggy.engine.checkpoint = Some(CheckpointConfig {
        interval_epochs: 2,
        verify_integrity: false,
        ..Default::default()
    });
    let before = run_substrate_sweep(SubstrateKind::Netlist, &scenarios, &buggy);
    let silent = before.outcome_count(Outcome::SilentCorruption);
    assert!(silent >= 1, "harness failed to expose the restore-blindly bug: {before:?}");

    // Post-fix engine (defaults): digests verified at recovery, poisoned
    // slots invalidated, pipelines restarted instead.
    let hardened = CampaignConfig { shrink: false, ..Default::default() };
    let after = run_substrate_sweep(SubstrateKind::Netlist, &scenarios, &hardened);
    assert_eq!(
        after.outcome_count(Outcome::SilentCorruption),
        0,
        "integrity check must eliminate every silent restore"
    );
    assert_eq!(
        after.outcome_count(Outcome::DetectedRepaired),
        scenarios.len(),
        "hardened engine must catch and recover every scenario"
    );
    assert!(
        after.total_counts().checkpoint_corruptions >= silent as u64,
        "each caught corruption must surface as a CheckpointCorrupt event"
    );
}
