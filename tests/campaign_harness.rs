//! End-to-end checks of the adversarial fault-injection campaign harness:
//! deterministic reports, failure-free sweeps on both substrates (stage
//! *and* fabric fault universes), and the harness catching deliberately
//! re-introduced engine bugs (checkpoint integrity, route scrubbing).

use r2d3::engine::campaign::{
    generate_scenarios_with, render_report, run_campaign, run_substrate_sweep, CampaignConfig,
    KindId, Outcome, ScenarioSpace, SubstrateKind,
};
use r2d3::engine::checkpoint::CheckpointConfig;

fn small_config(seed: u64) -> CampaignConfig {
    CampaignConfig { seed, scenarios_per_substrate: 18, ..Default::default() }
}

fn space(count: usize) -> ScenarioSpace {
    ScenarioSpace { seed: 0xCA3A, count, pipelines: 5, layers: 8, settle_epochs: 8 }
}

/// The interconnect fault classes (the `--kinds` fabric subset).
const FABRIC_KINDS: [KindId; 5] =
    [KindId::TsvStuck, KindId::TsvBridge, KindId::Crosstalk, KindId::MuxSelect, KindId::SeuBurst];

#[test]
fn same_seed_renders_byte_identical_reports() {
    let a = render_report(&run_campaign(&small_config(0xCA3A)));
    let b = render_report(&run_campaign(&small_config(0xCA3A)));
    assert_eq!(a, b, "same seed must produce a byte-identical campaign report");

    let c = render_report(&run_campaign(&small_config(0x5EED)));
    assert_ne!(a, c, "different seeds must explore different scenarios");
}

#[test]
fn sweep_is_failure_free_on_both_substrates() {
    let report = run_campaign(&small_config(0xCA3A));
    assert_eq!(report.total_scenarios(), 36);
    assert_eq!(report.substrates.len(), 2);
    for sub in &report.substrates {
        assert_eq!(
            sub.outcome_count(Outcome::Misdiagnosed),
            0,
            "{}: healthy hardware was condemned",
            sub.substrate
        );
        assert_eq!(
            sub.outcome_count(Outcome::SilentCorruption),
            0,
            "{}: corruption survived unnoticed",
            sub.substrate
        );
        assert_eq!(
            sub.outcome_count(Outcome::EngineFailure),
            0,
            "{}: the engine errored",
            sub.substrate
        );
        // The sweep is not vacuous: the engine actually handled faults.
        let handled = sub.outcome_count(Outcome::DetectedRepaired)
            + sub.outcome_count(Outcome::Rerouted)
            + sub.outcome_count(Outcome::LinkQuarantined);
        assert!(handled > sub.results.len() / 2, "{}: too few scenarios manifested", sub.substrate);
    }
    // Both substrates ran the *same* scenario list.
    let ids = |i: usize| report.substrates[i].results.iter().map(|r| r.id).collect::<Vec<_>>();
    assert_eq!(ids(0), ids(1));
}

/// The harness as a regression oracle: re-introduce the historical
/// restore-blindly checkpoint bug (`verify_integrity: false` skips the
/// digest check at recovery) and the campaign's checkpoint-corruption
/// scenarios classify as silent corruption; with the integrity check on,
/// the very same scenarios are detected and repaired.
#[test]
fn reintroduced_checkpoint_bug_is_caught_and_fix_restores_integrity() {
    let scenarios = generate_scenarios_with(&space(4), &[KindId::CheckpointCorrupt]);
    assert!(scenarios.len() >= 3, "need several checkpoint-corruption scenarios");

    // Pre-fix engine: restores whatever the checkpoint store returns.
    let mut buggy = CampaignConfig { shrink: false, ..Default::default() };
    buggy.engine.checkpoint = Some(CheckpointConfig {
        interval_epochs: 2,
        verify_integrity: false,
        ..Default::default()
    });
    let before = run_substrate_sweep(SubstrateKind::Netlist, &scenarios, &buggy);
    let silent = before.outcome_count(Outcome::SilentCorruption);
    assert!(silent >= 1, "harness failed to expose the restore-blindly bug: {before:?}");

    // Post-fix engine (defaults): digests verified at recovery, poisoned
    // slots invalidated, pipelines restarted instead.
    let hardened = CampaignConfig { shrink: false, ..Default::default() };
    let after = run_substrate_sweep(SubstrateKind::Netlist, &scenarios, &hardened);
    assert_eq!(
        after.outcome_count(Outcome::SilentCorruption),
        0,
        "integrity check must eliminate every silent restore"
    );
    assert_eq!(
        after.outcome_count(Outcome::DetectedRepaired),
        scenarios.len(),
        "hardened engine must catch and recover every scenario"
    );
    assert!(
        after.total_counts().checkpoint_corruptions >= silent as u64,
        "each caught corruption must surface as a CheckpointCorrupt event"
    );
}

/// The fabric universe end-to-end: a `--kinds`-filtered sweep over every
/// interconnect fault class is failure-free on both substrates, and the
/// link-fault corruption model (one [`Fabric`] serving both) makes the
/// per-scenario verdicts agree across them.
#[test]
fn fabric_fault_sweep_is_failure_free_and_substrate_parity_holds() {
    let config = CampaignConfig {
        scenarios_per_substrate: 15,
        kinds: FABRIC_KINDS.to_vec(),
        ..Default::default()
    };
    let report = run_campaign(&config);
    assert_eq!(report.kinds, ["tsv_stuck", "tsv_bridge", "crosstalk", "mux_select", "seu_burst"]);
    assert_eq!(report.failures(), 0, "fabric sweep failed:\n{}", render_report(&report));
    for sub in &report.substrates {
        assert!(sub.outcome_count(Outcome::LinkQuarantined) >= 3, "{}", sub.substrate);
        assert!(sub.outcome_count(Outcome::Rerouted) >= 3, "{}", sub.substrate);
        assert!(sub.outcome_count(Outcome::DetectedRepaired) >= 3, "{}", sub.substrate);
    }
    // Cross-substrate parity: same scenario, same verdict, even though
    // one substrate retires instructions and the other clocks gates.
    let [behavioral, netlist] = &report.substrates[..] else {
        panic!("expected two substrate sweeps");
    };
    for (b, n) in behavioral.results.iter().zip(&netlist.results) {
        assert_eq!(b.id, n.id);
        assert_eq!(
            b.outcome, n.outcome,
            "scenario {} ({}) diverged: behavioral={:?} netlist={:?}",
            b.id, b.kind, b.outcome, n.outcome
        );
    }
}

/// The paper's central repair claim for fabric faults: a dead TSV is a
/// *routing constraint*. The engine must quarantine the link and reroute
/// — stage quarantines (escalations) must stay at zero, and any stage
/// quarantine would classify as [`Outcome::Misdiagnosed`] because the
/// truth set of a link fault contains no stage.
#[test]
fn link_fault_resolves_by_rerouting_not_stage_retirement() {
    let config = CampaignConfig {
        scenarios_per_substrate: 4,
        kinds: vec![KindId::TsvStuck],
        substrates: vec![SubstrateKind::Behavioral],
        ..Default::default()
    };
    let report = run_campaign(&config);
    for r in &report.substrates[0].results {
        assert_eq!(
            r.outcome,
            Outcome::LinkQuarantined,
            "stuck TSV must resolve via link quarantine: {r:?}"
        );
        assert!(r.counts.link_quarantines >= 1, "{r:?}");
        assert_eq!(r.counts.escalations, 0, "a healthy stage was retired: {r:?}");
    }
}

/// The harness as a regression oracle for routing-aware detection:
/// disable the route scrub and late crossbar mux-select upsets outlive
/// the scenario as [`Outcome::MisroutedUndetected`]; the scrub (default
/// on) catches and rewrites every one within an epoch.
#[test]
fn disabled_route_scrub_leaves_mux_upsets_undetected() {
    let scenarios = generate_scenarios_with(&space(3), &[KindId::MuxSelect]);

    let mut blind = CampaignConfig { shrink: false, ..Default::default() };
    blind.engine.route_scrub = false;
    let before = run_substrate_sweep(SubstrateKind::Behavioral, &scenarios, &blind);
    assert!(
        before.outcome_count(Outcome::MisroutedUndetected) >= 1,
        "harness failed to expose the unscrubbed-crossbar hole: {before:?}"
    );

    let hardened = CampaignConfig { shrink: false, ..Default::default() };
    let after = run_substrate_sweep(SubstrateKind::Behavioral, &scenarios, &hardened);
    assert_eq!(
        after.outcome_count(Outcome::Rerouted),
        scenarios.len(),
        "route scrub must catch and rewrite every mux upset: {after:?}"
    );
    assert!(
        after.total_counts().reroutes >= scenarios.len() as u64,
        "each rewrite must surface as a Misrouted event"
    );
}
