//! The telemetry determinism contract, end to end: recording never
//! changes what the engine *does* — verdicts, events, metrics and whole
//! campaign reports are byte-identical with a recording sink and with
//! the compiled-away [`NullSink`].

use r2d3::engine::campaign::{
    render_report, run_campaign, run_campaign_traced, CampaignConfig, SubstrateKind,
};
use r2d3::engine::telemetry::RingSink;
use r2d3::engine::{EngineEvent, R2d3Engine};
use r2d3::isa::kernels::trap_mix;
use r2d3::isa::Unit;
use r2d3::pipeline_sim::{FaultEffect, StageId, System3d, SystemConfig};

fn loaded_system() -> System3d {
    let config = SystemConfig { pipelines: 8, ..Default::default() };
    let mut sys = System3d::new(&config);
    for p in 0..8 {
        sys.load_program(p, trap_mix(2048, p as u64 + 1).program().clone()).unwrap();
    }
    sys
}

/// Drives a mixed fault schedule (one permanent, one transient) and
/// returns every epoch's events plus the final metrics snapshot.
fn drive(
    mut engine_events: impl FnMut(&mut System3d) -> Vec<EngineEvent>,
) -> Vec<Vec<EngineEvent>> {
    let mut sys = loaded_system();
    sys.inject_fault(StageId::new(3, Unit::Exu), FaultEffect { bit: 0, stuck: true }).unwrap();
    let mut all = Vec::new();
    for epoch in 0..16 {
        if epoch == 6 {
            sys.inject_transient(StageId::new(5, Unit::Lsu), FaultEffect { bit: 1, stuck: false })
                .unwrap();
        }
        all.push(engine_events(&mut sys));
        for p in 0..8 {
            if sys.pipeline(p).is_some_and(r2d3::pipeline_sim::LogicalPipeline::halted) {
                sys.restart_program(p).unwrap();
            }
        }
    }
    all
}

#[test]
fn engine_behavior_is_identical_with_and_without_telemetry() {
    let mut quiet = R2d3Engine::builder().build().unwrap();
    let quiet_events = drive(|sys| quiet.run_epoch(sys).unwrap());

    let mut traced = R2d3Engine::builder().telemetry(RingSink::new()).build().unwrap();
    let traced_events = drive(|sys| traced.run_epoch(sys).unwrap());

    assert_eq!(quiet_events, traced_events, "engine events must not depend on the sink");
    assert_eq!(quiet.metrics(), traced.metrics(), "metrics must not depend on the sink");
    assert!(!traced.telemetry().is_empty(), "the traced engine must actually have recorded");
}

#[test]
fn campaign_reports_are_byte_identical_with_and_without_tracing() {
    let config = CampaignConfig {
        seed: 0xD37,
        scenarios_per_substrate: 10,
        substrates: vec![SubstrateKind::Behavioral],
        ..Default::default()
    };
    let quiet = render_report(&run_campaign(&config));
    let (traced_report, traces) = run_campaign_traced(&config);
    let traced = render_report(&traced_report);
    assert_eq!(quiet, traced, "tracing a campaign must not change its report");
    assert_eq!(traces.len(), 10, "one trace per scenario");
    assert!(traces.iter().any(|t| !t.records.is_empty()), "traces must carry records");
}
