//! IR round-trip and rewrite-equivalence differential suite.
//!
//! Three layers of guarantees, each tested against an independent oracle:
//!
//! * the deterministic text format is a lossless encoding — build →
//!   `text_emit` → `text_parse` reproduces the identical [`Netlist`],
//! * the rewrite pipeline is semantics-preserving — on random netlists
//!   the post-rewrite outputs match the pre-rewrite outputs on random
//!   input vectors, every `net_map` entry points at a net computing the
//!   identical function, and the whole pipeline is byte-deterministic,
//! * campaigns over rewritten stage chains stay sane — fault lists
//!   align, eliminated sites classify as undetectable, and verdicts are
//!   reproducible — and the vendored Yosys-JSON core drives the full
//!   import → rewrite → detect/diagnose/repair path.

use proptest::prelude::*;
use r2d3_atpg::campaign::{CampaignConfig as FaultCampaignConfig, FaultStatus};
use r2d3_atpg::fault::all_faults;
use r2d3_atpg::observe::core_level_campaign_rewritten;
use r2d3_netlist::{
    parse_yosys_json, rewrite, text_emit, text_parse, ComposeOptions, GateKind, NetId, Netlist,
    NetlistBuilder,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The vendored Yosys `write_json` core (also exercised by the CI
/// `import_smoke` job through the CLI).
const ALU4_JSON: &str = include_str!("golden/alu4_core.json");

/// Random combinational netlist (same generator family as
/// `fault_collapse.rs`): arbitrary fanout, shared subtrees, redundant
/// and dead cones included.
fn random_netlist(seed: u64) -> Netlist {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = NetlistBuilder::new();
    let num_inputs = rng.gen_range(2usize..10);
    let mut nets = b.inputs(num_inputs);
    if rng.gen_bool(0.3) {
        nets.push(b.constant(rng.gen_bool(0.5)));
    }
    let num_gates = rng.gen_range(5usize..120);
    for _ in 0..num_gates {
        let kind = match rng.gen_range(0u32..9) {
            0 => GateKind::Buf,
            1 => GateKind::Not,
            2 => GateKind::And,
            3 => GateKind::Or,
            4 => GateKind::Nand,
            5 => GateKind::Nor,
            6 => GateKind::Xor,
            7 => GateKind::Xnor,
            _ => GateKind::Mux,
        };
        let picks: Vec<NetId> =
            (0..kind.arity()).map(|_| nets[rng.gen_range(0..nets.len())]).collect();
        nets.push(b.gate(kind, &picks));
    }
    let mut observed = 0usize;
    for &net in &nets {
        if rng.gen_bool(0.15) {
            b.output(net);
            observed += 1;
        }
    }
    if observed == 0 {
        let last = *nets.last().unwrap();
        b.output(last);
    }
    b.finish()
}

fn random_vectors(num_inputs: usize, seed: u64) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..num_inputs).map(|_| rng.gen()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn text_round_trip_is_identity(seed in 0u64..(1u64 << 48)) {
        let nl = random_netlist(seed);
        let text = text_emit(&nl);
        let parsed = text_parse(&text).expect("emitted text must parse");
        prop_assert_eq!(&parsed, &nl, "text round-trip changed the netlist");
        // Emission is a pure function of the netlist, so re-emission is
        // byte-identical.
        prop_assert_eq!(text_emit(&parsed), text);
    }

    #[test]
    fn rewrite_preserves_function(
        shape_seed in 0u64..(1u64 << 48),
        vector_seed in 0u64..(1u64 << 48),
    ) {
        let nl = random_netlist(shape_seed);
        let out = rewrite(&nl).expect("random builder netlists are valid IR");
        prop_assert_eq!(nl.num_inputs(), out.netlist.num_inputs());
        for round in 0..4u64 {
            let inputs = random_vectors(nl.num_inputs(), vector_seed ^ round);
            prop_assert_eq!(
                nl.eval(&inputs),
                out.netlist.eval(&inputs),
                "rewrite changed observable behavior (seed {}, round {})",
                shape_seed,
                round
            );
        }
    }

    #[test]
    fn rewrite_net_map_points_at_equivalent_nets(
        shape_seed in 0u64..(1u64 << 48),
        vector_seed in 0u64..(1u64 << 48),
    ) {
        let nl = random_netlist(shape_seed);
        let out = rewrite(&nl).expect("valid IR");
        let inputs = random_vectors(nl.num_inputs(), vector_seed);
        let before = nl.eval_all(&inputs);
        let after = out.netlist.eval_all(&inputs);
        for (orig, mapped) in out.net_map.iter().enumerate() {
            if let Some(net) = mapped {
                prop_assert_eq!(
                    before[orig], after[net.index()],
                    "net_map[{}] → {:?} is not function-identical", orig, net
                );
            }
        }
    }

    #[test]
    fn rewrite_is_byte_deterministic(seed in 0u64..(1u64 << 48)) {
        let nl = random_netlist(seed);
        let a = rewrite(&nl).expect("valid IR");
        let b = rewrite(&nl).expect("valid IR");
        prop_assert_eq!(text_emit(&a.netlist), text_emit(&b.netlist));
        prop_assert_eq!(a.net_map, b.net_map);
    }
}

/// Campaign-verdict sanity on a rewritten stage chain: fault lists stay
/// aligned with the inputs, sites the rewrite eliminated classify as
/// undetectable (never silently dropped), verdicts are reproducible, and
/// the rewritten chain still detects a healthy majority of what the
/// un-rewritten chain detects.
#[test]
fn rewritten_stage_chain_campaign_is_sane() {
    use r2d3_netlist::{stage_netlist, StageSizing};

    let sizing = StageSizing { gates_per_mm2: 1_200.0, ..Default::default() };
    let stages: Vec<_> = r2d3_isa::Unit::ALL.iter().map(|&u| stage_netlist(u, &sizing)).collect();
    let netlists: Vec<&Netlist> = stages.iter().map(|s| s.netlist()).collect();
    let faults: Vec<_> = netlists.iter().map(|nl| all_faults(nl)).collect();
    let config = FaultCampaignConfig { max_patterns: 1024, seed: 0x1234, threads: 2 };
    let options = ComposeOptions::core_level();

    let (rewritten, outcomes) =
        core_level_campaign_rewritten(&netlists, &faults, &config, &options).unwrap();
    assert!(
        rewritten.stats.gates_after <= rewritten.stats.gates_before,
        "rewrite grew the composed chain"
    );

    let (rewritten2, outcomes2) =
        core_level_campaign_rewritten(&netlists, &faults, &config, &options).unwrap();
    assert_eq!(text_emit(&rewritten.netlist), text_emit(&rewritten2.netlist));

    let mut detected = 0usize;
    let mut total = 0usize;
    for (si, outcome) in outcomes.iter().enumerate() {
        assert_eq!(outcome.faults(), faults[si].as_slice(), "stage {si} fault list misaligned");
        assert_eq!(
            outcome.statuses(),
            outcomes2[si].statuses(),
            "stage {si} verdicts are not reproducible"
        );
        total += outcome.statuses().len();
        detected += outcome.statuses().iter().filter(|s| s.is_detected()).count();
    }
    assert_eq!(total, faults.iter().map(Vec::len).sum::<usize>());
    assert!(detected * 2 > total / 2, "rewritten chain detected only {detected}/{total} faults");
}

/// Reference semantics of the vendored ALU core, lane-parallel.
fn alu4_reference(a: u64, b: u64, op: (bool, bool), cin: u64) -> (u64, u64, bool) {
    let mask = 0xfu64;
    let (a, b, cin) = (a & mask, b & mask, cin & 1);
    // The carry chain runs regardless of the selected operation (the op
    // mux selects y only); cout is always the adder carry-out.
    let sum = a + b + cin;
    let cout = (sum >> 4) & 1;
    let y = match op {
        (false, false) => sum & mask,
        (true, false) => a & b,
        (false, true) => a | b,
        (true, true) => a ^ b,
    };
    (y, cout, y == 0)
}

#[test]
fn golden_core_imports_and_matches_reference_semantics() {
    let core = parse_yosys_json(ALU4_JSON, None).unwrap();
    assert_eq!(core.name, "alu4");
    assert_eq!(core.input_ports.len(), 4);
    assert_eq!(core.output_ports.len(), 3);
    assert_eq!(core.netlist.num_inputs(), 11); // a[4] b[4] op[2] cin
    assert_eq!(core.netlist.outputs().len(), 6); // y[4] cout zero

    let rewritten = rewrite(&core.netlist).unwrap();
    let mut rng = StdRng::seed_from_u64(0xA111);
    for _ in 0..64 {
        let a = rng.gen_range(0u64..16);
        let b = rng.gen_range(0u64..16);
        let op = (rng.gen_bool(0.5), rng.gen_bool(0.5));
        let cin = u64::from(rng.gen_bool(0.5));
        // Single-lane stimulus: bit 0 of every input word.
        let inputs: Vec<u64> = (0..4)
            .map(|i| (a >> i) & 1)
            .chain((0..4).map(|i| (b >> i) & 1))
            .chain([u64::from(op.0), u64::from(op.1), cin])
            .collect();
        let (want_y, want_cout, want_zero) = alu4_reference(a, b, op, cin);
        for nl in [&core.netlist, &rewritten.netlist] {
            let out = nl.eval(&inputs);
            let got_y = (0..4).fold(0u64, |acc, i| acc | ((out[i] & 1) << i));
            assert_eq!(got_y, want_y, "y mismatch at a={a} b={b} op={op:?} cin={cin}");
            assert_eq!(out[4] & 1, want_cout, "cout mismatch at a={a} b={b} cin={cin}");
            assert_eq!(out[5] & 1 == 1, want_zero, "zero flag mismatch at a={a} b={b}");
        }
    }
}

#[test]
fn golden_core_text_format_round_trips() {
    let core = parse_yosys_json(ALU4_JSON, None).unwrap();
    let rewritten = rewrite(&core.netlist).unwrap();
    for nl in [&core.netlist, &rewritten.netlist] {
        let text = text_emit(nl);
        assert_eq!(&text_parse(&text).unwrap(), nl);
    }
}

/// The acceptance path end-to-end in-process: the vendored core becomes
/// the gate-level substrate of a full engine campaign (detect → diagnose
/// → repair) with zero engine failures and zero silent corruption.
#[test]
fn golden_core_campaign_has_no_failures() {
    use r2d3::engine::campaign::{run_campaign, CampaignConfig, Outcome, SubstrateKind};
    use r2d3_netlist::StageNetlist;

    let core = parse_yosys_json(ALU4_JSON, None).unwrap();
    let rewritten = rewrite(&core.netlist).unwrap().netlist;
    let core_outputs = rewritten.outputs().len();
    let stages: Vec<StageNetlist> = r2d3_isa::Unit::ALL
        .iter()
        .map(|&u| StageNetlist::from_netlist(u, rewritten.clone(), core_outputs).unwrap())
        .collect();

    let config = CampaignConfig {
        seed: 0xA104,
        scenarios_per_substrate: 12,
        substrates: vec![SubstrateKind::Netlist],
        netlist_stages: Some(stages),
        shrink: false,
        ..Default::default()
    };
    let report = run_campaign(&config);
    let sub = &report.substrates[0];
    assert_eq!(sub.results.len(), 12);
    assert_eq!(sub.outcome_count(Outcome::EngineFailure), 0, "engine failures on imported core");
    assert_eq!(
        sub.outcome_count(Outcome::SilentCorruption),
        0,
        "silent corruption on imported core"
    );
}

/// Faults whose sites the rewrite eliminates must come back as
/// undetectable verdicts, not vanish from the outcome.
#[test]
fn eliminated_fault_sites_classify_as_undetectable() {
    let mut b = NetlistBuilder::new();
    let i = b.inputs(2);
    let anded = b.and2(i[0], i[1]);
    // Dead cone: never observed, removed by DCE. (Not a double
    // inversion — that would be aliased away by the buf/inv cleanup
    // before DCE ever saw it.)
    let dead = b.not(anded);
    let _ = b.xor2(dead, i[0]);
    b.output(anded);
    let nl = b.finish();

    // Direct rewrite: the dead cone is DCE'd and its nets map to None.
    let direct = rewrite(&nl).unwrap();
    assert!(direct.stats.dead_gates_removed >= 2);
    assert!(direct.net_map.iter().filter(|m| m.is_none()).count() >= 2);

    let faults = vec![all_faults(&nl)];
    let config = FaultCampaignConfig { max_patterns: 256, seed: 1, threads: 1 };
    let (_, outcomes) =
        core_level_campaign_rewritten(&[&nl], &faults, &config, &ComposeOptions::default())
            .unwrap();

    let outcome = &outcomes[0];
    assert_eq!(outcome.faults(), faults[0].as_slice());
    let mut undetectable = 0usize;
    let mut detected = 0usize;
    for (fault, status) in outcome.results() {
        match status {
            FaultStatus::Undetectable => undetectable += 1,
            FaultStatus::Detected { .. } => detected += 1,
            FaultStatus::Undetected => {}
        }
        if fault.net == anded {
            // The observed AND output survives every pass; its faults
            // must still be live (an AND output is trivially detectable).
            assert!(status.is_detected(), "fault on the observed output was lost: {status:?}");
        }
    }
    // Both dead-cone nets contribute two faults each, all undetectable.
    assert!(undetectable >= 4, "dead-cone faults must classify as undetectable");
    assert!(detected > 0);
}
