//! Golden-file tests for the telemetry export schemas.
//!
//! The canonical single-permanent-fault scenario is fully deterministic,
//! so its JSON-lines and Chrome-trace renderings must be byte-identical
//! run over run *and* must match the checked-in golden files — any
//! intentional schema change regenerates them with
//! `UPDATE_GOLDEN=1 cargo test --test telemetry_schema`.

use r2d3::engine::telemetry::{
    chrome_trace, json_lines, validate_chrome_trace, validate_json_lines, RingSink, TelemetryRecord,
};
use r2d3::engine::R2d3Engine;
use r2d3::isa::kernels::gemv;
use r2d3::isa::Unit;
use r2d3::pipeline_sim::{FaultEffect, StageId, System3d, SystemConfig};
use std::path::Path;

/// Runs the canonical scenario: a stuck-at-1 on L2.EXU under the GEMV
/// workload, eight epochs, recording sink.
fn canonical_records() -> Vec<TelemetryRecord> {
    let config = SystemConfig { pipelines: 6, ..Default::default() };
    let mut sys = System3d::new(&config);
    let kernel = gemv(32, 32, 7);
    for p in 0..6 {
        sys.load_program(p, kernel.program().clone()).unwrap();
    }
    sys.inject_fault(StageId::new(2, Unit::Exu), FaultEffect { bit: 0, stuck: true }).unwrap();

    let mut engine = R2d3Engine::builder().telemetry(RingSink::new()).build().unwrap();
    for _ in 0..8 {
        engine.run_epoch(&mut sys).unwrap();
    }
    engine.telemetry().records()
}

/// Compares `actual` against the golden file, or rewrites the golden
/// file when `UPDATE_GOLDEN` is set.
fn assert_matches_golden(actual: &str, name: &str) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden").join(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing golden file {} ({e}); run with UPDATE_GOLDEN=1", path.display())
    });
    assert_eq!(
        actual, golden,
        "{name} drifted from the golden schema; if intentional, regenerate with UPDATE_GOLDEN=1"
    );
}

#[test]
fn json_lines_matches_golden_and_validates() {
    let records = canonical_records();
    assert!(!records.is_empty());
    let text = json_lines(&records);
    assert_eq!(validate_json_lines(&text).unwrap(), records.len());
    assert_matches_golden(&text, "trace.jsonl");
}

#[test]
fn chrome_trace_matches_golden_and_validates() {
    let records = canonical_records();
    let text = chrome_trace(&records, "behavioral");
    assert!(validate_chrome_trace(&text).unwrap() > 0);
    assert_matches_golden(&text, "trace-chrome.json");
}

#[test]
fn rendering_is_deterministic_across_runs() {
    let a = canonical_records();
    let b = canonical_records();
    assert_eq!(a.len(), b.len());
    assert_eq!(json_lines(&a), json_lines(&b));
    assert_eq!(chrome_trace(&a, "behavioral"), chrome_trace(&b, "behavioral"));
}

#[test]
fn validators_reject_malformed_documents() {
    assert!(validate_json_lines("{\"epoch\": 1}\n").is_err());
    assert!(validate_json_lines("not json\n").is_err());
    assert!(validate_chrome_trace("{}").is_err());
    assert!(validate_chrome_trace("{\"traceEvents\": [{\"ph\": \"Z\"}]}").is_err());
}
