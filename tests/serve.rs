//! Integration tests for the `r2d3 serve` job daemon: the serving
//! contract from DESIGN.md §5.0, driven over real unix sockets against
//! in-process [`Daemon`]s.
//!
//! * served == batch, byte-compared — a job's fetched report is exactly
//!   what [`execute_local`] + [`render_outcome`] produce for the same
//!   spec, including after forced worker losses mid-unit;
//! * killed workers resume, not restart — a daemon restarted over the
//!   same state directory finishes the jobs the first daemon accepted;
//! * malformed input never kills the daemon — typed error responses,
//!   connection stays usable;
//! * fairness is deterministic — the dispatch order for a contended
//!   queue is a documented function of quotas alone, independent of
//!   the worker count, and per-job results don't change with it.

#![cfg(unix)]

use r2d3::engine::api::{
    execute_local, render_outcome, JobEvent, JobId, JobSpec, JobState, PROTO_VERSION,
};
use r2d3::engine::campaign::{KindId, SubstrateKind};
use r2d3::engine::serve::{Client, Daemon, Listen, ServeConfig};
use r2d3::engine::telemetry::OverflowPolicy;
use std::io::{BufRead, BufReader, Write as _};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Per-test scratch directory (state dir + socket), recreated fresh.
fn scratch(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("r2d3-serve-tests-{}", std::process::id())).join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn daemon_at(dir: &std::path::Path, config: ServeConfig) -> (Daemon, Listen) {
    let listen = Listen::Unix(dir.join("d.sock"));
    let daemon = Daemon::start(config, &listen).unwrap();
    (daemon, listen)
}

/// A quick behavioral campaign spec: `scenarios` scenarios of one fault
/// kind, sharded `shards` ways.
fn quick_campaign(seed: u64, scenarios: usize, shards: usize) -> JobSpec {
    JobSpec::campaign()
        .seed(seed)
        .scenarios(scenarios)
        .substrates(vec![SubstrateKind::Behavioral])
        .kinds(vec![KindId::ALL[0]])
        .shards(shards)
        .build()
        .unwrap()
}

/// The batch-path bytes for a spec: execute in-process, render.
fn batch_bytes(spec: &JobSpec) -> String {
    render_outcome(spec, &execute_local(spec).unwrap())
}

fn wait_all_terminal(client: &mut Client, deadline: Duration) {
    let start = Instant::now();
    loop {
        let jobs = client.status(None).unwrap();
        if !jobs.is_empty() && jobs.iter().all(|j| j.state.is_terminal()) {
            return;
        }
        assert!(start.elapsed() < deadline, "jobs did not all finish: {jobs:?}");
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Forced worker losses (the lease) interrupt every unit mid-run; each
/// resumes from its last checkpoint, and the merged report is still
/// byte-identical to the batch path.
#[test]
fn leased_units_resume_and_report_matches_batch() {
    let dir = scratch("lease");
    let (daemon, listen) = daemon_at(
        &dir,
        ServeConfig {
            state_dir: dir.join("state"),
            workers: 2,
            lease_steps: Some(2),
            ..ServeConfig::default()
        },
    );

    let spec = quick_campaign(0xBEEF, 6, 2);
    let mut client = Client::connect(&listen).unwrap();
    let job = client.submit("tester", &spec).unwrap();

    let mut losses = 0;
    let mut checkpoints = 0;
    let terminal = client
        .watch(job, OverflowPolicy::Block, |ev| match ev {
            JobEvent::WorkerLost { .. } => losses += 1,
            JobEvent::Checkpointed { .. } => checkpoints += 1,
            _ => {}
        })
        .unwrap();
    assert_eq!(terminal, JobEvent::Completed { job });
    // 3 steps per unit with a 2-step lease: every unit is interrupted
    // at least once, so the report below was provably assembled from
    // resumed state, not a clean run.
    assert!(losses >= 2, "expected every unit to lose its worker at least once, saw {losses}");
    assert!(checkpoints >= losses, "every loss checkpoints first");

    assert_eq!(client.result(job).unwrap(), batch_bytes(&spec), "served != batch");

    daemon.shutdown();
    daemon.join();
}

/// Jobs accepted by one daemon are finished by the next daemon started
/// over the same state directory — acceptance survives the process.
#[test]
fn restarted_daemon_finishes_accepted_jobs() {
    let dir = scratch("restart");
    let state_dir = dir.join("state");
    let spec = quick_campaign(0xD1E, 5, 2);

    // Daemon A: paused, so the job is durably accepted but no unit
    // runs before the shutdown.
    let (daemon_a, listen) = daemon_at(
        &dir,
        ServeConfig { state_dir: state_dir.clone(), paused: true, ..ServeConfig::default() },
    );
    let job = {
        let mut client = Client::connect(&listen).unwrap();
        let job = client.submit("tester", &spec).unwrap();
        client.shutdown_server().unwrap();
        job
    };
    daemon_a.join();

    // Daemon B over the same state dir picks the job up and runs it.
    let (daemon_b, listen) = daemon_at(&dir, ServeConfig { state_dir, ..ServeConfig::default() });
    let mut client = Client::connect(&listen).unwrap();
    let mut saw_accepted = false;
    let terminal = client
        .watch(job, OverflowPolicy::Block, |ev| {
            // The pre-restart history (the acceptance) replays first.
            if matches!(ev, JobEvent::Accepted { .. }) {
                saw_accepted = true;
            }
        })
        .unwrap();
    assert!(saw_accepted, "watch must replay pre-restart history");
    assert_eq!(terminal, JobEvent::Completed { job });
    assert_eq!(client.result(job).unwrap(), batch_bytes(&spec), "served != batch after restart");

    let status = client.status(Some(job)).unwrap();
    assert_eq!(status.len(), 1);
    assert_eq!(status[0].state, JobState::Completed);
    assert_eq!(status[0].units_done, 2);

    daemon_b.shutdown();
    daemon_b.join();
}

/// Canceling latches: a queued job cancels immediately, a second cancel
/// reports it was already terminal, and the daemon stays up throughout.
#[test]
fn cancel_latches_and_reports_terminal_state() {
    let dir = scratch("cancel");
    let (daemon, listen) = daemon_at(
        &dir,
        ServeConfig { state_dir: dir.join("state"), paused: true, ..ServeConfig::default() },
    );
    let mut client = Client::connect(&listen).unwrap();
    let job = client.submit("tester", &quick_campaign(1, 4, 1)).unwrap();

    assert!(client.cancel(job).unwrap(), "queued job cancels");
    assert!(!client.cancel(job).unwrap(), "second cancel finds it already terminal");
    let status = client.status(Some(job)).unwrap();
    assert_eq!(status[0].state, JobState::Canceled);
    assert!(client.cancel(JobId(0x77)).is_err(), "unknown job is a typed remote error");

    daemon.shutdown();
    daemon.join();
}

/// Hostile input: every malformed line gets a one-line typed error
/// response, the connection survives all of them, and a well-formed
/// request still works afterwards on the same socket.
#[test]
fn malformed_lines_get_typed_errors_and_connection_survives() {
    let dir = scratch("fuzz");
    let (daemon, listen) = daemon_at(
        &dir,
        ServeConfig { state_dir: dir.join("state"), paused: true, ..ServeConfig::default() },
    );
    let Listen::Unix(sock) = &listen else { unreachable!() };

    let stream = UnixStream::connect(sock).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;

    let probes: &[(&str, &str)] = &[
        ("not json at all", "syntax"),
        ("{\"op\":\"status\"}", "missing"),
        ("{\"proto_version\":99,\"op\":\"status\",\"job\":null}", "version"),
        ("{\"proto_version\":1,\"op\":\"launch\"}", "unknown_op"),
        ("{\"proto_version\":1,\"op\":\"cancel\",\"job\":\"zebra\"}", "invalid"),
        ("[1,2,3]", "missing"),
        ("{\"proto_version\":1,\"op\":\"submit\",\"client\":\"x\",\"spec\":{\"proto_version\":1,\"kind\":\"tournament\",\"priority\":0}}", "unknown_kind"),
    ];
    for (line, code) in probes {
        writeln!(writer, "{line}").unwrap();
        writer.flush().unwrap();
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        assert!(
            reply.contains(&format!("\"code\":\"{code}\"")),
            "probe {line:?} expected error class {code:?}, got: {reply}"
        );
        assert!(reply.contains("\"ok\":false"), "got: {reply}");
    }

    // Same connection, now a valid request: still served.
    writeln!(writer, "{{\"proto_version\":{PROTO_VERSION},\"op\":\"status\",\"job\":null}}")
        .unwrap();
    writer.flush().unwrap();
    let mut reply = String::new();
    reader.read_line(&mut reply).unwrap();
    assert!(reply.contains("\"ok\":true"), "connection must survive bad lines, got: {reply}");

    daemon.shutdown();
    daemon.join();
}

/// Two clients with 3:1 quotas submitting one-unit jobs: the dispatch
/// order is the documented deficit pattern (`ab` then `aaab` repeating,
/// then the surplus), identical for 1 worker and 3 workers, and every
/// job's report is identical across the two runs.
#[test]
fn fairness_dispatch_is_deterministic_across_worker_counts() {
    let run = |workers: usize| -> (Vec<String>, Vec<(JobId, String)>) {
        let dir = scratch(&format!("fair-{workers}"));
        let (daemon, listen) = daemon_at(
            &dir,
            ServeConfig {
                state_dir: dir.join("state"),
                workers,
                quotas: vec![("alice".to_string(), 3)],
                paused: true,
                ..ServeConfig::default()
            },
        );
        let mut client = Client::connect(&listen).unwrap();
        let mut jobs = Vec::new();
        // Submission order fixes the job ids, so both runs see the
        // same queue; dispatch starts only at release().
        for i in 0..12u64 {
            jobs.push(client.submit("alice", &quick_campaign(100 + i, 1, 1)).unwrap());
        }
        for i in 0..4u64 {
            jobs.push(client.submit("bob", &quick_campaign(200 + i, 1, 1)).unwrap());
        }
        daemon.release();
        wait_all_terminal(&mut client, Duration::from_secs(120));
        let reports = jobs.iter().map(|&j| (j, client.result(j).unwrap())).collect::<Vec<_>>();
        let log = daemon.dispatch_log();
        daemon.shutdown();
        daemon.join();
        (log, reports)
    };

    let (log1, reports1) = run(1);
    let (log3, reports3) = run(3);

    // The pick order is a pure function of the queue, not the workers.
    assert_eq!(log1, log3, "dispatch order must not depend on worker count");

    // And it is the documented 3:1 deficit pattern.
    let letters: String =
        log1.iter().map(|entry| if entry.starts_with("alice:") { 'a' } else { 'b' }).collect();
    assert_eq!(letters, "abaaabaaabaaabaa");

    // Same inputs, same results, regardless of parallelism.
    assert_eq!(reports1, reports3, "per-job reports must not depend on worker count");
}
