//! Architectural equivalence: for arbitrary (terminating) programs, the
//! timing-annotated pipeline simulator must retire exactly the state the
//! ISA reference interpreter produces — the paper's detection scheme
//! depends on stages being deterministic re-executable units.

use proptest::prelude::*;
use r2d3::isa::{AluOp, BranchCond, FpuOp, Instruction, Interp, Program, Reg};
use r2d3::pipeline_sim::{System3d, SystemConfig};

const DATA_WORDS: usize = 64;

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0usize..32).prop_map(|i| Reg::from_index(i).expect("index < 32"))
}

/// Strategy for straight-line-plus-forward-branch programs that always
/// terminate and only touch the first `DATA_WORDS` words of memory.
fn arb_program() -> impl Strategy<Value = Program> {
    let instr = prop_oneof![
        (0usize..10, arb_reg(), arb_reg(), arb_reg()).prop_map(|(op, rd, rs1, rs2)| {
            Instruction::Alu { op: AluOp::ALL[op], rd, rs1, rs2 }
        }),
        (0usize..10, arb_reg(), arb_reg(), any::<i8>()).prop_map(|(op, rd, rs1, imm)| {
            Instruction::AluImm { op: AluOp::ALL[op], rd, rs1, imm: i16::from(imm) }
        }),
        (arb_reg(), any::<u16>()).prop_map(|(rd, imm)| Instruction::Lui { rd, imm }),
        (arb_reg(), 0i16..DATA_WORDS as i16).prop_map(|(rd, offset)| Instruction::Load {
            rd,
            base: Reg::R0,
            offset,
        }),
        (arb_reg(), 0i16..DATA_WORDS as i16).prop_map(|(src, offset)| Instruction::Store {
            src,
            base: Reg::R0,
            offset,
        }),
        (0usize..4, arb_reg(), arb_reg(), arb_reg()).prop_map(|(op, rd, rs1, rs2)| {
            Instruction::Fpu { op: FpuOp::ALL[op], rd, rs1, rs2 }
        }),
        // Forward-only branches (strictly positive offset → terminating).
        (0usize..4, arb_reg(), arb_reg(), 1i16..4).prop_map(|(c, rs1, rs2, offset)| {
            Instruction::Branch { cond: BranchCond::ALL[c], rs1, rs2, offset }
        }),
        Just(Instruction::Nop),
    ];
    (proptest::collection::vec(instr, 1..120), proptest::collection::vec(any::<u32>(), DATA_WORDS))
        .prop_map(|(mut text, data)| {
            // Pad the tail so forward branches always land inside text.
            for _ in 0..4 {
                text.push(Instruction::Nop);
            }
            text.push(Instruction::Halt);
            Program::new(text, data, DATA_WORDS)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn pipeline_matches_interpreter(program in arb_program()) {
        // Golden model.
        let mut golden = Interp::new(&program);
        golden.run(100_000).expect("terminating program");

        // Pipeline simulator (pipeline 0 of a fresh system).
        let mut sys = System3d::new(&SystemConfig::default());
        sys.load_program(0, program.clone()).expect("load");
        sys.run(2_000_000).expect("fault-free run");
        let pipe = sys.pipeline(0).expect("pipeline 0");

        prop_assert!(pipe.halted(), "pipeline did not halt");
        prop_assert_eq!(pipe.retired(), golden.retired(), "retired count differs");
        for r in Reg::ALL {
            prop_assert_eq!(pipe.reg(r), golden.reg(r), "register {} differs", r);
        }
        prop_assert_eq!(pipe.memory(), golden.memory(), "memory image differs");
    }

    #[test]
    fn trace_golden_equals_actual_when_healthy(program in arb_program()) {
        let mut sys = System3d::new(&SystemConfig::default());
        sys.load_program(0, program).expect("load");
        sys.run(2_000_000).expect("fault-free run");
        for stage in r2d3::pipeline_sim::StageId::all(8) {
            for rec in sys.stage_trace(stage).iter() {
                prop_assert_eq!(rec.golden_output, rec.actual_output);
            }
        }
    }
}
