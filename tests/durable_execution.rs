//! Durable-execution guarantees, end to end through the public API.
//!
//! The contract under test (DESIGN.md §5.0): a run interrupted at an
//! arbitrary point and resumed from its snapshot produces a result
//! **byte-identical** to the uninterrupted run; a campaign split into
//! shards and merged produces the exact unsharded report; a snapshot
//! damaged in any way (bit rot, truncation, version skew, wrong kind)
//! is rejected with a typed error, never silently reused; and the
//! streaming telemetry sink delivers — or exactly accounts for — every
//! record offered to it.

use r2d3::engine::campaign::{
    merge_shards, render_report, run_campaign, run_campaign_durable, run_campaign_sharded,
    CampaignConfig, CampaignState, ShardSpec, SubstrateKind,
};
use r2d3::engine::lifetime::{LifetimeConfig, LifetimeRunState, LifetimeSim};
use r2d3::engine::policy::PolicyKind;
use r2d3::engine::snapshot::SnapshotError;
use r2d3::engine::telemetry::{
    OverflowPolicy, StreamSink, TelemetryEvent, TelemetryRecord, TelemetrySink,
};
use std::io::Write;
use std::ops::ControlFlow;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

fn tmp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("r2d3-durable-tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{}-{name}", std::process::id()))
}

fn lifetime_config() -> LifetimeConfig {
    LifetimeConfig {
        months: 10,
        replicas: 2,
        mttf_trials: 20,
        seed: 0xD00B,
        ..LifetimeConfig::new(PolicyKind::Pro, 1.0, 1.0)
    }
}

fn campaign_config(scenarios: usize, substrates: Vec<SubstrateKind>) -> CampaignConfig {
    CampaignConfig {
        seed: 0xD00B,
        scenarios_per_substrate: scenarios,
        substrates,
        ..Default::default()
    }
}

/// Kill the lifetime run at an arbitrary month-step, persist the
/// snapshot, reload it from disk and finish: the outcome must equal the
/// uninterrupted run's, field for field, bit for bit.
#[test]
fn lifetime_killed_and_resumed_is_byte_identical() {
    let cfg = lifetime_config();
    let total_steps = cfg.months * cfg.replicas;
    // Arbitrary interior stop point, derived (not hand-picked) so the
    // test does not quietly rot onto a boundary step.
    let stop = (cfg.seed as usize % (total_steps - 2)) + 1;

    let straight = LifetimeSim::new(cfg.clone()).run().unwrap();

    let path = tmp_path("lifetime-kill.r2d3s");
    let mut steps = 0usize;
    let killed = LifetimeSim::new(cfg.clone())
        .run_durable(None, |st| {
            steps += 1;
            if steps == stop {
                st.save(&path)?;
                return Ok(ControlFlow::Break(()));
            }
            Ok(ControlFlow::Continue(()))
        })
        .unwrap();
    assert!(killed.is_none(), "run must report interruption, not an outcome");

    let resume = LifetimeRunState::load(&path).unwrap();
    let resumed = LifetimeSim::new(cfg)
        .run_durable(Some(resume), |_| Ok(ControlFlow::Continue(())))
        .unwrap()
        .expect("resumed run must finish");
    assert_eq!(resumed, straight);
}

/// Every corruption mode is rejected with the matching typed error:
/// flipped body bit, truncation, version skew, kind confusion. A
/// damaged snapshot must never load.
#[test]
fn damaged_snapshots_are_rejected_not_reused() {
    let cfg = lifetime_config();
    let path = tmp_path("lifetime-donor.r2d3s");
    let _ = LifetimeSim::new(cfg)
        .run_durable(None, |st| {
            st.save(&path)?;
            Ok(ControlFlow::Break(()))
        })
        .unwrap();
    let good = std::fs::read(&path).unwrap();

    // Bit-flip deep in the body → digest mismatch.
    let mut flipped = good.clone();
    let last = flipped.len() - 2;
    flipped[last] ^= 0x01;
    let bad = tmp_path("lifetime-flipped.r2d3s");
    std::fs::write(&bad, &flipped).unwrap();
    assert!(matches!(LifetimeRunState::load(&bad), Err(SnapshotError::DigestMismatch { .. })));

    // Torn copy → truncation reported against the header's promise.
    let cut = tmp_path("lifetime-truncated.r2d3s");
    std::fs::write(&cut, &good[..good.len() / 2]).unwrap();
    assert!(matches!(LifetimeRunState::load(&cut), Err(SnapshotError::Truncated { .. })));

    // Version bump → refused before the body is even looked at.
    let text = String::from_utf8(good.clone()).unwrap();
    let current = format!("R2D3SNAP {} ", r2d3::engine::snapshot::SNAPSHOT_VERSION);
    let bumped = tmp_path("lifetime-version.r2d3s");
    std::fs::write(&bumped, text.replacen(&current, "R2D3SNAP 99 ", 1)).unwrap();
    assert!(matches!(
        LifetimeRunState::load(&bumped),
        Err(SnapshotError::Version { found: 99, .. })
    ));

    // Pre-migration-window version → typed UnsupportedMigration.
    let ancient = tmp_path("lifetime-ancient.r2d3s");
    std::fs::write(&ancient, text.replacen(&current, "R2D3SNAP 0 ", 1)).unwrap();
    assert!(matches!(
        LifetimeRunState::load(&ancient),
        Err(SnapshotError::UnsupportedMigration { found: 0, .. })
    ));

    // A lifetime snapshot offered to the campaign loader → kind error.
    assert!(matches!(CampaignState::load(&path), Err(SnapshotError::Kind { .. })));

    // Not a snapshot at all.
    let junk = tmp_path("lifetime-junk.r2d3s");
    std::fs::write(&junk, b"totally not a snapshot").unwrap();
    assert!(matches!(LifetimeRunState::load(&junk), Err(SnapshotError::NotASnapshot)));
}

/// Three shards, run independently (as three hosts would), merged back:
/// the merged report renders byte-identically to the unsharded run.
#[test]
fn three_way_shard_merge_equals_unsharded_report() {
    let config = campaign_config(12, vec![SubstrateKind::Behavioral]);
    let unsharded = run_campaign(&config);

    let shards: Vec<_> =
        (1..=3).map(|k| run_campaign_sharded(&config, ShardSpec::new(k, 3).unwrap())).collect();
    let merged = merge_shards(&shards).unwrap();
    assert_eq!(render_report(&merged), render_report(&unsharded));
    assert_eq!(merged, unsharded);
}

/// Interrupt a two-substrate campaign *past* the first substrate's
/// boundary, resume from the disk snapshot, and compare against the
/// straight run — the cursor must restore mid-flight partial state
/// exactly, including the completed substrate's report.
#[test]
fn campaign_killed_across_substrate_boundary_resumes_identically() {
    let config = campaign_config(3, vec![SubstrateKind::Behavioral, SubstrateKind::Netlist]);
    let straight = run_campaign(&config);

    let path = tmp_path("campaign-kill.r2d3s");
    let mut done = 0usize;
    let killed = run_campaign_durable(&config, None, None, |st| {
        done += 1;
        if done == 4 {
            st.save(&path)?;
            return Ok(ControlFlow::Break(()));
        }
        Ok(ControlFlow::Continue(()))
    })
    .unwrap();
    assert!(killed.is_none());

    let state = CampaignState::load(&path).unwrap();
    assert_eq!(state.substrate(), 1, "stop point must sit inside the second substrate");
    let resumed =
        run_campaign_durable(&config, None, Some(state), |_| Ok(ControlFlow::Continue(())))
            .unwrap()
            .expect("resumed campaign must finish");
    assert_eq!(render_report(&resumed), render_report(&straight));
}

/// A writer that is deliberately slower than the producer, so the
/// bounded channel actually fills and the overflow policy matters.
struct SlowWriter(Arc<Mutex<Vec<u8>>>);

impl Write for SlowWriter {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        std::thread::sleep(std::time::Duration::from_micros(20));
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn record(i: u64) -> TelemetryRecord {
    TelemetryRecord {
        epoch: i,
        cycle: i * 7,
        event: TelemetryEvent::Exec { pipe: (i % 6) as u32, cycles: 20_000, retired: i },
    }
}

/// Block policy: every one of a large burst of records reaches the
/// output — zero drops, even with a slow consumer and a tiny channel.
#[test]
fn stream_sink_block_policy_is_lossless_under_load() {
    const N: u64 = 20_000;
    let buf = Arc::new(Mutex::new(Vec::new()));
    let mut sink =
        StreamSink::with_capacity(SlowWriter(Arc::clone(&buf)), 16, OverflowPolicy::Block);
    for i in 0..N {
        sink.record(record(i));
    }
    let stats = sink.finish().unwrap();
    assert_eq!(stats.recorded, N);
    assert_eq!(stats.written, N);
    assert_eq!(stats.dropped, 0);

    let lines = buf.lock().unwrap().iter().filter(|&&b| b == b'\n').count() as u64;
    assert_eq!(lines, N, "one JSON line per record must reach the writer");
}

/// Drop policy: records may be shed when the channel is full, but the
/// accounting is exact — recorded = written + dropped, and the output
/// holds precisely the written ones.
#[test]
fn stream_sink_drop_policy_accounts_for_every_record() {
    const N: u64 = 20_000;
    let buf = Arc::new(Mutex::new(Vec::new()));
    let mut sink =
        StreamSink::with_capacity(SlowWriter(Arc::clone(&buf)), 16, OverflowPolicy::Drop);
    for i in 0..N {
        sink.record(record(i));
    }
    let stats = sink.finish().unwrap();
    assert_eq!(stats.recorded, N);
    assert_eq!(stats.recorded, stats.written + stats.dropped, "no record may vanish unaccounted");
    assert!(stats.dropped > 0, "slow writer + tiny channel must shed load under Drop");

    let lines = buf.lock().unwrap().iter().filter(|&&b| b == b'\n').count() as u64;
    assert_eq!(lines, stats.written);
}
