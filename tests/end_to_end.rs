//! End-to-end reliability scenarios spanning the whole stack: workload →
//! simulator → detection → diagnosis → repair → verified results.

use r2d3::engine::{EngineEvent, R2d3Config, R2d3Engine};
use r2d3::isa::kernels::{fft, gemm, gemv};
use r2d3::isa::Unit;
use r2d3::pipeline_sim::{FaultEffect, StageId, System3d, SystemConfig};

fn run_until_halted(
    engine: &mut R2d3Engine,
    sys: &mut System3d,
    max_epochs: usize,
) -> Vec<EngineEvent> {
    let mut all = Vec::new();
    for _ in 0..max_epochs {
        all.extend(engine.run_epoch(sys).expect("epoch"));
        if (0..sys.pipeline_count()).all(|p| sys.pipeline(p).is_some_and(|x| x.halted())) {
            break;
        }
    }
    all
}

#[test]
fn single_fault_repaired_and_results_correct() {
    let config = SystemConfig { pipelines: 6, ..Default::default() };
    let mut sys = System3d::new(&config);
    let kernel = gemv(24, 24, 3);
    for p in 0..6 {
        sys.load_program(p, kernel.program().clone()).unwrap();
    }
    let mut engine = R2d3Engine::builder().build().unwrap();
    let victim = StageId::new(3, Unit::Lsu);
    sys.inject_fault(victim, FaultEffect { bit: 2, stuck: true }).unwrap();

    let events = run_until_halted(&mut engine, &mut sys, 200);
    assert!(
        events.iter().any(|e| matches!(e, EngineEvent::Permanent { stage } if *stage == victim)),
        "fault never diagnosed: {events:?}"
    );
    for p in 0..6 {
        let pipe = sys.pipeline(p).unwrap();
        assert!(pipe.halted(), "pipeline {p} unfinished");
        assert!(kernel.verify(pipe.memory()), "pipeline {p} produced wrong results");
    }
}

#[test]
fn multiple_faults_across_layers_all_survive() {
    // Paper Fig. 2's scenario: faults in different units on different
    // layers. Stage-level salvaging keeps enough pipelines to finish.
    let config = SystemConfig { pipelines: 4, ..Default::default() };
    let mut sys = System3d::new(&config);
    let kernel = gemm(10, 10, 10, 5);
    for p in 0..4 {
        sys.load_program(p, kernel.program().clone()).unwrap();
    }
    let mut engine = R2d3Engine::builder().build().unwrap();
    for (layer, unit) in [(0, Unit::Exu), (1, Unit::Ifu), (2, Unit::Lsu), (3, Unit::Ffu)] {
        sys.inject_fault(StageId::new(layer, unit), FaultEffect { bit: 1, stuck: false }).unwrap();
    }

    run_until_halted(&mut engine, &mut sys, 400);
    // All four faults hit *different* layers, so a core-level scheme would
    // have zero intact cores among the first four — but the engine keeps
    // forming pipelines out of spares (layers 4..8).
    let finished = (0..4)
        .filter(|&p| sys.pipeline(p).is_some_and(|x| x.halted() && kernel.verify(x.memory())))
        .count();
    assert_eq!(finished, 4, "all pipelines must finish correctly despite 4 faults");
}

#[test]
fn transient_storm_classified_without_losing_stages() {
    let config = SystemConfig { pipelines: 6, ..Default::default() };
    let mut sys = System3d::new(&config);
    for p in 0..6 {
        sys.load_program(p, gemm(20, 20, 20, p as u64).program().clone()).unwrap();
    }
    let cfg = R2d3Config { t_epoch: 4_000, t_test: 4_000, ..Default::default() };
    let mut engine = R2d3Engine::builder().config(cfg).build().unwrap();

    for round in 0..6u64 {
        let stage = StageId::new((round % 6) as usize, Unit::Exu);
        sys.inject_transient(stage, FaultEffect { bit: (round % 8) as u8, stuck: true }).unwrap();
        engine.run_epoch(&mut sys).unwrap();
    }
    // Soft errors must never cost hardware.
    assert!(engine.metrics().believed_faulty.is_empty(), "transients misdiagnosed as permanent");
    assert!(engine.metrics().transients_seen > 0, "no transient was caught");
    assert_eq!(sys.fabric().complete_pipelines(), 6);
}

#[test]
fn detection_is_concurrent_no_throughput_cost() {
    // Epoch-end testing runs on leftovers: throughput with the engine
    // equals plain simulation of the same cycles.
    let kernel = fft(7, 2);
    let config = SystemConfig { pipelines: 6, ..Default::default() };

    let mut plain = System3d::new(&config);
    for p in 0..6 {
        plain.load_program(p, kernel.program().clone()).unwrap();
    }
    plain.run(120_000).unwrap();

    let mut managed = System3d::new(&config);
    for p in 0..6 {
        managed.load_program(p, kernel.program().clone()).unwrap();
    }
    let cfg = R2d3Config { policy: r2d3::engine::PolicyKind::Static, ..Default::default() };
    let mut engine = R2d3Engine::builder().config(cfg).build().unwrap();
    for _ in 0..6 {
        engine.run_epoch(&mut managed).unwrap();
    }

    for p in 0..6 {
        assert_eq!(
            plain.pipeline(p).unwrap().retired(),
            managed.pipeline(p).unwrap().retired(),
            "pipeline {p}: detection must not steal cycles"
        );
    }
}

#[test]
fn rotation_preserves_architectural_results() {
    // R2D3-Lite rotates stages mid-run; the paper's warm-up argument says
    // this is seamless. Results must still verify.
    let config = SystemConfig { pipelines: 6, ..Default::default() };
    let mut sys = System3d::new(&config);
    let kernel = gemm(16, 16, 16, 9);
    for p in 0..6 {
        sys.load_program(p, kernel.program().clone()).unwrap();
    }
    let cfg = R2d3Config {
        t_epoch: 10_000,
        t_test: 5_000,
        t_cal: 30_000,
        policy: r2d3::engine::PolicyKind::Lite,
        suspend_when_no_leftover: true,
        checkpoint: None,
        ..Default::default()
    };
    let mut engine = R2d3Engine::builder().config(cfg).build().unwrap();
    let events = run_until_halted(&mut engine, &mut sys, 100);
    assert!(
        events.iter().any(|e| matches!(e, EngineEvent::Rotated { .. })),
        "no rotation happened"
    );
    for p in 0..6 {
        let pipe = sys.pipeline(p).unwrap();
        assert!(pipe.halted());
        assert!(kernel.verify(pipe.memory()), "rotation corrupted pipeline {p}");
    }
    // Rotation spread work onto the spare layers.
    assert!(sys.stats().layer_busy(6) + sys.stats().layer_busy(7) > 0);
}

#[test]
fn engine_survives_fault_in_every_unit_type() {
    for unit in Unit::ALL {
        let config = SystemConfig { pipelines: 6, ..Default::default() };
        let mut sys = System3d::new(&config);
        let kernel = gemv(16, 16, 7);
        for p in 0..6 {
            sys.load_program(p, kernel.program().clone()).unwrap();
        }
        let mut engine = R2d3Engine::builder().build().unwrap();
        sys.inject_fault(StageId::new(0, unit), FaultEffect { bit: 0, stuck: true }).unwrap();
        run_until_halted(&mut engine, &mut sys, 200);
        let ok = (0..6)
            .filter(|&p| sys.pipeline(p).is_some_and(|x| x.halted() && kernel.verify(x.memory())))
            .count();
        assert_eq!(ok, 6, "unit {unit}: pipelines failed to finish correctly");
    }
}

#[test]
fn tlu_fault_detected_with_trap_workload() {
    // The compute kernels never trap, so a TLU fault is invisible to
    // them; the syscall-laced workload exercises the TLU every iteration
    // and lets detection localize the fault.
    use r2d3::isa::kernels::trap_mix;
    let config = SystemConfig { pipelines: 6, ..Default::default() };
    let mut sys = System3d::new(&config);
    let kernel = trap_mix(512, 11);
    for p in 0..6 {
        sys.load_program(p, kernel.program().clone()).unwrap();
    }
    let mut engine = R2d3Engine::builder().build().unwrap();
    let victim = StageId::new(2, Unit::Tlu);
    // Syscall encodes as 0: a stuck-at-1 manifests on every trap.
    sys.inject_fault(victim, FaultEffect { bit: 0, stuck: true }).unwrap();

    run_until_halted(&mut engine, &mut sys, 200);
    assert!(engine.is_believed_faulty(victim), "trap workload must expose the TLU fault");
    for p in 0..6 {
        let pipe = sys.pipeline(p).unwrap();
        assert!(pipe.halted(), "pipeline {p} unfinished");
        assert!(kernel.verify(pipe.memory()), "pipeline {p} wrong results");
    }
}

#[test]
fn checkpoint_recovery_loses_less_work_than_restart() {
    // Same fault scenario with and without checkpointing: the recovered
    // run must discard less work.
    let scenario = |checkpoint| {
        let config = SystemConfig { pipelines: 6, ..Default::default() };
        let mut sys = System3d::new(&config);
        let kernel = gemm(24, 24, 24, 3);
        for p in 0..6 {
            sys.load_program(p, kernel.program().clone()).unwrap();
        }
        let cfg = R2d3Config { checkpoint, t_epoch: 10_000, t_test: 5_000, ..Default::default() };
        let mut engine = R2d3Engine::builder().config(cfg).build().unwrap();
        // Let several clean epochs commit checkpoints, then strike.
        for _ in 0..6 {
            engine.run_epoch(&mut sys).unwrap();
        }
        sys.inject_fault(StageId::new(1, Unit::Exu), FaultEffect { bit: 0, stuck: true }).unwrap();
        run_until_halted(&mut engine, &mut sys, 400);
        for p in 0..6 {
            let pipe = sys.pipeline(p).unwrap();
            assert!(pipe.halted() && kernel.verify(pipe.memory()), "pipeline {p} failed");
        }
        sys.pipeline(1).unwrap().cycles()
    };

    let with_cp = scenario(Some(r2d3::engine::checkpoint::CheckpointConfig {
        interval_epochs: 2,
        ..Default::default()
    }));
    let without_cp = scenario(None);
    assert!(
        with_cp <= without_cp,
        "checkpointed recovery ({with_cp} cycles) must not be slower than restart ({without_cp})"
    );
}

#[test]
fn conv2d_runs_on_the_system_and_survives_a_fault() {
    use r2d3::isa::kernels::conv2d;
    let config = SystemConfig { pipelines: 6, ..Default::default() };
    let mut sys = System3d::new(&config);
    let kernel = conv2d(10, 10, 3, 6);
    for p in 0..6 {
        sys.load_program(p, kernel.program().clone()).unwrap();
    }
    let mut engine = R2d3Engine::builder().build().unwrap();
    sys.inject_fault(StageId::new(4, Unit::Ffu), FaultEffect { bit: 9, stuck: true }).unwrap();
    run_until_halted(&mut engine, &mut sys, 300);
    for p in 0..6 {
        let pipe = sys.pipeline(p).unwrap();
        assert!(pipe.halted() && kernel.verify(pipe.memory()), "pipeline {p} failed");
    }
}
