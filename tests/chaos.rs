//! Chaos torture sweep: the acceptance gate for the I/O fault-injection
//! layer. 256 seeded fault schedules rotate over the five durable
//! surfaces (snapshot container, durable campaign, durable lifetime,
//! telemetry stream sink, serve job store) and must uphold the recovery
//! contract — no panics, no silent corruption, byte-identical resumes —
//! with zero violations. The report is byte-deterministic, so a failure
//! here reproduces exactly with `r2d3 chaos --seed <S> --schedules <N>`.

use r2d3::engine::campaign::{run_chaos, ChaosConfig, ChaosReport, CHAOS_TARGETS};

fn violations_summary(report: &ChaosReport) -> String {
    let mut text = format!("{} contract violation(s):\n", report.violations.len());
    for v in &report.violations {
        text.push_str("  - ");
        text.push_str(v);
        text.push('\n');
    }
    text
}

#[test]
fn two_hundred_fifty_six_fault_schedules_uphold_the_recovery_contract() {
    let config = ChaosConfig { seed: 0xC4A0, schedules: 256 };
    let report = run_chaos(&config);

    assert!(report.ok(), "{}", violations_summary(&report));
    assert_eq!(report.schedules, 256);

    // The sweep must actually exercise the fault universe: a schedule
    // population where nothing crashed or nothing failed would vacuously
    // pass. plan_for() makes roughly half the schedules crash schedules,
    // and every schedule arms probabilistic failures.
    assert!(report.crashes >= 64, "only {} crash recoveries in 256 schedules", report.crashes);
    assert!(
        report.faults >= 128,
        "only {} injected faults surfaced in 256 schedules",
        report.faults
    );

    // Round-robin rotation: every durable surface gets an equal share.
    for (target, count) in CHAOS_TARGETS.iter().zip(report.per_target) {
        assert!(count >= 51, "target `{target}` ran only {count} of its ~51 schedules");
    }
}

#[test]
fn chaos_report_is_byte_deterministic() {
    let config = ChaosConfig { seed: 0xD1CE, schedules: 20 };
    let a = run_chaos(&config);
    let b = run_chaos(&config);
    assert_eq!(a.render(), b.render(), "same seed must replay the same torture byte-for-byte");
    assert!(a.ok(), "{}", violations_summary(&a));
}

#[test]
fn different_seeds_explore_different_schedules() {
    let a = run_chaos(&ChaosConfig { seed: 1, schedules: 10 });
    let b = run_chaos(&ChaosConfig { seed: 2, schedules: 10 });
    assert!(a.ok() && b.ok());
    // Both are valid sweeps, but the fault mix differs — the seed really
    // parameterizes the schedule population.
    assert_ne!(
        (a.crashes, a.faults),
        (b.crashes, b.faults),
        "seeds 1 and 2 produced identical fault tallies; the planner is ignoring the seed"
    );
}
