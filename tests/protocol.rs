//! Property tests for the serve wire protocol: every document type
//! round-trips byte-exactly through encode/decode, and no input —
//! however malformed — makes a decoder panic. Decoders return typed
//! [`ApiError`]s; the daemon turns those into error responses, so these
//! properties are what keep a hostile client from killing the service.

use proptest::collection::vec;
use proptest::prelude::*;
use r2d3::engine::api::wire::{decode_response, decode_spec, encode_spec, parse_overflow};
use r2d3::engine::api::{
    ApiError, JobEvent, JobId, JobSpec, JobState, JobStatus, Reply, Request, Response,
    PROTO_VERSION,
};
use r2d3::engine::campaign::{KindId, SubstrateKind};
use r2d3::engine::telemetry::OverflowPolicy;
use r2d3::isa::Unit;

// --- strategies ----------------------------------------------------

/// Printable-ASCII strings, the protocol's native text domain (the
/// wire escape maps everything else to `?`, which is deliberately
/// lossy and therefore not round-trippable).
fn ascii_text() -> impl Strategy<Value = String> {
    vec(0x20u8..0x7f, 0..32).prop_map(|bytes| String::from_utf8(bytes).unwrap())
}

fn substrates() -> impl Strategy<Value = Vec<SubstrateKind>> {
    prop_oneof![
        Just(vec![SubstrateKind::Behavioral]),
        Just(vec![SubstrateKind::Netlist]),
        Just(vec![SubstrateKind::Behavioral, SubstrateKind::Netlist]),
    ]
}

fn kind_subset() -> impl Strategy<Value = Vec<KindId>> {
    vec(any::<bool>(), KindId::ALL.len()).prop_map(|mask| {
        let picked: Vec<KindId> =
            KindId::ALL.iter().zip(&mask).filter(|(_, keep)| **keep).map(|(k, _)| *k).collect();
        if picked.is_empty() {
            KindId::ALL.to_vec()
        } else {
            picked
        }
    })
}

fn campaign_spec() -> impl Strategy<Value = JobSpec> {
    (any::<u64>(), 1usize..300, substrates(), kind_subset(), 1usize..8, any::<u8>()).prop_map(
        |(seed, scenarios, subs, kinds, shards, priority)| {
            JobSpec::campaign()
                .seed(seed)
                .scenarios(scenarios)
                .substrates(subs)
                .kinds(kinds)
                .shards(shards.min(scenarios))
                .priority(priority)
                .build()
                .expect("generated campaign spec is valid")
        },
    )
}

fn lifetime_spec() -> impl Strategy<Value = JobSpec> {
    (0usize..4, 1usize..200, 0usize..3, any::<u64>(), any::<u8>()).prop_map(
        |(policy, months, workload, seed, priority)| {
            let policy = ["norecon", "static", "lite", "pro"][policy];
            let workload = ["gemm", "gemv", "fft"][workload];
            JobSpec::lifetime()
                .policy(r2d3::engine::api::parse_policy(policy).unwrap())
                .months(months)
                .workload(r2d3::engine::api::parse_workload(workload).unwrap())
                .seed(seed)
                .priority(priority)
                .build()
                .expect("generated lifetime spec is valid")
        },
    )
}

fn inject_spec() -> impl Strategy<Value = JobSpec> {
    (0usize..5, 0usize..8, any::<u8>(), any::<bool>(), any::<u64>(), 1u64..500).prop_map(
        |(unit, layer, bit, netlist, seed, epochs)| {
            let unit = [Unit::Ifu, Unit::Exu, Unit::Lsu, Unit::Tlu, Unit::Ffu][unit];
            let substrate =
                if netlist { SubstrateKind::Netlist } else { SubstrateKind::Behavioral };
            JobSpec::inject(unit, layer)
                .bit(bit)
                .substrate(substrate)
                .seed(seed)
                .epochs(epochs)
                .build()
                .expect("generated inject spec is valid")
        },
    )
}

fn job_spec() -> impl Strategy<Value = JobSpec> {
    prop_oneof![campaign_spec(), lifetime_spec(), inject_spec()]
}

/// Counts (units, progress steps) travel as bare JSON integers, which
/// the byte-oriented parser reads through an `f64`: they are exact up
/// to 2^53. Full-range values (seeds, job ids) travel as hex strings
/// instead. Counts are daemon-generated step totals, so the bounded
/// domain is the protocol's actual domain.
fn count() -> impl Strategy<Value = u64> {
    0u64..(1 << 53)
}

fn job_event() -> impl Strategy<Value = JobEvent> {
    (any::<u64>(), count(), count(), count(), ascii_text(), 0usize..9).prop_map(
        |(job, unit, done, total, text, pick)| {
            let job = JobId(job);
            match pick {
                0 => JobEvent::Accepted { job, units: unit },
                1 => JobEvent::Started { job, unit },
                2 => JobEvent::Progress { job, unit, done, total },
                3 => JobEvent::Checkpointed { job, unit, done },
                4 => JobEvent::UnitDone { job, unit },
                5 => JobEvent::WorkerLost { job, unit, done },
                6 => JobEvent::Completed { job },
                7 => JobEvent::Failed { job, error: text },
                _ => JobEvent::Canceled { job },
            }
        },
    )
}

fn job_status() -> impl Strategy<Value = JobStatus> {
    (
        (any::<u64>(), ascii_text(), 0usize..3, any::<u8>()),
        (0usize..5, any::<bool>(), ascii_text()),
        (count(), count(), count(), count()),
    )
        .prop_map(
            |(
                (id, client, kind, priority),
                (state, has_error, error),
                (units, units_done, progress_done, progress_total),
            )| {
                let state = [
                    JobState::Queued,
                    JobState::Running,
                    JobState::Completed,
                    JobState::Failed,
                    JobState::Canceled,
                ][state];
                JobStatus {
                    id: JobId(id),
                    client,
                    kind: ["campaign", "lifetime", "inject"][kind],
                    priority,
                    state,
                    error: has_error.then_some(error),
                    units,
                    units_done,
                    progress_done,
                    progress_total,
                }
            },
        )
}

// --- round trips ---------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn specs_round_trip(spec in job_spec()) {
        let line = encode_spec(&spec);
        prop_assert_eq!(decode_spec(&line).unwrap(), spec, "line: {}", line);
    }

    #[test]
    fn submit_requests_round_trip(client in ascii_text(), spec in job_spec()) {
        let req = Request::Submit { client, spec };
        let line = req.encode();
        prop_assert_eq!(Request::decode(&line).unwrap(), req, "line: {}", line);
    }

    #[test]
    fn job_requests_round_trip(job in any::<u64>(), pick in 0usize..5, drop in any::<bool>()) {
        let job = JobId(job);
        let overflow = if drop { OverflowPolicy::Drop } else { OverflowPolicy::Block };
        let req = match pick {
            0 => Request::Status { job: None },
            1 => Request::Status { job: Some(job) },
            2 => Request::Watch { job, overflow },
            3 => Request::Cancel { job },
            _ => Request::Result { job },
        };
        let line = req.encode();
        prop_assert_eq!(Request::decode(&line).unwrap(), req, "line: {}", line);
    }

    #[test]
    fn events_round_trip(ev in job_event()) {
        let line = ev.encode();
        prop_assert!(!line.contains('\n'), "events must be single-line: {}", line);
        prop_assert_eq!(JobEvent::decode(&line).unwrap(), ev, "line: {}", line);
    }

    #[test]
    fn responses_round_trip(
        statuses in vec(job_status(), 0..4),
        job in any::<u64>(),
        report in ascii_text(),
        code in ascii_text(),
        message in ascii_text(),
        pick in 0usize..7,
    ) {
        let job = JobId(job);
        let resp = match pick {
            0 => Response::Ok(Reply::Submitted { job }),
            1 => Response::Ok(Reply::Jobs(statuses)),
            2 => Response::Ok(Reply::Watching { job }),
            3 => Response::Ok(Reply::Canceled { job, canceled: true }),
            4 => Response::Ok(Reply::Report { job, report }),
            5 => Response::Ok(Reply::ShuttingDown),
            _ => Response::Err { code, message },
        };
        let line = resp.encode();
        prop_assert_eq!(decode_response(&line).unwrap(), resp, "line: {}", line);
    }
}

// --- malformed input never panics ----------------------------------

/// Every decoder, fed the same line; the property under test is simply
/// "returns", the typed-error-or-value contract. A panic anywhere in
/// here fails the test.
fn decode_all(line: &str) {
    let _ = Request::decode(line);
    let _ = decode_response(line);
    let _ = JobEvent::decode(line);
    let _ = decode_spec(line);
    let _ = parse_overflow(line);
    let _ = JobState::parse(line);
    let _ = JobId::parse(line);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn random_bytes_never_panic_decoders(bytes in vec(any::<u8>(), 0..120)) {
        decode_all(&String::from_utf8_lossy(&bytes));
    }

    #[test]
    fn truncated_valid_lines_never_panic(spec in job_spec(), keep in any::<u64>()) {
        let line = Request::Submit { client: "fuzz".into(), spec }.encode();
        let cut = (keep as usize) % (line.len() + 1);
        // Truncation can split a UTF-8 boundary only for non-ASCII,
        // which the wire never emits; index directly.
        decode_all(&line[..cut]);
    }

    #[test]
    fn mutated_valid_lines_decode_or_reject(ev in job_event(), pos in any::<u64>(), byte in any::<u8>()) {
        let mut bytes = ev.encode().into_bytes();
        let at = (pos as usize) % bytes.len();
        bytes[at] = byte;
        decode_all(&String::from_utf8_lossy(&bytes));
    }
}

// --- version and error-class pinning -------------------------------

#[test]
fn counts_are_exact_to_the_documented_boundary() {
    let exact = (1u64 << 53) - 1;
    let ev = JobEvent::Progress { job: JobId(u64::MAX), unit: 0, done: exact, total: exact };
    assert_eq!(JobEvent::decode(&ev.encode()).unwrap(), ev);
}

#[test]
fn decoders_reject_other_proto_versions() {
    let line = Request::Shutdown.encode();
    let skewed = line.replace(
        &format!("\"proto_version\":{PROTO_VERSION}"),
        &format!("\"proto_version\":{}", PROTO_VERSION + 1),
    );
    assert_ne!(line, skewed, "needle must match the encoder");
    let err = Request::decode(&skewed).unwrap_err();
    assert_eq!(err, ApiError::Version { found: PROTO_VERSION + 1 });
    assert_eq!(err.code(), "version");
}

#[test]
fn error_classes_are_typed_and_stable() {
    assert_eq!(Request::decode("]").unwrap_err().code(), "syntax");
    assert_eq!(Request::decode("{\"op\":\"status\"}").unwrap_err().code(), "missing");
    assert_eq!(
        Request::decode(&format!("{{\"proto_version\":{PROTO_VERSION},\"op\":\"launch\"}}"))
            .unwrap_err()
            .code(),
        "unknown_op"
    );
    assert_eq!(
        Request::decode(&format!(
            "{{\"proto_version\":{PROTO_VERSION},\"op\":\"cancel\",\"job\":\"zebra\"}}"
        ))
        .unwrap_err()
        .code(),
        "invalid"
    );
}
