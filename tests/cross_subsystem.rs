//! Cross-subsystem consistency checks: the substrates must agree where
//! they overlap (areas, powers, coverage classes, policy invariants).

use proptest::prelude::*;
use r2d3::engine::repair::{core_level_formable, form_pipelines, stage_level_formable};
use r2d3::isa::Unit;
use r2d3::netlist::stages::UNIT_AREA_MM2;
use r2d3::physical::table::TABLE_III;
use r2d3::pipeline_sim::StageId;
use r2d3::thermal::{Floorplan, GridConfig, PowerMap, ThermalGrid};

#[test]
fn netlist_and_physical_agree_on_areas() {
    // The netlist generator and the physical model share the Table III
    // anchor; their area tables must be identical.
    for (i, row) in TABLE_III.iter().enumerate() {
        assert!(
            (row.area_mm2 - UNIT_AREA_MM2[i]).abs() < 1e-12,
            "{}: physical {} vs netlist {}",
            row.unit,
            row.area_mm2,
            UNIT_AREA_MM2[i]
        );
        assert!(
            (row.area_mm2 - r2d3::thermal::grid::UNIT_AREA_MM2[i]).abs() < 1e-12,
            "thermal area table diverged for {}",
            row.unit
        );
    }
}

#[test]
fn floorplan_block_areas_scale_with_table_iii() {
    // The thermal floorplan spreads the uncore across blocks pro rata, so
    // block-area *ratios* must match unit-area ratios.
    let fp = Floorplan::opensparc_3d(8);
    let area = |u: Unit| fp.unit_rect(u).expect("unit placed").area();
    let ratio_fp = area(Unit::Lsu) / area(Unit::Ffu);
    let ratio_tab = TABLE_III[Unit::Lsu.index()].area_mm2 / TABLE_III[Unit::Ffu.index()].area_mm2;
    assert!(
        (ratio_fp - ratio_tab).abs() / ratio_tab < 1e-9,
        "LSU/FFU area ratio: floorplan {ratio_fp:.3} vs Table III {ratio_tab:.3}"
    );
}

#[test]
fn table_iii_power_heats_the_stack_into_paper_range() {
    // Eight cores at Table III powers must land the hottest layer in the
    // paper's Fig. 6 temperature regime (roughly 110–150 °C block means).
    let fp = Floorplan::opensparc_3d(8);
    let grid = ThermalGrid::new(&fp, &GridConfig::default());
    let physical = r2d3::physical::PhysicalModel::table_iii();
    let mut p = PowerMap::new(&fp);
    for layer in 0..8 {
        for unit in Unit::ALL {
            p.add_block(layer, unit, physical.unit_powers_w()[unit.index()]);
        }
    }
    let t = grid.steady_state(&p).expect("solve");
    let hottest = t.layer_avg(t.hottest_layer());
    assert!(
        (100.0..180.0).contains(&hottest),
        "hottest layer {hottest:.1} °C outside the plausible 3D-stack regime"
    );
    // And the vertical gradient the policies exploit exists.
    assert!(t.layer_avg(7) > t.layer_avg(0) + 15.0);
}

proptest! {
    /// The engine's repair must agree with the standalone formation
    /// arithmetic for any fault pattern.
    #[test]
    fn formation_counts_are_consistent(fault_bits in proptest::collection::vec(any::<bool>(), 40)) {
        let usable = |s: StageId| !fault_bits[s.flat_index()];
        let formed = form_pipelines(8, usable, 8);
        prop_assert_eq!(formed.len(), stage_level_formable(8, usable));
        prop_assert!(stage_level_formable(8, usable) >= core_level_formable(8, usable));
        // Every formed pipeline uses only usable stages, each at most once.
        let mut seen = std::collections::HashSet::new();
        for fp in &formed {
            for u in Unit::ALL {
                let s = fp.stage(u);
                prop_assert!(usable(s));
                prop_assert!(seen.insert(s));
            }
        }
    }

    /// Eq. 1 arithmetic: activity indices conserve total demand for any
    /// positive alpha vector.
    #[test]
    fn activity_indices_conserve_demand(
        alphas in proptest::collection::vec(0.01f64..10.0, 1..40),
        demand in 0.1f64..8.0,
    ) {
        let idx = r2d3::engine::activity::activity_indices(&alphas, demand);
        let total: f64 = idx.iter().sum();
        prop_assert!((total - demand).abs() < 1e-9);
    }

    /// Weighted water-filling conserves the total until saturation and
    /// never exceeds per-stage capacity.
    #[test]
    fn weighted_fill_invariants(
        weights in proptest::collection::vec(0.01f64..5.0, 1..40),
        total in 0.1f64..8.0,
    ) {
        let duties = r2d3::engine::activity::weighted_fill(&weights, total);
        prop_assert_eq!(duties.len(), weights.len());
        for &d in &duties {
            prop_assert!((0.0..=1.0 + 1e-9).contains(&d));
        }
        let sum: f64 = duties.iter().sum();
        let expect = total.min(weights.len() as f64);
        prop_assert!((sum - expect).abs() < 1e-6, "sum {} expect {}", sum, expect);
    }
}

#[test]
fn physical_frequency_feeds_lifetime_normalization() {
    // The lifetime sim's R2D3 curves start at the physical model's
    // frequency ratio — a cross-check that the overhead plumbs through.
    let physical = r2d3::physical::PhysicalModel::table_iii();
    let expected = physical.design(r2d3::physical::DesignVariant::R2d3).frequency_ghz;
    let mut cfg =
        r2d3::engine::lifetime::LifetimeConfig::new(r2d3::engine::PolicyKind::Pro, 0.75, 0.85);
    cfg.months = 1;
    cfg.replicas = 1;
    cfg.mttf_trials = 10;
    cfg.grid = GridConfig { nx: 8, ny: 6, ..Default::default() };
    let out = r2d3::engine::lifetime::LifetimeSim::new(cfg).run().expect("sim");
    assert!(
        (out.series.norm_ipc[0] - expected).abs() < 1e-9,
        "month-0 normalized IPC {} should equal the frequency ratio {}",
        out.series.norm_ipc[0],
        expected
    );
}
