//! Differential suite for the runtime-dispatched SIMD kernels: every
//! kernel path available on the host must produce detection words and
//! faulty net values byte-identical to the scalar kernel, for every
//! dispatchable lane width, on randomly generated netlists. (Kernels
//! unavailable on the host are compile-gated out of `available()`, so
//! CI on each architecture exercises exactly the paths it can run.)

use proptest::prelude::*;
use r2d3_netlist::{
    pack_blocks, FaultCone, FaultSim, GateKind, NetId, Netlist, NetlistBuilder, SimBlock,
    SimdKernel, WideScratch,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds a random combinational netlist (same generator family as
/// `incremental_sim.rs`).
fn random_netlist(seed: u64) -> Netlist {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = NetlistBuilder::new();
    let num_inputs = rng.gen_range(2usize..10);
    let mut nets = b.inputs(num_inputs);
    let num_gates = rng.gen_range(5usize..120);
    for _ in 0..num_gates {
        let kind = match rng.gen_range(0u32..9) {
            0 => GateKind::Buf,
            1 => GateKind::Not,
            2 => GateKind::And,
            3 => GateKind::Or,
            4 => GateKind::Nand,
            5 => GateKind::Nor,
            6 => GateKind::Xor,
            7 => GateKind::Xnor,
            _ => GateKind::Mux,
        };
        let picks: Vec<NetId> =
            (0..kind.arity()).map(|_| nets[rng.gen_range(0..nets.len())]).collect();
        nets.push(b.gate(kind, &picks));
    }
    let mut observed = 0usize;
    for &net in &nets {
        if rng.gen_bool(0.15) {
            b.output(net);
            observed += 1;
        }
    }
    if observed == 0 {
        let last = *nets.last().unwrap();
        b.output(last);
    }
    b.finish()
}

/// Runs every fault under `kernel` and the scalar kernel at width `W`,
/// asserting byte-identical detection words and net values on both the
/// bitset row walk and the derived-cone walk.
fn assert_kernel_matches_scalar<const W: usize>(
    nl: &Netlist,
    kernel: SimdKernel,
    pattern_seed: u64,
) -> Result<(), TestCaseError> {
    let mut rng = StdRng::seed_from_u64(pattern_seed);
    let blocks: Vec<Vec<u64>> =
        (0..W).map(|_| (0..nl.num_inputs()).map(|_| rng.gen()).collect()).collect();
    let goods: Vec<Vec<u64>> = blocks.iter().map(|b| nl.eval_all(b)).collect();
    let packed: Vec<SimBlock<W>> =
        pack_blocks::<W>(&goods.iter().map(Vec::as_slice).collect::<Vec<_>>());

    let mut scalar_sim = FaultSim::new(nl);
    prop_assert!(scalar_sim.set_kernel(SimdKernel::Scalar));
    let mut simd_sim = FaultSim::new(nl);
    prop_assert!(simd_sim.set_kernel(kernel), "{} unavailable", kernel.name());

    let mut cone = FaultCone::new();
    let mut a = WideScratch::<W>::new();
    let mut b = WideScratch::<W>::new();
    for net in 0..nl.num_nets() as u32 {
        let net = NetId(net);
        scalar_sim.cone_into(net, &mut cone);
        for stuck in [false, true] {
            // Value-exact cone walk.
            scalar_sim.eval_stuck_wide(&packed, (net, stuck), &cone, &mut a);
            simd_sim.eval_stuck_wide(&packed, (net, stuck), &cone, &mut b);
            prop_assert_eq!(
                a.detect_words(),
                b.detect_words(),
                "{} W={} detect words for ({}, sa{})",
                kernel.name(),
                W,
                net,
                u8::from(stuck)
            );
            for n in 0..nl.num_nets() as u32 {
                prop_assert_eq!(
                    a.value(&packed, NetId(n)),
                    b.value(&packed, NetId(n)),
                    "{} W={} value of n{} for ({}, sa{})",
                    kernel.name(),
                    W,
                    n,
                    net,
                    u8::from(stuck)
                );
            }
            // Early-exit detection row walk: identical detection words
            // (and thus identical first detecting block and lane).
            let da = scalar_sim.eval_stuck_detect_wide(&packed, (net, stuck), &mut a);
            let db = simd_sim.eval_stuck_detect_wide(&packed, (net, stuck), &mut b);
            prop_assert_eq!(da, db, "{} W={} detect return", kernel.name(), W);
            prop_assert_eq!(
                a.detect_words(),
                b.detect_words(),
                "{} W={} detect-walk words for ({}, sa{})",
                kernel.name(),
                W,
                net,
                u8::from(stuck)
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn every_dispatch_path_matches_scalar(
        shape_seed in 0u64..(1u64 << 48),
        pattern_seed in 0u64..(1u64 << 48),
    ) {
        let nl = random_netlist(shape_seed);
        for kernel in SimdKernel::available() {
            assert_kernel_matches_scalar::<2>(&nl, kernel, pattern_seed)?;
            assert_kernel_matches_scalar::<4>(&nl, kernel, pattern_seed)?;
            assert_kernel_matches_scalar::<8>(&nl, kernel, pattern_seed)?;
        }
    }
}

#[test]
fn detected_kernel_is_available() {
    let nl = random_netlist(7);
    let sim = FaultSim::new(&nl);
    assert!(sim.kernel().is_available());
    assert!(SimdKernel::available().contains(&SimdKernel::Scalar));
}
