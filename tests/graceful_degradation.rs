//! Graceful degradation: faults accumulate until exhaustion, and the
//! engine keeps salvaging what a core-level scheme would have thrown
//! away — the paper's Fig. 2 argument, driven end to end.

use r2d3::engine::repair::{core_level_formable, stage_level_formable};
use r2d3::engine::{R2d3Config, R2d3Engine};
use r2d3::isa::kernels::{gemm, trap_mix};
use r2d3::isa::Unit;
use r2d3::pipeline_sim::{FaultEffect, StageHealth, StageId, System3d, SystemConfig};

/// Injects a deterministic sequence of faults, one every few epochs, and
/// tracks how many pipelines stay formed.
#[test]
fn engine_degrades_gracefully_under_accumulating_faults() {
    let config = SystemConfig { pipelines: 8, ..Default::default() };
    let mut sys = System3d::new(&config);
    // The trap-mix workload exercises IFU/EXU/LSU/TLU every iteration, so
    // faults in any of those units manifest in the trace windows.
    for p in 0..8 {
        sys.load_program(p, trap_mix(2048, p as u64 + 1).program().clone()).unwrap();
    }
    let engine_cfg = R2d3Config { t_epoch: 8_000, t_test: 5_000, ..Default::default() };
    let mut engine = R2d3Engine::builder().config(engine_cfg).build().unwrap();

    // One fault per layer, each in a different (exercised) unit: a
    // core-level scheme loses a whole core per fault; stage-level
    // salvaging loses at most one pipeline per unit-type exhaustion.
    const PLAN_UNITS: [Unit; 4] = [Unit::Ifu, Unit::Exu, Unit::Lsu, Unit::Tlu];
    let fault_plan: Vec<StageId> =
        (0..8).map(|layer| StageId::new(layer, PLAN_UNITS[layer % PLAN_UNITS.len()])).collect();

    let mut formed_history = Vec::new();
    for (step, &victim) in fault_plan.iter().enumerate() {
        sys.inject_fault(victim, FaultEffect { bit: 0, stuck: true }).unwrap();
        // Give the engine a few epochs to find and repair it; restart
        // pipelines as programs finish so detection always has traffic.
        for _ in 0..12 {
            engine.run_epoch(&mut sys).unwrap();
            for p in 0..8 {
                if sys.pipeline(p).is_some_and(r2d3::pipeline_sim::LogicalPipeline::halted) {
                    sys.restart_program(p).unwrap();
                }
            }
            if engine.is_believed_faulty(victim) {
                break;
            }
        }
        assert!(
            engine.is_believed_faulty(victim),
            "step {step}: fault at {victim} never diagnosed"
        );
        formed_history.push(sys.fabric().complete_pipelines());
    }

    // Monotone non-increasing pipeline count.
    for w in formed_history.windows(2) {
        assert!(w[1] <= w[0], "formed count must not grow: {formed_history:?}");
    }

    // After 8 faults in 8 distinct layers spanning all unit types, a
    // core-level scheme keeps zero intact cores; the engine still forms
    // pipelines (8 faults spread over 5 unit types leave ≥ 6 healthy
    // stages of every type).
    let believed = engine.metrics().believed_faulty;
    let usable = |s: StageId| !believed.contains(&s);
    assert_eq!(core_level_formable(8, usable), 0, "every layer lost a stage");
    let salvaged = stage_level_formable(8, usable);
    assert!(salvaged >= 6, "stage-level salvage keeps ≥6, got {salvaged}");
    assert_eq!(sys.fabric().complete_pipelines(), salvaged);

    // The engine's believed map matches the injected ground truth exactly
    // (no false positives at any point in the campaign).
    assert_eq!(believed.len(), fault_plan.len());
    for victim in &fault_plan {
        assert!(believed.contains(victim));
    }
    // And every diagnosed stage was physically isolated.
    for s in &believed {
        assert!(
            matches!(sys.health(*s), StageHealth::Faulty(_) | StageHealth::PoweredOff),
            "{s} not isolated"
        );
    }
}

/// A duty-cycled intermittent fault — a transient upset re-armed every
/// other epoch — is "transient" to every individual TMR replay, yet the
/// decaying symptom history must quarantine the stage within a bounded
/// number of epochs, and the formed-pipeline count must step down once
/// and stay there (no flapping between quarantine and reinstatement).
#[test]
fn intermittent_fault_is_quarantined_without_capacity_oscillation() {
    let config = SystemConfig { pipelines: 8, ..Default::default() };
    let mut sys = System3d::new(&config);
    for p in 0..8 {
        sys.load_program(p, trap_mix(2048, p as u64 + 1).program().clone()).unwrap();
    }
    // Epoch-length test windows so every upset lands inside the compared
    // window of the epoch it fires in.
    let engine_cfg = R2d3Config { t_epoch: 4_000, t_test: 4_000, ..Default::default() };
    let mut engine = R2d3Engine::builder().config(engine_cfg).build().unwrap();

    let flaky = StageId::new(2, Unit::Exu);
    const PERIOD: u64 = 2; // fails one epoch in two
    const HORIZON: u64 = 40;

    let mut formed_history = Vec::new();
    let mut quarantined_at = None;
    for epoch in 0..HORIZON {
        if epoch % PERIOD == 0 && !engine.is_believed_faulty(flaky) {
            sys.inject_transient(flaky, FaultEffect { bit: 0, stuck: false }).unwrap();
        }
        engine.run_epoch(&mut sys).unwrap();
        for p in 0..8 {
            if sys.pipeline(p).is_some_and(r2d3::pipeline_sim::LogicalPipeline::halted) {
                sys.restart_program(p).unwrap();
            }
        }
        formed_history.push(sys.fabric().complete_pipelines());
        if quarantined_at.is_none() && engine.is_believed_faulty(flaky) {
            quarantined_at = Some(epoch);
        }
    }

    let quarantined_at = quarantined_at.expect("intermittent fault never quarantined");
    assert!(quarantined_at < 32, "escalation too slow: quarantined at epoch {quarantined_at}");
    // Only the genuinely flaky stage was condemned.
    assert_eq!(engine.metrics().believed_faulty.len(), 1);
    assert!(engine.is_believed_faulty(flaky));

    // Capacity is monotone non-increasing — the engine never reinstates
    // the flaky stage during its quiet epochs and re-quarantines it later.
    for w in formed_history.windows(2) {
        assert!(w[1] <= w[0], "formed-pipeline count oscillated: {formed_history:?}");
    }
    // 8 pipelines on 8 layers: losing one EXU costs exactly one pipeline.
    assert_eq!(*formed_history.last().unwrap(), 7);
    assert_eq!(*formed_history.first().unwrap(), 8);
}

/// Exhausting a single unit type kills capacity unit-by-unit.
#[test]
fn unit_type_exhaustion_bounds_capacity() {
    let config = SystemConfig { pipelines: 4, layers: 4, ..Default::default() };
    let mut sys = System3d::new(&config);
    for p in 0..4 {
        sys.load_program(p, gemm(20, 20, 20, p as u64 + 1).program().clone()).unwrap();
    }
    let mut engine = R2d3Engine::builder()
        .config(R2d3Config { t_epoch: 8_000, t_test: 5_000, ..Default::default() })
        .build()
        .unwrap();

    // Kill EXUs one by one. While at least three EXUs remain, TMR has a
    // third voter and capacity tracks the survivor count exactly. When
    // only two remain, a disagreement can no longer be arbitrated: the
    // controller conservatively quarantines both parties (safety over
    // capacity) — the modeled cost of exhausting the paper's "another
    // leftover" requirement for diagnosis.
    for dead in 1..=3usize {
        let victim = StageId::new(dead - 1, Unit::Exu);
        sys.inject_fault(victim, FaultEffect { bit: 0, stuck: true }).unwrap();
        for _ in 0..16 {
            engine.run_epoch(&mut sys).unwrap();
            for p in 0..4 {
                if sys.pipeline(p).is_some_and(r2d3::pipeline_sim::LogicalPipeline::halted) {
                    sys.restart_program(p).unwrap();
                }
            }
            if engine.is_believed_faulty(victim) {
                break;
            }
        }
        assert!(engine.is_believed_faulty(victim), "EXU {dead} not diagnosed");
        if dead < 3 {
            assert_eq!(
                sys.fabric().complete_pipelines(),
                4 - dead,
                "capacity must equal surviving EXUs while TMR has voters"
            );
        } else {
            assert!(
                sys.fabric().complete_pipelines() <= 1,
                "with two EXUs left, an unresolvable vote may cost both"
            );
        }
    }
    // Nothing silently corrupted: every believed-faulty stage is isolated.
    for s in &engine.metrics().believed_faulty {
        assert!(matches!(sys.health(*s), StageHealth::Faulty(_) | StageHealth::PoweredOff));
    }
}
