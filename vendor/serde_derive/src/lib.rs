//! Offline stand-in for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its data types but
//! never actually serializes anything through serde (JSON output is
//! hand-formatted in `r2d3-bench`). With no crates.io access, these
//! derive macros simply expand to nothing; the blanket impls in the
//! vendored `serde` crate satisfy any trait bounds.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
