//! Offline stand-in for the `crossbeam` crate.
//!
//! Only the scoped-thread API the workspace uses is provided:
//! [`scope`], [`thread::Scope::spawn`] and
//! [`thread::ScopedJoinHandle::join`], implemented on top of
//! `std::thread::scope` (stable since Rust 1.63). Semantics match the
//! call sites' expectations: `scope` returns `Ok(..)` when the closure
//! returns, and a panicking worker surfaces as an `Err` from `join`.

pub mod thread {
    use std::any::Any;

    /// Result of joining a scoped thread (mirrors `std::thread::Result`).
    pub type Result<T> = std::result::Result<T, Box<dyn Any + Send + 'static>>;

    /// Scope handle passed to [`crate::scope`]'s closure.
    pub struct Scope<'scope, 'env: 'scope> {
        pub(crate) inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        pub(crate) inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives a scope reference
        /// (so nested spawns are possible), like crossbeam's API.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner_scope = self.inner;
            ScopedJoinHandle {
                inner: inner_scope.spawn(move || {
                    let nested = Scope { inner: inner_scope };
                    f(&nested)
                }),
            }
        }
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread and returns its result (`Err` on panic).
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }
}

/// Creates a scope for spawning borrowing threads; mirrors
/// `crossbeam::scope`. Always returns `Ok` (worker panics are reported
/// through the individual [`thread::ScopedJoinHandle::join`] calls; an
/// unjoined panicking worker propagates the panic like `std::thread::scope`).
pub fn scope<'env, F, R>(f: F) -> thread::Result<R>
where
    F: FnOnce(&thread::Scope<'_, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&thread::Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = vec![1u64, 2, 3, 4];
        let total = super::scope(|s| {
            let mut handles = Vec::new();
            for chunk in data.chunks(2) {
                handles.push(s.spawn(move |_| chunk.iter().sum::<u64>()));
            }
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn worker_panic_is_an_err_on_join() {
        let r = super::scope(|s| {
            let h = s.spawn(|_| panic!("boom"));
            h.join().is_err()
        })
        .unwrap();
        assert!(r);
    }
}
