//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives with parking_lot's poison-free API
//! surface (`lock()`/`read()`/`write()` return guards directly). A
//! poisoned std lock — only possible if a holder panicked — panics here,
//! matching the workspace's "worker panics are fatal" convention.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutual exclusion lock with parking_lot's panic-free `lock` signature.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex { inner: sync::Mutex::new(value) }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Returns a mutable reference without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// Reader-writer lock with parking_lot's panic-free signatures.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock { inner: sync::RwLock::new(value) }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::{Mutex, RwLock};

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
