//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides the (small) subset of the `rand 0.8` API the workspace
//! uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the
//! [`Rng`] extension methods `gen`, `gen_bool` and `gen_range`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — not the
//! ChaCha12 core of the real `StdRng`, but a high-quality deterministic
//! PRNG, which is all the simulations here require. Streams are stable
//! across platforms and runs for a given seed.

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (subset: only `seed_from_u64` is provided).
pub trait SeedableRng: Sized {
    /// Constructs the generator from a 64-bit seed, expanding it into the
    /// full internal state deterministically.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly over their whole domain (the `Standard`
/// distribution of the real crate).
pub trait StandardSample {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            #[inline]
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits, uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-domain inclusive range.
                    return <$t>::sample_standard(rng);
                }
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let u = <$t>::sample_standard(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                let u = <$t>::sample_standard(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// User-facing extension methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of any [`StandardSample`] type.
    #[inline]
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }

    /// Draws uniformly from `range`.
    #[inline]
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for the real
    /// `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // Avoid the degenerate all-zero state.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9e37_79b9_7f4a_7c15;
            }
            StdRng { s }
        }
    }

    impl StdRng {
        /// Returns the raw xoshiro256++ state, for serialization into
        /// run snapshots. Restoring with [`StdRng::from_state`] resumes
        /// the stream exactly where it left off.
        #[must_use]
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a previously captured
        /// [`state`](StdRng::state). The all-zero state is degenerate
        /// for xoshiro and is mapped to the same non-zero seed word
        /// `seed_from_u64` uses, so a round-trip can never wedge the
        /// generator.
        #[must_use]
        pub fn from_state(mut s: [u64; 4]) -> Self {
            if s == [0, 0, 0, 0] {
                s[0] = 0x9e37_79b9_7f4a_7c15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3..8usize);
            assert!((3..8).contains(&v));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let i = rng.gen_range(-5i16..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert!(rng.gen_bool(1.0));
            assert!(!rng.gen_bool(0.0));
        }
    }

    #[test]
    fn roughly_uniform_bits() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut ones = 0u32;
        for _ in 0..1000 {
            ones += u32::from(rng.gen::<bool>());
        }
        assert!((350..650).contains(&ones), "bool bias: {ones}/1000");
    }
}
