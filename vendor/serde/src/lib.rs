//! Offline stand-in for `serde`.
//!
//! The workspace only *derives* `Serialize`/`Deserialize` (no code path
//! serializes through serde), so this vendored crate provides marker
//! traits with blanket impls plus the no-op derive macros from the
//! sibling `serde_derive` stub. If a future PR needs real serialization,
//! replace this with a vendored copy of the actual crate.

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}
impl<T: ?Sized> DeserializeOwned for T {}

pub use serde_derive::{Deserialize, Serialize};
