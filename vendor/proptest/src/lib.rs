//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API the workspace uses:
//! `proptest!` (block and closure forms), `prop_assert!`,
//! `prop_assert_eq!`, `prop_assume!`, `prop_oneof!`, `Just`,
//! `any::<T>()`, range strategies, tuple strategies,
//! `proptest::collection::vec`, `Strategy::prop_map` and
//! `ProptestConfig::with_cases`.
//!
//! Semantics differ from real proptest in two deliberate ways:
//! cases are sampled from a deterministic RNG seeded by the test name
//! (fully reproducible, no persistence files), and failing cases are
//! *not* shrunk — the failing input is reported as sampled.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub mod collection;

/// Deterministic RNG handed to strategies.
pub struct TestRng(StdRng);

impl TestRng {
    /// Creates an RNG whose seed is derived from `name` (typically the
    /// test function name), so every test gets a stable, distinct stream.
    #[must_use]
    pub fn deterministic(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(h))
    }

    #[inline]
    pub(crate) fn rng(&mut self) -> &mut StdRng {
        &mut self.0
    }
}

/// Why a test case ended without a verdict.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!` and does not count.
    Reject,
}

/// Run configuration (`cases` = sampled inputs per property).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` sampled inputs.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of test values. Object-safe so `prop_oneof!` can erase
/// arm types.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Samples one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { strategy: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    strategy: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.strategy.sample(rng))
    }
}

/// Strategy producing a single constant value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Samples one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.rng().gen::<$t>()
            }
        }
    )*};
}
impl_arbitrary!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// Whole-domain strategy for an [`Arbitrary`] type.
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(core::marker::PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Returns the whole-domain strategy for `T` (proptest's `any::<T>()`).
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+ );)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A.0);
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
    (A.0, B.1, C.2, D.3, E.4);
    (A.0, B.1, C.2, D.3, E.4, F.5);
}

/// Type-erased strategy, the arm type of [`Union`].
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

/// Boxes a strategy (helper used by `prop_oneof!` so arm types unify).
#[must_use]
pub fn boxed<S>(s: S) -> BoxedStrategy<S::Value>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

/// Uniform choice between alternative strategies (`prop_oneof!`).
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Builds a union over `arms` (must be non-empty).
    #[must_use]
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        let i = rng.rng().gen_range(0..self.arms.len());
        self.arms[i].sample(rng)
    }
}

/// Everything a test module normally imports.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, Any, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestRng, Union,
    };
}

/// Chooses uniformly among strategy arms; all arms must generate the
/// same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(::std::vec![$($crate::boxed($arm)),+])
    };
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { ::std::assert!($($tt)*) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { ::std::assert_eq!($($tt)*) };
}

/// Rejects the current case when the assumption fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Defines property tests (block form) or runs one inline (closure
/// form). See crate docs for supported syntax.
#[macro_export]
macro_rules! proptest {
    // Closure form: proptest!(|(a in s1, b in s2)| { body });
    (|($($pat:pat in $strat:expr),+ $(,)?)| $body:block) => {{
        let config = $crate::ProptestConfig::default();
        let mut rng = $crate::TestRng::deterministic(::std::concat!(
            ::std::file!(), ":", ::std::line!()
        ));
        for _case in 0..config.cases {
            $(let $pat = $crate::Strategy::sample(&($strat), &mut rng);)+
            let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                let _ = $body;
                ::std::result::Result::Ok(())
            })();
            match outcome {
                ::std::result::Result::Ok(())
                | ::std::result::Result::Err($crate::TestCaseError::Reject) => {}
            }
        }
    }};
    // Block form with a config override.
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg); $($rest)* }
    };
    // Block form with the default config.
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]'s block form.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic(::std::stringify!($name));
            for _case in 0..config.cases {
                $(let $pat = $crate::Strategy::sample(&($strat), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    let _ = $body;
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    ::std::result::Result::Ok(())
                    | ::std::result::Result::Err($crate::TestCaseError::Reject) => {}
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 0u64..256, y in -3i16..=3) {
            prop_assert!(x < 256);
            prop_assert!((-3..=3).contains(&y));
        }

        #[test]
        fn mapped_tuples(v in (0usize..4, 10usize..20).prop_map(|(a, b)| a + b)) {
            prop_assert!((10..24).contains(&v));
        }

        #[test]
        fn assume_rejects(a in any::<u8>(), b in any::<u8>()) {
            prop_assume!(a != b);
            prop_assert!(a != b);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn config_override_applies(_x in any::<bool>()) {
            prop_assert!(true);
        }
    }

    #[test]
    fn closure_form_and_collections() {
        proptest!(|(bits in crate::collection::vec(any::<bool>(), 40))| {
            prop_assert_eq!(bits.len(), 40);
        });
        proptest!(|(v in crate::collection::vec(0u32..7, 1..5))| {
            prop_assert!(!v.is_empty() && v.len() < 5);
            prop_assert!(v.iter().all(|&x| x < 7));
        });
    }

    #[test]
    fn oneof_hits_every_arm() {
        let s = prop_oneof![Just(0u8), Just(1u8), Just(2u8)];
        let mut rng = TestRng::deterministic("oneof");
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[s.sample(&mut rng) as usize] = true;
        }
        assert_eq!(seen, [true; 3]);
    }
}
