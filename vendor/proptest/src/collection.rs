//! Collection strategies (`proptest::collection::vec`).

use crate::{Strategy, TestRng};
use rand::Rng;

/// Admissible length specifications for [`vec`].
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange { lo: r.start, hi: r.end }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        SizeRange { lo: *r.start(), hi: *r.end() + 1 }
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        let len = if self.size.lo + 1 == self.size.hi {
            self.size.lo
        } else {
            rng.rng().gen_range(self.size.lo..self.size.hi)
        };
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// Vector strategy: `size` is an exact length (`usize`) or a length
/// range.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}
