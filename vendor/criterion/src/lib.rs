//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API shape used by `r2d3-bench` — `criterion_group!`,
//! `criterion_main!`, [`Criterion`], benchmark groups, [`Bencher::iter`]
//! and [`Throughput`] — with a simple median-of-samples wall-clock
//! measurement instead of criterion's full statistical machinery.

use std::time::{Duration, Instant};

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Timing driver handed to `bench_function` closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Runs `f` repeatedly and records one timing sample per run.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // One warm-up, then `sample_size` measured runs.
        let _ = f();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            let r = f();
            self.samples.push(t0.elapsed());
            std::hint::black_box(r);
        }
    }

    fn median(&mut self) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        self.samples.sort();
        self.samples[self.samples.len() / 2]
    }
}

/// Top-level benchmark context.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of measured samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.to_string(), throughput: None }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(self.sample_size, name, None, f);
        self
    }
}

/// A group of related benchmarks sharing a throughput annotation.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotates per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        run_one(self.criterion.sample_size, &full, self.throughput, f);
        self
    }

    /// Ends the group (no-op; provided for API parity).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    sample_size: usize,
    name: &str,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut bencher = Bencher { samples: Vec::new(), sample_size };
    f(&mut bencher);
    let median = bencher.median();
    let rate = match throughput {
        Some(Throughput::Elements(n)) if median > Duration::ZERO => {
            format!("  {:.3e} elem/s", n as f64 / median.as_secs_f64())
        }
        Some(Throughput::Bytes(n)) if median > Duration::ZERO => {
            format!("  {:.3e} B/s", n as f64 / median.as_secs_f64())
        }
        _ => String::new(),
    };
    println!("bench {name:<40} median {median:>12.3?}{rate}");
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
