//! Quickstart: build the 8-core 3D system, inject a permanent stuck-at
//! fault, and watch R2D3 detect, diagnose and repair it at runtime.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use r2d3::engine::telemetry::{chrome_trace, RingSink};
use r2d3::engine::{EngineEvent, R2d3Engine};
use r2d3::isa::kernels::gemv;
use r2d3::isa::Unit;
use r2d3::pipeline_sim::{FaultEffect, StageId, System3d, SystemConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Six logical pipelines on an 8-layer stack: layers 6 and 7 supply
    // the leftovers R2D3 uses for concurrent detection.
    let sys_config = SystemConfig { pipelines: 6, ..Default::default() };
    let mut sys = System3d::new(&sys_config);

    let kernel = gemv(32, 32, 42);
    for pipe in 0..6 {
        sys.load_program(pipe, kernel.program().clone())?;
    }

    let mut engine = R2d3Engine::builder().telemetry(RingSink::new()).build()?;
    println!(
        "system: {} layers × {} units, {} pipelines, T_epoch = {} cycles, T_test = {}",
        sys.fabric().layers(),
        Unit::COUNT,
        sys.pipeline_count(),
        engine.config().t_epoch,
        engine.config().t_test,
    );

    // A wearout defect strikes pipeline 2's EXU: bit 0 of every result is
    // stuck at 1.
    let victim = StageId::new(2, Unit::Exu);
    sys.inject_fault(victim, FaultEffect { bit: 0, stuck: true })?;
    println!("\n>>> injected permanent stuck-at-1 (bit 0) into {victim}\n");

    'epochs: for epoch in 1..=64 {
        let events = engine.run_epoch(&mut sys)?;
        for event in &events {
            match event {
                EngineEvent::Symptom { dut, pipe } => {
                    println!("epoch {epoch:>2}: checker fired on {dut} (pipeline {pipe})");
                }
                EngineEvent::Transient { dut } => {
                    println!("epoch {epoch:>2}: transient at {dut}; resumed after 1-cycle stall");
                }
                EngineEvent::Permanent { stage } => {
                    println!("epoch {epoch:>2}: TMR replay localized a permanent fault at {stage}");
                }
                EngineEvent::Repaired { pipelines_formed } => {
                    println!(
                        "epoch {epoch:>2}: crossbars reconfigured; {pipelines_formed} pipelines re-formed"
                    );
                    break 'epochs;
                }
                other => println!("epoch {epoch:>2}: {other:?}"),
            }
        }
    }

    // Let all pipelines finish and verify their results are correct even
    // though one ran on a faulty stage for a while (post-repair restart).
    for _ in 0..200 {
        engine.run_epoch(&mut sys)?;
        if (0..6).all(|p| sys.pipeline(p).map(|x| x.halted()).unwrap_or(false)) {
            break;
        }
    }

    println!();
    for pipe in 0..6 {
        let p = sys.pipeline(pipe).expect("pipeline exists");
        let status = if kernel.verify(p.memory()) { "correct" } else { "CORRUPT" };
        println!(
            "pipeline {pipe}: halted={} retired={} IPC={:.2} → result {status}",
            p.halted(),
            p.retired(),
            p.ipc()
        );
        assert!(kernel.verify(p.memory()), "post-repair results must be correct");
    }
    let metrics = engine.metrics();
    println!(
        "\nfaulty stage {victim} now serves no pipeline; believed-faulty set = {:?}",
        metrics.believed_faulty
    );
    println!(
        "telemetry: {} epochs, {} detections, {} transients, {} permanents; \
         {} events in the ring buffer",
        metrics.epochs,
        metrics.detections,
        metrics.transients_seen,
        metrics.permanents_diagnosed,
        engine.telemetry().len(),
    );

    // Dump the recorded spans as a Chrome trace; load it in Perfetto
    // (https://ui.perfetto.dev) to see the detect → diagnose → repair
    // timeline on the simulated cycle axis.
    let trace = chrome_trace(&engine.telemetry().records(), "quickstart");
    std::fs::write("quickstart-trace.json", trace)?;
    println!("wrote quickstart-trace.json (open in Perfetto)");
    Ok(())
}
