//! Waveform export: run a faulty scenario, dump the stage traces as a
//! VCD file (GTKWave-compatible) and the hottest-layer heat map as a PPM
//! image.
//!
//! ```sh
//! cargo run --release --example waveform [out_dir]
//! ```

use r2d3::isa::kernels::gemv;
use r2d3::isa::Unit;
use r2d3::physical::PhysicalModel;
use r2d3::pipeline_sim::{vcd, FaultEffect, StageId, System3d, SystemConfig};
use r2d3::thermal::{Floorplan, GridConfig, PowerMap, ThermalGrid};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out_dir = std::env::args().nth(1).unwrap_or_else(|| "/tmp".into());

    // --- VCD: a faulty EXU corrupting results mid-run -------------------
    let mut sys = System3d::new(&SystemConfig { pipelines: 2, ..Default::default() });
    for p in 0..2 {
        sys.load_program(p, gemv(16, 16, p as u64 + 1).program().clone())?;
    }
    sys.inject_fault(StageId::new(1, Unit::Exu), FaultEffect { bit: 0, stuck: true })?;
    sys.run(30_000)?;
    let vcd_text = vcd::dump_vcd(&sys);
    let vcd_path = format!("{out_dir}/r2d3_trace.vcd");
    std::fs::write(&vcd_path, &vcd_text)?;
    let mismatches = vcd_text
        .lines()
        .filter(|l| l.len() >= 2 && l.starts_with('1') && !l.contains(' ') && !l.starts_with('b'))
        .count();
    println!(
        "wrote {vcd_path}: {} lines, {} raised mismatch flags (the EXU@L1 stuck-at)",
        vcd_text.lines().count(),
        mismatches
    );

    // --- PPM: hottest-layer heat map -------------------------------------
    let fp = Floorplan::opensparc_3d(8);
    let grid = ThermalGrid::new(&fp, &GridConfig::default());
    let physical = PhysicalModel::table_iii();
    let mut power = PowerMap::new(&fp);
    for layer in 2..8 {
        for unit in Unit::ALL {
            power.add_block(layer, unit, physical.unit_powers_w()[unit.index()]);
        }
    }
    let field = grid.steady_state(&power)?;
    let hot = field.hottest_layer();
    let t_min = field.cells().iter().copied().fold(f64::INFINITY, f64::min);
    let t_max = field.cells().iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let ppm = field.render_layer_ppm(hot, t_min, t_max);
    let ppm_path = format!("{out_dir}/r2d3_layer{hot}.ppm");
    std::fs::write(&ppm_path, &ppm)?;
    println!("wrote {ppm_path}: layer {hot} map, {:.1}–{:.1} °C (blue→red)", t_min, t_max);
    Ok(())
}
