//! Workload characterization: run GEMM, GEMV and FFT on the 8-core
//! simulator and report IPC, cache behavior and per-unit activity — the
//! short-timescale measurements that seed the lifetime co-simulation.
//!
//! ```sh
//! cargo run --release --example kernel_run
//! ```

use r2d3::engine::report::measure_kernel_profile;
use r2d3::isa::kernels::{fft, gemm, gemv, KernelKind};
use r2d3::isa::Unit;
use r2d3::pipeline_sim::{StageId, System3d, SystemConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("per-workload profiles on the 8-core 3D system");
    println!("----------------------------------------------");
    for kind in KernelKind::ALL {
        let p = measure_kernel_profile(kind)?;
        println!(
            "{:4}: IPC {:.2}  demand {:.2}  activity(EXU {:.2} | LSU {:.2} | FFU {:.2})",
            p.kind.name(),
            p.ipc,
            p.demand,
            p.exu_activity,
            p.lsu_activity,
            p.ffu_activity
        );
    }

    // Detailed single-kernel run with verification and cache statistics.
    println!();
    println!("detailed GEMV run (8 pipelines, distinct seeds)");
    println!("------------------------------------------------");
    let config = SystemConfig::default();
    let mut sys = System3d::new(&config);
    let kernels: Vec<_> = (0..8).map(|p| gemv(24, 24, p as u64 + 1)).collect();
    for (p, k) in kernels.iter().enumerate() {
        sys.load_program(p, k.program().clone())?;
    }
    sys.run(400_000)?;

    for (p, k) in kernels.iter().enumerate() {
        let pipe = sys.pipeline(p).expect("pipeline exists");
        println!(
            "pipeline {p}: retired {:6}, IPC {:.2}, L1D hit {:5.1} %, L1I hit {:5.1} %, result {}",
            pipe.retired(),
            pipe.ipc(),
            100.0 * pipe.l1d().hit_rate(),
            100.0 * pipe.l1i().hit_rate(),
            if k.verify(pipe.memory()) { "verified" } else { "WRONG" },
        );
        assert!(k.verify(pipe.memory()));
    }

    println!();
    println!("per-stage busy cycles (layer 0):");
    for unit in Unit::ALL {
        println!(
            "  {unit}: {:8} busy cycles ({:.2} activity factor)",
            sys.stats().busy(StageId::new(0, unit)),
            sys.stats().activity_factor(StageId::new(0, unit), sys.now())
        );
    }

    // Quick comparison of the three kernels' instruction mixes.
    println!();
    println!("static instruction mixes:");
    for (name, program) in [
        ("GEMM", gemm(8, 8, 8, 1).program().clone()),
        ("GEMV", gemv(16, 16, 1).program().clone()),
        ("FFT", fft(5, 1).program().clone()),
    ] {
        let mut by_unit = [0usize; 5];
        for i in program.text() {
            by_unit[i.primary_unit().index()] += 1;
        }
        let total: usize = by_unit.iter().sum();
        print!("  {name:4} ({total:4} instrs):");
        for unit in Unit::ALL {
            print!(" {} {:4.1} %", unit, 100.0 * by_unit[unit.index()] as f64 / total as f64);
        }
        println!();
    }
    Ok(())
}
