//! Fault-injection campaign: run the gate-level ATPG flow over the five
//! generated pipeline-unit netlists and print coverage, then inject a
//! batch of behavioral faults into the running system and measure R2D3's
//! runtime detection latency for each.
//!
//! ```sh
//! cargo run --release --example fault_injection
//! ```

use r2d3::atpg::campaign::{run_campaign, CampaignConfig};
use r2d3::atpg::fault::collapsed_faults;
use r2d3::atpg::report::{unit_report, LatencyBucket};
use r2d3::engine::R2d3Engine;
use r2d3::isa::kernels::gemm;
use r2d3::isa::Unit;
use r2d3::netlist::stages::{all_stage_netlists, StageSizing};
use r2d3::pipeline_sim::{FaultEffect, StageId, System3d, SystemConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- part 1: gate-level coverage (the paper's §IV methodology) ----
    println!("gate-level stuck-at campaign over the generated unit netlists");
    println!("--------------------------------------------------------------");
    let config = CampaignConfig { max_patterns: 8192, seed: 9, threads: 4 };
    for sn in all_stage_netlists(&StageSizing::default()) {
        let faults = collapsed_faults(sn.netlist());
        let outcome = run_campaign(sn.netlist(), &faults, &config);
        let report = unit_report(sn.unit().name(), &outcome);
        println!(
            "{:4}: {:5} gates, {:5} faults, detectable {:5.1} %, detected≤5k {:5.1} %",
            report.label,
            sn.netlist().num_gates(),
            report.total,
            report.detectable_pct(),
            report.cumulative_detected_pct(LatencyBucket::Lt5k),
        );
    }

    // ---- part 2: runtime detection latency ------------------------------
    println!();
    println!("runtime single-fault injections (detection latency in epochs)");
    println!("--------------------------------------------------------------");
    let mut detected = 0usize;
    let mut total = 0usize;
    for unit in Unit::ALL {
        for bit in [0u8, 3, 7, 12] {
            total += 1;
            let sys_config = SystemConfig { pipelines: 6, ..Default::default() };
            let mut sys = System3d::new(&sys_config);
            for p in 0..6 {
                sys.load_program(p, gemm(24, 24, 24, p as u64 + 1).program().clone())?;
            }
            let mut engine = R2d3Engine::builder().build()?;
            let victim = StageId::new(1, unit);
            sys.inject_fault(victim, FaultEffect { bit, stuck: true })?;

            let mut latency = None;
            for epoch in 1..=24 {
                engine.run_epoch(&mut sys)?;
                if engine.is_believed_faulty(victim) {
                    latency = Some(epoch);
                    break;
                }
            }
            match latency {
                Some(e) => {
                    detected += 1;
                    println!("{victim} sa1@bit{bit:<2} diagnosed after {e:>2} epoch(s)");
                }
                None => println!(
                    "{victim} sa1@bit{bit:<2} not diagnosed in 24 epochs (fault never manifested in the workload's outputs)"
                ),
            }
        }
    }
    println!();
    println!(
        "diagnosed {detected}/{total} injected faults; the misses are faults whose \
         stuck value never differs from the workload's outputs — the same \
         data-dependence that caps coverage in Fig. 4"
    );
    Ok(())
}
