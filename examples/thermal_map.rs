//! Thermal exploration: solve the 3D stack's steady-state temperature
//! field under a configurable load and render per-layer heat maps —
//! the substrate behind the paper's Fig. 6.
//!
//! ```sh
//! cargo run --release --example thermal_map [active_layers]
//! ```

use r2d3::isa::Unit;
use r2d3::physical::PhysicalModel;
use r2d3::thermal::{Floorplan, GridConfig, PowerMap, ThermalGrid};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let active: usize = std::env::args().nth(1).and_then(|v| v.parse().ok()).unwrap_or(6).min(8);

    let floorplan = Floorplan::opensparc_3d(8);
    let grid = ThermalGrid::new(&floorplan, &GridConfig::default());
    let physical = PhysicalModel::table_iii();
    let unit_w = physical.unit_powers_w();

    // Load the `active` layers farthest from the heat sink (the
    // thermally-unaware allocation the Static baseline uses).
    let mut power = PowerMap::new(&floorplan);
    for layer in (8 - active)..8 {
        for unit in Unit::ALL {
            power.add_block(layer, unit, unit_w[unit.index()]);
        }
        for unit in Unit::ALL {
            let frac = r2d3::thermal::grid::UNIT_AREA_MM2[unit.index()]
                / r2d3::thermal::grid::UNIT_AREA_MM2.iter().sum::<f64>();
            power.add_block(layer, unit, physical.uncore_power_w() * frac);
        }
    }
    println!(
        "{} active layers (top of stack), total power {:.2} W, ambient {:.0} °C",
        active,
        power.total(),
        grid.ambient()
    );

    let field = grid.steady_state(&power)?;
    let t_min = field.cells().iter().copied().fold(f64::INFINITY, f64::min);
    let t_max = field.cells().iter().copied().fold(f64::NEG_INFINITY, f64::max);
    println!("temperature range {t_min:.1} … {t_max:.1} °C\n");

    for layer in (0..8).rev() {
        println!(
            "layer {layer} ({}): avg {:6.1} °C, max {:6.1} °C",
            if layer == 0 {
                "heat-sink side"
            } else if layer == 7 {
                "farthest from sink"
            } else {
                "mid-stack"
            },
            field.layer_avg(layer),
            field.layer_max(layer)
        );
    }

    let hottest = field.hottest_layer();
    println!("\nhottest layer ({hottest}) map (' ' = {t_min:.0} °C … '@' = {t_max:.0} °C):");
    print!("{}", field.render_layer(hottest, t_min, t_max));

    println!("\nper-unit block temperatures on layer {hottest}:");
    for unit in Unit::ALL {
        let t = field.block_avg(r2d3::thermal::BlockId { layer: hottest, unit })?;
        println!("  {unit}: {t:6.1} °C");
    }
    println!(
        "\nthe IFU runs hottest ({} mW in {:.3} mm²) — it is also the stage that\n\
         dominates ΔVth in the lifetime study",
        115, 0.056
    );
    Ok(())
}
