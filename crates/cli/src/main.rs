//! `r2d3` — command-line front end for the reproduction.
//!
//! ```text
//! r2d3 run <file.s> [--pipes N] [--cycles N]   assemble + run on the 8-core sim
//! r2d3 inject <unit> <layer> [--bit B] [--substrate behavioral|netlist]
//!             [--seed S] [--epochs N] [--metrics-out FILE] [--trace-out FILE]
//!                                              fault scenario with the engine
//! r2d3 campaign [--seed S] [--scenarios N] [--substrate behavioral|netlist|both]
//!               [--smoke] [--core FILE] [--out FILE] [--metrics-out FILE]
//!               [--trace-out FILE] [--shard K/N] [--resume FILE] [--snapshot FILE]
//!               [--snapshot-every N] [--stop-after N]
//!                                              adversarial fault-injection sweep
//! r2d3 campaign merge <shard>... [--out FILE]  recombine per-shard reports
//! r2d3 trace [--format chrome|jsonl] [--out FILE] | [--check FILE]
//!            [--stream-out FILE] [--rotate-bytes N]
//!                                              record / validate telemetry traces
//! r2d3 import <core.json> [--top NAME] [--out FILE] [--no-rewrite]
//!                                              import a Yosys-JSON core as a stage netlist
//! r2d3 atpg [--patterns N] [--podem]           stuck-at coverage per unit
//! r2d3 lifetime [--policy P] [--months N] [--resume FILE] [--snapshot FILE]
//!                                              8-year lifetime trajectory
//! r2d3 thermal [--active N]                    steady-state stack heat map
//! r2d3 chaos [--seed S] [--schedules N] [--smoke]
//!                                              I/O fault-injection torture of the durable stack
//! r2d3 info                                    physical design summary
//! r2d3 serve [--listen ADDR] [--state-dir DIR] [--workers N] [--quota LIST]
//!                                              campaign-as-a-service job daemon
//! r2d3 submit campaign|lifetime|inject ...     submit a job to a daemon
//! r2d3 status [job] [--result-out FILE]        list daemon jobs / fetch a report
//! r2d3 watch <job> [--overflow block|drop]     stream a job's events to completion
//! r2d3 cancel <job>                            cancel a queued or running job
//! ```
//!
//! Every subcommand also answers `--help` with its full flag list.

use std::process::ExitCode;

mod args;
mod commands;
mod serve_cmds;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("run") => commands::run(&args[1..]),
        Some("inject") => commands::inject(&args[1..]),
        Some("campaign") => commands::campaign(&args[1..]),
        Some("trace") => commands::trace(&args[1..]),
        Some("import") => commands::import(&args[1..]),
        Some("atpg") => commands::atpg(&args[1..]),
        Some("lifetime") => commands::lifetime(&args[1..]),
        Some("thermal") => commands::thermal(&args[1..]),
        Some("chaos") => commands::chaos(&args[1..]),
        Some("info") => commands::info(),
        Some("serve") => serve_cmds::serve(&args[1..]),
        Some("submit") => serve_cmds::submit(&args[1..]),
        Some("status") => serve_cmds::status(&args[1..]),
        Some("watch") => serve_cmds::watch(&args[1..]),
        Some("cancel") => serve_cmds::cancel(&args[1..]),
        Some("help") | None => {
            print_usage();
            Ok(())
        }
        Some(other) => {
            eprintln!("unknown command `{other}`\n");
            print_usage();
            Err("unknown command".into())
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn print_usage() {
    println!(
        "r2d3 — reliability engine for 3D parallel systems (DAC 2020 reproduction)\n\
         \n\
         USAGE:\n\
         \x20 r2d3 run <file.s> [--pipes N] [--cycles N]   assemble and run a program\n\
         \x20 r2d3 inject <unit> <layer> [--bit B] [--substrate behavioral|netlist]\n\
         \x20            [--seed S] [--epochs N] [--metrics-out FILE] [--trace-out FILE]\n\
         \x20                                              inject a fault; watch the engine repair\n\
         \x20 r2d3 campaign [--seed S] [--scenarios N] [--substrate behavioral|netlist|both]\n\
         \x20               [--smoke] [--core FILE] [--out FILE] [--metrics-out FILE]\n\
         \x20               [--trace-out FILE] [--shard K/N] [--resume FILE] [--snapshot FILE]\n\
         \x20               [--snapshot-every N] [--stop-after N]\n\
         \x20                                              adversarial fault-injection campaign\n\
         \x20 r2d3 campaign merge <shard>... [--out FILE]  recombine per-shard campaign reports\n\
         \x20 r2d3 trace [--format chrome|jsonl] [--out FILE] | [--check FILE] | [--stream-out FILE]\n\
         \x20            [--rotate-bytes N]               record or validate a telemetry trace\n\
         \x20 r2d3 import <core.json> [--top NAME] [--out FILE] [--no-rewrite]\n\
         \x20                                              import a Yosys-JSON core (validate,\n\
         \x20                                              rewrite, emit the text netlist format)\n\
         \x20 r2d3 atpg [--patterns N] [--podem]           stuck-at coverage per pipeline unit\n\
         \x20 r2d3 lifetime [--policy P] [--months N] [--resume FILE] [--snapshot FILE]\n\
         \x20                                              lifetime trajectory (P: norecon|static|lite|pro)\n\
         \x20 r2d3 thermal [--active N]                    steady-state stack temperatures\n\
         \x20 r2d3 chaos [--seed S] [--schedules N] [--smoke]\n\
         \x20                                              I/O fault-injection torture of the\n\
         \x20                                              durable stack (crash, torn write, ENOSPC)\n\
         \x20 r2d3 info                                    physical design summary (Table III)\n\
         \x20 r2d3 serve [--listen ADDR] [--state-dir DIR] [--workers N] [--quota LIST]\n\
         \x20                                              campaign-as-a-service job daemon\n\
         \x20 r2d3 submit campaign|lifetime|inject ...     submit a job to a serve daemon\n\
         \x20 r2d3 status [job] [--result-out FILE]        list daemon jobs / fetch a report\n\
         \x20 r2d3 watch <job> [--overflow block|drop]     stream a job's events to completion\n\
         \x20 r2d3 cancel <job>                            cancel a queued or running job\n\
         \n\
         Run `r2d3 <command> --help` for the full flag list of any command.\n"
    );
}
