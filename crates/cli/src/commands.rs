//! Subcommand implementations.
//!
//! Every subcommand declares its arguments through [`crate::args`], so
//! flag spelling, error wording and `--help` pages stay uniform across
//! `run`/`inject`/`campaign`/`atpg`/`lifetime`/`thermal`/`trace`.
//!
//! I/O note: one-shot artifact reads and writes here (assembly sources,
//! `--out`/`--metrics-out`/`--trace-out` reports) deliberately use
//! `std::fs` directly rather than the [`r2d3_core::chaos::Vfs`] seam.
//! They are terminal, user-facing outputs of a batch command — a failed
//! or torn write surfaces immediately as a non-zero exit, and rerunning
//! the command regenerates the bytes deterministically. Only
//! *recovery-critical* durable state (snapshots, campaign/lifetime
//! checkpoints, the serve job store, the streaming sink) goes through
//! the seam, where the chaos harness can torture it.

use crate::args::{parse_substrate, Command, SubstrateChoice};
use r2d3_core::api::{
    execute_local, render_outcome, run_inject_with, standard_system, JobKind, JobOutcome, JobSpec,
};
use r2d3_core::campaign::SubstrateKind;
use r2d3_core::engine::{EngineEvent, R2d3Engine};
use r2d3_core::lifetime::{LifetimeRunState, LifetimeSim};
use r2d3_core::substrate::{NetlistSubstrate, NetlistSubstrateConfig, ReliabilitySubstrate};
use r2d3_core::telemetry::{
    chrome_trace, json_lines, lifetime_counter_trace, validate_chrome_trace, validate_json_lines,
    ChromeTrace, OverflowPolicy, RingSink, StreamSink, StreamStats, TelemetryRecord,
};
use r2d3_isa::text::parse_program;
use r2d3_isa::Unit;
use r2d3_pipeline_sim::{StageId, System3d, SystemConfig};
use r2d3_thermal::{Floorplan, GridConfig, PowerMap, ThermalGrid};
use std::fmt::Write as _;

pub type CliResult = Result<(), Box<dyn std::error::Error>>;

fn parse_unit(token: &str) -> Result<Unit, String> {
    r2d3_core::api::parse_unit(token)
        .map_err(|_| format!("unknown unit `{token}` (IFU/EXU/LSU/TLU/FFU)"))
}

/// `r2d3 run <file.s>`
pub fn run(args: &[String]) -> CliResult {
    let cmd = Command::new("run", "assemble a .s program and run it on the 3D system")
        .positional("file.s", "assembly source file")
        .flag("pipes", "N", "logical pipelines to load (1..8)")
        .flag("cycles", "N", "cycles to simulate");
    let Some(p) = cmd.parse(args)? else {
        return Ok(());
    };
    let path = p.positional(0);
    let pipes: usize = p.get_or("pipes", 1)?;
    let cycles: u64 = p.get_or("cycles", 1_000_000)?;

    let source = std::fs::read_to_string(path)?;
    let program = parse_program(&source)?;
    println!("{path}: {} instructions, {} data words", program.len(), program.data_words());

    let config = SystemConfig { pipelines: pipes.clamp(1, 8), ..Default::default() };
    let mut sys = System3d::new(&config);
    for p in 0..config.pipelines {
        sys.load_program(p, program.clone())?;
    }
    sys.run(cycles)?;

    for p in 0..config.pipelines {
        let pipe = sys.pipeline(p).expect("pipeline exists");
        println!(
            "pipeline {p}: {} — retired {}, IPC {:.3}, L1D hit {:.1} %, bpred {:.1} %",
            if pipe.halted() { "halted" } else { "running" },
            pipe.retired(),
            pipe.ipc(),
            100.0 * pipe.l1d().hit_rate(),
            100.0 * pipe.predictor().accuracy(),
        );
        if pipe.halted() {
            // Dump the first few registers for quick inspection.
            let regs: Vec<String> = (1..=4)
                .map(|i| {
                    let r = r2d3_isa::Reg::from_index(i).expect("index < 32");
                    format!("{r}={:#x}", pipe.reg(r))
                })
                .collect();
            println!("  {}", regs.join("  "));
        }
    }
    Ok(())
}

/// `r2d3 inject <unit> <layer>`
pub fn inject(args: &[String]) -> CliResult {
    let cmd = Command::new("inject", "inject a permanent fault and watch the engine repair it")
        .positional("unit", "pipeline unit: IFU|EXU|LSU|TLU|FFU")
        .positional("layer", "stack layer of the victim stage (0..8)")
        .flag("bit", "B", "output bit the fault sticks at 1")
        .substrate_flag(false)
        .seed_flag()
        .epochs_flag()
        .metrics_out_flag()
        .trace_out_flag();
    let Some(p) = cmd.parse(args)? else {
        return Ok(());
    };
    let unit = parse_unit(p.positional(0))?;
    let layer: usize = p
        .positional(1)
        .parse()
        .map_err(|_| format!("invalid layer `{}` (expected 0..8)", p.positional(1)))?;
    let bit: u8 = p.get_or("bit", 0)?;
    let substrate = match parse_substrate(p.get("substrate"), SubstrateChoice::Behavioral, false)? {
        SubstrateChoice::Behavioral => SubstrateKind::Behavioral,
        SubstrateChoice::Netlist => SubstrateKind::Netlist,
        SubstrateChoice::Both => unreachable!("rejected by parse_substrate"),
    };
    let spec = JobSpec::inject(unit, layer)
        .bit(bit)
        .substrate(substrate)
        .seed(p.get_or("seed", 7)?)
        .epochs(p.get_or("epochs", 64)?)
        .build()
        .map_err(|e| e.to_string())?;
    let JobKind::Inject(ispec) = &spec.kind else { unreachable!("built as inject") };
    let epochs = ispec.epochs;
    let victim = StageId::new(layer, unit);

    let out = run_inject_with(
        ispec,
        |net| match net {
            None => println!(
                "behavioral substrate: stuck-at-1 (bit {bit}) into {victim}; running epochs…"
            ),
            Some(net) => println!(
                "netlist substrate: stuck-at-1 on net {net} of {victim}'s {unit} netlist; \
                 running epochs…"
            ),
        },
        |epoch, e| match e {
            EngineEvent::Symptom { dut, pipe } => {
                println!("epoch {epoch:>2}: symptom on {dut} (pipeline {pipe})");
            }
            EngineEvent::Permanent { stage } => {
                println!("epoch {epoch:>2}: permanent fault localized at {stage}");
            }
            EngineEvent::Repaired { pipelines_formed } => {
                println!("epoch {epoch:>2}: repaired — {pipelines_formed} pipelines formed");
            }
            other => println!("epoch {epoch:>2}: {other:?}"),
        },
    )?;

    let metrics = &out.metrics;
    if out.diagnosed {
        println!("\ndiagnosis complete; believed-faulty = {:?}", metrics.believed_faulty);
        if let Some(stats) = &metrics.checkpoints {
            println!(
                "recovery: {} rollback(s), {} restart(s), {} instructions of work lost",
                stats.restores, stats.restarts, stats.lost_instructions
            );
        }
    } else {
        println!("fault did not manifest within {epochs} epochs (data-dependent masking)");
    }
    if let Some(path) = p.get("metrics-out") {
        std::fs::write(path, metrics.to_json())?;
        eprintln!("metrics written to {path}");
    }
    if let Some(path) = p.get("trace-out") {
        std::fs::write(path, chrome_trace(&out.records, out.substrate))?;
        eprintln!("trace written to {path} (load in Perfetto)");
    }
    Ok(())
}

/// `r2d3 campaign`
pub fn campaign(args: &[String]) -> CliResult {
    use r2d3_core::campaign::{
        run_campaign, run_campaign_durable, run_campaign_traced, CampaignState, ShardReport,
        ShardSpec,
    };

    if args.first().map(String::as_str) == Some("merge") {
        return campaign_merge(&args[1..]);
    }

    let cmd = Command::new("campaign", "adversarial fault-injection sweep over both substrates")
        .seed_flag()
        .flag("scenarios", "N", "scenarios per substrate")
        .flag("kinds", "LIST", "comma-separated fault kinds to sweep (default: all)")
        .substrate_flag(true)
        .out_flag("report")
        .switch("smoke", "small CI-sized sweep (27 scenarios)")
        .flag(
            "core",
            "FILE",
            "gate-level stages use this imported core (text netlist from `r2d3 import`, \
             or raw Yosys JSON) instead of the synthesized stage netlists",
        )
        .metrics_out_flag()
        .trace_out_flag()
        .flag("shard", "K/N", "run only shard K of an N-way partition (shard file goes to --out)")
        .flag("resume", "FILE", "resume a run from a snapshot written by --snapshot")
        .flag("snapshot", "FILE", "write a crash-safe run snapshot here as scenarios complete")
        .flag("snapshot-every", "N", "scenarios between snapshots (default 1)")
        .flag("stop-after", "N", "stop (after snapshotting) once N scenarios ran this invocation");
    let Some(p) = cmd.parse(args)? else {
        return Ok(());
    };
    let smoke = p.has("smoke");
    let substrates = match parse_substrate(p.get("substrate"), SubstrateChoice::Both, true)? {
        SubstrateChoice::Behavioral => vec![SubstrateKind::Behavioral],
        SubstrateChoice::Netlist => vec![SubstrateKind::Netlist],
        SubstrateChoice::Both => vec![SubstrateKind::Behavioral, SubstrateKind::Netlist],
    };
    // Everything the flags describe funnels into one JobSpec — the same
    // description `r2d3 submit campaign` puts on the wire — and the
    // config comes out of its `to_config()`, so batch and served runs
    // cannot assemble different campaigns from the same parameters.
    let mut builder = JobSpec::campaign()
        .seed(p.get_or("seed", 0xCA3A)?)
        .scenarios(p.get_or("scenarios", if smoke { 27 } else { 256 })?)
        .substrates(substrates)
        .kinds(parse_kinds(p.get("kinds"))?);
    if let Some(core) = p.get("core") {
        builder = builder.core(core);
    }
    let spec = builder.build().map_err(|e| e.to_string())?;
    let JobKind::Campaign(cspec) = &spec.kind else { unreachable!("built as campaign") };
    let config = cspec.to_config()?;
    if let Some(stages) = &config.netlist_stages {
        let nl = stages[0].netlist();
        eprintln!(
            "core: {} gates, {} outputs per stage (imported netlist on all units)",
            nl.gates().len(),
            nl.outputs().len()
        );
    }

    let shard = p.get("shard").map(ShardSpec::parse).transpose()?;
    let snapshot_path = p.get("snapshot");
    let snapshot_every: usize = p.get_or("snapshot-every", 1)?.max(1);
    let stop_after: Option<usize> = match p.get("stop-after") {
        Some(v) => Some(v.parse().map_err(|_| format!("invalid value for --stop-after: `{v}`"))?),
        None => None,
    };
    let durable = shard.is_some()
        || p.get("resume").is_some()
        || snapshot_path.is_some()
        || stop_after.is_some();
    if durable && p.get("trace-out").is_some() {
        return Err("--trace-out cannot be combined with \
                    --shard/--resume/--snapshot/--stop-after"
            .into());
    }
    if shard.is_some() && p.get("out").is_none() {
        return Err("--shard needs --out FILE for the shard report \
                    (merge later with `r2d3 campaign merge`)"
            .into());
    }

    eprintln!(
        "campaign: seed {:#x}, {} scenarios × {} substrate(s){}{}…",
        config.seed,
        config.scenarios_per_substrate,
        config.substrates.len(),
        if config.kinds.len() < r2d3_core::campaign::KindId::COUNT {
            format!(
                ", kinds {}",
                config.kinds.iter().map(|k| k.name()).collect::<Vec<_>>().join(",")
            )
        } else {
            String::new()
        },
        match shard {
            Some(s) => format!(", shard {s}"),
            None => String::new(),
        }
    );

    let report = if durable {
        let resume = p
            .get("resume")
            .map(|path| CampaignState::load(std::path::Path::new(path)))
            .transpose()?;
        let mut executed = 0usize;
        let outcome = run_campaign_durable(&config, shard, resume, |st| {
            executed += 1;
            let stopping = stop_after.is_some_and(|n| executed >= n);
            if let Some(path) = snapshot_path {
                if stopping || executed.is_multiple_of(snapshot_every) {
                    st.save(std::path::Path::new(path))?;
                }
            }
            Ok(if stopping {
                std::ops::ControlFlow::Break(())
            } else {
                std::ops::ControlFlow::Continue(())
            })
        })?;
        match outcome {
            Some(report) => report,
            None => {
                match snapshot_path {
                    Some(path) => eprintln!(
                        "  stopped after {executed} scenario(s); resume with --resume {path}"
                    ),
                    None => eprintln!(
                        "  stopped after {executed} scenario(s); no --snapshot, progress lost"
                    ),
                }
                return Ok(());
            }
        }
    } else if let Some(path) = p.get("trace-out") {
        let (report, traces) = run_campaign_traced(&config);
        let mut trace = ChromeTrace::new();
        for (i, t) in traces.iter().enumerate() {
            let name = format!("{}:scenario-{}", t.substrate, t.scenario);
            trace.add_process(i as u32 + 1, &name, &t.records);
        }
        std::fs::write(path, trace.finish())?;
        eprintln!("  trace written to {path} (load in Perfetto)");
        report
    } else {
        // `execute_local`'s campaign arm, with the config already built
        // from the spec above (avoids re-reading `--core`).
        run_campaign(&config)
    };

    print_campaign_summary(&report);
    if let Some(path) = p.get("metrics-out") {
        std::fs::write(path, render_campaign_metrics(&report))?;
        eprintln!("  metrics written to {path}");
    }

    if let Some(shard) = shard {
        let path = p.get("out").expect("checked above");
        ShardReport { shard, report: report.clone() }.save(std::path::Path::new(path))?;
        eprintln!("  shard report written to {path}");
    } else {
        emit_campaign_report(&report, p.get("out"))?;
    }
    campaign_failures_check(&report)
}

/// `r2d3 campaign merge <shard>...`
fn campaign_merge(args: &[String]) -> CliResult {
    use r2d3_core::campaign::{merge_shards, ShardReport};

    let cmd =
        Command::new("campaign merge", "recombine per-shard reports into one campaign report")
            .positional("shard", "shard file written by `campaign --shard K/N --out FILE`")
            .trailing()
            .out_flag("report");
    let Some(p) = cmd.parse(args)? else {
        return Ok(());
    };
    let mut shards = Vec::with_capacity(p.positionals().len());
    for path in p.positionals() {
        shards.push(
            ShardReport::load(std::path::Path::new(path)).map_err(|e| format!("{path}: {e}"))?,
        );
    }
    let report = merge_shards(&shards)?;
    eprintln!("merged {} shard(s):", shards.len());
    print_campaign_summary(&report);
    emit_campaign_report(&report, p.get("out"))?;
    campaign_failures_check(&report)
}

/// Resolves `--kinds a,b,c` into scenario-kind ids (all kinds when absent).
pub(crate) fn parse_kinds(
    list: Option<&str>,
) -> Result<Vec<r2d3_core::campaign::KindId>, Box<dyn std::error::Error>> {
    use r2d3_core::campaign::{KindId, KIND_NAMES};
    let Some(list) = list else {
        return Ok(KindId::ALL.to_vec());
    };
    let mut kinds = Vec::new();
    for name in list.split(',').map(str::trim).filter(|n| !n.is_empty()) {
        let kind = KindId::from_name(name).ok_or_else(|| {
            format!("unknown fault kind `{name}` (known kinds: {})", KIND_NAMES.join(", "))
        })?;
        if !kinds.contains(&kind) {
            kinds.push(kind);
        }
    }
    if kinds.is_empty() {
        return Err("--kinds needs at least one fault kind".into());
    }
    Ok(kinds)
}

fn print_campaign_summary(report: &r2d3_core::campaign::CampaignReport) {
    use r2d3_core::campaign::Outcome;
    // Derived from `Outcome::ALL` so the line can never drift from the
    // outcome table; zero-count outcomes are elided to keep it readable.
    for sub in &report.substrates {
        let tallies: Vec<String> = Outcome::ALL
            .iter()
            .map(|o| (sub.outcome_count(*o), o.name()))
            .filter(|(n, _)| *n > 0)
            .map(|(n, name)| format!("{n} {name}"))
            .collect();
        eprintln!(
            "  {:>10}: {} scenarios — {}",
            sub.substrate,
            sub.results.len(),
            if tallies.is_empty() { "none ran".to_string() } else { tallies.join(", ") },
        );
    }
}

fn emit_campaign_report(
    report: &r2d3_core::campaign::CampaignReport,
    out: Option<&str>,
) -> CliResult {
    let json = r2d3_core::campaign::render_report(report);
    match out {
        Some(path) => {
            std::fs::write(path, &json)?;
            eprintln!("  report written to {path}");
        }
        None => print!("{json}"),
    }
    Ok(())
}

fn campaign_failures_check(report: &r2d3_core::campaign::CampaignReport) -> CliResult {
    let failures = report.failures();
    if failures > 0 {
        return Err(format!(
            "{failures} scenario(s) ended in misdiagnosis, an undetected misroute, \
             silent corruption or engine failure"
        )
        .into());
    }
    Ok(())
}

/// Per-substrate sweep metrics as a standalone deterministic document.
fn render_campaign_metrics(report: &r2d3_core::campaign::CampaignReport) -> String {
    let mut out = String::from("{\n  \"substrates\": [\n");
    for (i, sub) in report.substrates.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"substrate\": \"{}\", \"detections\": {}, \"replays\": {}, \
             \"detection_latency\": {}, \"replay_count\": {}}}",
            sub.substrate,
            sub.metrics.detections,
            sub.metrics.replays,
            sub.metrics.detection_latency.to_json(),
            sub.metrics.replay_count.to_json()
        );
        out.push_str(if i + 1 < report.substrates.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// `r2d3 trace`
pub fn trace(args: &[String]) -> CliResult {
    let cmd =
        Command::new("trace", "record a canonical detect → diagnose → repair scenario as a trace")
            .substrate_flag(false)
            .seed_flag()
            .epochs_flag()
            .flag("format", "NAME", "output format: chrome|jsonl")
            .out_flag("trace")
            .flag("check", "FILE", "validate an existing trace file and exit")
            .flag("stream-out", "FILE", "stream JSON-lines through the bounded sink to FILE")
            .flag(
                "rotate-bytes",
                "N",
                "rotate --stream-out into FILE, FILE.1, … once a segment reaches N bytes \
                 (0 = single unbounded file)",
            );
    let Some(p) = cmd.parse(args)? else {
        return Ok(());
    };

    if let Some(path) = p.get("check") {
        return check_trace(path);
    }

    let seed: u64 = p.get_or("seed", 7)?;
    let epochs: u64 = p.get_or("epochs", 24)?;
    let victim = StageId::new(2, Unit::Exu);

    if let Some(path) = p.get("stream-out") {
        let rotate_bytes: u64 = p.get_or("rotate-bytes", 0)?;
        let sink = StreamSink::to_file_rotating(path, OverflowPolicy::Block, rotate_bytes)?;
        let stats = match parse_substrate(p.get("substrate"), SubstrateChoice::Behavioral, false)? {
            SubstrateChoice::Behavioral => {
                stream_scenario(standard_system(seed)?, victim, seed, epochs, sink)?
            }
            SubstrateChoice::Netlist => {
                let sub = NetlistSubstrate::new(&NetlistSubstrateConfig::default());
                stream_scenario(sub, victim, seed, epochs, sink)?
            }
            SubstrateChoice::Both => unreachable!("rejected by parse_substrate"),
        };
        eprintln!(
            "{path}: {} records streamed ({} written, {} dropped, {} backpressure stalls)",
            stats.recorded, stats.written, stats.dropped, stats.stalls
        );
        return Ok(());
    }
    let (records, substrate) =
        match parse_substrate(p.get("substrate"), SubstrateChoice::Behavioral, false)? {
            SubstrateChoice::Behavioral => {
                (record_scenario(standard_system(seed)?, victim, seed, epochs)?, "behavioral")
            }
            SubstrateChoice::Netlist => {
                let sub = NetlistSubstrate::new(&NetlistSubstrateConfig::default());
                (record_scenario(sub, victim, seed, epochs)?, "netlist")
            }
            SubstrateChoice::Both => unreachable!("rejected by parse_substrate"),
        };

    let text = match p.get("format").unwrap_or("chrome") {
        "chrome" => chrome_trace(&records, substrate),
        "jsonl" => json_lines(&records),
        other => return Err(format!("unknown format `{other}` (chrome|jsonl)").into()),
    };
    match p.get("out") {
        Some(path) => {
            std::fs::write(path, &text)?;
            eprintln!("{} telemetry records written to {path}", records.len());
        }
        None => print!("{text}"),
    }
    Ok(())
}

/// Runs the canonical single-permanent-fault scenario with a recording
/// sink and returns the telemetry it produced.
fn record_scenario<S: ReliabilitySubstrate>(
    mut sys: S,
    victim: StageId,
    seed: u64,
    epochs: u64,
) -> Result<Vec<TelemetryRecord>, Box<dyn std::error::Error>> {
    sys.inject_permanent_seeded(victim, seed)?;
    let mut engine = R2d3Engine::builder().telemetry(RingSink::new()).build()?;
    for _ in 0..epochs {
        engine.run_epoch(&mut sys)?;
    }
    Ok(engine.telemetry().records())
}

/// Same canonical scenario as [`record_scenario`], but with telemetry
/// streamed to disk through the bounded-channel [`StreamSink`] instead
/// of buffered in memory. Returns the sink's delivery accounting.
fn stream_scenario<S: ReliabilitySubstrate>(
    mut sys: S,
    victim: StageId,
    seed: u64,
    epochs: u64,
    sink: StreamSink,
) -> Result<StreamStats, Box<dyn std::error::Error>> {
    sys.inject_permanent_seeded(victim, seed)?;
    let mut engine = R2d3Engine::builder().telemetry(sink).build()?;
    for _ in 0..epochs {
        engine.run_epoch(&mut sys)?;
    }
    Ok(engine.into_telemetry().finish()?)
}

/// Validates a trace file emitted by any `--trace-out` (Chrome format)
/// or `trace --format jsonl` (JSON lines).
fn check_trace(path: &str) -> CliResult {
    let text = std::fs::read_to_string(path)?;
    // Both formats open with `{`; only the Chrome envelope opens with
    // its mandatory `traceEvents` key. JSON-lines records never do.
    let (kind, events) = if text.trim_start().starts_with("{\"traceEvents\"") {
        ("Chrome trace", validate_chrome_trace(&text)?)
    } else {
        ("JSON lines", validate_json_lines(&text)?)
    };
    println!("{path}: valid {kind} ({events} events)");
    Ok(())
}

/// `r2d3 import`
pub fn import(args: &[String]) -> CliResult {
    use r2d3_netlist::{analyze_levels, parse_yosys_json, rewrite, text_emit};

    let cmd = Command::new(
        "import",
        "import a Yosys `write_json` combinational core: validate it against the \
         IR invariants, run the deterministic rewrite passes, and emit the text \
         netlist format (feed the result to `campaign --core`)",
    )
    .positional("core.json", "Yosys `write_json` netlist file")
    .flag("top", "NAME", "module to import (default: the file's only module)")
    .out_flag("text netlist")
    .switch("no-rewrite", "skip the rewrite passes (validate and emit as imported)");
    let Some(p) = cmd.parse(args)? else {
        return Ok(());
    };
    let path = p.positional(0);
    let json = std::fs::read_to_string(path)?;
    let core = parse_yosys_json(&json, p.get("top")).map_err(|e| format!("{path}: {e}"))?;

    let ports = |ports: &[(String, usize)]| {
        ports.iter().map(|(n, w)| format!("{n}[{w}]")).collect::<Vec<_>>().join(" ")
    };
    eprintln!(
        "{path}: module `{}` — {} inputs ({}), {} outputs ({}), {} gates, depth {}",
        core.name,
        core.netlist.num_inputs(),
        ports(&core.input_ports),
        core.netlist.outputs().len(),
        ports(&core.output_ports),
        core.netlist.gates().len(),
        analyze_levels(&core.netlist).depth(),
    );

    let netlist = if p.has("no-rewrite") {
        core.netlist
    } else {
        let outcome = rewrite(&core.netlist).map_err(|e| format!("{path}: {e}"))?;
        let s = &outcome.stats;
        eprintln!(
            "rewrite: {} → {} gates, depth {} → {} ({} consts folded, {} buffers removed, \
             {} duplicates merged, {} chains rebalanced, {} dead gates removed)",
            s.gates_before,
            s.gates_after,
            s.depth_before,
            s.depth_after,
            s.folded_constants,
            s.removed_buffers,
            s.merged_duplicates,
            s.rebalanced_chains,
            s.dead_gates_removed,
        );
        outcome.netlist
    };

    let text = text_emit(&netlist);
    match p.get("out") {
        Some(out) => {
            std::fs::write(out, &text)?;
            eprintln!("text netlist written to {out}");
        }
        None => print!("{text}"),
    }
    Ok(())
}

/// `r2d3 atpg`
pub fn atpg(args: &[String]) -> CliResult {
    use r2d3_atpg::campaign::{run_campaign, CampaignConfig};
    use r2d3_atpg::fault::collapsed_faults;
    use r2d3_atpg::flow::{run_full_flow, FlowConfig};
    use r2d3_atpg::report::unit_report;
    use r2d3_netlist::stages::{all_stage_netlists, StageSizing};

    let cmd = Command::new("atpg", "stuck-at coverage per pipeline-unit netlist")
        .flag("patterns", "N", "random patterns per unit")
        .switch("podem", "run PODEM cleanup on random-resistant faults");
    let Some(p) = cmd.parse(args)? else {
        return Ok(());
    };
    let patterns: usize = p.get_or("patterns", 8192)?;
    let use_podem = p.has("podem");

    println!(
        "stuck-at campaign: {patterns} random patterns{}",
        if use_podem { " + PODEM cleanup" } else { "" }
    );
    for sn in all_stage_netlists(&StageSizing::default()) {
        let faults = collapsed_faults(sn.netlist());
        let cc = CampaignConfig { max_patterns: patterns, seed: 7, threads: 8 };
        let report = if use_podem {
            let (outcome, _) = run_full_flow(
                sn.netlist(),
                &faults,
                &FlowConfig { random: cc, podem_backtracks: 4_000 },
            );
            unit_report(sn.unit().name(), &outcome)
        } else {
            unit_report(sn.unit().name(), &run_campaign(sn.netlist(), &faults, &cc))
        };
        println!(
            "{:4}: {:5} faults — detected {:5.1} %, undetected {:4.1} %, undetectable {:4.1} %",
            report.label,
            report.total,
            100.0 * report.detected as f64 / report.total as f64,
            100.0 * report.undetected as f64 / report.total as f64,
            100.0 * report.undetectable as f64 / report.total as f64,
        );
    }
    Ok(())
}

/// `r2d3 lifetime`
pub fn lifetime(args: &[String]) -> CliResult {
    let cmd = Command::new("lifetime", "NBTI-aware lifetime trajectory (Fig. 5)")
        .flag("policy", "P", "rotation policy: norecon|static|lite|pro")
        .flag("months", "N", "months to simulate (paper: 96)")
        .flag("workload", "K", "workload kernel: gemm|gemv|fft")
        .seed_flag()
        .metrics_out_flag()
        .trace_out_flag()
        .flag("resume", "FILE", "resume a run from a snapshot written by --snapshot")
        .flag("snapshot", "FILE", "write a crash-safe run snapshot here as months complete")
        .flag("snapshot-every", "N", "month-steps between snapshots (default 12)")
        .flag(
            "stop-after",
            "N",
            "stop (after snapshotting) once N month-steps ran this invocation",
        );
    let Some(p) = cmd.parse(args)? else {
        return Ok(());
    };
    let policy_token = p.get("policy").unwrap_or("pro");
    let policy = r2d3_core::api::parse_policy(policy_token)
        .map_err(|_| format!("unknown policy `{policy_token}` (norecon|static|lite|pro)"))?;
    let months: usize = p.get_or("months", 96)?;
    let workload_token = p.get("workload").unwrap_or("gemm");
    let workload = r2d3_core::api::parse_workload(workload_token)
        .map_err(|_| format!("unknown workload `{workload_token}` (gemm|gemv|fft)"))?;

    // One JobSpec describes the run — the same description `r2d3 submit
    // lifetime` sends — and `to_config()` yields the exact config this
    // command used to assemble by hand.
    let spec = JobSpec::lifetime()
        .policy(policy)
        .months(months)
        .workload(workload)
        .seed(p.get_or("seed", 0x52D3)?)
        .build()
        .map_err(|e| e.to_string())?;
    let JobKind::Lifetime(lspec) = &spec.kind else { unreachable!("built as lifetime") };
    let config = lspec.to_config();
    let snapshot_path = p.get("snapshot");
    let snapshot_every: usize = p.get_or("snapshot-every", 12)?.max(1);
    let stop_after: Option<usize> = match p.get("stop-after") {
        Some(v) => Some(v.parse().map_err(|_| format!("invalid value for --stop-after: `{v}`"))?),
        None => None,
    };
    let durable = p.get("resume").is_some() || snapshot_path.is_some() || stop_after.is_some();

    println!("{policy} on {workload} for {months} months…");
    let out = if durable {
        let resume = p
            .get("resume")
            .map(|path| LifetimeRunState::load(std::path::Path::new(path)))
            .transpose()?;
        let mut executed = 0usize;
        let outcome = LifetimeSim::new(config).run_durable(resume, |st| {
            executed += 1;
            let stopping = stop_after.is_some_and(|n| executed >= n);
            if let Some(path) = snapshot_path {
                if stopping || executed.is_multiple_of(snapshot_every) {
                    st.save(std::path::Path::new(path))?;
                }
            }
            Ok(if stopping {
                std::ops::ControlFlow::Break(())
            } else {
                std::ops::ControlFlow::Continue(())
            })
        })?;
        match outcome {
            Some(out) => out,
            None => {
                match snapshot_path {
                    Some(path) => eprintln!(
                        "stopped after {executed} month-step(s); resume with --resume {path}"
                    ),
                    None => eprintln!(
                        "stopped after {executed} month-step(s); no --snapshot, progress lost"
                    ),
                }
                return Ok(());
            }
        }
    } else {
        let JobOutcome::Lifetime(out) = execute_local(&spec)? else {
            unreachable!("lifetime spec executes to a lifetime outcome")
        };
        *out
    };
    let outcome = JobOutcome::Lifetime(Box::new(out));
    let JobOutcome::Lifetime(out) = &outcome else { unreachable!() };
    let s = &out.series;
    println!("month   ΔVth(V)   MTTF(mo)   IPC   hottest(°C)");
    for m in (0..months).step_by((months / 8).max(1)).chain([months - 1]) {
        println!(
            "{:>5}   {:.4}    {:>6.0}   {:.2}   {:.1}",
            m, s.max_vth[m], s.mttf_months[m], s.norm_ipc[m], s.hottest_layer_temp[m]
        );
    }
    if let Some(path) = p.get("metrics-out") {
        // Rendered by the shared executor so the document is the same
        // bytes a served lifetime job's report carries.
        std::fs::write(path, render_outcome(&spec, &outcome))?;
        eprintln!("metrics written to {path}");
    }
    if let Some(path) = p.get("trace-out") {
        std::fs::write(path, lifetime_counter_trace(s))?;
        eprintln!("counter trace written to {path} (load in Perfetto)");
    }
    Ok(())
}

/// `r2d3 thermal`
pub fn thermal(args: &[String]) -> CliResult {
    let cmd = Command::new("thermal", "steady-state stack heat map").flag(
        "active",
        "N",
        "powered layers (1..8)",
    );
    let Some(parsed) = cmd.parse(args)? else {
        return Ok(());
    };
    let active: usize = parsed.get_or("active", 8)?;

    let fp = Floorplan::opensparc_3d(8);
    let grid = ThermalGrid::new(&fp, &GridConfig::default());
    let physical = r2d3_physical::PhysicalModel::table_iii();
    let mut p = PowerMap::new(&fp);
    for layer in (8 - active.clamp(1, 8))..8 {
        for unit in Unit::ALL {
            p.add_block(layer, unit, physical.unit_powers_w()[unit.index()]);
        }
    }
    let t = grid.steady_state(&p)?;
    println!("{} active layers, {:.2} W total", active, p.total());
    for layer in (0..8).rev() {
        println!(
            "layer {layer}: avg {:6.1} °C  max {:6.1} °C",
            t.layer_avg(layer),
            t.layer_max(layer)
        );
    }
    let hottest = t.hottest_layer();
    let (lo, hi) = (t.layer_avg(0) - 10.0, t.layer_max(hottest));
    println!("\nhottest layer ({hottest}):");
    print!("{}", t.render_layer(hottest, lo, hi));
    Ok(())
}

/// `r2d3 chaos`
pub fn chaos(args: &[String]) -> CliResult {
    let cmd = Command::new(
        "chaos",
        "torture the durable stack with seeded I/O fault schedules (torn writes, \
         fsync/rename failures, ENOSPC, crash points) and verify the recovery contract",
    )
    .seed_flag()
    .flag("schedules", "N", "fault schedules to run, rotating over the five targets (default 256)")
    .switch("smoke", "CI-sized sweep (40 schedules)");
    let Some(p) = cmd.parse(args)? else {
        return Ok(());
    };
    let smoke = p.has("smoke");
    let config = r2d3_core::campaign::ChaosConfig {
        seed: p.get_or("seed", 0xC4A0)?,
        schedules: p.get_or("schedules", if smoke { 40 } else { 256 })?,
    };
    let report = r2d3_core::campaign::run_chaos(&config);
    print!("{}", report.render());
    if report.ok() {
        Ok(())
    } else {
        Err(format!(
            "{} contract violation(s) — reproduce with `r2d3 chaos --seed {:#x} --schedules {}`",
            report.violations.len(),
            report.seed,
            report.schedules
        )
        .into())
    }
}

/// `r2d3 info`
pub fn info() -> CliResult {
    use r2d3_physical::{table, DesignVariant, PhysicalModel};
    let model = PhysicalModel::table_iii();
    println!("45 nm SOI physical anchor (paper Table III):");
    for row in &table::TABLE_III {
        println!(
            "  {:4}: {:.3} mm²  {:5.1} mW  crossbar +{:.1} %  checker +{:.2} %  protected {:.0} %",
            row.unit.name(),
            row.area_mm2,
            row.power_mw,
            row.crossbar_overhead_pct,
            row.checker_overhead_pct,
            row.protected_area_pct,
        );
    }
    let d = model.design(DesignVariant::R2d3);
    println!(
        "\nR2D3 vs NoRecon: area +{:.1} %, frequency −{:.1} % ({:.3} GHz), power +{:.1} %",
        100.0 * d.area_overhead,
        100.0 * d.frequency_overhead,
        d.frequency_ghz,
        100.0 * d.power_overhead,
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_names_parse_case_insensitively() {
        assert_eq!(parse_unit("exu").unwrap(), Unit::Exu);
        assert_eq!(parse_unit("LSU").unwrap(), Unit::Lsu);
        assert!(parse_unit("XYZ").is_err());
    }

    #[test]
    fn kinds_flag_parses_names_and_rejects_unknowns() {
        use r2d3_core::campaign::KindId;
        assert_eq!(parse_kinds(None).unwrap(), KindId::ALL.to_vec());
        assert_eq!(
            parse_kinds(Some("tsv_stuck, mux_select,tsv_stuck")).unwrap(),
            vec![KindId::TsvStuck, KindId::MuxSelect],
            "names trim whitespace and duplicates collapse"
        );
        assert!(parse_kinds(Some("warp_core")).unwrap_err().to_string().contains("tsv_bridge"));
        assert!(parse_kinds(Some(" , ")).is_err());
    }

    #[test]
    fn trace_round_trips_through_its_own_validator() {
        let records =
            record_scenario(standard_system(7).unwrap(), StageId::new(2, Unit::Exu), 7, 6).unwrap();
        assert!(!records.is_empty());
        let chrome = chrome_trace(&records, "behavioral");
        assert!(validate_chrome_trace(&chrome).unwrap() > 0);
        let jsonl = json_lines(&records);
        assert_eq!(validate_json_lines(&jsonl).unwrap(), records.len());
    }
}
