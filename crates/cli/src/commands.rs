//! Subcommand implementations.

use r2d3_core::engine::{EngineEvent, R2d3Engine};
use r2d3_core::lifetime::{LifetimeConfig, LifetimeSim};
use r2d3_core::policy::PolicyKind;
use r2d3_core::substrate::{NetlistSubstrate, NetlistSubstrateConfig, ReliabilitySubstrate};
use r2d3_core::R2d3Config;
use r2d3_isa::kernels::{gemv, KernelKind};
use r2d3_isa::text::parse_program;
use r2d3_isa::Unit;
use r2d3_pipeline_sim::{FaultEffect, StageId, System3d, SystemConfig};
use r2d3_thermal::{Floorplan, GridConfig, PowerMap, ThermalGrid};

pub type CliResult = Result<(), Box<dyn std::error::Error>>;

/// Pulls `--name value` out of an argument list; returns remaining
/// positional arguments.
fn parse_flags<'a>(
    args: &'a [String],
    flags: &mut [(&str, &mut Option<&'a str>)],
) -> Result<Vec<&'a str>, String> {
    let mut positional = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if let Some(name) = arg.strip_prefix("--") {
            let slot = flags
                .iter_mut()
                .find(|(n, _)| *n == name)
                .ok_or_else(|| format!("unknown flag --{name}"))?;
            let value = it.next().ok_or_else(|| format!("--{name} needs a value"))?;
            *slot.1 = Some(value);
        } else {
            positional.push(arg.as_str());
        }
    }
    Ok(positional)
}

fn parse_unit(token: &str) -> Result<Unit, String> {
    Unit::ALL
        .iter()
        .copied()
        .find(|u| u.name().eq_ignore_ascii_case(token))
        .ok_or_else(|| format!("unknown unit `{token}` (IFU/EXU/LSU/TLU/FFU)"))
}

/// `r2d3 run <file.s>`
pub fn run(args: &[String]) -> CliResult {
    let (mut pipes, mut cycles) = (None, None);
    let pos = parse_flags(args, &mut [("pipes", &mut pipes), ("cycles", &mut cycles)])?;
    let path = pos.first().ok_or("run needs a .s file")?;
    let pipes: usize = pipes.map_or(Ok(1), str::parse)?;
    let cycles: u64 = cycles.map_or(Ok(1_000_000), str::parse)?;

    let source = std::fs::read_to_string(path)?;
    let program = parse_program(&source)?;
    println!("{path}: {} instructions, {} data words", program.len(), program.data_words());

    let config = SystemConfig { pipelines: pipes.clamp(1, 8), ..Default::default() };
    let mut sys = System3d::new(&config);
    for p in 0..config.pipelines {
        sys.load_program(p, program.clone())?;
    }
    sys.run(cycles)?;

    for p in 0..config.pipelines {
        let pipe = sys.pipeline(p).expect("pipeline exists");
        println!(
            "pipeline {p}: {} — retired {}, IPC {:.3}, L1D hit {:.1} %, bpred {:.1} %",
            if pipe.halted() { "halted" } else { "running" },
            pipe.retired(),
            pipe.ipc(),
            100.0 * pipe.l1d().hit_rate(),
            100.0 * pipe.predictor().accuracy(),
        );
        if pipe.halted() {
            // Dump the first few registers for quick inspection.
            let regs: Vec<String> = (1..=4)
                .map(|i| {
                    let r = r2d3_isa::Reg::from_index(i).expect("index < 32");
                    format!("{r}={:#x}", pipe.reg(r))
                })
                .collect();
            println!("  {}", regs.join("  "));
        }
    }
    Ok(())
}

/// `r2d3 inject <unit> <layer>`
pub fn inject(args: &[String]) -> CliResult {
    let (mut bit, mut substrate) = (None, None);
    let pos = parse_flags(args, &mut [("bit", &mut bit), ("substrate", &mut substrate)])?;
    let unit = parse_unit(pos.first().ok_or("inject needs a unit (e.g. EXU)")?)?;
    let layer: usize = pos.get(1).ok_or("inject needs a layer (0..8)")?.parse()?;
    let bit: u8 = bit.map_or(Ok(0), str::parse)?;
    let victim = StageId::new(layer, unit);

    match substrate.unwrap_or("behavioral") {
        "behavioral" => {
            let config = SystemConfig { pipelines: 6, ..Default::default() };
            let mut sys = System3d::new(&config);
            let kernel = gemv(32, 32, 7);
            for p in 0..6 {
                sys.load_program(p, kernel.program().clone())?;
            }
            sys.inject_fault(victim, FaultEffect { bit, stuck: true })?;
            println!("behavioral substrate: stuck-at-1 (bit {bit}) into {victim}; running epochs…");
            drive_repair(&mut sys, victim)
        }
        "netlist" => {
            let mut sub = NetlistSubstrate::new(&NetlistSubstrateConfig::default());
            let fault = sub.output_fault(unit, bit as usize, true);
            sub.inject_fault(victim, fault)?;
            println!(
                "netlist substrate: stuck-at-1 on net {} of {victim}'s {} netlist; running epochs…",
                fault.net.index(),
                unit
            );
            drive_repair(&mut sub, victim)
        }
        other => Err(format!("unknown substrate `{other}` (behavioral|netlist)").into()),
    }
}

/// Drives the engine's detect → diagnose → repair loop on any substrate,
/// narrating events until the victim stage is diagnosed.
fn drive_repair<S: ReliabilitySubstrate>(sys: &mut S, victim: StageId) -> CliResult {
    let mut engine = R2d3Engine::new(&R2d3Config::default());
    for epoch in 1..=64 {
        let events = engine.run_epoch(sys)?;
        for e in &events {
            match e {
                EngineEvent::Symptom { dut, pipe } => {
                    println!("epoch {epoch:>2}: symptom on {dut} (pipeline {pipe})");
                }
                EngineEvent::Permanent { stage } => {
                    println!("epoch {epoch:>2}: permanent fault localized at {stage}");
                }
                EngineEvent::Repaired { pipelines_formed } => {
                    println!("epoch {epoch:>2}: repaired — {pipelines_formed} pipelines formed");
                }
                other => println!("epoch {epoch:>2}: {other:?}"),
            }
        }
        if engine.believed_faulty().contains(&victim) {
            println!("\ndiagnosis complete; believed-faulty = {:?}", engine.believed_faulty());
            if let Some(stats) = engine.checkpoint_stats() {
                println!(
                    "recovery: {} rollback(s), {} restart(s), {} instructions of work lost",
                    stats.restores, stats.restarts, stats.lost_instructions
                );
            }
            return Ok(());
        }
    }
    println!("fault did not manifest within 64 epochs (data-dependent masking)");
    Ok(())
}

/// `r2d3 campaign [--seed S] [--scenarios N] [--substrate behavioral|netlist|both] [--smoke] [--out FILE]`
pub fn campaign(args: &[String]) -> CliResult {
    use r2d3_core::campaign::{
        render_report, run_campaign, CampaignConfig, Outcome, SubstrateKind,
    };

    // `--smoke` is a bare switch; everything else is `--flag value`.
    let mut smoke = false;
    let args: Vec<String> = args
        .iter()
        .filter(|a| {
            let is_smoke = *a == "--smoke";
            smoke |= is_smoke;
            !is_smoke
        })
        .cloned()
        .collect();
    let (mut seed, mut scenarios, mut substrate, mut out) = (None, None, None, None);
    parse_flags(
        &args,
        &mut [
            ("seed", &mut seed),
            ("scenarios", &mut scenarios),
            ("substrate", &mut substrate),
            ("out", &mut out),
        ],
    )?;
    let substrates = match substrate.unwrap_or("both") {
        "behavioral" => vec![SubstrateKind::Behavioral],
        "netlist" => vec![SubstrateKind::Netlist],
        "both" => vec![SubstrateKind::Behavioral, SubstrateKind::Netlist],
        other => {
            return Err(format!("unknown substrate `{other}` (behavioral|netlist|both)").into())
        }
    };
    let config = CampaignConfig {
        seed: seed.map_or(Ok(0xCA3A), str::parse)?,
        scenarios_per_substrate: scenarios.map_or(Ok(if smoke { 27 } else { 256 }), str::parse)?,
        substrates,
        ..Default::default()
    };

    eprintln!(
        "campaign: seed {:#x}, {} scenarios × {} substrate(s)…",
        config.seed,
        config.scenarios_per_substrate,
        config.substrates.len()
    );
    let report = run_campaign(&config);
    for sub in &report.substrates {
        eprintln!(
            "  {:>10}: {} scenarios — {} benign, {} detected+repaired, \
             {} misdiagnosed, {} silent, {} engine errors",
            sub.substrate,
            sub.results.len(),
            sub.outcome_count(Outcome::Benign),
            sub.outcome_count(Outcome::DetectedRepaired),
            sub.outcome_count(Outcome::Misdiagnosed),
            sub.outcome_count(Outcome::SilentCorruption),
            sub.outcome_count(Outcome::EngineFailure),
        );
    }

    let json = render_report(&report);
    match out {
        Some(path) => {
            std::fs::write(path, &json)?;
            eprintln!("  report written to {path}");
        }
        None => print!("{json}"),
    }

    let failures = report.failures();
    if failures > 0 {
        return Err(format!(
            "{failures} scenario(s) ended in misdiagnosis, silent corruption or engine failure"
        )
        .into());
    }
    Ok(())
}

/// `r2d3 atpg`
pub fn atpg(args: &[String]) -> CliResult {
    use r2d3_atpg::campaign::{run_campaign, CampaignConfig};
    use r2d3_atpg::fault::collapsed_faults;
    use r2d3_atpg::flow::{run_full_flow, FlowConfig};
    use r2d3_atpg::report::unit_report;
    use r2d3_netlist::stages::{all_stage_netlists, StageSizing};

    let (mut patterns, mut podem) = (None, None);
    let pos = parse_flags(args, &mut [("patterns", &mut patterns), ("podem", &mut podem)])?;
    let _ = pos;
    let patterns: usize = patterns.map_or(Ok(8192), str::parse)?;
    let use_podem = podem.map_or(Ok(false), str::parse)?;

    println!(
        "stuck-at campaign: {patterns} random patterns{}",
        if use_podem { " + PODEM cleanup" } else { "" }
    );
    for sn in all_stage_netlists(&StageSizing::default()) {
        let faults = collapsed_faults(sn.netlist());
        let cc = CampaignConfig { max_patterns: patterns, seed: 7, threads: 8 };
        let report = if use_podem {
            let (outcome, _) = run_full_flow(
                sn.netlist(),
                &faults,
                &FlowConfig { random: cc, podem_backtracks: 4_000 },
            );
            unit_report(sn.unit().name(), &outcome)
        } else {
            unit_report(sn.unit().name(), &run_campaign(sn.netlist(), &faults, &cc))
        };
        println!(
            "{:4}: {:5} faults — detected {:5.1} %, undetected {:4.1} %, undetectable {:4.1} %",
            report.label,
            report.total,
            100.0 * report.detected as f64 / report.total as f64,
            100.0 * report.undetected as f64 / report.total as f64,
            100.0 * report.undetectable as f64 / report.total as f64,
        );
    }
    Ok(())
}

/// `r2d3 lifetime`
pub fn lifetime(args: &[String]) -> CliResult {
    let (mut policy, mut months, mut workload) = (None, None, None);
    parse_flags(
        args,
        &mut [("policy", &mut policy), ("months", &mut months), ("workload", &mut workload)],
    )?;
    let policy = match policy.unwrap_or("pro") {
        "norecon" => PolicyKind::NoRecon,
        "static" => PolicyKind::Static,
        "lite" => PolicyKind::Lite,
        "pro" => PolicyKind::Pro,
        other => return Err(format!("unknown policy `{other}`").into()),
    };
    let months: usize = months.map_or(Ok(96), str::parse)?;
    let workload = match workload.unwrap_or("gemm") {
        "gemm" => KernelKind::Gemm,
        "gemv" => KernelKind::Gemv,
        "fft" => KernelKind::Fft,
        other => return Err(format!("unknown workload `{other}`").into()),
    };

    let config = LifetimeConfig {
        months,
        replicas: 6,
        mttf_trials: 200,
        grid: GridConfig { nx: 8, ny: 6, ..Default::default() },
        ..LifetimeConfig::new(policy, workload.core_demand_fraction(), workload.activity_weight())
    };
    println!("{policy} on {workload} for {months} months…");
    let out = LifetimeSim::new(config).run()?;
    let s = &out.series;
    println!("month   ΔVth(V)   MTTF(mo)   IPC   hottest(°C)");
    for m in (0..months).step_by((months / 8).max(1)).chain([months - 1]) {
        println!(
            "{:>5}   {:.4}    {:>6.0}   {:.2}   {:.1}",
            m, s.max_vth[m], s.mttf_months[m], s.norm_ipc[m], s.hottest_layer_temp[m]
        );
    }
    Ok(())
}

/// `r2d3 thermal`
pub fn thermal(args: &[String]) -> CliResult {
    let mut active = None;
    parse_flags(args, &mut [("active", &mut active)])?;
    let active: usize = active.map_or(Ok(8), str::parse)?;

    let fp = Floorplan::opensparc_3d(8);
    let grid = ThermalGrid::new(&fp, &GridConfig::default());
    let physical = r2d3_physical::PhysicalModel::table_iii();
    let mut p = PowerMap::new(&fp);
    for layer in (8 - active.clamp(1, 8))..8 {
        for unit in Unit::ALL {
            p.add_block(layer, unit, physical.unit_powers_w()[unit.index()]);
        }
    }
    let t = grid.steady_state(&p)?;
    println!("{} active layers, {:.2} W total", active, p.total());
    for layer in (0..8).rev() {
        println!(
            "layer {layer}: avg {:6.1} °C  max {:6.1} °C",
            t.layer_avg(layer),
            t.layer_max(layer)
        );
    }
    let hottest = t.hottest_layer();
    let (lo, hi) = (t.layer_avg(0) - 10.0, t.layer_max(hottest));
    println!("\nhottest layer ({hottest}):");
    print!("{}", t.render_layer(hottest, lo, hi));
    Ok(())
}

/// `r2d3 info`
pub fn info() -> CliResult {
    use r2d3_physical::{table, DesignVariant, PhysicalModel};
    let model = PhysicalModel::table_iii();
    println!("45 nm SOI physical anchor (paper Table III):");
    for row in &table::TABLE_III {
        println!(
            "  {:4}: {:.3} mm²  {:5.1} mW  crossbar +{:.1} %  checker +{:.2} %  protected {:.0} %",
            row.unit.name(),
            row.area_mm2,
            row.power_mw,
            row.crossbar_overhead_pct,
            row.checker_overhead_pct,
            row.protected_area_pct,
        );
    }
    let d = model.design(DesignVariant::R2d3);
    println!(
        "\nR2D3 vs NoRecon: area +{:.1} %, frequency −{:.1} % ({:.3} GHz), power +{:.1} %",
        100.0 * d.area_overhead,
        100.0 * d.frequency_overhead,
        d.frequency_ghz,
        100.0 * d.power_overhead,
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| (*s).to_string()).collect()
    }

    #[test]
    fn flags_and_positionals_separate() {
        let a = args(&["file.s", "--pipes", "4", "--cycles", "100"]);
        let (mut pipes, mut cycles) = (None, None);
        let pos = parse_flags(&a, &mut [("pipes", &mut pipes), ("cycles", &mut cycles)]).unwrap();
        assert_eq!(pos, vec!["file.s"]);
        assert_eq!(pipes, Some("4"));
        assert_eq!(cycles, Some("100"));
    }

    #[test]
    fn unknown_flag_is_an_error() {
        let a = args(&["--bogus", "1"]);
        let err = parse_flags(&a, &mut []).unwrap_err();
        assert!(err.contains("bogus"));
    }

    #[test]
    fn missing_value_is_an_error() {
        let a = args(&["--pipes"]);
        let mut pipes = None;
        assert!(parse_flags(&a, &mut [("pipes", &mut pipes)]).is_err());
    }

    #[test]
    fn unit_names_parse_case_insensitively() {
        assert_eq!(parse_unit("exu").unwrap(), Unit::Exu);
        assert_eq!(parse_unit("LSU").unwrap(), Unit::Lsu);
        assert!(parse_unit("XYZ").is_err());
    }
}
