//! Serving subcommands: `r2d3 serve` plus the `submit` / `status` /
//! `watch` / `cancel` client commands.
//!
//! The clients build the same [`JobSpec`] the batch commands build from
//! their flags — there is one description of a job, and these commands
//! just put it on the wire instead of executing it in-process.

use crate::args::{parse_substrate, Command, SubstrateChoice};
use crate::commands::CliResult;
use r2d3_core::api::wire::{parse_overflow, JobEvent, JobStatus};
use r2d3_core::api::{JobId, JobSpec};
use r2d3_core::campaign::SubstrateKind;
use r2d3_core::serve::{Client, Daemon, Listen, ServeConfig};
use r2d3_core::telemetry::OverflowPolicy;

/// Default socket shared by `serve --listen` and the clients'
/// `--connect`.
const DEFAULT_ADDR: &str = "r2d3.sock";

fn connect_flag(cmd: Command) -> Command {
    cmd.flag("connect", "ADDR", "daemon address: unix:PATH, tcp:HOST:PORT or a socket path").flag(
        "timeout",
        "MS",
        "deadline in milliseconds for the tcp connect and each request/response roundtrip",
    )
}

fn client_flags(cmd: Command) -> Command {
    connect_flag(cmd)
        .flag("client", "NAME", "client name for quota accounting (default: cli)")
        .flag("priority", "N", "scheduling priority within this client's queue (default 0)")
}

fn connect(
    addr: Option<&str>,
    timeout_ms: Option<&str>,
) -> Result<Client, Box<dyn std::error::Error>> {
    let listen = Listen::parse(addr.unwrap_or(DEFAULT_ADDR))?;
    let deadline = match timeout_ms {
        Some(v) => Some(std::time::Duration::from_millis(
            v.parse().map_err(|_| format!("invalid --timeout `{v}` (expected milliseconds)"))?,
        )),
        None => None,
    };
    Ok(Client::connect_with_deadlines(&listen, deadline, deadline)?)
}

/// `r2d3 serve`
pub fn serve(args: &[String]) -> CliResult {
    let cmd = Command::new("serve", "run the campaign-as-a-service job daemon")
        .flag("listen", "ADDR", "listen address: unix:PATH, tcp:HOST:PORT or a socket path")
        .flag("state-dir", "DIR", "job state directory (default r2d3-serve); reuse to resume")
        .flag("workers", "N", "worker threads executing job units (default 2)")
        .flag("quota", "LIST", "per-client scheduling quotas, e.g. alice=3,bob=1")
        .flag("default-quota", "N", "quota for clients not named in --quota (default 1)")
        .flag("snapshot-every", "N", "observer steps between unit checkpoints (default 1)")
        .flag(
            "lease-steps",
            "N",
            "yield a running unit back to the queue after N steps (checkpoint + re-dispatch; \
             exercises the resume path)",
        );
    let Some(p) = cmd.parse(args)? else {
        return Ok(());
    };
    let listen = Listen::parse(p.get("listen").unwrap_or(DEFAULT_ADDR))?;
    let mut quotas = Vec::new();
    if let Some(list) = p.get("quota") {
        for pair in list.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            let (client, weight) = pair
                .split_once('=')
                .ok_or_else(|| format!("--quota entries are CLIENT=N, got `{pair}`"))?;
            let weight: u64 =
                weight.parse().map_err(|_| format!("invalid quota in `{pair}` (expected N>=1)"))?;
            quotas.push((client.to_string(), weight));
        }
    }
    let lease_steps = match p.get("lease-steps") {
        Some(v) => Some(v.parse().map_err(|_| format!("invalid value for --lease-steps: `{v}`"))?),
        None => None,
    };
    let config = ServeConfig {
        state_dir: p.get("state-dir").unwrap_or("r2d3-serve").into(),
        workers: p.get_or("workers", 2)?,
        default_quota: p.get_or("default-quota", 1)?,
        quotas,
        snapshot_every: p.get_or("snapshot-every", 1)?,
        lease_steps,
        paused: false,
        io: r2d3_core::chaos::IoEnv::default(),
    };
    eprintln!(
        "serving on {listen} — state in {}, {} worker(s)",
        config.state_dir.display(),
        config.workers.max(1)
    );
    let daemon = Daemon::start(config, &listen)?;
    daemon.join();
    eprintln!("daemon stopped");
    Ok(())
}

/// `r2d3 submit campaign|lifetime|inject`
pub fn submit(args: &[String]) -> CliResult {
    match args.first().map(String::as_str) {
        Some("campaign") => submit_campaign(&args[1..]),
        Some("lifetime") => submit_lifetime(&args[1..]),
        Some("inject") => submit_inject(&args[1..]),
        Some("--help") | None => {
            println!(
                "r2d3 submit — submit a job to a serve daemon\n\
                 \n\
                 USAGE:\n\
                 \x20 r2d3 submit campaign [campaign flags] [--shards N] [client flags]\n\
                 \x20 r2d3 submit lifetime [lifetime flags] [client flags]\n\
                 \x20 r2d3 submit inject <unit> <layer> [inject flags] [client flags]\n\
                 \n\
                 Prints the job id on stdout. Client flags: --connect ADDR, --client NAME,\n\
                 --priority N. Run `r2d3 submit <kind> --help` for the kind's flag list.\n"
            );
            Ok(())
        }
        Some(other) => Err(format!("unknown job kind `{other}` (campaign|lifetime|inject)").into()),
    }
}

fn send(
    p_connect: Option<&str>,
    timeout_ms: Option<&str>,
    client_name: Option<&str>,
    spec: &JobSpec,
) -> CliResult {
    let mut client = connect(p_connect, timeout_ms)?;
    let job = client.submit(client_name.unwrap_or("cli"), spec)?;
    eprintln!("submitted as job {job}");
    println!("{job}");
    Ok(())
}

fn submit_campaign(args: &[String]) -> CliResult {
    let cmd = client_flags(
        Command::new("submit campaign", "submit an adversarial fault-injection sweep")
            .seed_flag()
            .flag("scenarios", "N", "scenarios per substrate")
            .flag("kinds", "LIST", "comma-separated fault kinds to sweep (default: all)")
            .substrate_flag(true)
            .switch("smoke", "small CI-sized sweep (27 scenarios)")
            .flag("core", "FILE", "imported core netlist, resolved by the daemon when the job runs")
            .flag("shards", "N", "split into N shard units for the worker pool (default 1)"),
    );
    let Some(p) = cmd.parse(args)? else {
        return Ok(());
    };
    let smoke = p.has("smoke");
    let substrates = match parse_substrate(p.get("substrate"), SubstrateChoice::Both, true)? {
        SubstrateChoice::Behavioral => vec![SubstrateKind::Behavioral],
        SubstrateChoice::Netlist => vec![SubstrateKind::Netlist],
        SubstrateChoice::Both => vec![SubstrateKind::Behavioral, SubstrateKind::Netlist],
    };
    let mut builder = JobSpec::campaign()
        .seed(p.get_or("seed", 0xCA3A)?)
        .scenarios(p.get_or("scenarios", if smoke { 27 } else { 256 })?)
        .substrates(substrates)
        .kinds(crate::commands::parse_kinds(p.get("kinds"))?)
        .shards(p.get_or("shards", 1)?)
        .priority(p.get_or("priority", 0)?);
    if let Some(core) = p.get("core") {
        builder = builder.core(core);
    }
    let spec = builder.build().map_err(|e| e.to_string())?;
    send(p.get("connect"), p.get("timeout"), p.get("client"), &spec)
}

fn submit_lifetime(args: &[String]) -> CliResult {
    let cmd = client_flags(
        Command::new("submit lifetime", "submit an NBTI-aware lifetime trajectory")
            .flag("policy", "P", "rotation policy: norecon|static|lite|pro")
            .flag("months", "N", "months to simulate (paper: 96)")
            .flag("workload", "K", "workload kernel: gemm|gemv|fft")
            .seed_flag(),
    );
    let Some(p) = cmd.parse(args)? else {
        return Ok(());
    };
    let policy_token = p.get("policy").unwrap_or("pro");
    let policy = r2d3_core::api::parse_policy(policy_token)
        .map_err(|_| format!("unknown policy `{policy_token}` (norecon|static|lite|pro)"))?;
    let workload_token = p.get("workload").unwrap_or("gemm");
    let workload = r2d3_core::api::parse_workload(workload_token)
        .map_err(|_| format!("unknown workload `{workload_token}` (gemm|gemv|fft)"))?;
    let spec = JobSpec::lifetime()
        .policy(policy)
        .months(p.get_or("months", 96)?)
        .workload(workload)
        .seed(p.get_or("seed", 0x52D3)?)
        .priority(p.get_or("priority", 0)?)
        .build()
        .map_err(|e| e.to_string())?;
    send(p.get("connect"), p.get("timeout"), p.get("client"), &spec)
}

fn submit_inject(args: &[String]) -> CliResult {
    let cmd = client_flags(
        Command::new("submit inject", "submit a single-fault inject-and-repair run")
            .positional("unit", "pipeline unit: IFU|EXU|LSU|TLU|FFU")
            .positional("layer", "stack layer of the victim stage (0..8)")
            .flag("bit", "B", "output bit the fault sticks at 1")
            .substrate_flag(false)
            .seed_flag()
            .epochs_flag(),
    );
    let Some(p) = cmd.parse(args)? else {
        return Ok(());
    };
    let unit = r2d3_core::api::parse_unit(p.positional(0))
        .map_err(|_| format!("unknown unit `{}` (IFU/EXU/LSU/TLU/FFU)", p.positional(0)))?;
    let layer: usize = p
        .positional(1)
        .parse()
        .map_err(|_| format!("invalid layer `{}` (expected 0..8)", p.positional(1)))?;
    let substrate = match parse_substrate(p.get("substrate"), SubstrateChoice::Behavioral, false)? {
        SubstrateChoice::Behavioral => SubstrateKind::Behavioral,
        SubstrateChoice::Netlist => SubstrateKind::Netlist,
        SubstrateChoice::Both => unreachable!("rejected by parse_substrate"),
    };
    let spec = JobSpec::inject(unit, layer)
        .bit(p.get_or("bit", 0)?)
        .substrate(substrate)
        .seed(p.get_or("seed", 7)?)
        .epochs(p.get_or("epochs", 64)?)
        .priority(p.get_or("priority", 0)?)
        .build()
        .map_err(|e| e.to_string())?;
    send(p.get("connect"), p.get("timeout"), p.get("client"), &spec)
}

fn status_line(s: &JobStatus) -> String {
    format!(
        "{}  {:<10}  {:<8}  {:<9}  {:>3}/{:<3}  {:>6}/{:<6}{}",
        s.id,
        s.client,
        s.kind,
        s.state.token(),
        s.units_done,
        s.units,
        s.progress_done,
        s.progress_total,
        match &s.error {
            Some(e) => format!("  {e}"),
            None => String::new(),
        }
    )
}

/// `r2d3 status [job]`
pub fn status(args: &[String]) -> CliResult {
    let cmd = connect_flag(
        Command::new("status", "list a serve daemon's jobs (all, or one by id)").flag(
            "result-out",
            "FILE",
            "also fetch the job's completed report and write it here (needs a job id)",
        ),
    )
    .trailing();
    let Some(p) = cmd.parse(args)? else {
        return Ok(());
    };
    let job = match p.positionals() {
        [] => None,
        [one] => Some(JobId::parse(one).map_err(|e| e.to_string())?),
        more => return Err(format!("expected at most one job id, got {}", more.len()).into()),
    };
    let mut client = connect(p.get("connect"), p.get("timeout"))?;
    let jobs = client.status(job)?;
    println!("job       client      kind      state      units    progress");
    for s in &jobs {
        println!("{}", status_line(s));
    }
    if let Some(path) = p.get("result-out") {
        let job = job.ok_or("--result-out needs a job id")?;
        // Client-side convenience copy of the daemon's durable report —
        // a torn write here exits non-zero and refetching regenerates
        // the bytes, so it stays off the chaos Vfs seam.
        std::fs::write(path, client.result(job)?)?;
        eprintln!("report written to {path}");
    }
    Ok(())
}

fn event_line(ev: &JobEvent) -> String {
    match ev {
        JobEvent::Accepted { job, units } => format!("{job}: accepted ({units} unit(s))"),
        JobEvent::Started { job, unit } => format!("{job}: unit {unit} started"),
        JobEvent::Progress { job, unit, done, total } => {
            format!("{job}: unit {unit} progress {done}/{total}")
        }
        JobEvent::Checkpointed { job, unit, done } => {
            format!("{job}: unit {unit} checkpointed at {done}")
        }
        JobEvent::UnitDone { job, unit } => format!("{job}: unit {unit} done"),
        JobEvent::WorkerLost { job, unit, done } => {
            format!("{job}: unit {unit} lost its worker at {done}; re-queued")
        }
        JobEvent::Degraded { job, reason } => {
            format!("{job}: degraded — {reason} (parked; resumes when disk pressure lifts)")
        }
        JobEvent::Completed { job } => format!("{job}: completed"),
        JobEvent::Failed { job, error } => format!("{job}: failed — {error}"),
        JobEvent::Canceled { job } => format!("{job}: canceled"),
    }
}

/// `r2d3 watch <job>`
pub fn watch(args: &[String]) -> CliResult {
    let cmd = connect_flag(
        Command::new("watch", "stream a job's events (history, then live) until it finishes")
            .positional("job", "job id printed by submit")
            .flag(
                "overflow",
                "POLICY",
                "live-stream overflow policy: block (lossless) | drop (never stalls the daemon)",
            ),
    );
    let Some(p) = cmd.parse(args)? else {
        return Ok(());
    };
    let job = JobId::parse(p.positional(0)).map_err(|e| e.to_string())?;
    let overflow = match p.get("overflow") {
        None => OverflowPolicy::Block,
        Some(tok) => parse_overflow(tok)
            .map_err(|_| format!("unknown overflow policy `{tok}` (block|drop)"))?,
    };
    let mut client = connect(p.get("connect"), p.get("timeout"))?;
    let terminal =
        client.watch(job, overflow, |ev| println!("{}", event_line(ev))).map_err(|e| match e {
            // A dead daemon must be a loud, non-zero exit — not a
            // silent end-of-stream that looks like completion.
            r2d3_core::serve::ServeError::Closed => format!(
                "watch {job}: connection closed before the job finished — the daemon died or \
                 was shut down; its state is durable, restart it and re-run `r2d3 watch {job}`"
            )
            .into(),
            other => Box::<dyn std::error::Error>::from(other),
        })?;
    match terminal {
        JobEvent::Completed { .. } => Ok(()),
        JobEvent::Failed { error, .. } => Err(format!("job {job} failed: {error}").into()),
        JobEvent::Canceled { .. } => Err(format!("job {job} was canceled").into()),
        _ => unreachable!("watch returns only terminal events"),
    }
}

/// `r2d3 cancel <job>`
pub fn cancel(args: &[String]) -> CliResult {
    let cmd = connect_flag(
        Command::new("cancel", "cancel a queued or running job")
            .positional("job", "job id printed by submit"),
    );
    let Some(p) = cmd.parse(args)? else {
        return Ok(());
    };
    let job = JobId::parse(p.positional(0)).map_err(|e| e.to_string())?;
    let mut client = connect(p.get("connect"), p.get("timeout"))?;
    if client.cancel(job)? {
        eprintln!("job {job} canceled");
    } else {
        eprintln!("job {job} had already finished");
    }
    Ok(())
}
