//! Shared command-line argument handling for every `r2d3` subcommand.
//!
//! Each subcommand declares its interface once — flags, switches,
//! positionals, defaults — and gets uniform behavior for free: the same
//! `--flag value` grammar, the same error wording (`unknown flag`,
//! `--x needs a value`, `invalid value for --x`), and a generated
//! `--help` page. Flags shared across subcommands (`--substrate`,
//! `--seed`, `--out`, `--epochs`, `--metrics-out`, `--trace-out`) come
//! from the helper constructors below so their spelling and help text
//! cannot drift between commands.

use std::fmt::Write as _;
use std::str::FromStr;

/// A `--name VALUE` flag (or a bare `--name` switch when `value` is None).
struct FlagSpec {
    name: &'static str,
    /// Placeholder in help output; `None` marks a value-less switch.
    value: Option<&'static str>,
    help: &'static str,
}

/// A required positional argument.
struct PosSpec {
    name: &'static str,
    help: &'static str,
}

/// Declarative description of one subcommand's arguments.
pub struct Command {
    name: &'static str,
    about: &'static str,
    flags: Vec<FlagSpec>,
    positionals: Vec<PosSpec>,
    /// Extra positionals allowed beyond the declared ones.
    trailing: bool,
}

impl Command {
    /// Starts a command description.
    pub fn new(name: &'static str, about: &'static str) -> Self {
        Command { name, about, flags: Vec::new(), positionals: Vec::new(), trailing: false }
    }

    /// Adds a `--name VALUE` flag.
    pub fn flag(mut self, name: &'static str, value: &'static str, help: &'static str) -> Self {
        self.flags.push(FlagSpec { name, value: Some(value), help });
        self
    }

    /// Adds a bare `--name` switch.
    pub fn switch(mut self, name: &'static str, help: &'static str) -> Self {
        self.flags.push(FlagSpec { name, value: None, help });
        self
    }

    /// Adds a required positional argument.
    pub fn positional(mut self, name: &'static str, help: &'static str) -> Self {
        self.positionals.push(PosSpec { name, help });
        self
    }

    /// Allows extra positionals beyond the declared ones (a variadic
    /// tail, e.g. `r2d3 campaign merge <shard>...`).
    pub fn trailing(mut self) -> Self {
        self.trailing = true;
        self
    }

    // -- shared flags (one spelling, one help text, every command) ------

    /// `--substrate behavioral|netlist[|both]`.
    pub fn substrate_flag(self, allow_both: bool) -> Self {
        if allow_both {
            self.flag("substrate", "NAME", "execution substrate: behavioral|netlist|both")
        } else {
            self.flag("substrate", "NAME", "execution substrate: behavioral|netlist")
        }
    }

    /// `--seed N` (deterministic RNG / workload seed).
    pub fn seed_flag(self) -> Self {
        self.flag("seed", "N", "deterministic seed")
    }

    /// `--out FILE` (primary report destination; stdout when omitted).
    pub fn out_flag(self, what: &'static str) -> Self {
        let _ = what;
        self.flag("out", "FILE", "write the report here instead of stdout")
    }

    /// `--epochs N` (engine epochs to drive).
    pub fn epochs_flag(self) -> Self {
        self.flag("epochs", "N", "engine epochs to run")
    }

    /// `--metrics-out FILE` (serialized metrics snapshot).
    pub fn metrics_out_flag(self) -> Self {
        self.flag("metrics-out", "FILE", "write a JSON metrics snapshot here")
    }

    /// `--trace-out FILE` (Chrome trace-event file, Perfetto-loadable).
    pub fn trace_out_flag(self) -> Self {
        self.flag("trace-out", "FILE", "write a Chrome trace (load in Perfetto) here")
    }

    /// Generated `--help` page.
    #[must_use]
    pub fn usage(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "r2d3 {} — {}", self.name, self.about);
        let _ = write!(out, "\nUSAGE:\n  r2d3 {}", self.name);
        for p in &self.positionals {
            let _ = write!(out, " <{}>", p.name);
        }
        if self.trailing {
            let _ = write!(out, "...");
        }
        if !self.flags.is_empty() {
            let _ = write!(out, " [OPTIONS]");
        }
        out.push('\n');
        if !self.positionals.is_empty() {
            out.push_str("\nARGS:\n");
            for p in &self.positionals {
                let _ = writeln!(out, "  <{}>  {}", p.name, p.help);
            }
        }
        out.push_str("\nOPTIONS:\n");
        let mut rows: Vec<(String, &str)> = self
            .flags
            .iter()
            .map(|f| {
                let lhs = match f.value {
                    Some(v) => format!("--{} <{}>", f.name, v),
                    None => format!("--{}", f.name),
                };
                (lhs, f.help)
            })
            .collect();
        rows.push(("--help".to_string(), "print this help"));
        let width = rows.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
        for (lhs, help) in rows {
            let _ = writeln!(out, "  {lhs:<width$}  {help}");
        }
        out
    }

    /// Parses `args`; `Ok(None)` means `--help` was handled (usage
    /// printed, the caller should exit successfully).
    pub fn parse<'a>(&self, args: &'a [String]) -> Result<Option<Parsed<'a>>, String> {
        if args.iter().any(|a| a == "--help" || a == "-h") {
            print!("{}", self.usage());
            return Ok(None);
        }
        let mut parsed = Parsed {
            command: self.name,
            values: Vec::new(),
            switches: Vec::new(),
            positionals: Vec::new(),
        };
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            if let Some(name) = arg.strip_prefix("--") {
                let spec = self.flags.iter().find(|f| f.name == name).ok_or_else(|| {
                    format!("unknown flag --{name} (see `r2d3 {} --help`)", self.name)
                })?;
                match spec.value {
                    Some(_) => {
                        let value = it.next().ok_or_else(|| format!("--{name} needs a value"))?;
                        parsed.values.push((spec.name, value));
                    }
                    None => parsed.switches.push(spec.name),
                }
            } else {
                parsed.positionals.push(arg.as_str());
            }
        }
        if parsed.positionals.len() < self.positionals.len() {
            let missing = &self.positionals[parsed.positionals.len()];
            return Err(format!(
                "missing <{}> argument ({}); see `r2d3 {} --help`",
                missing.name, missing.help, self.name
            ));
        }
        if !self.trailing && parsed.positionals.len() > self.positionals.len() {
            return Err(format!(
                "unexpected argument `{}` (see `r2d3 {} --help`)",
                parsed.positionals[self.positionals.len()],
                self.name
            ));
        }
        Ok(Some(parsed))
    }
}

/// Parsed arguments for one invocation; values borrow from the input.
#[derive(Debug)]
pub struct Parsed<'a> {
    command: &'static str,
    values: Vec<(&'static str, &'a str)>,
    switches: Vec<&'static str>,
    positionals: Vec<&'a str>,
}

impl<'a> Parsed<'a> {
    /// Raw value of a `--flag VALUE`, last occurrence winning.
    pub fn get(&self, name: &str) -> Option<&'a str> {
        self.values.iter().rev().find(|(n, _)| *n == name).map(|(_, v)| *v)
    }

    /// Whether a switch was present.
    pub fn has(&self, name: &str) -> bool {
        self.switches.contains(&name)
    }

    /// The `idx`-th positional argument (declared ones are guaranteed).
    pub fn positional(&self, idx: usize) -> &'a str {
        self.positionals[idx]
    }

    /// All positional arguments, declared and trailing.
    pub fn positionals(&self) -> &[&'a str] {
        &self.positionals
    }

    /// Parses `--name`'s value, or returns `default` when absent. Errors
    /// carry the flag name and the offending token.
    pub fn get_or<T: FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("invalid value for --{name}: `{v}` (r2d3 {})", self.command)),
        }
    }
}

/// Which substrates a command should drive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubstrateChoice {
    /// Instruction-level `System3d`.
    Behavioral,
    /// Gate-level `NetlistSubstrate`.
    Netlist,
    /// Both, in report order (campaign only).
    Both,
}

/// Parses a `--substrate` token with uniform error wording.
pub fn parse_substrate(
    token: Option<&str>,
    default: SubstrateChoice,
    allow_both: bool,
) -> Result<SubstrateChoice, String> {
    match token {
        None => Ok(default),
        Some("behavioral") => Ok(SubstrateChoice::Behavioral),
        Some("netlist") => Ok(SubstrateChoice::Netlist),
        Some("both") if allow_both => Ok(SubstrateChoice::Both),
        Some(other) => {
            let options = if allow_both { "behavioral|netlist|both" } else { "behavioral|netlist" };
            Err(format!("unknown substrate `{other}` ({options})"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| (*s).to_string()).collect()
    }

    fn cmd() -> Command {
        Command::new("demo", "test command")
            .positional("file", "input file")
            .flag("pipes", "N", "pipeline count")
            .switch("smoke", "small sweep")
            .substrate_flag(true)
            .seed_flag()
    }

    #[test]
    fn flags_switches_and_positionals_separate() {
        let a = args(&["file.s", "--pipes", "4", "--smoke", "--seed", "9"]);
        let p = cmd().parse(&a).unwrap().unwrap();
        assert_eq!(p.positional(0), "file.s");
        assert_eq!(p.get_or("pipes", 0usize).unwrap(), 4);
        assert_eq!(p.get_or("seed", 0u64).unwrap(), 9);
        assert!(p.has("smoke"));
        assert!(!p.has("podem"));
    }

    #[test]
    fn unknown_flag_and_missing_value_are_errors() {
        assert!(cmd().parse(&args(&["f", "--bogus", "1"])).unwrap_err().contains("--bogus"));
        assert!(cmd().parse(&args(&["f", "--pipes"])).unwrap_err().contains("needs a value"));
    }

    #[test]
    fn missing_positional_names_the_argument() {
        let err = cmd().parse(&args(&["--pipes", "4"])).unwrap_err();
        assert!(err.contains("<file>"), "{err}");
    }

    #[test]
    fn invalid_value_names_the_flag_and_token() {
        let a = args(&["f", "--pipes", "zebra"]);
        let p = cmd().parse(&a).unwrap().unwrap();
        let err = p.get_or("pipes", 0usize).unwrap_err();
        assert!(err.contains("--pipes") && err.contains("zebra"), "{err}");
    }

    #[test]
    fn defaults_apply_when_flags_absent() {
        let a = args(&["f"]);
        let p = cmd().parse(&a).unwrap().unwrap();
        assert_eq!(p.get_or("pipes", 7usize).unwrap(), 7);
        assert_eq!(p.get("substrate"), None);
    }

    #[test]
    fn substrate_tokens_parse_uniformly() {
        use SubstrateChoice::*;
        assert_eq!(parse_substrate(None, Behavioral, false).unwrap(), Behavioral);
        assert_eq!(parse_substrate(Some("netlist"), Behavioral, false).unwrap(), Netlist);
        assert_eq!(parse_substrate(Some("both"), Behavioral, true).unwrap(), Both);
        assert!(parse_substrate(Some("both"), Behavioral, false).is_err());
        assert!(parse_substrate(Some("quantum"), Behavioral, true)
            .unwrap_err()
            .contains("behavioral|netlist|both"));
    }

    #[test]
    fn usage_lists_every_flag_and_positional() {
        let text = cmd().usage();
        for needle in
            ["<file>", "--pipes <N>", "--smoke", "--substrate <NAME>", "--seed <N>", "--help"]
        {
            assert!(text.contains(needle), "usage missing {needle}:\n{text}");
        }
    }

    #[test]
    fn help_short_circuits_parsing() {
        assert!(cmd().parse(&args(&["--help"])).unwrap().is_none());
    }

    #[test]
    fn trailing_accepts_extra_positionals() {
        let variadic = Command::new("demo", "test").positional("file", "input").trailing();
        let a = args(&["a", "b", "c"]);
        let p = variadic.parse(&a).unwrap().unwrap();
        assert_eq!(p.positionals(), &["a", "b", "c"]);
        // Without trailing, the same input is rejected.
        let strict = Command::new("demo", "test").positional("file", "input");
        assert!(strict.parse(&a).unwrap_err().contains("unexpected argument"));
    }
}
