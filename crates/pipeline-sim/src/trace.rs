//! Stage I/O traces: the raw material for R2D3's checkers.
//!
//! During execution every stage operation appends a record with the
//! operation's input signature and its *golden* (fault-free) output. The
//! R2D3 detection machinery replays a window of these records on a
//! leftover stage and compares outputs through the inter-stage checkers;
//! since every stage's actual output is `effect(golden)` for that stage's
//! (possibly absent) fault effect, comparisons between any two stages can
//! be reconstructed from the golden trace — exactly the information the
//! vertical buses give the paper's detection circuitry.

use serde::{Deserialize, Serialize};

/// One stage operation: input signature, golden output and the output the
/// stage actually produced (differs from golden when a permanent fault
/// manifested or a transient flipped it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageRecord {
    /// Pipeline-local cycle at which the operation retired.
    pub cycle: u64,
    /// Hash of the operation's inputs (operands, PC, …).
    pub input_sig: u64,
    /// Fault-free output word of the stage for this operation.
    pub golden_output: u32,
    /// Output the physical stage actually produced.
    pub actual_output: u32,
}

/// Fixed-capacity ring buffer of [`StageRecord`]s.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceRing {
    capacity: usize,
    records: Vec<StageRecord>,
    next: usize,
    total: u64,
}

impl TraceRing {
    /// Creates a ring holding up to `capacity` records.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "trace ring needs capacity");
        TraceRing { capacity, records: Vec::with_capacity(capacity), next: 0, total: 0 }
    }

    /// Appends a record, evicting the oldest when full.
    pub fn push(&mut self, record: StageRecord) {
        if self.records.len() < self.capacity {
            self.records.push(record);
        } else {
            self.records[self.next] = record;
        }
        self.next = (self.next + 1) % self.capacity;
        self.total += 1;
    }

    /// Number of records currently held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the ring holds no records.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Total records ever pushed.
    #[must_use]
    pub fn total_pushed(&self) -> u64 {
        self.total
    }

    /// Iterates records from oldest to newest.
    pub fn iter(&self) -> impl Iterator<Item = &StageRecord> {
        let split = if self.records.len() < self.capacity { 0 } else { self.next };
        self.records[split..].iter().chain(self.records[..split].iter())
    }

    /// The most recent `n` records, oldest first.
    #[must_use]
    pub fn last(&self, n: usize) -> Vec<StageRecord> {
        let len = self.records.len();
        let take = n.min(len);
        self.iter().skip(len - take).copied().collect()
    }

    /// Drops all records (e.g. after a repair-triggered re-execution).
    pub fn clear(&mut self) {
        self.records.clear();
        self.next = 0;
    }
}

/// Mixes operation inputs into a compact signature (FNV-1a over words).
#[must_use]
pub fn input_signature(words: &[u32]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &w in words {
        h ^= u64::from(w);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(cycle: u64) -> StageRecord {
        StageRecord {
            cycle,
            input_sig: cycle * 7,
            golden_output: cycle as u32,
            actual_output: cycle as u32,
        }
    }

    #[test]
    fn push_and_iterate_in_order() {
        let mut r = TraceRing::new(4);
        for c in 0..3 {
            r.push(rec(c));
        }
        let cycles: Vec<u64> = r.iter().map(|x| x.cycle).collect();
        assert_eq!(cycles, vec![0, 1, 2]);
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn wraps_and_keeps_newest() {
        let mut r = TraceRing::new(3);
        for c in 0..7 {
            r.push(rec(c));
        }
        let cycles: Vec<u64> = r.iter().map(|x| x.cycle).collect();
        assert_eq!(cycles, vec![4, 5, 6]);
        assert_eq!(r.total_pushed(), 7);
    }

    #[test]
    fn last_n_clamps() {
        let mut r = TraceRing::new(4);
        for c in 0..2 {
            r.push(rec(c));
        }
        assert_eq!(r.last(10).len(), 2);
        assert_eq!(r.last(1)[0].cycle, 1);
    }

    #[test]
    fn clear_resets() {
        let mut r = TraceRing::new(2);
        r.push(rec(1));
        r.clear();
        assert!(r.is_empty());
        r.push(rec(2));
        assert_eq!(r.iter().count(), 1);
    }

    #[test]
    fn signature_sensitive_to_order_and_value() {
        assert_ne!(input_signature(&[1, 2]), input_signature(&[2, 1]));
        assert_ne!(input_signature(&[1]), input_signature(&[1, 0]));
        assert_eq!(input_signature(&[5, 6]), input_signature(&[5, 6]));
    }

    #[test]
    #[should_panic(expected = "trace ring needs capacity")]
    fn zero_capacity_panics() {
        let _ = TraceRing::new(0);
    }
}
