//! Branch prediction for the in-order pipeline timing model.
//!
//! The IFU the paper protects contains a branch predictor whose state is
//! among the things forwarded over the vertical buses during leftover
//! warm-up (§III-C). This module provides the timing-model counterpart:
//! a classic 2-bit-counter direction predictor with a direct-mapped BTB.
//! Correctly predicted control flow pays no redirect penalty; mispredicts
//! pay [`crate::pipeline::TimingParams::branch_penalty`].

use serde::{Deserialize, Serialize};

/// 2-bit saturating counter states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
enum Counter {
    StrongNot,
    WeakNot,
    WeakTaken,
    StrongTaken,
}

impl Counter {
    fn taken(self) -> bool {
        matches!(self, Counter::WeakTaken | Counter::StrongTaken)
    }

    fn update(self, taken: bool) -> Counter {
        match (self, taken) {
            (Counter::StrongNot, true) => Counter::WeakNot,
            (Counter::WeakNot, true) => Counter::WeakTaken,
            (Counter::WeakTaken, true) | (Counter::StrongTaken, true) => Counter::StrongTaken,
            (Counter::StrongTaken, false) => Counter::WeakTaken,
            (Counter::WeakTaken, false) => Counter::WeakNot,
            (Counter::WeakNot, false) | (Counter::StrongNot, false) => Counter::StrongNot,
        }
    }
}

/// A bimodal (2-bit counter) predictor with a direct-mapped BTB.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BranchPredictor {
    counters: Vec<Counter>,
    /// `btb[idx] = (tag, target)`.
    btb: Vec<Option<(u32, u32)>>,
    predictions: u64,
    mispredictions: u64,
}

impl BranchPredictor {
    /// Creates a predictor with `entries` counters/BTB slots (rounded up
    /// to a power of two, minimum 16).
    #[must_use]
    pub fn new(entries: usize) -> Self {
        let n = entries.next_power_of_two().max(16);
        BranchPredictor {
            counters: vec![Counter::WeakNot; n],
            btb: vec![None; n],
            predictions: 0,
            mispredictions: 0,
        }
    }

    fn index(&self, pc: u32) -> usize {
        (pc as usize) & (self.counters.len() - 1)
    }

    /// Predicts the next PC for the branch at `pc` (`fallthrough` is
    /// `pc + 1`). Returns the predicted target.
    #[must_use]
    pub fn predict(&self, pc: u32, fallthrough: u32) -> u32 {
        let i = self.index(pc);
        if self.counters[i].taken() {
            if let Some((tag, target)) = self.btb[i] {
                if tag == pc {
                    return target;
                }
            }
        }
        fallthrough
    }

    /// Trains the predictor with the resolved outcome and returns whether
    /// the earlier prediction was correct.
    pub fn resolve(&mut self, pc: u32, fallthrough: u32, actual_target: u32) -> bool {
        let predicted = self.predict(pc, fallthrough);
        let taken = actual_target != fallthrough;
        let i = self.index(pc);
        self.counters[i] = self.counters[i].update(taken);
        if taken {
            self.btb[i] = Some((pc, actual_target));
        }
        self.predictions += 1;
        let correct = predicted == actual_target;
        if !correct {
            self.mispredictions += 1;
        }
        correct
    }

    /// Branches resolved so far.
    #[must_use]
    pub fn predictions(&self) -> u64 {
        self.predictions
    }

    /// Mispredictions so far.
    #[must_use]
    pub fn mispredictions(&self) -> u64 {
        self.mispredictions
    }

    /// Prediction accuracy in `[0, 1]` (1.0 when nothing resolved yet).
    #[must_use]
    pub fn accuracy(&self) -> f64 {
        if self.predictions == 0 {
            1.0
        } else {
            1.0 - self.mispredictions as f64 / self.predictions as f64
        }
    }

    /// Clears all learned state (a swapped-in leftover without warm-up;
    /// with warm-up, the state is forwarded and this is not called).
    pub fn reset(&mut self) {
        self.counters.fill(Counter::WeakNot);
        self.btb.fill(None);
    }
}

impl Default for BranchPredictor {
    fn default() -> Self {
        BranchPredictor::new(256)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_a_steady_loop() {
        let mut p = BranchPredictor::new(16);
        let (pc, fall, target) = (10, 11, 5);
        // First iterations mispredict; after training, all correct.
        for _ in 0..4 {
            p.resolve(pc, fall, target);
        }
        assert_eq!(p.predict(pc, fall), target);
        let before = p.mispredictions();
        for _ in 0..100 {
            assert!(p.resolve(pc, fall, target));
        }
        assert_eq!(p.mispredictions(), before);
        assert!(p.accuracy() > 0.9);
    }

    #[test]
    fn loop_exit_mispredicts_once() {
        let mut p = BranchPredictor::new(16);
        let (pc, fall, target) = (10, 11, 5);
        for _ in 0..8 {
            p.resolve(pc, fall, target);
        }
        assert!(!p.resolve(pc, fall, fall), "exit iteration mispredicts");
        // Hysteresis: one not-taken does not flush the loop behavior.
        assert!(p.resolve(pc, fall, target), "2-bit counter retains the bias");
    }

    #[test]
    fn btb_tag_prevents_aliased_targets() {
        let mut p = BranchPredictor::new(16);
        // Train pc=3 strongly taken to 100.
        for _ in 0..4 {
            p.resolve(3, 4, 100);
        }
        // pc=19 aliases to the same counter (index 3) but has no BTB tag
        // match: prediction must fall through rather than jump to 100.
        assert_eq!(p.predict(19, 20), 20);
    }

    #[test]
    fn reset_forgets() {
        let mut p = BranchPredictor::new(16);
        for _ in 0..4 {
            p.resolve(3, 4, 100);
        }
        p.reset();
        assert_eq!(p.predict(3, 4), 4);
    }
}
