//! Per-physical-stage activity accounting.

use crate::stage::StageId;
use r2d3_isa::Unit;
use serde::{Deserialize, Serialize};

/// Busy-cycle counters for every physical stage in the stack.
///
/// Activity factors (`busy / elapsed`) are the utilization signal that
/// drives the power map, the thermal solve and the NBTI duty factor in
/// the lifetime simulation, and the `α_i` inputs of the paper's Eq. 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ActivityStats {
    layers: usize,
    busy: Vec<u64>,
}

impl ActivityStats {
    /// Zeroed counters for a stack of `layers` tiers.
    #[must_use]
    pub fn new(layers: usize) -> Self {
        ActivityStats { layers, busy: vec![0; layers * Unit::COUNT] }
    }

    /// Number of tiers covered.
    #[must_use]
    pub fn layers(&self) -> usize {
        self.layers
    }

    /// Adds busy cycles to a stage.
    pub fn add_busy(&mut self, stage: StageId, cycles: u64) {
        if stage.layer < self.layers {
            self.busy[stage.flat_index()] += cycles;
        }
    }

    /// Busy cycles of a stage.
    #[must_use]
    pub fn busy(&self, stage: StageId) -> u64 {
        if stage.layer < self.layers {
            self.busy[stage.flat_index()]
        } else {
            0
        }
    }

    /// Activity factor of a stage over a window of `elapsed` cycles,
    /// clamped to `[0, 1]`.
    #[must_use]
    pub fn activity_factor(&self, stage: StageId, elapsed: u64) -> f64 {
        if elapsed == 0 {
            0.0
        } else {
            (self.busy(stage) as f64 / elapsed as f64).min(1.0)
        }
    }

    /// Total busy cycles of one unit type across all layers.
    #[must_use]
    pub fn unit_busy(&self, unit: Unit) -> u64 {
        (0..self.layers).map(|l| self.busy(StageId::new(l, unit))).sum()
    }

    /// Total busy cycles of all stages on one layer.
    #[must_use]
    pub fn layer_busy(&self, layer: usize) -> u64 {
        Unit::ALL.iter().map(|&u| self.busy(StageId::new(layer, u))).sum()
    }

    /// Resets all counters (start of a new measurement window).
    pub fn reset(&mut self) {
        self.busy.iter_mut().for_each(|b| *b = 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulate_and_query() {
        let mut s = ActivityStats::new(4);
        let id = StageId::new(2, Unit::Exu);
        s.add_busy(id, 10);
        s.add_busy(id, 5);
        assert_eq!(s.busy(id), 15);
        assert_eq!(s.unit_busy(Unit::Exu), 15);
        assert_eq!(s.layer_busy(2), 15);
        assert_eq!(s.layer_busy(0), 0);
    }

    #[test]
    fn activity_factor_clamped() {
        let mut s = ActivityStats::new(1);
        let id = StageId::new(0, Unit::Ifu);
        s.add_busy(id, 200);
        assert_eq!(s.activity_factor(id, 100), 1.0);
        assert_eq!(s.activity_factor(id, 400), 0.5);
        assert_eq!(s.activity_factor(id, 0), 0.0);
    }

    #[test]
    fn out_of_range_is_ignored() {
        let mut s = ActivityStats::new(2);
        s.add_busy(StageId::new(7, Unit::Ifu), 10);
        assert_eq!(s.busy(StageId::new(7, Unit::Ifu)), 0);
    }

    #[test]
    fn reset_zeroes() {
        let mut s = ActivityStats::new(2);
        s.add_busy(StageId::new(1, Unit::Lsu), 3);
        s.reset();
        assert_eq!(s.busy(StageId::new(1, Unit::Lsu)), 0);
    }
}
