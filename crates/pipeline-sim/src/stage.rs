//! Physical pipeline stages: identity, health and fault effects.

use r2d3_isa::Unit;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifies one physical stage in the 3D stack: a unit on a layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct StageId {
    /// Vertical tier (0 = closest to the heat sink).
    pub layer: usize,
    /// Pipeline unit type.
    pub unit: Unit,
}

impl StageId {
    /// Convenience constructor.
    #[must_use]
    pub fn new(layer: usize, unit: Unit) -> Self {
        StageId { layer, unit }
    }

    /// Flat index within a stack of `layers` tiers (layer-major).
    #[must_use]
    pub fn flat_index(&self) -> usize {
        self.layer * Unit::COUNT + self.unit.index()
    }

    /// Inverse of [`flat_index`](StageId::flat_index).
    #[must_use]
    pub fn from_flat_index(i: usize) -> StageId {
        StageId {
            layer: i / Unit::COUNT,
            unit: Unit::from_index(i % Unit::COUNT).expect("mod COUNT is in range"),
        }
    }

    /// Enumerates every stage of a stack.
    pub fn all(layers: usize) -> impl Iterator<Item = StageId> {
        (0..layers * Unit::COUNT).map(StageId::from_flat_index)
    }
}

impl fmt::Display for StageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@L{}", self.unit, self.layer)
    }
}

/// Behavioral effect of a permanent stuck-at defect on a stage's output
/// word: bit `bit` of every value the stage produces is forced to `stuck`.
///
/// This is the behavioral projection of the gate-level stuck-at model the
/// ATPG campaign uses: whether a given operation *manifests* the fault
/// depends on whether the correct output already has that bit at the
/// stuck value — so detection latency is data-dependent, as in silicon.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FaultEffect {
    /// Output bit position (0–31).
    pub bit: u8,
    /// Forced value.
    pub stuck: bool,
}

impl FaultEffect {
    /// Applies the effect to an output word.
    #[must_use]
    pub fn apply(&self, value: u32) -> u32 {
        let mask = 1u32 << (self.bit as u32 & 31);
        if self.stuck {
            value | mask
        } else {
            value & !mask
        }
    }

    /// Whether the effect changes this particular value.
    #[must_use]
    pub fn corrupts(&self, value: u32) -> bool {
        self.apply(value) != value
    }
}

/// Health state of a physical stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum StageHealth {
    /// Fully functional.
    #[default]
    Healthy,
    /// Permanently defective with the given behavioral effect.
    Faulty(FaultEffect),
    /// Functional but power-gated (a leftover available for detection
    /// duty or rotation).
    PoweredOff,
}

impl StageHealth {
    /// Whether the stage can do useful work right now.
    #[must_use]
    pub fn is_usable(&self) -> bool {
        matches!(self, StageHealth::Healthy | StageHealth::PoweredOff)
    }

    /// Whether the stage is permanently broken.
    #[must_use]
    pub fn is_faulty(&self) -> bool {
        matches!(self, StageHealth::Faulty(_))
    }

    /// The fault effect, if any.
    #[must_use]
    pub fn effect(&self) -> Option<FaultEffect> {
        match self {
            StageHealth::Faulty(e) => Some(*e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_index_roundtrip() {
        for id in StageId::all(8) {
            assert_eq!(StageId::from_flat_index(id.flat_index()), id);
        }
        assert_eq!(StageId::all(8).count(), 40);
    }

    #[test]
    fn fault_effect_semantics() {
        let sa1 = FaultEffect { bit: 3, stuck: true };
        assert_eq!(sa1.apply(0), 8);
        assert_eq!(sa1.apply(8), 8);
        assert!(sa1.corrupts(0));
        assert!(!sa1.corrupts(8), "value already has the bit set");

        let sa0 = FaultEffect { bit: 0, stuck: false };
        assert_eq!(sa0.apply(0xff), 0xfe);
        assert!(!sa0.corrupts(0xfe));
    }

    #[test]
    fn health_predicates() {
        assert!(StageHealth::Healthy.is_usable());
        assert!(StageHealth::PoweredOff.is_usable());
        let f = StageHealth::Faulty(FaultEffect { bit: 0, stuck: true });
        assert!(!f.is_usable());
        assert!(f.is_faulty());
        assert!(f.effect().is_some());
        assert_eq!(StageHealth::Healthy.effect(), None);
    }

    #[test]
    fn display_format() {
        let s = StageId::new(3, Unit::Lsu);
        assert_eq!(s.to_string(), "LSU@L3");
    }
}
