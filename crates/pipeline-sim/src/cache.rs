//! Set-associative caches and the Table II memory hierarchy.

use serde::{Deserialize, Serialize};

/// Geometry and timing of one cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Capacity in bytes.
    pub size_bytes: usize,
    /// Associativity.
    pub ways: usize,
    /// Line size in bytes.
    pub line_bytes: usize,
    /// Hit latency in cycles.
    pub hit_cycles: u64,
}

impl CacheConfig {
    /// Paper Table II: 8 kB 4-way private L1 D-cache.
    #[must_use]
    pub fn l1d() -> Self {
        CacheConfig { size_bytes: 8 * 1024, ways: 4, line_bytes: 32, hit_cycles: 1 }
    }

    /// Paper Table II: 4 kB 4-way private I-cache.
    #[must_use]
    pub fn l1i() -> Self {
        CacheConfig { size_bytes: 4 * 1024, ways: 4, line_bytes: 32, hit_cycles: 1 }
    }

    /// Paper Table II: 64 kB 4-way shared L2.
    #[must_use]
    pub fn l2() -> Self {
        CacheConfig { size_bytes: 64 * 1024, ways: 4, line_bytes: 32, hit_cycles: 8 }
    }

    /// Number of sets.
    #[must_use]
    pub fn sets(&self) -> usize {
        (self.size_bytes / self.line_bytes / self.ways).max(1)
    }
}

/// A set-associative cache with true-LRU replacement.
///
/// Addresses are in words (matching the ISA); tags are computed over the
/// line-aligned word address. The cache tracks only presence (this is a
/// timing model; data lives in the pipeline's memory image).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cache {
    config: CacheConfig,
    /// `tags[set * ways + way]`: tag + valid, LRU-ordered per set
    /// (index 0 = most recently used).
    tags: Vec<Option<u32>>,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Creates an empty (all-invalid) cache.
    #[must_use]
    pub fn new(config: CacheConfig) -> Self {
        Cache { tags: vec![None; config.sets() * config.ways], config, hits: 0, misses: 0 }
    }

    /// The cache's configuration.
    #[must_use]
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Accesses a word address; returns `true` on hit. On miss the line is
    /// filled (allocate-on-miss for both loads and stores).
    pub fn access(&mut self, word_addr: u32) -> bool {
        let words_per_line = (self.config.line_bytes / 4).max(1) as u32;
        let line = word_addr / words_per_line;
        let sets = self.config.sets() as u32;
        let set = (line % sets) as usize;
        let tag = line / sets;
        let ways = self.config.ways;
        let base = set * ways;
        let slots = &mut self.tags[base..base + ways];

        if let Some(pos) = slots.iter().position(|t| *t == Some(tag)) {
            // Move to MRU.
            slots[..=pos].rotate_right(1);
            self.hits += 1;
            true
        } else {
            // Evict LRU (last), insert at MRU.
            slots.rotate_right(1);
            slots[0] = Some(tag);
            self.misses += 1;
            false
        }
    }

    /// Hit count since construction.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Miss count since construction.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit rate in `[0, 1]` (1.0 when never accessed).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// The per-pipeline view of the memory hierarchy: private L1I/L1D, a
/// handle to the shared L2, and the DRAM latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryHierarchy {
    /// L1 D-cache config.
    pub l1d: CacheConfig,
    /// L1 I-cache config.
    pub l1i: CacheConfig,
    /// Shared L2 config.
    pub l2: CacheConfig,
    /// Main-memory access latency in cycles (Table II: 4-channel
    /// DDR4-2400; ≈60 ns at 1 GHz).
    pub memory_cycles: u64,
}

impl Default for MemoryHierarchy {
    fn default() -> Self {
        MemoryHierarchy {
            l1d: CacheConfig::l1d(),
            l1i: CacheConfig::l1i(),
            l2: CacheConfig::l2(),
            memory_cycles: 60,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_access_misses_then_hits() {
        let mut c = Cache::new(CacheConfig::l1d());
        assert!(!c.access(100));
        assert!(c.access(100));
        assert!(c.access(101), "same 32-byte line");
        assert_eq!(c.misses(), 1);
        assert_eq!(c.hits(), 2);
    }

    #[test]
    fn lru_evicts_oldest() {
        // 2-set toy cache: 2 ways, 1-word lines, 2 sets.
        let cfg = CacheConfig { size_bytes: 16, ways: 2, line_bytes: 4, hit_cycles: 1 };
        assert_eq!(cfg.sets(), 2);
        let mut c = Cache::new(cfg);
        // Set 0 gets addresses 0, 2, 4 (tags 0,1,2).
        c.access(0);
        c.access(2);
        assert!(c.access(0), "0 still resident");
        c.access(4); // evicts 2 (LRU), not 0
        assert!(c.access(0), "0 was MRU, survives");
        assert!(!c.access(2), "2 was evicted");
    }

    #[test]
    fn sets_capacity_conservation() {
        let cfg = CacheConfig::l1d();
        assert_eq!(cfg.sets() * cfg.ways * cfg.line_bytes, cfg.size_bytes);
    }

    #[test]
    fn working_set_larger_than_cache_thrashes() {
        let cfg = CacheConfig { size_bytes: 64, ways: 2, line_bytes: 4, hit_cycles: 1 };
        let mut c = Cache::new(cfg);
        // Stream over 64 distinct words twice: capacity is 16 words.
        for _ in 0..2 {
            for a in 0..64u32 {
                c.access(a * 7); // stride to spread across sets
            }
        }
        assert!(c.hit_rate() < 0.2, "hit rate {}", c.hit_rate());
    }

    #[test]
    fn hit_rate_defaults_to_one() {
        let c = Cache::new(CacheConfig::l2());
        assert_eq!(c.hit_rate(), 1.0);
    }
}
