//! The reconfigurable crossbar fabric: logical-pipeline → physical-stage
//! assignment, plus the vertical interconnect's own fault universe —
//! TSV link faults on the per-stage link bundles and mux-select upsets
//! on the per-slot route registers.

use crate::stage::StageId;
use crate::SimError;
use r2d3_isa::Unit;
use serde::{Deserialize, Serialize};

/// A fault armed on one vertical TSV link bundle — the bundle that
/// carries the stage at `(layer, unit)`'s outputs into the crossbar.
/// Link faults corrupt values *in flight*: the stage computes correctly,
/// the consumer (and the stage's trace ring, which snoops the delivered
/// bundle) sees the corrupted value. The engine's replay network bypasses
/// the TSVs, so replays of a link-faulted stage come back clean — the
/// observable signature that separates a path fault from a stage fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LinkFault {
    /// Bits under `mask` stuck at `pattern`'s values (open/short TSV).
    Stuck {
        /// Which delivered bits are stuck.
        mask: u32,
        /// The values they are stuck at.
        pattern: u32,
    },
    /// Wired-OR bridge to the same-unit link bundle on `other_layer`:
    /// bits under `mask` are forced high while the partner link is
    /// active (its stage is serving a pipeline). With the partner idle
    /// the bridge is electrically silent.
    Bridge {
        /// Layer of the bridged same-unit link.
        other_layer: usize,
        /// Bits shorted across the pair.
        mask: u32,
    },
    /// Capacitive coupling from the same-unit link on `aggressor_layer`:
    /// every `period`-th transfer (at offset `phase`) flips the bits
    /// under `mask`, but only while the aggressor link is switching
    /// (its stage is serving a pipeline).
    Crosstalk {
        /// Layer of the aggressor link.
        aggressor_layer: usize,
        /// Victim bits that flip.
        mask: u32,
        /// Transfer period of the coupling beat.
        period: u64,
        /// Offset of the flip within the period.
        phase: u64,
    },
    /// One-shot SEU/MBU burst: the next `ops` transfers flip the bits
    /// under `mask`, then the upset clears itself.
    BurstOnce {
        /// Bits upset by the particle strike.
        mask: u32,
        /// Transfers corrupted before the burst dissipates.
        ops: u32,
    },
}

/// A link fault plus its per-link transfer counter (crosstalk beats and
/// burst depletion are functions of delivered-transfer count).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct ArmedLink {
    fault: LinkFault,
    ticks: u64,
}

/// Deterministic corruption a wrong mux select inflicts: the consumer
/// latches a bundle that is skewed/misaligned relative to the producer
/// it expected. Nonzero for every `expected != actual` pair.
#[must_use]
fn misroute_skew(expected: usize, actual: usize, unit: Unit) -> u32 {
    (0xA5A5_0000u32 | ((expected as u32 & 0xFF) << 8) | (actual as u32 & 0xFF))
        .rotate_left(unit.index() as u32)
}

/// Crossbar configuration: for each logical pipeline and unit type, which
/// layer's physical stage currently does the work.
///
/// The identity configuration (pipeline `p` uses all of layer `p`'s
/// stages) models a hard-wired NoRecon stack; the R2D3 controller
/// reconfigures the map to route around faults and rotate leftovers.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Fabric {
    layers: usize,
    /// `assignment[pipe][unit] = Some(layer)`.
    assignment: Vec<[Option<usize>; 5]>,
    /// `link_faults[layer][unit]`: armed fault on that stage's TSV bundle.
    link_faults: Vec<[Option<ArmedLink>; 5]>,
    /// `route_override[pipe][unit] = Some(layer)`: the slot's mux-select
    /// register was upset and reads `layer` instead of the assignment.
    /// Rewriting the register (assign/unassign/scrub) clears it.
    route_override: Vec<[Option<usize>; 5]>,
}

impl Fabric {
    /// Identity fabric: `pipelines` logical pipelines, pipeline `p` mapped
    /// onto layer `p` for every unit.
    ///
    /// # Panics
    ///
    /// Panics if `pipelines > layers`.
    #[must_use]
    pub fn identity(layers: usize, pipelines: usize) -> Self {
        assert!(pipelines <= layers, "more pipelines than layers");
        let assignment = (0..pipelines).map(|p| [Some(p); 5]).collect();
        Fabric {
            layers,
            assignment,
            link_faults: vec![[None; 5]; layers],
            route_override: vec![[None; 5]; pipelines],
        }
    }

    /// An empty fabric with `pipelines` unmapped logical pipelines.
    #[must_use]
    pub fn unmapped(layers: usize, pipelines: usize) -> Self {
        Fabric {
            layers,
            assignment: vec![[None; 5]; pipelines],
            link_faults: vec![[None; 5]; layers],
            route_override: vec![[None; 5]; pipelines],
        }
    }

    /// Number of tiers in the stack.
    #[must_use]
    pub fn layers(&self) -> usize {
        self.layers
    }

    /// Number of logical pipelines (mapped or not).
    #[must_use]
    pub fn pipelines(&self) -> usize {
        self.assignment.len()
    }

    /// The physical stage serving `pipe`'s `unit` slot, if mapped.
    #[must_use]
    pub fn stage_for(&self, pipe: usize, unit: Unit) -> Option<StageId> {
        self.assignment
            .get(pipe)?
            .get(unit.index())
            .copied()
            .flatten()
            .map(|layer| StageId { layer, unit })
    }

    /// Maps `pipe`'s `unit` slot to the stage on `layer`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownPipeline`] / [`SimError::UnknownStage`]
    /// for out-of-range indices and [`SimError::InvalidFabric`] if another
    /// pipeline already uses that physical stage.
    pub fn assign(&mut self, pipe: usize, unit: Unit, layer: usize) -> Result<(), SimError> {
        if pipe >= self.assignment.len() {
            return Err(SimError::UnknownPipeline(pipe));
        }
        if layer >= self.layers {
            return Err(SimError::UnknownStage(StageId { layer, unit }));
        }
        for (other, slots) in self.assignment.iter().enumerate() {
            if other != pipe && slots[unit.index()] == Some(layer) {
                return Err(SimError::InvalidFabric(format!(
                    "stage {} already serves pipeline {other}",
                    StageId { layer, unit }
                )));
            }
        }
        self.assignment[pipe][unit.index()] = Some(layer);
        // Writing the select register replaces whatever an upset left in it.
        if let Some(row) = self.route_override.get_mut(pipe) {
            row[unit.index()] = None;
        }
        Ok(())
    }

    /// Unmaps `pipe`'s `unit` slot (the pipeline becomes incomplete).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownPipeline`] for an out-of-range pipeline.
    pub fn unassign(&mut self, pipe: usize, unit: Unit) -> Result<(), SimError> {
        if pipe >= self.assignment.len() {
            return Err(SimError::UnknownPipeline(pipe));
        }
        self.assignment[pipe][unit.index()] = None;
        if let Some(row) = self.route_override.get_mut(pipe) {
            row[unit.index()] = None;
        }
        Ok(())
    }

    /// Arms `fault` on the TSV link bundle of the stage at
    /// `(layer, unit)`, replacing any fault already armed there.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownStage`] for an out-of-range layer.
    pub fn inject_link_fault(
        &mut self,
        layer: usize,
        unit: Unit,
        fault: LinkFault,
    ) -> Result<(), SimError> {
        if layer >= self.layers {
            return Err(SimError::UnknownStage(StageId { layer, unit }));
        }
        if self.link_faults.len() < self.layers {
            self.link_faults.resize(self.layers, [None; 5]);
        }
        self.link_faults[layer][unit.index()] = Some(ArmedLink { fault, ticks: 0 });
        Ok(())
    }

    /// Upsets the mux-select register of `pipe`'s `unit` slot so the
    /// crossbar latches from `layer` instead of the assignment. The
    /// assignment itself (the controller's *intent*) is untouched —
    /// only a hardware readback ([`route_readback`](Self::route_readback))
    /// or the resulting data corruption can reveal the upset.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownPipeline`] / [`SimError::UnknownStage`]
    /// for out-of-range indices.
    pub fn override_route(
        &mut self,
        pipe: usize,
        unit: Unit,
        layer: usize,
    ) -> Result<(), SimError> {
        if pipe >= self.assignment.len() {
            return Err(SimError::UnknownPipeline(pipe));
        }
        if layer >= self.layers {
            return Err(SimError::UnknownStage(StageId { layer, unit }));
        }
        if self.route_override.len() < self.assignment.len() {
            self.route_override.resize(self.assignment.len(), [None; 5]);
        }
        self.route_override[pipe][unit.index()] = Some(layer);
        Ok(())
    }

    /// The layer the mux-select *hardware* of `pipe`'s `unit` slot
    /// actually reads — the assignment unless an upset overrode it.
    /// `None` for unmapped slots.
    #[must_use]
    pub fn route_readback(&self, pipe: usize, unit: Unit) -> Option<usize> {
        let u = unit.index();
        self.route_override
            .get(pipe)
            .and_then(|row| row[u])
            .or_else(|| self.assignment.get(pipe).and_then(|row| row[u]))
    }

    /// Rewrites `pipe`'s `unit` select register from the assignment
    /// (the controller's route-scrub repair), clearing any upset.
    pub fn scrub_route(&mut self, pipe: usize, unit: Unit) {
        if let Some(row) = self.route_override.get_mut(pipe) {
            row[unit.index()] = None;
        }
    }

    /// Passes one delivered value of `pipe`'s `unit` slot through the
    /// vertical interconnect: applies any link fault armed on the serving
    /// stage's TSV bundle, then any mux-select upset on the slot. Returns
    /// the value the consumer actually latches; a result different from
    /// `value` means the transfer was corrupted in flight.
    pub fn deliver(&mut self, pipe: usize, unit: Unit, value: u32) -> u32 {
        let u = unit.index();
        let Some(layer) = self.assignment.get(pipe).and_then(|row| row[u]) else {
            return value;
        };
        let mut out = value;
        let assignment = &self.assignment;
        let serving = |l: usize| assignment.iter().any(|row| row[u] == Some(l));
        if let Some(armed) = self.link_faults.get_mut(layer).and_then(|row| row[u].as_mut()) {
            let tick = armed.ticks;
            armed.ticks += 1;
            match &mut armed.fault {
                LinkFault::Stuck { mask, pattern } => {
                    out = (out & !*mask) | (*pattern & *mask);
                }
                LinkFault::Bridge { other_layer, mask } => {
                    if serving(*other_layer) {
                        out |= *mask;
                    }
                }
                LinkFault::Crosstalk { aggressor_layer, mask, period, phase } => {
                    if serving(*aggressor_layer) && *period > 0 && tick % *period == *phase {
                        out ^= *mask;
                    }
                }
                LinkFault::BurstOnce { mask, ops } => {
                    if *ops > 0 {
                        out ^= *mask;
                        *ops -= 1;
                    }
                }
            }
        }
        if let Some(wrong) = self.route_override.get(pipe).and_then(|row| row[u]) {
            if wrong != layer {
                out ^= misroute_skew(layer, wrong, unit);
            }
        }
        out
    }

    /// Whether `pipe` has all five unit slots mapped.
    #[must_use]
    pub fn is_complete(&self, pipe: usize) -> bool {
        self.assignment.get(pipe).is_some_and(|slots| slots.iter().all(Option::is_some))
    }

    /// Number of complete logical pipelines.
    #[must_use]
    pub fn complete_pipelines(&self) -> usize {
        (0..self.pipelines()).filter(|&p| self.is_complete(p)).count()
    }

    /// Physical stages currently serving no pipeline (candidate leftovers,
    /// before health filtering).
    #[must_use]
    pub fn unassigned_stages(&self) -> Vec<StageId> {
        let mut used = vec![false; self.layers * Unit::COUNT];
        for slots in &self.assignment {
            for (ui, layer) in slots.iter().enumerate() {
                if let Some(l) = layer {
                    used[l * Unit::COUNT + ui] = true;
                }
            }
        }
        StageId::all(self.layers).filter(|s| !used[s.flat_index()]).collect()
    }

    /// Number of vertical tiers an instruction crosses between `unit` and
    /// the next unit in program order for `pipe` (crossbar hop length).
    #[must_use]
    pub fn crossing_distance(&self, pipe: usize, from: Unit, to: Unit) -> Option<usize> {
        let a = self.stage_for(pipe, from)?;
        let b = self.stage_for(pipe, to)?;
        Some(a.layer.abs_diff(b.layer))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_complete() {
        let f = Fabric::identity(8, 8);
        assert_eq!(f.complete_pipelines(), 8);
        assert!(f.unassigned_stages().is_empty());
        assert_eq!(f.stage_for(3, Unit::Exu), Some(StageId::new(3, Unit::Exu)));
        assert_eq!(f.crossing_distance(3, Unit::Ifu, Unit::Exu), Some(0));
    }

    #[test]
    fn partial_stack_has_leftovers() {
        let f = Fabric::identity(8, 6);
        assert_eq!(f.complete_pipelines(), 6);
        assert_eq!(f.unassigned_stages().len(), 10, "two spare layers × five units");
    }

    #[test]
    fn double_assignment_rejected() {
        let mut f = Fabric::identity(4, 2);
        // Pipeline 1 tries to steal pipeline 0's EXU.
        let err = f.assign(1, Unit::Exu, 0).unwrap_err();
        assert!(matches!(err, SimError::InvalidFabric(_)));
        // Free it first, then it works.
        f.unassign(0, Unit::Exu).unwrap();
        f.assign(1, Unit::Exu, 0).unwrap();
        assert!(!f.is_complete(0));
        assert_eq!(f.crossing_distance(1, Unit::Ifu, Unit::Exu), Some(1));
    }

    #[test]
    fn bounds_checked() {
        let mut f = Fabric::identity(4, 2);
        assert!(matches!(f.assign(9, Unit::Ifu, 0), Err(SimError::UnknownPipeline(9))));
        assert!(matches!(f.assign(0, Unit::Ifu, 9), Err(SimError::UnknownStage(_))));
        assert!(f.unassign(9, Unit::Ifu).is_err());
    }

    #[test]
    #[should_panic(expected = "more pipelines than layers")]
    fn identity_requires_enough_layers() {
        let _ = Fabric::identity(2, 3);
    }

    #[test]
    fn stuck_link_forces_masked_bits() {
        let mut f = Fabric::identity(4, 2);
        f.inject_link_fault(1, Unit::Exu, LinkFault::Stuck { mask: 0xF0, pattern: 0xA0 }).unwrap();
        assert_eq!(f.deliver(1, Unit::Exu, 0x0F), 0xAF);
        assert_eq!(f.deliver(1, Unit::Exu, 0xAF), 0xAF, "already-matching bits pass clean");
        // Other links and other units are untouched.
        assert_eq!(f.deliver(0, Unit::Exu, 0x0F), 0x0F);
        assert_eq!(f.deliver(1, Unit::Ifu, 0x0F), 0x0F);
        assert!(f
            .inject_link_fault(9, Unit::Exu, LinkFault::Stuck { mask: 1, pattern: 1 })
            .is_err());
    }

    #[test]
    fn bridge_is_gated_on_partner_activity() {
        let mut f = Fabric::identity(4, 2);
        f.inject_link_fault(0, Unit::Lsu, LinkFault::Bridge { other_layer: 1, mask: 0x3 }).unwrap();
        assert_eq!(f.deliver(0, Unit::Lsu, 0x10), 0x13, "partner serving -> wired-OR");
        // Unassign the partner: the bridge goes electrically silent.
        f.unassign(1, Unit::Lsu).unwrap();
        assert_eq!(f.deliver(0, Unit::Lsu, 0x10), 0x10);
    }

    #[test]
    fn crosstalk_beats_with_aggressor_and_burst_self_clears() {
        let mut f = Fabric::identity(4, 2);
        f.inject_link_fault(
            0,
            Unit::Ifu,
            LinkFault::Crosstalk { aggressor_layer: 1, mask: 0x1, period: 2, phase: 0 },
        )
        .unwrap();
        let flipped = (0..6).filter(|_| f.deliver(0, Unit::Ifu, 0) != 0).count();
        assert_eq!(flipped, 3, "every second transfer flips");

        f.inject_link_fault(1, Unit::Ifu, LinkFault::BurstOnce { mask: 0xFF, ops: 2 }).unwrap();
        let upset = (0..5).filter(|_| f.deliver(1, Unit::Ifu, 0) != 0).count();
        assert_eq!(upset, 2, "burst corrupts exactly `ops` transfers, then clears");
    }

    #[test]
    fn route_override_reads_back_and_scrubs() {
        let mut f = Fabric::identity(8, 4);
        assert_eq!(f.route_readback(2, Unit::Tlu), Some(2));
        f.override_route(2, Unit::Tlu, 6).unwrap();
        assert_eq!(f.route_readback(2, Unit::Tlu), Some(6));
        assert_eq!(f.stage_for(2, Unit::Tlu), Some(StageId::new(2, Unit::Tlu)), "intent intact");
        // A misrouted transfer is corrupted deterministically.
        let delivered = f.deliver(2, Unit::Tlu, 0x1234);
        assert_ne!(delivered, 0x1234);
        assert_eq!(f.deliver(2, Unit::Tlu, 0x1234), delivered, "skew is deterministic");
        // Scrubbing rewrites the select register from the assignment.
        f.scrub_route(2, Unit::Tlu);
        assert_eq!(f.route_readback(2, Unit::Tlu), Some(2));
        assert_eq!(f.deliver(2, Unit::Tlu, 0x1234), 0x1234);
        // Reassignment also rewrites the register.
        f.override_route(2, Unit::Tlu, 6).unwrap();
        f.unassign(2, Unit::Tlu).unwrap();
        f.assign(2, Unit::Tlu, 2).unwrap();
        assert_eq!(f.route_readback(2, Unit::Tlu), Some(2));
        assert!(f.override_route(9, Unit::Tlu, 0).is_err());
        assert!(f.override_route(0, Unit::Tlu, 9).is_err());
    }
}
