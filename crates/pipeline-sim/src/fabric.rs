//! The reconfigurable crossbar fabric: logical-pipeline → physical-stage
//! assignment.

use crate::stage::StageId;
use crate::SimError;
use r2d3_isa::Unit;
use serde::{Deserialize, Serialize};

/// Crossbar configuration: for each logical pipeline and unit type, which
/// layer's physical stage currently does the work.
///
/// The identity configuration (pipeline `p` uses all of layer `p`'s
/// stages) models a hard-wired NoRecon stack; the R2D3 controller
/// reconfigures the map to route around faults and rotate leftovers.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Fabric {
    layers: usize,
    /// `assignment[pipe][unit] = Some(layer)`.
    assignment: Vec<[Option<usize>; 5]>,
}

impl Fabric {
    /// Identity fabric: `pipelines` logical pipelines, pipeline `p` mapped
    /// onto layer `p` for every unit.
    ///
    /// # Panics
    ///
    /// Panics if `pipelines > layers`.
    #[must_use]
    pub fn identity(layers: usize, pipelines: usize) -> Self {
        assert!(pipelines <= layers, "more pipelines than layers");
        let assignment = (0..pipelines).map(|p| [Some(p); 5]).collect();
        Fabric { layers, assignment }
    }

    /// An empty fabric with `pipelines` unmapped logical pipelines.
    #[must_use]
    pub fn unmapped(layers: usize, pipelines: usize) -> Self {
        Fabric { layers, assignment: vec![[None; 5]; pipelines] }
    }

    /// Number of tiers in the stack.
    #[must_use]
    pub fn layers(&self) -> usize {
        self.layers
    }

    /// Number of logical pipelines (mapped or not).
    #[must_use]
    pub fn pipelines(&self) -> usize {
        self.assignment.len()
    }

    /// The physical stage serving `pipe`'s `unit` slot, if mapped.
    #[must_use]
    pub fn stage_for(&self, pipe: usize, unit: Unit) -> Option<StageId> {
        self.assignment
            .get(pipe)?
            .get(unit.index())
            .copied()
            .flatten()
            .map(|layer| StageId { layer, unit })
    }

    /// Maps `pipe`'s `unit` slot to the stage on `layer`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownPipeline`] / [`SimError::UnknownStage`]
    /// for out-of-range indices and [`SimError::InvalidFabric`] if another
    /// pipeline already uses that physical stage.
    pub fn assign(&mut self, pipe: usize, unit: Unit, layer: usize) -> Result<(), SimError> {
        if pipe >= self.assignment.len() {
            return Err(SimError::UnknownPipeline(pipe));
        }
        if layer >= self.layers {
            return Err(SimError::UnknownStage(StageId { layer, unit }));
        }
        for (other, slots) in self.assignment.iter().enumerate() {
            if other != pipe && slots[unit.index()] == Some(layer) {
                return Err(SimError::InvalidFabric(format!(
                    "stage {} already serves pipeline {other}",
                    StageId { layer, unit }
                )));
            }
        }
        self.assignment[pipe][unit.index()] = Some(layer);
        Ok(())
    }

    /// Unmaps `pipe`'s `unit` slot (the pipeline becomes incomplete).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownPipeline`] for an out-of-range pipeline.
    pub fn unassign(&mut self, pipe: usize, unit: Unit) -> Result<(), SimError> {
        if pipe >= self.assignment.len() {
            return Err(SimError::UnknownPipeline(pipe));
        }
        self.assignment[pipe][unit.index()] = None;
        Ok(())
    }

    /// Whether `pipe` has all five unit slots mapped.
    #[must_use]
    pub fn is_complete(&self, pipe: usize) -> bool {
        self.assignment.get(pipe).is_some_and(|slots| slots.iter().all(Option::is_some))
    }

    /// Number of complete logical pipelines.
    #[must_use]
    pub fn complete_pipelines(&self) -> usize {
        (0..self.pipelines()).filter(|&p| self.is_complete(p)).count()
    }

    /// Physical stages currently serving no pipeline (candidate leftovers,
    /// before health filtering).
    #[must_use]
    pub fn unassigned_stages(&self) -> Vec<StageId> {
        let mut used = vec![false; self.layers * Unit::COUNT];
        for slots in &self.assignment {
            for (ui, layer) in slots.iter().enumerate() {
                if let Some(l) = layer {
                    used[l * Unit::COUNT + ui] = true;
                }
            }
        }
        StageId::all(self.layers).filter(|s| !used[s.flat_index()]).collect()
    }

    /// Number of vertical tiers an instruction crosses between `unit` and
    /// the next unit in program order for `pipe` (crossbar hop length).
    #[must_use]
    pub fn crossing_distance(&self, pipe: usize, from: Unit, to: Unit) -> Option<usize> {
        let a = self.stage_for(pipe, from)?;
        let b = self.stage_for(pipe, to)?;
        Some(a.layer.abs_diff(b.layer))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_complete() {
        let f = Fabric::identity(8, 8);
        assert_eq!(f.complete_pipelines(), 8);
        assert!(f.unassigned_stages().is_empty());
        assert_eq!(f.stage_for(3, Unit::Exu), Some(StageId::new(3, Unit::Exu)));
        assert_eq!(f.crossing_distance(3, Unit::Ifu, Unit::Exu), Some(0));
    }

    #[test]
    fn partial_stack_has_leftovers() {
        let f = Fabric::identity(8, 6);
        assert_eq!(f.complete_pipelines(), 6);
        assert_eq!(f.unassigned_stages().len(), 10, "two spare layers × five units");
    }

    #[test]
    fn double_assignment_rejected() {
        let mut f = Fabric::identity(4, 2);
        // Pipeline 1 tries to steal pipeline 0's EXU.
        let err = f.assign(1, Unit::Exu, 0).unwrap_err();
        assert!(matches!(err, SimError::InvalidFabric(_)));
        // Free it first, then it works.
        f.unassign(0, Unit::Exu).unwrap();
        f.assign(1, Unit::Exu, 0).unwrap();
        assert!(!f.is_complete(0));
        assert_eq!(f.crossing_distance(1, Unit::Ifu, Unit::Exu), Some(1));
    }

    #[test]
    fn bounds_checked() {
        let mut f = Fabric::identity(4, 2);
        assert!(matches!(f.assign(9, Unit::Ifu, 0), Err(SimError::UnknownPipeline(9))));
        assert!(matches!(f.assign(0, Unit::Ifu, 9), Err(SimError::UnknownStage(_))));
        assert!(f.unassign(9, Unit::Ifu).is_err());
    }

    #[test]
    #[should_panic(expected = "more pipelines than layers")]
    fn identity_requires_enough_layers() {
        let _ = Fabric::identity(2, 3);
    }
}
