//! VCD (Value Change Dump) export of stage traces.
//!
//! The detection machinery already records every stage's I/O in trace
//! rings; this module dumps those records as an IEEE-1364 VCD waveform,
//! one 32-bit wire per physical stage (its actual output word) plus a
//! mismatch flag wherever actual ≠ golden — loadable in GTKWave &c. for
//! debugging fault scenarios.

use crate::stage::StageId;
use crate::system::System3d;
use std::fmt::Write as _;

/// VCD identifier for the `i`-th signal (printable ASCII starting at `!`).
fn ident(i: usize) -> String {
    let mut n = i;
    let mut s = String::new();
    loop {
        s.push((b'!' + (n % 94) as u8) as char);
        n /= 94;
        if n == 0 {
            break;
        }
    }
    s
}

/// Dumps all non-empty stage traces of `sys` as a VCD document.
///
/// Timestamps are the pipeline-local cycles stored in the records; one
/// `#time` section per distinct cycle, changes merged across stages.
#[must_use]
pub fn dump_vcd(sys: &System3d) -> String {
    let layers = sys.fabric().layers();
    let stages: Vec<StageId> =
        StageId::all(layers).filter(|s| !sys.stage_trace(*s).is_empty()).collect();

    let mut out = String::new();
    out.push_str("$date r2d3 trace $end\n$version r2d3-pipeline-sim $end\n");
    out.push_str("$timescale 1 ns $end\n$scope module stack $end\n");
    for (i, s) in stages.iter().enumerate() {
        let _ = writeln!(out, "$var wire 32 {} {}_out $end", ident(2 * i), s);
        let _ = writeln!(out, "$var wire 1 {} {}_mismatch $end", ident(2 * i + 1), s);
    }
    out.push_str("$upscope $end\n$enddefinitions $end\n");

    // Merge records across stages in cycle order.
    let mut events: Vec<(u64, usize, u32, bool)> = Vec::new();
    for (i, s) in stages.iter().enumerate() {
        for rec in sys.stage_trace(*s).iter() {
            events.push((rec.cycle, i, rec.actual_output, rec.actual_output != rec.golden_output));
        }
    }
    events.sort_by_key(|e| e.0);

    let mut last_time = u64::MAX;
    for (cycle, i, value, mismatch) in events {
        if cycle != last_time {
            let _ = writeln!(out, "#{cycle}");
            last_time = cycle;
        }
        let _ = writeln!(out, "b{value:b} {}", ident(2 * i));
        let _ = writeln!(out, "{}{}", u8::from(mismatch), ident(2 * i + 1));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stage::FaultEffect;
    use crate::system::SystemConfig;
    use r2d3_isa::kernels::gemv;
    use r2d3_isa::Unit;

    #[test]
    fn vcd_structure_is_well_formed() {
        let mut sys = System3d::new(&SystemConfig { pipelines: 2, ..Default::default() });
        sys.load_program(0, gemv(6, 6, 1).program().clone()).unwrap();
        sys.run(20_000).unwrap();
        let vcd = dump_vcd(&sys);
        assert!(vcd.contains("$enddefinitions $end"));
        assert!(vcd.contains("IFU@L0_out"));
        // Timestamps must be non-decreasing.
        let mut last = 0u64;
        for line in vcd.lines() {
            if let Some(ts) = line.strip_prefix('#') {
                let t: u64 = ts.parse().unwrap();
                assert!(t >= last, "timestamps regressed: {t} < {last}");
                last = t;
            }
        }
    }

    /// Counts raised scalar mismatch flags: lines of the form `1<ident>`
    /// (no space, not a `b…` vector change).
    fn raised_flags(vcd: &str) -> usize {
        vcd.lines()
            .filter(|l| {
                l.len() >= 2 && l.starts_with('1') && !l.contains(' ') && !l.starts_with('b')
            })
            .count()
    }

    #[test]
    fn mismatch_flag_appears_only_with_faults() {
        let mut clean = System3d::new(&SystemConfig { pipelines: 1, ..Default::default() });
        clean.load_program(0, gemv(6, 6, 2).program().clone()).unwrap();
        clean.run(20_000).unwrap();
        assert_eq!(raised_flags(&dump_vcd(&clean)), 0, "clean run must not raise flags");

        let mut faulty = System3d::new(&SystemConfig { pipelines: 1, ..Default::default() });
        faulty.load_program(0, gemv(6, 6, 2).program().clone()).unwrap();
        faulty
            .inject_fault(
                crate::stage::StageId::new(0, Unit::Exu),
                FaultEffect { bit: 0, stuck: true },
            )
            .unwrap();
        faulty.run(20_000).unwrap();
        assert!(raised_flags(&dump_vcd(&faulty)) > 0, "fault must raise mismatch flags");
    }

    #[test]
    fn ident_is_unique_and_printable() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..500 {
            let id = ident(i);
            assert!(id.chars().all(|c| ('!'..='~').contains(&c)));
            assert!(seen.insert(id), "identifier collision at {i}");
        }
    }
}
