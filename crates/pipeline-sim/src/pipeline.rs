//! One logical pipeline: architectural state plus timing annotations.

use crate::cache::{Cache, MemoryHierarchy};
use crate::predictor::BranchPredictor;
use crate::stage::FaultEffect;
use crate::trace::{input_signature, StageRecord};
use crate::SimError;
use r2d3_isa::{Instruction, IsaError, Program, Reg, Unit};

/// Timing constants for the in-order core (single-issue, Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct TimingParams {
    /// Redirect penalty of a taken branch/jump (cycles).
    pub branch_penalty: u64,
    /// Extra cycles of an FFU operation beyond the base cycle.
    pub ffu_extra: u64,
    /// Extra cycles of a trap beyond the base cycle.
    pub tlu_extra: u64,
    /// Load-to-use interlock penalty.
    pub load_use_penalty: u64,
}

impl Default for TimingParams {
    fn default() -> Self {
        TimingParams { branch_penalty: 2, ffu_extra: 2, tlu_extra: 3, load_use_penalty: 1 }
    }
}

/// Outcome of stepping one instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepOutcome {
    /// Cycles the instruction occupied the pipeline.
    pub cycles: u64,
    /// The retired instruction (post-IFU-corruption decode).
    pub instruction: Instruction,
}

/// Per-step side-channel the system provides: which fault effect (if any)
/// applies to each unit of this pipeline, including one-shot transients.
pub(crate) struct StageEffects {
    /// Permanent effect per unit (fabric-resolved).
    pub permanent: [Option<FaultEffect>; 5],
    /// One-shot transient per unit; consumed by the step.
    pub transient: [Option<FaultEffect>; 5],
}

impl StageEffects {
    pub(crate) fn none() -> Self {
        StageEffects { permanent: [None; 5], transient: [None; 5] }
    }

    fn apply(&mut self, unit: Unit, golden: u32) -> u32 {
        let mut v = golden;
        if let Some(e) = self.permanent[unit.index()] {
            v = e.apply(v);
        }
        if let Some(e) = self.transient[unit.index()].take() {
            v = e.apply(v);
        }
        v
    }
}

/// A committed architectural snapshot of one pipeline (program counter,
/// register file, data memory, retirement count).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PipelineCheckpoint {
    pc: u32,
    regs: [u32; 32],
    mem: Vec<u32>,
    halted: bool,
    retired: u64,
}

impl PipelineCheckpoint {
    /// Instructions retired at commit time.
    #[must_use]
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// FNV-1a digest over the full architectural payload (pc, registers,
    /// memory, halt flag, retirement count). Any single flipped bit of
    /// the snapshot changes the digest, which is what the checkpoint
    /// store's integrity check needs.
    #[must_use]
    pub fn digest(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut mix = |word: u64| {
            for byte in word.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(0x100_0000_01b3);
            }
        };
        mix(u64::from(self.pc));
        for r in &self.regs {
            mix(u64::from(*r));
        }
        for w in &self.mem {
            mix(u64::from(*w));
        }
        mix(u64::from(self.halted));
        mix(self.retired);
        h
    }

    /// Flips one seed-selected bit of the snapshot's payload — the
    /// fault-injection model for checkpoint storage rot (campaign
    /// harness ground truth; never called by the engine itself).
    pub fn corrupt_bit(&mut self, seed: u64) {
        let words = 1 + 32 + self.mem.len();
        let target = (seed as usize) % words;
        let bit = ((seed >> 32) % 32) as u32;
        match target {
            0 => self.pc ^= 1 << bit,
            t if t <= 32 => self.regs[t - 1] ^= 1 << bit,
            t => self.mem[t - 33] ^= 1 << bit,
        }
    }
}

/// A logical pipeline: ISA state, private L1 caches and timing counters.
///
/// The pipeline is *logical* — which physical stages execute its five
/// unit roles is decided by the [`crate::fabric::Fabric`]; this struct
/// receives the resolved fault effects from the system on every step.
#[derive(Debug, Clone)]
pub struct LogicalPipeline {
    id: usize,
    program: Option<Program>,
    pc: u32,
    regs: [u32; 32],
    mem: Vec<u32>,
    halted: bool,
    crashed: bool,
    /// Set once any corrupted value entered the architectural state.
    tainted: bool,
    cycle: u64,
    active_cycles: u64,
    retired: u64,
    l1i: Cache,
    l1d: Cache,
    predictor: BranchPredictor,
    timing: TimingParams,
    last_load_dest: Option<Reg>,
}

impl LogicalPipeline {
    /// Creates an idle pipeline with the given cache hierarchy.
    #[must_use]
    pub fn new(id: usize, hierarchy: &MemoryHierarchy, timing: TimingParams) -> Self {
        LogicalPipeline {
            id,
            program: None,
            pc: 0,
            regs: [0; 32],
            mem: Vec::new(),
            halted: true,
            crashed: false,
            tainted: false,
            cycle: 0,
            active_cycles: 0,
            retired: 0,
            l1i: Cache::new(hierarchy.l1i),
            l1d: Cache::new(hierarchy.l1d),
            predictor: BranchPredictor::default(),
            timing,
            last_load_dest: None,
        }
    }

    /// Loads a program and resets all architectural and timing state.
    pub fn load(&mut self, program: Program) {
        self.mem = program.initial_memory();
        self.program = Some(program);
        self.restart();
    }

    /// Restarts the loaded program from the beginning (the paper's
    /// post-repair recovery re-executes "starting either from a
    /// checkpoint or the beginning").
    pub fn restart(&mut self) {
        self.pc = 0;
        self.regs = [0; 32];
        if let Some(p) = &self.program {
            self.mem = p.initial_memory();
            self.halted = false;
        } else {
            self.halted = true;
        }
        self.crashed = false;
        self.tainted = false;
        self.retired = 0;
        self.active_cycles = 0;
        self.last_load_dest = None;
        // Caches and the cycle counter persist: physical state survives a
        // software restart.
    }

    /// Pipeline index.
    #[must_use]
    pub fn id(&self) -> usize {
        self.id
    }

    /// Whether a `Halt` retired.
    #[must_use]
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Whether corrupted execution wedged the pipeline (bad fetch, wild
    /// jump, out-of-range access).
    #[must_use]
    pub fn crashed(&self) -> bool {
        self.crashed
    }

    /// Whether any fault effect has reached architectural state.
    #[must_use]
    pub fn tainted(&self) -> bool {
        self.tainted
    }

    /// Marks architectural state as fault-corrupted from outside the
    /// pipeline — the system calls this when the vertical interconnect
    /// corrupts a value this pipeline consumed in flight.
    pub fn mark_tainted(&mut self) {
        self.tainted = true;
    }

    /// Local cycle counter.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.cycle
    }

    /// Retired instruction count.
    #[must_use]
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Cycles spent actually executing (excludes idle time after a halt
    /// or while the pipeline was incomplete).
    #[must_use]
    pub fn active_cycles(&self) -> u64 {
        self.active_cycles
    }

    /// Instructions per *active* cycle since the last load/reset.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        if self.active_cycles == 0 {
            0.0
        } else {
            self.retired as f64 / self.active_cycles as f64
        }
    }

    /// Current program counter.
    #[must_use]
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// Register read (R0 is hardwired zero).
    #[must_use]
    pub fn reg(&self, r: Reg) -> u32 {
        if r.is_zero() {
            0
        } else {
            self.regs[r.index()]
        }
    }

    /// The data memory image.
    #[must_use]
    pub fn memory(&self) -> &[u32] {
        &self.mem
    }

    /// L1 D-cache statistics handle.
    #[must_use]
    pub fn l1d(&self) -> &Cache {
        &self.l1d
    }

    /// L1 I-cache statistics handle.
    #[must_use]
    pub fn l1i(&self) -> &Cache {
        &self.l1i
    }

    /// Branch-predictor statistics handle.
    #[must_use]
    pub fn predictor(&self) -> &BranchPredictor {
        &self.predictor
    }

    /// Whether the pipeline can execute (loaded, not halted/crashed).
    #[must_use]
    pub fn runnable(&self) -> bool {
        self.program.is_some() && !self.halted && !self.crashed
    }

    fn set_reg(&mut self, r: Reg, v: u32) {
        if !r.is_zero() {
            self.regs[r.index()] = v;
        }
    }

    /// Advances the local clock without executing (idle pipeline).
    pub(crate) fn idle_to(&mut self, cycle: u64) {
        self.cycle = self.cycle.max(cycle);
    }

    /// Captures the architectural state (the paper's checkpointing
    /// mechanism commits these at validated epoch boundaries).
    #[must_use]
    pub fn checkpoint(&self) -> PipelineCheckpoint {
        PipelineCheckpoint {
            pc: self.pc,
            regs: self.regs,
            mem: self.mem.clone(),
            halted: self.halted,
            retired: self.retired,
        }
    }

    /// Restores architectural state from a checkpoint. Physical state
    /// (cycle counter, caches) persists — recovery costs wall-clock time
    /// but does not rewind it.
    pub fn restore(&mut self, cp: &PipelineCheckpoint) {
        self.pc = cp.pc;
        self.regs = cp.regs;
        self.mem = cp.mem.clone();
        self.halted = cp.halted;
        self.retired = cp.retired;
        self.crashed = false;
        self.tainted = false;
        self.last_load_dest = None;
    }

    /// Executes one instruction under the given stage effects.
    ///
    /// `l2` is the shared second-level cache; `record` receives one trace
    /// record per exercised unit; `busy` receives per-unit busy cycles.
    pub(crate) fn step(
        &mut self,
        effects: &mut StageEffects,
        l2: &mut Cache,
        hierarchy: &MemoryHierarchy,
        mut record: impl FnMut(Unit, StageRecord),
        mut busy: impl FnMut(Unit, u64),
    ) -> Result<StepOutcome, SimError> {
        debug_assert!(self.runnable(), "step called on a non-runnable pipeline");

        let had_effect = effects.permanent.iter().any(Option::is_some)
            || effects.transient.iter().any(Option::is_some);
        let wedge = |this: &mut Self, e: IsaError| -> Result<StepOutcome, SimError> {
            if this.tainted || had_effect {
                // Corruption took the pipeline off the rails: that is a
                // behavior (a crash), not a simulator error.
                this.crashed = true;
                this.cycle += 1;
                this.active_cycles += 1;
                Ok(StepOutcome { cycles: 1, instruction: Instruction::Nop })
            } else {
                Err(SimError::Isa(e))
            }
        };

        // ---- IFU: fetch -------------------------------------------------
        let mut cycles = 1u64; // base CPI of the in-order core
        let mut ifu_cycles = 1u64;
        if !self.l1i.access(self.pc) {
            let extra =
                if l2.access(self.pc) { l2.config().hit_cycles } else { hierarchy.memory_cycles };
            cycles += extra;
            ifu_cycles += extra;
        }
        let Some(golden_instr) = self.fetch(self.pc) else {
            return wedge(self, IsaError::PcOutOfRange(self.pc));
        };
        let golden_word = r2d3_isa::encode::encode(golden_instr)?;
        let actual_word = effects.apply(Unit::Ifu, golden_word);
        record(
            Unit::Ifu,
            StageRecord {
                cycle: self.cycle,
                input_sig: input_signature(&[self.pc]),
                golden_output: golden_word,
                actual_output: actual_word,
            },
        );
        if actual_word != golden_word {
            self.tainted = true;
        }
        let instr = match r2d3_isa::encode::decode(actual_word) {
            Ok(i) => i,
            Err(e) => return wedge(self, e),
        };

        // ---- execute on the primary unit --------------------------------
        let next_pc = self.pc.wrapping_add(1);
        let mut target = next_pc;
        let unit = instr.primary_unit();
        let mut unit_cycles = 1u64;

        // Load-use interlock.
        if let Some(dest) = self.last_load_dest {
            if instr.sources().iter().flatten().any(|s| *s == dest) {
                cycles += self.timing.load_use_penalty;
            }
        }
        self.last_load_dest = None;

        match instr {
            Instruction::Alu { op, rd, rs1, rs2 } => {
                let golden = op.apply(self.reg(rs1), self.reg(rs2));
                let actual =
                    self.finish_value(effects, unit, self.pc, &[rs1, rs2], golden, &mut record);
                self.set_reg(rd, actual);
            }
            Instruction::AluImm { op, rd, rs1, imm } => {
                let golden = op.apply(self.reg(rs1), imm as i32 as u32);
                let actual = self.finish_value(effects, unit, self.pc, &[rs1], golden, &mut record);
                self.set_reg(rd, actual);
            }
            Instruction::Lui { rd, imm } => {
                let golden = u32::from(imm) << 16;
                let actual = self.finish_value(effects, unit, self.pc, &[], golden, &mut record);
                self.set_reg(rd, actual);
            }
            Instruction::Load { rd, base, offset } => {
                let addr = self.reg(base).wrapping_add(offset as i32 as u32);
                let (extra, _hit) = self.data_access(addr, l2, hierarchy);
                cycles += extra;
                unit_cycles += extra;
                let Some(&golden) = self.mem.get(addr as usize) else {
                    return wedge(self, IsaError::MemOutOfRange(addr));
                };
                let actual =
                    self.finish_value(effects, unit, self.pc, &[base], golden, &mut record);
                self.set_reg(rd, actual);
                self.last_load_dest = (!rd.is_zero()).then_some(rd);
            }
            Instruction::Store { src, base, offset } => {
                let addr = self.reg(base).wrapping_add(offset as i32 as u32);
                // Stores retire through the store buffer: charge the L1
                // access only (no stall on miss beyond the base cycle).
                let _ = self.l1d.access(addr);
                let golden = self.reg(src);
                let actual =
                    self.finish_value(effects, unit, self.pc, &[src, base], golden, &mut record);
                let Some(slot) = self.mem.get_mut(addr as usize) else {
                    return wedge(self, IsaError::MemOutOfRange(addr));
                };
                *slot = actual;
            }
            Instruction::Branch { cond, rs1, rs2, offset } => {
                let taken = cond.eval(self.reg(rs1), self.reg(rs2));
                let golden =
                    if taken { next_pc.wrapping_add(offset as i32 as u32) } else { next_pc };
                let actual =
                    self.finish_value(effects, unit, self.pc, &[rs1, rs2], golden, &mut record);
                if !self.predictor.resolve(self.pc, next_pc, actual) {
                    cycles += self.timing.branch_penalty;
                    unit_cycles += self.timing.branch_penalty;
                }
                target = actual;
            }
            Instruction::Jal { rd, offset } => {
                let golden = next_pc.wrapping_add(offset as u32);
                let actual = self.finish_value(effects, unit, self.pc, &[], golden, &mut record);
                self.set_reg(rd, next_pc);
                if !self.predictor.resolve(self.pc, next_pc, actual) {
                    cycles += self.timing.branch_penalty;
                    unit_cycles += self.timing.branch_penalty;
                }
                target = actual;
            }
            Instruction::Jalr { rd, rs1, offset } => {
                let golden = self.reg(rs1).wrapping_add(offset as i32 as u32);
                let actual = self.finish_value(effects, unit, self.pc, &[rs1], golden, &mut record);
                self.set_reg(rd, next_pc);
                if !self.predictor.resolve(self.pc, next_pc, actual) {
                    cycles += self.timing.branch_penalty;
                    unit_cycles += self.timing.branch_penalty;
                }
                target = actual;
            }
            Instruction::Fpu { op, rd, rs1, rs2 } => {
                let golden = op.apply(self.reg(rd), self.reg(rs1), self.reg(rs2));
                let actual =
                    self.finish_value(effects, unit, self.pc, &[rs1, rs2], golden, &mut record);
                self.set_reg(rd, actual);
                cycles += self.timing.ffu_extra;
                unit_cycles += self.timing.ffu_extra;
            }
            Instruction::Trap { code } => {
                let golden = code as u32;
                let _ = self.finish_value(effects, unit, self.pc, &[], golden, &mut record);
                cycles += self.timing.tlu_extra;
                unit_cycles += self.timing.tlu_extra;
            }
            Instruction::Nop => {}
            Instruction::Halt => {
                self.halted = true;
            }
        }

        if target != next_pc && self.fetch(target).is_none() && !self.halted {
            // A wild branch target wedges at the *next* fetch; flag now so
            // the crash is attributed to this instruction.
            self.pc = target;
            return wedge(self, IsaError::PcOutOfRange(target));
        }

        self.pc = target;
        self.cycle += cycles;
        self.active_cycles += cycles;
        self.retired += 1;
        busy(Unit::Ifu, ifu_cycles);
        if unit != Unit::Ifu {
            busy(unit, unit_cycles);
        }
        Ok(StepOutcome { cycles, instruction: instr })
    }

    /// Instruction at `pc`, if the text segment covers it.
    fn fetch(&self, pc: u32) -> Option<Instruction> {
        self.program.as_ref()?.fetch(pc)
    }

    /// Applies fault effects to a unit's golden output, records the trace
    /// entry, and tracks taint.
    fn finish_value(
        &mut self,
        effects: &mut StageEffects,
        unit: Unit,
        pc: u32,
        srcs: &[Reg],
        golden: u32,
        record: &mut impl FnMut(Unit, StageRecord),
    ) -> u32 {
        let mut sig_words = vec![pc];
        sig_words.extend(srcs.iter().map(|r| self.reg(*r)));
        let actual = effects.apply(unit, golden);
        record(
            unit,
            StageRecord {
                cycle: self.cycle,
                input_sig: input_signature(&sig_words),
                golden_output: golden,
                actual_output: actual,
            },
        );
        if actual != golden {
            self.tainted = true;
        }
        actual
    }

    /// Data-side cache access; returns (extra cycles, l1 hit).
    fn data_access(&mut self, addr: u32, l2: &mut Cache, h: &MemoryHierarchy) -> (u64, bool) {
        if self.l1d.access(addr) {
            (0, true)
        } else if l2.access(addr) {
            (l2.config().hit_cycles, false)
        } else {
            (h.memory_cycles, false)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use r2d3_isa::asm::Asm;

    fn run_alone(program: &Program, budget: u64) -> LogicalPipeline {
        let h = MemoryHierarchy::default();
        let mut l2 = Cache::new(h.l2);
        let mut p = LogicalPipeline::new(0, &h, TimingParams::default());
        p.load(program.clone());
        let mut effects = StageEffects::none();
        for _ in 0..budget {
            if !p.runnable() {
                break;
            }
            p.step(&mut effects, &mut l2, &h, |_, _| {}, |_, _| {}).unwrap();
        }
        p
    }

    #[test]
    fn matches_interpreter_architecturally() {
        let k = r2d3_isa::kernels::gemm(4, 3, 2, 7);
        let p = run_alone(k.program(), 1_000_000);
        assert!(p.halted());
        assert!(k.verify(p.memory()), "pipeline must match the golden model");
    }

    #[test]
    fn ipc_is_sane() {
        let k = r2d3_isa::kernels::gemv(16, 16, 3);
        let p = run_alone(k.program(), 1_000_000);
        assert!(p.halted());
        let ipc = p.ipc();
        assert!((0.2..1.0).contains(&ipc), "IPC {ipc}");
    }

    #[test]
    fn exu_fault_corrupts_results() {
        let mut a = Asm::new();
        a.li(Reg::R1, 0); // ALU result 0: stuck-at-1 on bit 0 flips it
        a.halt();
        let program = a.assemble().unwrap();
        let h = MemoryHierarchy::default();
        let mut l2 = Cache::new(h.l2);
        let mut p = LogicalPipeline::new(0, &h, TimingParams::default());
        p.load(program);
        let mut effects = StageEffects::none();
        effects.permanent[Unit::Exu.index()] = Some(FaultEffect { bit: 0, stuck: true });
        while p.runnable() {
            p.step(&mut effects, &mut l2, &h, |_, _| {}, |_, _| {}).unwrap();
        }
        assert_eq!(p.reg(Reg::R1), 1, "stuck-at-1 must corrupt the zero result");
        assert!(p.tainted());
    }

    #[test]
    fn transient_fires_once() {
        let mut a = Asm::new();
        a.li(Reg::R1, 0);
        a.li(Reg::R2, 0);
        a.halt();
        let program = a.assemble().unwrap();
        let h = MemoryHierarchy::default();
        let mut l2 = Cache::new(h.l2);
        let mut p = LogicalPipeline::new(0, &h, TimingParams::default());
        p.load(program);
        let mut effects = StageEffects::none();
        effects.transient[Unit::Exu.index()] = Some(FaultEffect { bit: 4, stuck: true });
        while p.runnable() {
            p.step(&mut effects, &mut l2, &h, |_, _| {}, |_, _| {}).unwrap();
        }
        assert_eq!(p.reg(Reg::R1), 16, "first op corrupted");
        assert_eq!(p.reg(Reg::R2), 0, "transient consumed");
    }

    #[test]
    fn wild_jump_crashes_tainted_pipeline_only() {
        // A healthy pipeline with a bad program is a SimError...
        let mut a = Asm::new();
        a.emit(Instruction::Jalr { rd: Reg::R0, rs1: Reg::R0, offset: 999 });
        let program = a.assemble().unwrap();
        let h = MemoryHierarchy::default();
        let mut l2 = Cache::new(h.l2);
        let mut p = LogicalPipeline::new(0, &h, TimingParams::default());
        p.load(program.clone());
        let mut effects = StageEffects::none();
        let r = p.step(&mut effects, &mut l2, &h, |_, _| {}, |_, _| {});
        assert!(r.is_err());

        // ...but a faulty EXU crashing the control flow is a *crash*.
        let mut p = LogicalPipeline::new(0, &h, TimingParams::default());
        let mut a = Asm::new();
        let top = a.label();
        a.bind(top);
        a.li(Reg::R1, 1);
        a.j(top);
        p.load(a.assemble().unwrap());
        let mut effects = StageEffects::none();
        effects.permanent[Unit::Exu.index()] = Some(FaultEffect { bit: 13, stuck: true });
        for _ in 0..100 {
            if !p.runnable() {
                break;
            }
            p.step(&mut effects, &mut l2, &h, |_, _| {}, |_, _| {}).unwrap();
        }
        assert!(p.crashed(), "corrupted jump target must crash, not error");
    }

    #[test]
    fn trace_records_have_golden_and_actual() {
        let mut a = Asm::new();
        a.li(Reg::R1, 0);
        a.halt();
        let h = MemoryHierarchy::default();
        let mut l2 = Cache::new(h.l2);
        let mut p = LogicalPipeline::new(0, &h, TimingParams::default());
        p.load(a.assemble().unwrap());
        let mut effects = StageEffects::none();
        effects.permanent[Unit::Exu.index()] = Some(FaultEffect { bit: 1, stuck: true });
        let mut recs: Vec<(Unit, StageRecord)> = Vec::new();
        while p.runnable() {
            p.step(&mut effects, &mut l2, &h, |u, r| recs.push((u, r)), |_, _| {}).unwrap();
        }
        let exu: Vec<_> = recs.iter().filter(|(u, _)| *u == Unit::Exu).collect();
        assert_eq!(exu.len(), 1);
        assert_eq!(exu[0].1.golden_output, 0);
        assert_eq!(exu[0].1.actual_output, 2);
    }

    #[test]
    fn restart_clears_taint_but_keeps_cycles() {
        let k = r2d3_isa::kernels::gemv(4, 4, 1);
        let mut p = run_alone(k.program(), 100_000);
        let cycles = p.cycles();
        assert!(cycles > 0);
        p.restart();
        assert!(!p.halted());
        assert_eq!(p.retired(), 0);
        assert_eq!(p.cycles(), cycles, "physical time survives restart");
    }
}
