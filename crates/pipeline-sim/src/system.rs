//! The 8-core 3D system: physical stages + fabric + logical pipelines.

use crate::cache::{Cache, MemoryHierarchy};
use crate::fabric::Fabric;
use crate::pipeline::{LogicalPipeline, StageEffects, TimingParams};
use crate::stage::{FaultEffect, StageHealth, StageId};
use crate::stats::ActivityStats;
use crate::trace::TraceRing;
use crate::SimError;
use r2d3_isa::{Program, Unit};
use serde::{Deserialize, Serialize};

/// System-level configuration (paper Table II plus fabric parameters).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SystemConfig {
    /// Vertical tiers in the stack (the paper's system has 8).
    pub layers: usize,
    /// Logical pipelines (≤ layers at full health).
    pub pipelines: usize,
    /// Cache/memory geometry.
    pub hierarchy: MemoryHierarchy,
    /// Core timing parameters.
    pub timing: TimingParams,
    /// Per-stage trace-ring capacity (how far back the detection
    /// machinery can replay).
    pub trace_capacity: usize,
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig {
            layers: 8,
            pipelines: 8,
            hierarchy: MemoryHierarchy::default(),
            timing: TimingParams::default(),
            trace_capacity: 8192,
        }
    }
}

/// The simulated 3D multicore: 40 physical stages (8 layers × 5 units),
/// a crossbar fabric, logical pipelines and the shared L2.
#[derive(Debug, Clone)]
pub struct System3d {
    config: SystemConfig,
    fabric: Fabric,
    health: Vec<StageHealth>,
    pending_transients: Vec<Option<FaultEffect>>,
    pipelines: Vec<LogicalPipeline>,
    l2: Cache,
    traces: Vec<TraceRing>,
    stats: ActivityStats,
    now: u64,
}

impl System3d {
    /// Builds a fresh system with the identity fabric (pipeline `p` on
    /// layer `p`) and all stages healthy.
    #[must_use]
    pub fn new(config: &SystemConfig) -> Self {
        let nstages = config.layers * Unit::COUNT;
        System3d {
            fabric: Fabric::identity(config.layers, config.pipelines),
            health: vec![StageHealth::Healthy; nstages],
            pending_transients: vec![None; nstages],
            pipelines: (0..config.pipelines)
                .map(|i| LogicalPipeline::new(i, &config.hierarchy, config.timing))
                .collect(),
            l2: Cache::new(config.hierarchy.l2),
            traces: (0..nstages).map(|_| TraceRing::new(config.trace_capacity)).collect(),
            stats: ActivityStats::new(config.layers),
            config: *config,
            now: 0,
        }
    }

    /// The configuration this system was built with.
    #[must_use]
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// Global cycle count.
    #[must_use]
    pub fn now(&self) -> u64 {
        self.now
    }

    /// The crossbar fabric (read-only).
    #[must_use]
    pub fn fabric(&self) -> &Fabric {
        &self.fabric
    }

    /// The crossbar fabric (reconfigurable; the R2D3 controller's handle).
    pub fn fabric_mut(&mut self) -> &mut Fabric {
        &mut self.fabric
    }

    /// A pipeline by index.
    #[must_use]
    pub fn pipeline(&self, pipe: usize) -> Option<&LogicalPipeline> {
        self.pipelines.get(pipe)
    }

    /// Number of logical pipelines.
    #[must_use]
    pub fn pipeline_count(&self) -> usize {
        self.pipelines.len()
    }

    /// Health of a physical stage.
    ///
    /// # Panics
    ///
    /// Panics if the stage is outside the stack.
    #[must_use]
    pub fn health(&self, stage: StageId) -> StageHealth {
        self.health[stage.flat_index()]
    }

    /// Sets a stage's health (the controller's repair/power actions).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownStage`] for out-of-range stages.
    pub fn set_health(&mut self, stage: StageId, health: StageHealth) -> Result<(), SimError> {
        let slot = self.health.get_mut(stage.flat_index()).ok_or(SimError::UnknownStage(stage))?;
        *slot = health;
        Ok(())
    }

    /// Injects a permanent stuck-at defect into a stage.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownStage`] for out-of-range stages.
    pub fn inject_fault(&mut self, stage: StageId, effect: FaultEffect) -> Result<(), SimError> {
        self.set_health(stage, StageHealth::Faulty(effect))
    }

    /// Arms a one-shot transient on a stage: the next operation that stage
    /// performs is corrupted once.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownStage`] for out-of-range stages.
    pub fn inject_transient(
        &mut self,
        stage: StageId,
        effect: FaultEffect,
    ) -> Result<(), SimError> {
        let slot = self
            .pending_transients
            .get_mut(stage.flat_index())
            .ok_or(SimError::UnknownStage(stage))?;
        *slot = Some(effect);
        Ok(())
    }

    /// Loads (and resets) a program onto a pipeline.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownPipeline`] for bad indices.
    pub fn load_program(&mut self, pipe: usize, program: Program) -> Result<(), SimError> {
        self.pipelines.get_mut(pipe).ok_or(SimError::UnknownPipeline(pipe))?.load(program);
        Ok(())
    }

    /// Restarts a pipeline's program (post-repair recovery).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownPipeline`] for bad indices.
    pub fn restart_program(&mut self, pipe: usize) -> Result<(), SimError> {
        self.pipelines.get_mut(pipe).ok_or(SimError::UnknownPipeline(pipe))?.restart();
        Ok(())
    }

    /// Captures a pipeline's architectural state.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownPipeline`] for bad indices.
    pub fn checkpoint_pipeline(
        &self,
        pipe: usize,
    ) -> Result<crate::pipeline::PipelineCheckpoint, SimError> {
        self.pipelines
            .get(pipe)
            .map(crate::pipeline::LogicalPipeline::checkpoint)
            .ok_or(SimError::UnknownPipeline(pipe))
    }

    /// Restores a pipeline's architectural state from a checkpoint
    /// (post-repair recovery without losing the whole run).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownPipeline`] for bad indices.
    pub fn restore_pipeline(
        &mut self,
        pipe: usize,
        checkpoint: &crate::pipeline::PipelineCheckpoint,
    ) -> Result<(), SimError> {
        self.pipelines.get_mut(pipe).ok_or(SimError::UnknownPipeline(pipe))?.restore(checkpoint);
        Ok(())
    }

    /// The I/O trace of a physical stage.
    ///
    /// # Panics
    ///
    /// Panics if the stage is outside the stack.
    #[must_use]
    pub fn stage_trace(&self, stage: StageId) -> &TraceRing {
        &self.traces[stage.flat_index()]
    }

    /// Per-stage activity statistics.
    #[must_use]
    pub fn stats(&self) -> &ActivityStats {
        &self.stats
    }

    /// Resets activity counters (start of a calibration window).
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    /// Advances the whole system by `cycles` global cycles.
    ///
    /// Every complete, runnable pipeline executes until its local clock
    /// reaches the new global time; incomplete, halted or crashed
    /// pipelines idle.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`] only for genuine simulator misuse (e.g. an
    /// out-of-range access on an untainted pipeline); fault-induced
    /// wedges set the pipeline's `crashed` flag instead.
    pub fn run(&mut self, cycles: u64) -> Result<(), SimError> {
        let target = self.now + cycles;
        for pipe in 0..self.pipelines.len() {
            self.run_pipe_to(pipe, target)?;
        }
        self.now = target;
        Ok(())
    }

    fn run_pipe_to(&mut self, pipe: usize, target: u64) -> Result<(), SimError> {
        // Resolve the fabric once per segment; reconfigurations happen
        // between `run` calls (epoch boundaries), matching the paper.
        let mut stage_of = [None; 5];
        for unit in Unit::ALL {
            stage_of[unit.index()] = self.fabric.stage_for(pipe, unit);
        }
        let complete = stage_of.iter().all(Option::is_some);
        let mut link_corrupt = false;

        loop {
            let p = &mut self.pipelines[pipe];
            if p.cycles() >= target {
                break;
            }
            if !complete || !p.runnable() {
                p.idle_to(target);
                break;
            }

            let mut effects = StageEffects::none();
            for unit in Unit::ALL {
                let sid = stage_of[unit.index()].expect("complete pipeline");
                effects.permanent[unit.index()] = self.health[sid.flat_index()].effect();
                effects.transient[unit.index()] = self.pending_transients[sid.flat_index()].take();
            }

            let traces = &mut self.traces;
            let stats = &mut self.stats;
            let fabric = &mut self.fabric;
            let result = p.step(
                &mut effects,
                &mut self.l2,
                &self.config.hierarchy,
                |unit, mut rec| {
                    let sid = stage_of[unit.index()].expect("complete pipeline");
                    // Every stage output crosses the vertical interconnect
                    // before the consumer (and the trace ring, which snoops
                    // the delivered bundle) sees it.
                    let delivered = fabric.deliver(pipe, unit, rec.actual_output);
                    if delivered != rec.actual_output {
                        rec.actual_output = delivered;
                        link_corrupt = true;
                    }
                    traces[sid.flat_index()].push(rec);
                },
                |unit, busy| {
                    let sid = stage_of[unit.index()].expect("complete pipeline");
                    stats.add_busy(sid, busy);
                },
            );

            // Return unconsumed transients to the pending pool.
            for unit in Unit::ALL {
                if let Some(e) = effects.transient[unit.index()] {
                    let sid = stage_of[unit.index()].expect("complete pipeline");
                    self.pending_transients[sid.flat_index()] = Some(e);
                }
            }
            result?;
        }
        if link_corrupt {
            // The consumer latched corrupted bundles: downstream
            // architectural state is poisoned even though every stage
            // computed correctly.
            self.pipelines[pipe].mark_tainted();
        }
        Ok(())
    }

    /// Aggregate IPC across pipelines that retired anything.
    #[must_use]
    pub fn aggregate_ipc(&self) -> f64 {
        if self.now == 0 {
            return 0.0;
        }
        let retired: u64 = self.pipelines.iter().map(LogicalPipeline::retired).sum();
        retired as f64 / self.now as f64
    }

    /// Unassigned stages: the paper's *leftover* candidates.
    ///
    /// Deliberately not filtered by ground-truth health — the controller
    /// only knows what it has diagnosed, so belief-based filtering happens
    /// in `r2d3-core`.
    #[must_use]
    pub fn leftovers(&self) -> Vec<StageId> {
        self.fabric.unassigned_stages()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use r2d3_isa::kernels::{gemm, gemv};

    #[test]
    fn eight_cores_run_independent_kernels() {
        let mut sys = System3d::new(&SystemConfig::default());
        let kernels: Vec<_> = (0..8).map(|i| gemv(6, 6, i as u64 + 1)).collect();
        for (i, k) in kernels.iter().enumerate() {
            sys.load_program(i, k.program().clone()).unwrap();
        }
        sys.run(200_000).unwrap();
        for (i, k) in kernels.iter().enumerate() {
            let p = sys.pipeline(i).unwrap();
            assert!(p.halted(), "pipeline {i} did not finish");
            assert!(k.verify(p.memory()), "pipeline {i} wrong result");
        }
        assert!(sys.aggregate_ipc() > 0.0);
    }

    #[test]
    fn activity_lands_on_assigned_layers() {
        let mut sys = System3d::new(&SystemConfig::default());
        sys.load_program(2, gemm(4, 4, 4, 5).program().clone()).unwrap();
        sys.run(100_000).unwrap();
        // Only layer 2 (identity fabric) should be busy.
        for layer in 0..8 {
            let busy = sys.stats().layer_busy(layer);
            if layer == 2 {
                assert!(busy > 0);
            } else {
                assert_eq!(busy, 0, "layer {layer} should be idle");
            }
        }
    }

    #[test]
    fn reconfigured_fabric_moves_activity() {
        // Six pipelines leave layers 6 and 7 as spares; pipeline 0 borrows
        // layer 7's EXU through the crossbar.
        let config = SystemConfig { pipelines: 6, ..Default::default() };
        let mut sys = System3d::new(&config);
        sys.fabric_mut().unassign(0, Unit::Exu).unwrap();
        sys.fabric_mut().assign(0, Unit::Exu, 7).unwrap();
        sys.load_program(0, gemm(4, 4, 4, 5).program().clone()).unwrap();
        sys.run(100_000).unwrap();
        assert!(sys.stats().busy(StageId::new(7, Unit::Exu)) > 0);
        assert_eq!(sys.stats().busy(StageId::new(0, Unit::Exu)), 0);
    }

    #[test]
    fn faulty_stage_taints_execution() {
        let mut sys = System3d::new(&SystemConfig::default());
        let k = gemv(8, 8, 2);
        sys.load_program(3, k.program().clone()).unwrap();
        sys.inject_fault(StageId::new(3, Unit::Ffu), FaultEffect { bit: 30, stuck: true }).unwrap();
        sys.run(200_000).unwrap();
        let p = sys.pipeline(3).unwrap();
        assert!(p.tainted());
        assert!(!k.verify(p.memory()), "FFU fault must corrupt GEMV results");
    }

    #[test]
    fn incomplete_pipeline_idles() {
        let mut sys = System3d::new(&SystemConfig::default());
        sys.fabric_mut().unassign(1, Unit::Lsu).unwrap();
        sys.load_program(1, gemv(4, 4, 3).program().clone()).unwrap();
        sys.run(10_000).unwrap();
        let p = sys.pipeline(1).unwrap();
        assert_eq!(p.retired(), 0);
        assert!(!p.halted());
        assert_eq!(p.cycles(), 10_000);
    }

    #[test]
    fn traces_capture_stage_io() {
        let mut sys = System3d::new(&SystemConfig::default());
        sys.load_program(0, gemv(4, 4, 4).program().clone()).unwrap();
        sys.run(50_000).unwrap();
        let ifu = sys.stage_trace(StageId::new(0, Unit::Ifu));
        let ffu = sys.stage_trace(StageId::new(0, Unit::Ffu));
        assert!(!ifu.is_empty());
        assert!(!ffu.is_empty());
        // Fault-free: golden == actual on every record.
        assert!(ifu.iter().all(|r| r.golden_output == r.actual_output));
    }

    #[test]
    fn leftovers_reflect_fabric_and_health() {
        let config = SystemConfig { pipelines: 6, ..Default::default() };
        let mut sys = System3d::new(&config);
        assert_eq!(sys.leftovers().len(), 10);
        // Ground-truth faults do NOT hide leftovers: the controller only
        // learns about them through diagnosis.
        sys.inject_fault(StageId::new(7, Unit::Ifu), FaultEffect { bit: 0, stuck: false }).unwrap();
        assert_eq!(sys.leftovers().len(), 10);
    }

    #[test]
    fn link_fault_corrupts_delivery_and_taints_consumer() {
        use crate::fabric::LinkFault;
        let mut sys = System3d::new(&SystemConfig::default());
        sys.load_program(2, gemv(6, 6, 3).program().clone()).unwrap();
        sys.fabric_mut()
            .inject_link_fault(2, Unit::Exu, LinkFault::Stuck { mask: 1 << 30, pattern: 1 << 30 })
            .unwrap();
        sys.run(100_000).unwrap();
        let trace = sys.stage_trace(StageId::new(2, Unit::Exu));
        let corrupted = trace.iter().filter(|r| r.golden_output != r.actual_output).count();
        assert!(corrupted > 0, "stuck TSV must corrupt delivered records");
        assert!(sys.pipeline(2).unwrap().tainted(), "consumer state is poisoned");
        // The stage itself is healthy: other pipelines are unaffected.
        assert_eq!(sys.health(StageId::new(2, Unit::Exu)), StageHealth::Healthy);
    }

    #[test]
    fn transient_corrupts_exactly_once() {
        let mut sys = System3d::new(&SystemConfig::default());
        let k = gemv(6, 6, 9);
        sys.load_program(0, k.program().clone()).unwrap();
        sys.inject_transient(StageId::new(0, Unit::Exu), FaultEffect { bit: 2, stuck: true })
            .unwrap();
        sys.run(100_000).unwrap();
        let trace = sys.stage_trace(StageId::new(0, Unit::Exu));
        let corrupted = trace.iter().filter(|r| r.golden_output != r.actual_output).count();
        assert!(corrupted <= 1, "at most one corrupted record");
    }
}
