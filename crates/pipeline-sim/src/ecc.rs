//! SECDED ECC for the cache arrays.
//!
//! §IV of the paper: "We assume that faults in local caches are handled
//! by ECC." This module supplies that assumption's substance: a
//! Hamming(38,32) single-error-correct / double-error-detect code — 32
//! data bits, 6 Hamming check bits plus an overall parity bit — the
//! standard organization for 32-bit cache words.
//!
//! # Example
//!
//! ```
//! use r2d3_pipeline_sim::ecc::{decode, encode, Decoded};
//!
//! let word = encode(0xDEAD_BEEF);
//! // A single upset anywhere in the codeword is corrected.
//! let upset = word ^ (1 << 17);
//! assert_eq!(decode(upset), Decoded::Corrected(0xDEAD_BEEF));
//! ```

use serde::{Deserialize, Serialize};

/// Number of Hamming check bits for 32 data bits.
const CHECK_BITS: u32 = 6;
/// Total codeword width: 32 data + 6 check + 1 overall parity.
pub const CODEWORD_BITS: u32 = 32 + CHECK_BITS + 1;

/// Decode outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Decoded {
    /// No error; the stored word.
    Clean(u32),
    /// Single-bit error corrected; the recovered word.
    Corrected(u32),
    /// Uncorrectable (double) error detected.
    Uncorrectable,
}

impl Decoded {
    /// The data word, unless the error was uncorrectable.
    #[must_use]
    pub fn data(self) -> Option<u32> {
        match self {
            Decoded::Clean(w) | Decoded::Corrected(w) => Some(w),
            Decoded::Uncorrectable => None,
        }
    }
}

/// Position (1-based, Hamming convention) of the `i`-th data bit inside
/// the 38-bit Hamming frame: positions that are powers of two hold check
/// bits, everything else holds data.
fn data_positions() -> [u32; 32] {
    let mut out = [0u32; 32];
    let mut pos = 1u32;
    let mut i = 0usize;
    while i < 32 {
        if !pos.is_power_of_two() {
            out[i] = pos;
            i += 1;
        }
        pos += 1;
    }
    out
}

/// Encodes a 32-bit word into a 39-bit SECDED codeword (in a `u64`).
///
/// Layout: bits 1..=38 are the Hamming frame (1-based positions, bit 0 of
/// the `u64` unused by the frame), bit 39 is the overall parity. Bit 0
/// is always zero.
#[must_use]
pub fn encode(data: u32) -> u64 {
    let positions = data_positions();
    let mut frame: u64 = 0;
    for (i, &pos) in positions.iter().enumerate() {
        if (data >> i) & 1 == 1 {
            frame |= 1 << pos;
        }
    }
    // Check bits: parity over frame positions containing that power of two.
    for c in 0..CHECK_BITS {
        let mask = 1u32 << c;
        let mut parity = 0u64;
        for pos in 1..=38u32 {
            if pos & mask != 0 && pos != u32::from(mask == pos) {
                parity ^= (frame >> pos) & 1;
            }
        }
        if parity == 1 {
            frame |= 1 << mask;
        }
    }
    // Overall parity over the whole frame.
    let overall = (frame.count_ones() & 1) as u64;
    frame | (overall << 39)
}

/// Decodes a codeword, correcting single upsets and flagging doubles.
#[must_use]
pub fn decode(codeword: u64) -> Decoded {
    let frame = codeword & ((1u64 << 39) - 1) & !1; // positions 1..=38
    let stored_overall = (codeword >> 39) & 1;
    let computed_overall = (frame.count_ones() & 1) as u64;

    // Syndrome: recompute each check bit over its coverage (including the
    // stored check bit itself — a clean word yields syndrome 0).
    let mut syndrome = 0u32;
    for c in 0..CHECK_BITS {
        let mask = 1u32 << c;
        let mut parity = 0u64;
        for pos in 1..=38u32 {
            if pos & mask != 0 {
                parity ^= (frame >> pos) & 1;
            }
        }
        if parity == 1 {
            syndrome |= mask;
        }
    }

    let overall_ok = stored_overall == computed_overall;
    match (syndrome, overall_ok) {
        (0, true) => Decoded::Clean(extract(frame)),
        (0, false) => {
            // The overall parity bit itself flipped; data is intact.
            Decoded::Corrected(extract(frame))
        }
        (s, false) if (1..=38).contains(&s) => {
            // Single-bit error at frame position `s`: flip and extract.
            Decoded::Corrected(extract(frame ^ (1u64 << s)))
        }
        // Non-zero syndrome with matching overall parity ⇒ even number of
        // flips: uncorrectable. Also out-of-range syndromes.
        _ => Decoded::Uncorrectable,
    }
}

fn extract(frame: u64) -> u32 {
    let positions = data_positions();
    let mut data = 0u32;
    for (i, &pos) in positions.iter().enumerate() {
        if (frame >> pos) & 1 == 1 {
            data |= 1 << i;
        }
    }
    data
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn roundtrip_clean(word in any::<u32>()) {
            prop_assert_eq!(decode(encode(word)), Decoded::Clean(word));
        }

        #[test]
        fn corrects_any_single_flip(word in any::<u32>(), bit in 1u32..40) {
            let upset = encode(word) ^ (1u64 << bit);
            prop_assert_eq!(decode(upset), Decoded::Corrected(word));
        }

        #[test]
        fn detects_any_double_flip(word in any::<u32>(), a in 1u32..40, b in 1u32..40) {
            prop_assume!(a != b);
            let upset = encode(word) ^ (1u64 << a) ^ (1u64 << b);
            // A double flip must never silently decode to the wrong word.
            match decode(upset) {
                Decoded::Uncorrectable => {}
                Decoded::Clean(w) | Decoded::Corrected(w) => prop_assert_eq!(w, word),
            }
        }
    }

    #[test]
    fn double_flips_are_flagged_not_miscorrected() {
        // Exhaustive over a fixed word: every 2-bit flip combination.
        let word = 0xA5A5_5A5Au32;
        let code = encode(word);
        let mut flagged = 0;
        let mut total = 0;
        for a in 1..40u32 {
            for b in (a + 1)..40u32 {
                total += 1;
                match decode(code ^ (1 << a) ^ (1 << b)) {
                    Decoded::Uncorrectable => flagged += 1,
                    Decoded::Clean(w) | Decoded::Corrected(w) => {
                        assert_eq!(w, word, "miscorrection at flips {a},{b}");
                    }
                }
            }
        }
        assert_eq!(flagged, total, "SECDED must flag every double flip");
    }

    #[test]
    fn codeword_is_39_bits() {
        assert_eq!(CODEWORD_BITS, 39);
        assert_eq!(encode(u32::MAX) >> 40, 0, "no bits beyond the codeword");
    }
}
