#![warn(missing_docs)]

//! Cycle-approximate simulator for the paper's 8-core 3D system.
//!
//! The paper evaluates R2D3 on gem5 with eight single-issue in-order
//! cores (Table II). This crate is the substitute: a timing-annotated
//! multicore simulator whose *logical pipelines* are assembled from
//! *physical stages* (unit × layer) through a reconfigurable crossbar
//! [`fabric::Fabric`] — the substrate the R2D3 engine detects on,
//! diagnoses on, repairs and reschedules.
//!
//! What the reproduction needs from this simulator:
//!
//! * architectural correctness — a fault-free run retires exactly the
//!   state the [`r2d3_isa::Interp`] golden model produces (tested),
//! * timing — per-workload IPC with the paper's cache geometry,
//! * per-physical-stage *activity factors* — the utilization signal that
//!   drives power, temperature and NBTI aging,
//! * stage I/O traces — the inputs/outputs the R2D3 checkers compare
//!   when a leftover stage re-executes a DUT stage's work,
//! * behavioral fault injection — stuck-at output corruption on any
//!   physical stage (permanent) or one-shot flips (transient).
//!
//! # Example
//!
//! ```
//! use r2d3_pipeline_sim::{System3d, SystemConfig};
//! use r2d3_isa::kernels::gemv;
//!
//! # fn main() -> Result<(), r2d3_pipeline_sim::SimError> {
//! let mut sys = System3d::new(&SystemConfig::default());
//! let kernel = gemv(8, 8, 1);
//! sys.load_program(0, kernel.program().clone())?;
//! sys.run(50_000)?;
//! assert!(sys.pipeline(0).unwrap().halted());
//! assert!(kernel.verify(sys.pipeline(0).unwrap().memory()));
//! # Ok(())
//! # }
//! ```

pub mod cache;
pub mod ecc;
pub mod fabric;
pub mod pipeline;
pub mod predictor;
pub mod stage;
pub mod stats;
pub mod system;
pub mod trace;
pub mod vcd;

pub use cache::{Cache, CacheConfig, MemoryHierarchy};
pub use fabric::{Fabric, LinkFault};
pub use pipeline::{LogicalPipeline, PipelineCheckpoint};
pub use predictor::BranchPredictor;
pub use stage::{FaultEffect, StageHealth, StageId};
pub use stats::ActivityStats;
pub use system::{System3d, SystemConfig};
pub use trace::{StageRecord, TraceRing};

use std::fmt;

/// Errors raised by the simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// A pipeline index was out of range.
    UnknownPipeline(usize),
    /// A stage reference was outside the stack.
    UnknownStage(StageId),
    /// The fabric maps a logical slot to a stage that is not healthy or
    /// is already claimed by another pipeline.
    InvalidFabric(String),
    /// Underlying ISA-level failure (bad program, out-of-range access on
    /// a *fault-free* pipeline, …).
    Isa(r2d3_isa::IsaError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::UnknownPipeline(p) => write!(f, "pipeline {p} out of range"),
            SimError::UnknownStage(s) => write!(f, "stage {s} outside the stack"),
            SimError::InvalidFabric(msg) => write!(f, "invalid fabric configuration: {msg}"),
            SimError::Isa(e) => write!(f, "ISA error: {e}"),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Isa(e) => Some(e),
            _ => None,
        }
    }
}

impl From<r2d3_isa::IsaError> for SimError {
    fn from(e: r2d3_isa::IsaError) -> Self {
        SimError::Isa(e)
    }
}
