#![warn(missing_docs)]

//! Minimal RISC instruction set used by the R2D3 reproduction.
//!
//! The DAC 2020 paper evaluates R2D3 on OpenSPARC T1 in-order pipelines
//! running GEMM, GEMV and FFT kernels under gem5. This crate supplies the
//! equivalent substrate for our from-scratch simulator:
//!
//! * a small, fixed-width (32-bit) RISC instruction set ([`Instruction`])
//!   whose operations map onto the five OpenSPARC pipeline units
//!   (IFU, EXU, LSU, TLU, FFU),
//! * a binary encoding ([`encode`]) so that checkers in the R2D3 detection
//!   circuitry can compare raw bit patterns between redundant stages,
//! * a tiny assembler ([`asm::Asm`]) with label support,
//! * a reference interpreter ([`interp::Interp`]) that defines the
//!   architectural semantics (the golden model for the pipeline simulator),
//! * generators for the paper's three workloads ([`kernels`]).
//!
//! # Example
//!
//! ```
//! use r2d3_isa::{asm::Asm, interp::Interp, Reg};
//!
//! # fn main() -> Result<(), r2d3_isa::IsaError> {
//! let mut a = Asm::new();
//! a.li(Reg::R1, 5);
//! a.li(Reg::R2, 7);
//! a.add(Reg::R3, Reg::R1, Reg::R2);
//! a.halt();
//! let program = a.assemble()?;
//!
//! let mut cpu = Interp::new(&program);
//! cpu.run(1_000)?;
//! assert_eq!(cpu.reg(Reg::R3), 12);
//! # Ok(())
//! # }
//! ```

pub mod asm;
pub mod encode;
pub mod instr;
pub mod interp;
pub mod kernels;
pub mod program;
pub mod reg;
pub mod text;

pub use asm::Asm;
pub use instr::{AluOp, BranchCond, FpuOp, Instruction, TrapCode, Unit};
pub use interp::Interp;
pub use program::Program;
pub use reg::Reg;

use std::fmt;

/// Errors produced while assembling, encoding or executing programs.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum IsaError {
    /// A label was referenced but never bound to an address.
    UnboundLabel(usize),
    /// A PC-relative branch target does not fit in the immediate field.
    BranchOutOfRange {
        /// Instruction address of the branch.
        from: u32,
        /// Intended target address.
        to: u32,
    },
    /// An instruction word does not decode to a valid instruction.
    DecodeInvalid(u32),
    /// The program counter left the text segment.
    PcOutOfRange(u32),
    /// A data access fell outside the memory image.
    MemOutOfRange(u32),
    /// The interpreter exceeded its cycle budget without halting.
    CycleBudgetExceeded(u64),
    /// An immediate operand does not fit in its encoding field.
    ImmOutOfRange(i64),
}

impl fmt::Display for IsaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IsaError::UnboundLabel(id) => write!(f, "label {id} was never bound"),
            IsaError::BranchOutOfRange { from, to } => {
                write!(f, "branch from {from:#x} to {to:#x} out of immediate range")
            }
            IsaError::DecodeInvalid(w) => write!(f, "invalid instruction word {w:#010x}"),
            IsaError::PcOutOfRange(pc) => write!(f, "program counter {pc:#x} outside text"),
            IsaError::MemOutOfRange(addr) => write!(f, "memory access {addr:#x} outside image"),
            IsaError::CycleBudgetExceeded(n) => {
                write!(f, "program did not halt within {n} steps")
            }
            IsaError::ImmOutOfRange(v) => write!(f, "immediate {v} does not fit encoding"),
        }
    }
}

impl std::error::Error for IsaError {}
