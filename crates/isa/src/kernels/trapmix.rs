//! Trap-mix kernel: a syscall-laced workload that exercises the TLU.
//!
//! The three paper kernels are pure compute and never trap, so the trap
//! logic unit only sees traffic from OS interaction. This synthetic
//! workload models a syscall-heavy service loop — integer work
//! punctuated by a trap every iteration — giving the TLU a realistic
//! activity factor so R2D3's detection can exercise (and be tested on)
//! all five units.

use super::{Kernel, KernelKind, ValueStream};
use crate::asm::Asm;
use crate::instr::TrapCode;
use crate::reg::Reg;

/// Generates a syscall-heavy workload: `iterations` rounds of integer
/// mixing, each ending in a syscall trap, with a running checksum stored
/// per round.
///
/// The kernel reports itself as [`KernelKind::Gemm`]-class for profile
/// purposes (demand/activity weights do not apply to this synthetic
/// workload; it exists for detection-coverage experiments).
///
/// # Panics
///
/// Panics if `iterations` is 0 or greater than 4096.
#[must_use]
pub fn trap_mix(iterations: usize, seed: u64) -> Kernel {
    assert!((1..=4096).contains(&iterations), "iterations must be in 1..=4096");

    let mut vs = ValueStream::new(seed);
    // Deterministic per-round "request words" the loop mixes.
    let requests: Vec<u32> = (0..iterations).map(|_| vs.next_f32().to_bits()).collect();

    // Reference: replicate the loop's integer semantics.
    let mut expected_bits: Vec<f32> = Vec::with_capacity(iterations);
    let mut acc: u32 = 0;
    for &r in &requests {
        acc = acc.wrapping_add(r).rotate_left(3) ^ 0x5a5a_5a5a;
        expected_bits.push(f32::from_bits(acc));
    }

    let mut a = Asm::new();
    let base_req = a.data(&requests);
    let base_out = a.bss(iterations);

    use Reg::*;
    a.li(R1, 0); // i
    a.li(R2, iterations as i32);
    a.li(R3, base_req as i32);
    a.li(R4, base_out as i32);
    a.li(R5, 0); // acc
    a.li(R10, 0x5a5a_5a5au32 as i32);

    let top = a.label();
    a.bind(top);
    // acc = rotl3(acc + req[i]) ^ 0x5a5a5a5a
    a.add(R6, R3, R1);
    a.lw(R7, R6, 0);
    a.add(R5, R5, R7);
    // rotate_left(3) = (x << 3) | (x >> 29)
    a.slli(R8, R5, 3);
    a.emit(crate::instr::Instruction::AluImm {
        op: crate::instr::AluOp::Srl,
        rd: R9,
        rs1: R5,
        imm: 29,
    });
    a.alu(crate::instr::AluOp::Or, R5, R8, R9);
    a.alu(crate::instr::AluOp::Xor, R5, R5, R10);
    // out[i] = acc; then the "syscall".
    a.add(R6, R4, R1);
    a.sw(R5, R6, 0);
    a.trap(TrapCode::Syscall);
    a.addi(R1, R1, 1);
    a.blt(R1, R2, top);
    a.halt();

    let program = a.assemble().expect("trap_mix generator emits valid code");
    Kernel::new(KernelKind::Gemm, program, base_out, expected_bits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::Interp;

    #[test]
    fn trap_mix_matches_reference() {
        let k = trap_mix(32, 5);
        let mut cpu = Interp::new(k.program());
        cpu.run(100_000).unwrap();
        assert!(k.verify(cpu.memory()));
        assert_eq!(cpu.trap_count(), 32, "one syscall per iteration");
    }

    #[test]
    fn trap_density_is_high() {
        let k = trap_mix(8, 1);
        let traps = k
            .program()
            .text()
            .iter()
            .filter(|i| matches!(i, crate::instr::Instruction::Trap { .. }))
            .count();
        assert!(traps > 0);
    }
}
