//! 2-D convolution kernel generator.
//!
//! The paper motivates 3D parallel systems with streaming accelerators,
//! citing Kung et al.'s 3D systolic CNN inference mapping \[17\]. This
//! kernel is the corresponding workload: a single-channel 2-D
//! convolution with a K×K filter over an H×W image (valid padding),
//! FMAC-heavy with strided memory access — the access pattern systolic
//! mappings stream through stacked tiers.

use super::{Kernel, KernelKind, ValueStream};
use crate::asm::Asm;
use crate::reg::Reg;

/// Generates a `conv2d` workload: `image` is `h×w` row-major `f32`,
/// `filter` is `k×k`, output is `(h-k+1)×(w-k+1)` (valid padding).
///
/// Reports itself as [`KernelKind::Gemm`]-class for occupancy profiling
/// (convolution shares GEMM's compute-bound character).
///
/// # Panics
///
/// Panics if `k` is zero or larger than either image dimension, or the
/// footprint exceeds the generator's addressing budget.
#[must_use]
pub fn conv2d(h: usize, w: usize, k: usize, seed: u64) -> Kernel {
    assert!(k > 0 && k <= h && k <= w, "filter must fit the image");
    let (oh, ow) = (h - k + 1, w - k + 1);
    assert!(h * w + k * k + oh * ow <= 30_000, "footprint too large for generator");

    let mut vs = ValueStream::new(seed);
    let image: Vec<f32> = (0..h * w).map(|_| vs.next_f32()).collect();
    let filter: Vec<f32> = (0..k * k).map(|_| vs.next_f32()).collect();

    // Reference with identical accumulation order (ky outer, kx inner).
    let mut expected = vec![0.0f32; oh * ow];
    for oy in 0..oh {
        for ox in 0..ow {
            let mut acc = 0.0f32;
            for ky in 0..k {
                for kx in 0..k {
                    acc += image[(oy + ky) * w + (ox + kx)] * filter[ky * k + kx];
                }
            }
            expected[oy * ow + ox] = acc;
        }
    }

    let mut a = Asm::new();
    let base_img = a.data(&image.iter().map(|v| v.to_bits()).collect::<Vec<_>>());
    let base_flt = a.data(&filter.iter().map(|v| v.to_bits()).collect::<Vec<_>>());
    let base_out = a.bss(oh * ow);

    // Register plan:
    //   r1 = oy, r2 = ox, r3 = ky, r4 = kx
    //   r5 = h-k+1, r6 = w-k+1, r7 = k, r8 = w
    //   r9/r10/r11 = bases, r12 = acc, r13.. temps
    use Reg::*;
    a.li(R5, oh as i32);
    a.li(R6, ow as i32);
    a.li(R7, k as i32);
    a.li(R8, w as i32);
    a.li(R9, base_img as i32);
    a.li(R10, base_flt as i32);
    a.li(R11, base_out as i32);

    a.li(R1, 0);
    let loop_oy = a.label();
    a.bind(loop_oy);
    a.li(R2, 0);
    let loop_ox = a.label();
    a.bind(loop_ox);
    a.li(R12, 0); // acc
    a.li(R3, 0); // ky
    let loop_ky = a.label();
    a.bind(loop_ky);
    a.li(R4, 0); // kx
    let loop_kx = a.label();
    a.bind(loop_kx);
    // r13 = &image[(oy+ky)*w + ox+kx]
    a.add(R13, R1, R3);
    a.mul(R13, R13, R8);
    a.add(R13, R13, R2);
    a.add(R13, R13, R4);
    a.add(R13, R13, R9);
    a.lw(R14, R13, 0);
    // r15 = &filter[ky*k + kx]
    a.mul(R15, R3, R7);
    a.add(R15, R15, R4);
    a.add(R15, R15, R10);
    a.lw(R16, R15, 0);
    a.fmac(R12, R14, R16);
    a.addi(R4, R4, 1);
    a.blt(R4, R7, loop_kx);
    a.addi(R3, R3, 1);
    a.blt(R3, R7, loop_ky);
    // out[oy*ow + ox] = acc
    a.mul(R13, R1, R6);
    a.add(R13, R13, R2);
    a.add(R13, R13, R11);
    a.sw(R12, R13, 0);
    a.addi(R2, R2, 1);
    a.blt(R2, R6, loop_ox);
    a.addi(R1, R1, 1);
    a.blt(R1, R5, loop_oy);
    a.halt();

    let program = a.assemble().expect("conv2d generator emits valid code");
    Kernel::new(KernelKind::Gemm, program, base_out, expected)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::Interp;

    #[test]
    fn conv_matches_reference() {
        let kern = conv2d(8, 8, 3, 4);
        let mut cpu = Interp::new(kern.program());
        cpu.run(2_000_000).unwrap();
        assert!(kern.verify(cpu.memory()));
        assert_eq!(kern.output_len(), 36);
    }

    #[test]
    fn identity_filter_copies_the_image() {
        // A 1×1 unit filter makes conv2d(x) == x (same op order, so the
        // accumulated value is exactly image * 1.0 + 0.0).
        let kern = conv2d(4, 5, 1, 9);
        let mut cpu = Interp::new(kern.program());
        cpu.run(200_000).unwrap();
        assert!(kern.verify(cpu.memory()));
        // Output dims = image dims for k = 1.
        assert_eq!(kern.output_len(), 20);
    }
}
