//! FFT kernel generator: iterative radix-2 Cooley–Tukey, single precision.

use super::{Kernel, KernelKind, ValueStream};
use crate::asm::Asm;
use crate::instr::{AluOp, FpuOp, Instruction};
use crate::reg::Reg;

/// Generates an `N = 2^log2n`-point complex FFT workload.
///
/// The input is `N` complex samples (interleaved re/im `f32`), the output
/// is the DFT in the same layout. The code performs an explicit
/// bit-reversal copy followed by `log2n` butterfly stages using a
/// precomputed twiddle table, matching the structure of a DSP
/// implementation (per the paper, FFT is "widely used in communication and
/// visual processing systems").
///
/// # Panics
///
/// Panics if `log2n` is 0 or greater than 12 (the generator's immediate
/// addressing limit).
#[must_use]
pub fn fft(log2n: u32, seed: u64) -> Kernel {
    assert!((1..=12).contains(&log2n), "log2n must be in 1..=12");
    let n = 1usize << log2n;

    let mut vs = ValueStream::new(seed);
    let input: Vec<f32> = (0..2 * n).map(|_| vs.next_f32()).collect();

    // Twiddle factors w_j = exp(-2*pi*i*j/N) for j in 0..N/2, stored f32.
    let mut twiddles = Vec::with_capacity(n.max(2));
    for j in 0..(n / 2).max(1) {
        let angle = -2.0 * std::f64::consts::PI * j as f64 / n as f64;
        twiddles.push(angle.cos() as f32);
        twiddles.push(angle.sin() as f32);
    }

    // Bit-reversal table.
    let rev: Vec<u32> = (0..n as u32).map(|i| i.reverse_bits() >> (32 - log2n)).collect();

    let expected = reference_fft(&input, &twiddles, &rev, n);

    let mut a = Asm::new();
    let in_base = a.data(&input.iter().map(|v| v.to_bits()).collect::<Vec<_>>());
    let tw_base = a.data(&twiddles.iter().map(|v| v.to_bits()).collect::<Vec<_>>());
    let rev_base = a.data(&rev);
    let buf_base = a.bss(2 * n);

    use Reg::*;
    a.li(R4, n as i32);
    a.li(R6, buf_base as i32);
    a.li(R7, tw_base as i32);
    a.li(R26, in_base as i32);
    a.li(R27, rev_base as i32);

    // --- bit-reversal copy: buf[i] = in[rev[i]] -------------------------
    a.li(R8, 0);
    let loop_rev = a.label();
    a.bind(loop_rev);
    a.add(R9, R27, R8);
    a.lw(R10, R9, 0); // r = rev[i]
    a.slli(R11, R10, 1);
    a.add(R11, R11, R26); // &in[2r]
    a.lw(R12, R11, 0);
    a.lw(R13, R11, 1);
    a.slli(R14, R8, 1);
    a.add(R14, R14, R6); // &buf[2i]
    a.sw(R12, R14, 0);
    a.sw(R13, R14, 1);
    a.addi(R8, R8, 1);
    a.blt(R8, R4, loop_rev);

    // --- butterfly stages ------------------------------------------------
    a.li(R1, 1); // h = half-butterfly span
    a.li(R5, (n / 2) as i32); // twiddle stride
    let loop_stage = a.label();
    a.bind(loop_stage);
    a.li(R2, 0); // base
    let loop_base = a.label();
    a.bind(loop_base);
    a.li(R3, 0); // j
    let loop_j = a.label();
    a.bind(loop_j);
    // w = tw[j * stride]
    a.mul(R8, R3, R5);
    a.slli(R8, R8, 1);
    a.add(R8, R8, R7);
    a.lw(R20, R8, 0); // wre
    a.lw(R21, R8, 1); // wim
                      // u = buf[base + j]
    a.add(R9, R2, R3);
    a.slli(R10, R9, 1);
    a.add(R10, R10, R6);
    a.lw(R16, R10, 0); // ure
    a.lw(R17, R10, 1); // uim
                       // x = buf[base + j + h]
    a.add(R11, R9, R1);
    a.slli(R12, R11, 1);
    a.add(R12, R12, R6);
    a.lw(R18, R12, 0); // xre
    a.lw(R19, R12, 1); // xim
                       // v = x * w (complex)
    a.fpu(FpuOp::Fmul, R22, R18, R20);
    a.fpu(FpuOp::Fmul, R23, R19, R21);
    a.fpu(FpuOp::Fsub, R24, R22, R23); // vre = xre*wre - xim*wim
    a.fpu(FpuOp::Fmul, R22, R18, R21);
    a.fpu(FpuOp::Fmul, R23, R19, R20);
    a.fpu(FpuOp::Fadd, R25, R22, R23); // vim = xre*wim + xim*wre
                                       // buf[base+j] = u + v ; buf[base+j+h] = u - v
    a.fpu(FpuOp::Fadd, R13, R16, R24);
    a.sw(R13, R10, 0);
    a.fpu(FpuOp::Fadd, R13, R17, R25);
    a.sw(R13, R10, 1);
    a.fpu(FpuOp::Fsub, R13, R16, R24);
    a.sw(R13, R12, 0);
    a.fpu(FpuOp::Fsub, R13, R17, R25);
    a.sw(R13, R12, 1);
    a.addi(R3, R3, 1);
    a.blt(R3, R1, loop_j);
    // base += 2h
    a.add(R2, R2, R1);
    a.add(R2, R2, R1);
    a.blt(R2, R4, loop_base);
    // h <<= 1 ; stride >>= 1
    a.add(R1, R1, R1);
    a.emit(Instruction::AluImm { op: AluOp::Srl, rd: R5, rs1: R5, imm: 1 });
    a.blt(R1, R4, loop_stage);
    a.halt();

    let program = a.assemble().expect("fft generator emits valid code");
    Kernel::new(KernelKind::Fft, program, buf_base, expected)
}

/// Reference FFT performing the exact same f32 operations, in the same
/// order, as the generated assembly.
fn reference_fft(input: &[f32], twiddles: &[f32], rev: &[u32], n: usize) -> Vec<f32> {
    let mut buf = vec![0.0f32; 2 * n];
    for i in 0..n {
        let r = rev[i] as usize;
        buf[2 * i] = input[2 * r];
        buf[2 * i + 1] = input[2 * r + 1];
    }
    let mut h = 1usize;
    let mut stride = n / 2;
    while h < n {
        let mut base = 0usize;
        while base < n {
            for j in 0..h {
                let ti = 2 * (j * stride);
                let (wre, wim) = (twiddles[ti], twiddles[ti + 1]);
                let ui = 2 * (base + j);
                let xi = 2 * (base + j + h);
                let (ure, uim) = (buf[ui], buf[ui + 1]);
                let (xre, xim) = (buf[xi], buf[xi + 1]);
                let t1 = xre * wre;
                let t2 = xim * wim;
                let vre = t1 - t2;
                let t3 = xre * wim;
                let t4 = xim * wre;
                let vim = t3 + t4;
                buf[ui] = ure + vre;
                buf[ui + 1] = uim + vim;
                buf[xi] = ure - vre;
                buf[xi + 1] = uim - vim;
            }
            base += 2 * h;
        }
        h <<= 1;
        stride >>= 1;
    }
    buf
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Naive DFT check: the reference FFT must agree with an O(N²) DFT to
    /// within f32 tolerance, proving the algorithm (not just the plumbing)
    /// is right.
    #[test]
    fn reference_matches_naive_dft() {
        let k = fft(4, 9); // N = 16
        let n = 16usize;
        // Reconstruct the input from the program's data image.
        let mem = k.program().data();
        let input: Vec<f32> = mem[..2 * n].iter().map(|w| f32::from_bits(*w)).collect();
        let got = k.expected();

        for out_idx in 0..n {
            let mut re = 0.0f64;
            let mut im = 0.0f64;
            for t in 0..n {
                let angle = -2.0 * std::f64::consts::PI * (out_idx * t) as f64 / n as f64;
                let (s, c) = angle.sin_cos();
                let (xr, xi) = (f64::from(input[2 * t]), f64::from(input[2 * t + 1]));
                re += xr * c - xi * s;
                im += xr * s + xi * c;
            }
            assert!(
                (re - f64::from(got[2 * out_idx])).abs() < 1e-3,
                "bin {out_idx} re: naive {re} fft {}",
                got[2 * out_idx]
            );
            assert!(
                (im - f64::from(got[2 * out_idx + 1])).abs() < 1e-3,
                "bin {out_idx} im: naive {im} fft {}",
                got[2 * out_idx + 1]
            );
        }
    }
}
