//! Generators for the paper's three evaluation workloads.
//!
//! Section IV of the paper evaluates R2D3 with GEMM, GEMV and FFT — "FFT is
//! widely used in communication and visual processing systems. GEMM and
//! GEMV are ubiquitous kernels in machine learning". Each generator emits a
//! real assembly program (loops, loads/stores, FP multiply-accumulate) plus
//! a deterministic input data image and a Rust reference function so tests
//! can check the simulated output bit-for-bit.

mod conv2d;
mod fft;
mod gemm;
mod gemv;
mod trapmix;

pub use conv2d::conv2d;
pub use fft::fft;
pub use gemm::gemm;
pub use gemv::gemv;
pub use trapmix::trap_mix;

use crate::program::Program;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which of the paper's three workloads a [`Kernel`] implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum KernelKind {
    /// General matrix-matrix multiply.
    Gemm,
    /// General matrix-vector multiply.
    Gemv,
    /// Radix-2 Cooley–Tukey fast Fourier transform.
    Fft,
}

impl KernelKind {
    /// All three workloads.
    pub const ALL: [KernelKind; 3] = [KernelKind::Gemm, KernelKind::Gemv, KernelKind::Fft];

    /// Display name matching the paper's figures.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            KernelKind::Gemm => "GEMM",
            KernelKind::Gemv => "GEMV",
            KernelKind::Fft => "FFT",
        }
    }

    /// Fraction of the 8 cores the workload keeps busy in steady state.
    ///
    /// §V-C of the paper: "GEMV is highly parallel compared to the rest. It
    /// exhibits higher utilization, power and temperature". These
    /// occupancy profiles seed the lifetime simulation's demand model
    /// (`n_workload / n_live` in Eq. 1). Even GEMV stays below 100 % —
    /// per §III-C, "the nature of the workloads as well as thermal issues
    /// rarely allow 100 % utilization of all cores".
    #[must_use]
    pub fn core_demand_fraction(self) -> f64 {
        match self {
            KernelKind::Gemv => 0.9,
            KernelKind::Fft => 0.75,
            KernelKind::Gemm => 0.75,
        }
    }

    /// Relative switching-activity (dynamic power) weight of the workload.
    #[must_use]
    pub fn activity_weight(self) -> f64 {
        match self {
            KernelKind::Gemv => 1.0,
            KernelKind::Fft => 0.85,
            KernelKind::Gemm => 0.80,
        }
    }
}

impl fmt::Display for KernelKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A generated workload: program image plus output location and the
/// expected (reference) result.
#[derive(Debug, Clone)]
pub struct Kernel {
    kind: KernelKind,
    program: Program,
    output_addr: u32,
    expected: Vec<f32>,
}

impl Kernel {
    pub(crate) fn new(
        kind: KernelKind,
        program: Program,
        output_addr: u32,
        expected: Vec<f32>,
    ) -> Self {
        Kernel { kind, program, output_addr, expected }
    }

    /// Which workload this is.
    #[must_use]
    pub fn kind(&self) -> KernelKind {
        self.kind
    }

    /// The executable image.
    #[must_use]
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Word address of the first output element.
    #[must_use]
    pub fn output_addr(&self) -> u32 {
        self.output_addr
    }

    /// Number of output words.
    #[must_use]
    pub fn output_len(&self) -> usize {
        self.expected.len()
    }

    /// The reference output (computed in Rust with identical f32 ordering).
    #[must_use]
    pub fn expected(&self) -> &[f32] {
        &self.expected
    }

    /// Extracts the kernel's output region from a memory image.
    #[must_use]
    pub fn extract_output(&self, memory: &[u32]) -> Vec<f32> {
        memory
            .iter()
            .skip(self.output_addr as usize)
            .take(self.expected.len())
            .map(|w| f32::from_bits(*w))
            .collect()
    }

    /// Checks a memory image against the reference output.
    ///
    /// Comparison is exact (bit equality) because the assembly performs the
    /// floating-point operations in the same order as the reference.
    #[must_use]
    pub fn verify(&self, memory: &[u32]) -> bool {
        let got = self.extract_output(memory);
        got.len() == self.expected.len()
            && got.iter().zip(&self.expected).all(|(a, b)| a.to_bits() == b.to_bits())
    }
}

/// Deterministic pseudo-random `f32` stream in roughly `[-1, 1]`, used to
/// fill kernel inputs without depending on `rand`.
#[derive(Debug, Clone)]
pub(crate) struct ValueStream {
    state: u64,
}

impl ValueStream {
    pub(crate) fn new(seed: u64) -> Self {
        ValueStream { state: seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1 }
    }

    pub(crate) fn next_f32(&mut self) -> f32 {
        // xorshift64*
        self.state ^= self.state >> 12;
        self.state ^= self.state << 25;
        self.state ^= self.state >> 27;
        let x = self.state.wrapping_mul(0x2545_f491_4f6c_dd1d);
        // Map the top 24 bits to [-1, 1).
        let frac = (x >> 40) as f32 / (1u64 << 24) as f32;
        frac * 2.0 - 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::Interp;

    fn run_and_verify(kernel: &Kernel, budget: u64) {
        let mut cpu = Interp::new(kernel.program());
        cpu.run(budget).expect("kernel must halt within budget");
        assert!(
            kernel.verify(cpu.memory()),
            "{} output mismatch: got {:?} want {:?}",
            kernel.kind(),
            kernel.extract_output(cpu.memory()),
            kernel.expected()
        );
    }

    #[test]
    fn gemm_small_matches_reference() {
        run_and_verify(&gemm(3, 4, 2, 1), 100_000);
    }

    #[test]
    fn gemm_square_matches_reference() {
        run_and_verify(&gemm(8, 8, 8, 42), 2_000_000);
    }

    #[test]
    fn gemv_matches_reference() {
        run_and_verify(&gemv(6, 5, 7), 100_000);
    }

    #[test]
    fn fft_size_8_matches_reference() {
        run_and_verify(&fft(3, 5), 200_000);
    }

    #[test]
    fn fft_size_32_matches_reference() {
        run_and_verify(&fft(5, 11), 2_000_000);
    }

    #[test]
    fn value_stream_is_deterministic_and_bounded() {
        let mut a = ValueStream::new(7);
        let mut b = ValueStream::new(7);
        for _ in 0..1000 {
            let x = a.next_f32();
            assert_eq!(x, b.next_f32());
            assert!((-1.0..=1.0).contains(&x), "{x} out of range");
        }
    }

    #[test]
    fn kernel_kind_profiles() {
        // GEMV is the most parallel workload (paper §V-C).
        for k in KernelKind::ALL {
            assert!(k.core_demand_fraction() <= KernelKind::Gemv.core_demand_fraction());
        }
    }
}
