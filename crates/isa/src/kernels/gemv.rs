//! GEMV kernel generator: `y = A · x` in single precision.

use super::{Kernel, KernelKind, ValueStream};
use crate::asm::Asm;
use crate::reg::Reg;

/// Generates a GEMV workload: `A` is `n×m` row-major, `x` has `m`
/// elements, `y = A·x` has `n`.
///
/// GEMV's dot-product rows are embarrassingly parallel; the paper notes it
/// is the most parallel of the three workloads, with the highest
/// utilization (and therefore aging).
///
/// # Panics
///
/// Panics if any dimension is zero or `n*m + m + n > 30000`.
#[must_use]
pub fn gemv(n: usize, m: usize, seed: u64) -> Kernel {
    assert!(n > 0 && m > 0, "dimensions must be nonzero");
    assert!(n * m + m + n <= 30_000, "matrix too large for generator");

    let mut vs = ValueStream::new(seed);
    let a_mat: Vec<f32> = (0..n * m).map(|_| vs.next_f32()).collect();
    let x_vec: Vec<f32> = (0..m).map(|_| vs.next_f32()).collect();

    let mut expected = vec![0.0f32; n];
    for i in 0..n {
        let mut acc = 0.0f32;
        for k in 0..m {
            acc += a_mat[i * m + k] * x_vec[k];
        }
        expected[i] = acc;
    }

    let mut a = Asm::new();
    let base_a = a.data(&a_mat.iter().map(|v| v.to_bits()).collect::<Vec<_>>());
    let base_x = a.data(&x_vec.iter().map(|v| v.to_bits()).collect::<Vec<_>>());
    let base_y = a.bss(n);

    // Register plan: r1 = i, r2 = k, r3 = n, r4 = m,
    // r5/r6/r7 = bases, r8 = row pointer, r10 = acc, r11..r13 temps.
    use Reg::*;
    a.li(R3, n as i32);
    a.li(R4, m as i32);
    a.li(R5, base_a as i32);
    a.li(R6, base_x as i32);
    a.li(R7, base_y as i32);

    a.li(R1, 0);
    let loop_i = a.label();
    a.bind(loop_i);
    // r8 = &A[i*m]
    a.mul(R8, R1, R4);
    a.add(R8, R8, R5);
    a.li(R10, 0); // acc
    a.li(R2, 0); // k
    let loop_k = a.label();
    a.bind(loop_k);
    a.add(R11, R8, R2);
    a.lw(R12, R11, 0); // A[i][k]
    a.add(R11, R6, R2);
    a.lw(R13, R11, 0); // x[k]
    a.fmac(R10, R12, R13);
    a.addi(R2, R2, 1);
    a.blt(R2, R4, loop_k);
    // y[i] = acc
    a.add(R11, R7, R1);
    a.sw(R10, R11, 0);
    a.addi(R1, R1, 1);
    a.blt(R1, R3, loop_i);
    a.halt();

    let program = a.assemble().expect("gemv generator emits valid code");
    Kernel::new(KernelKind::Gemv, program, base_y, expected)
}
