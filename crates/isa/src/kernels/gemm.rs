//! GEMM kernel generator: `C = A · B` in single precision.

use super::{Kernel, KernelKind, ValueStream};
use crate::asm::Asm;
use crate::reg::Reg;

/// Generates a GEMM workload: `A` is `n×m`, `B` is `m×p`, `C = A·B` is
/// `n×p`, all row-major `f32`.
///
/// The emitted code is a classic triple loop with an FMAC inner loop, so
/// it exercises EXU (index arithmetic, branches), LSU (streaming loads)
/// and FFU (multiply-accumulate) — the activity mix the paper attributes
/// to GEMM.
///
/// # Panics
///
/// Panics if any dimension is zero or the matrices exceed the 16-bit
/// immediate addressing the generator uses (`n*m + m*p + n*p > 30000`).
#[must_use]
pub fn gemm(n: usize, m: usize, p: usize, seed: u64) -> Kernel {
    assert!(n > 0 && m > 0 && p > 0, "dimensions must be nonzero");
    assert!(n * m + m * p + n * p <= 30_000, "matrices too large for generator");

    let mut vs = ValueStream::new(seed);
    let a_mat: Vec<f32> = (0..n * m).map(|_| vs.next_f32()).collect();
    let b_mat: Vec<f32> = (0..m * p).map(|_| vs.next_f32()).collect();

    // Reference result with the same accumulation order as the assembly.
    let mut expected = vec![0.0f32; n * p];
    for i in 0..n {
        for j in 0..p {
            let mut acc = 0.0f32;
            for k in 0..m {
                acc += a_mat[i * m + k] * b_mat[k * p + j];
            }
            expected[i * p + j] = acc;
        }
    }

    let mut a = Asm::new();
    let base_a = a.data(&a_mat.iter().map(|v| v.to_bits()).collect::<Vec<_>>());
    let base_b = a.data(&b_mat.iter().map(|v| v.to_bits()).collect::<Vec<_>>());
    let base_c = a.bss(n * p);

    // Register plan:
    //   r1 = i, r2 = j, r3 = k
    //   r4 = n, r5 = m, r6 = p
    //   r7/r8/r9 = base A/B/C, r10 = acc
    //   r11..r14 = temporaries
    use Reg::*;
    a.li(R4, n as i32);
    a.li(R5, m as i32);
    a.li(R6, p as i32);
    a.li(R7, base_a as i32);
    a.li(R8, base_b as i32);
    a.li(R9, base_c as i32);

    a.li(R1, 0); // i = 0
    let loop_i = a.label();
    a.bind(loop_i);
    a.li(R2, 0); // j = 0
    let loop_j = a.label();
    a.bind(loop_j);
    a.li(R10, 0); // acc = 0.0 (bit pattern of +0.0 is 0)
    a.li(R3, 0); // k = 0
    let loop_k = a.label();
    a.bind(loop_k);
    // r11 = &A[i*m + k]
    a.mul(R11, R1, R5);
    a.add(R11, R11, R3);
    a.add(R11, R11, R7);
    a.lw(R12, R11, 0);
    // r13 = &B[k*p + j]
    a.mul(R13, R3, R6);
    a.add(R13, R13, R2);
    a.add(R13, R13, R8);
    a.lw(R14, R13, 0);
    // acc += A * B
    a.fmac(R10, R12, R14);
    a.addi(R3, R3, 1);
    a.blt(R3, R5, loop_k);
    // C[i*p + j] = acc
    a.mul(R11, R1, R6);
    a.add(R11, R11, R2);
    a.add(R11, R11, R9);
    a.sw(R10, R11, 0);
    a.addi(R2, R2, 1);
    a.blt(R2, R6, loop_j);
    a.addi(R1, R1, 1);
    a.blt(R1, R4, loop_i);
    a.halt();

    let program = a.assemble().expect("gemm generator emits valid code");
    Kernel::new(KernelKind::Gemm, program, base_c, expected)
}
