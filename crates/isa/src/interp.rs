//! Reference interpreter — the golden architectural model.
//!
//! The pipeline simulator in `r2d3-pipeline-sim` must produce exactly the
//! architectural state this interpreter produces for any fault-free run;
//! that equivalence is property-tested in the integration suite.

use crate::instr::Instruction;
use crate::program::Program;
use crate::reg::Reg;
use crate::IsaError;

/// Architectural state: program counter, register file and data memory.
#[derive(Debug, Clone)]
pub struct Interp {
    program: Program,
    pc: u32,
    regs: [u32; 32],
    mem: Vec<u32>,
    halted: bool,
    retired: u64,
    trap_count: u64,
}

impl Interp {
    /// Creates an interpreter with the program loaded and state reset.
    #[must_use]
    pub fn new(program: &Program) -> Self {
        Interp {
            mem: program.initial_memory(),
            program: program.clone(),
            pc: 0,
            regs: [0; 32],
            halted: false,
            retired: 0,
            trap_count: 0,
        }
    }

    /// Current program counter (word address).
    #[must_use]
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// Reads a register (reads of `R0` always return 0).
    #[must_use]
    pub fn reg(&self, r: Reg) -> u32 {
        if r.is_zero() {
            0
        } else {
            self.regs[r.index()]
        }
    }

    /// Writes a register (writes to `R0` are discarded).
    pub fn set_reg(&mut self, r: Reg, value: u32) {
        if !r.is_zero() {
            self.regs[r.index()] = value;
        }
    }

    /// Reads data memory at a word address.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::MemOutOfRange`] for addresses past the image.
    pub fn mem(&self, addr: u32) -> Result<u32, IsaError> {
        self.mem.get(addr as usize).copied().ok_or(IsaError::MemOutOfRange(addr))
    }

    /// The whole data memory.
    #[must_use]
    pub fn memory(&self) -> &[u32] {
        &self.mem
    }

    /// Whether a `Halt` has retired.
    #[must_use]
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Number of retired instructions.
    #[must_use]
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Number of retired `Trap` instructions.
    #[must_use]
    pub fn trap_count(&self) -> u64 {
        self.trap_count
    }

    /// Executes one instruction.
    ///
    /// Returns the retired instruction, or `None` if already halted.
    ///
    /// # Errors
    ///
    /// * [`IsaError::PcOutOfRange`] if the PC leaves the text segment.
    /// * [`IsaError::MemOutOfRange`] on an out-of-image access.
    pub fn step(&mut self) -> Result<Option<Instruction>, IsaError> {
        if self.halted {
            return Ok(None);
        }
        let instr = self.program.fetch(self.pc).ok_or(IsaError::PcOutOfRange(self.pc))?;
        let next_pc = self.pc.wrapping_add(1);
        let mut target = next_pc;

        match instr {
            Instruction::Alu { op, rd, rs1, rs2 } => {
                let v = op.apply(self.reg(rs1), self.reg(rs2));
                self.set_reg(rd, v);
            }
            Instruction::AluImm { op, rd, rs1, imm } => {
                let v = op.apply(self.reg(rs1), imm as i32 as u32);
                self.set_reg(rd, v);
            }
            Instruction::Lui { rd, imm } => {
                self.set_reg(rd, u32::from(imm) << 16);
            }
            Instruction::Load { rd, base, offset } => {
                let addr = self.reg(base).wrapping_add(offset as i32 as u32);
                let v = self.mem(addr)?;
                self.set_reg(rd, v);
            }
            Instruction::Store { src, base, offset } => {
                let addr = self.reg(base).wrapping_add(offset as i32 as u32);
                let value = self.reg(src);
                let slot = self.mem.get_mut(addr as usize).ok_or(IsaError::MemOutOfRange(addr))?;
                *slot = value;
            }
            Instruction::Branch { cond, rs1, rs2, offset } => {
                if cond.eval(self.reg(rs1), self.reg(rs2)) {
                    target = next_pc.wrapping_add(offset as i32 as u32);
                }
            }
            Instruction::Jal { rd, offset } => {
                self.set_reg(rd, next_pc);
                target = next_pc.wrapping_add(offset as u32);
            }
            Instruction::Jalr { rd, rs1, offset } => {
                let t = self.reg(rs1).wrapping_add(offset as i32 as u32);
                self.set_reg(rd, next_pc);
                target = t;
            }
            Instruction::Fpu { op, rd, rs1, rs2 } => {
                let v = op.apply(self.reg(rd), self.reg(rs1), self.reg(rs2));
                self.set_reg(rd, v);
            }
            Instruction::Trap { .. } => {
                self.trap_count += 1;
            }
            Instruction::Nop => {}
            Instruction::Halt => {
                self.halted = true;
            }
        }

        self.pc = target;
        self.retired += 1;
        Ok(Some(instr))
    }

    /// Runs until `Halt` or until `max_steps` instructions have retired.
    ///
    /// # Errors
    ///
    /// Propagates [`IsaError`] from [`step`](Interp::step) and returns
    /// [`IsaError::CycleBudgetExceeded`] if the program does not halt.
    pub fn run(&mut self, max_steps: u64) -> Result<(), IsaError> {
        for _ in 0..max_steps {
            if self.step()?.is_none() {
                return Ok(());
            }
            if self.halted {
                return Ok(());
            }
        }
        if self.halted {
            Ok(())
        } else {
            Err(IsaError::CycleBudgetExceeded(max_steps))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Asm;

    #[test]
    fn loads_and_stores() {
        let mut a = Asm::new();
        let d = a.data(&[100, 200]);
        a.li(Reg::R1, d as i32);
        a.lw(Reg::R2, Reg::R1, 1);
        a.addi(Reg::R2, Reg::R2, 5);
        a.sw(Reg::R2, Reg::R1, 0);
        a.halt();
        let mut cpu = Interp::new(&a.assemble().unwrap());
        cpu.run(100).unwrap();
        assert_eq!(cpu.mem(0).unwrap(), 205);
        assert_eq!(cpu.mem(1).unwrap(), 200);
    }

    #[test]
    fn out_of_range_load_is_error() {
        let mut a = Asm::new();
        a.lw(Reg::R1, Reg::R0, 1000);
        a.halt();
        let mut cpu = Interp::new(&a.assemble().unwrap());
        assert!(matches!(cpu.run(10), Err(IsaError::MemOutOfRange(1000))));
    }

    #[test]
    fn jal_links_and_returns() {
        let mut a = Asm::new();
        let sub = a.label();
        a.li(Reg::R5, 1); // 0..=1 (one addi)
        a.jal(Reg::R31, sub);
        a.addi(Reg::R5, Reg::R5, 10);
        a.halt();
        a.bind(sub);
        a.addi(Reg::R5, Reg::R5, 100);
        a.jr(Reg::R31);
        let mut cpu = Interp::new(&a.assemble().unwrap());
        cpu.run(100).unwrap();
        assert_eq!(cpu.reg(Reg::R5), 111);
    }

    #[test]
    fn trap_counts_and_continues() {
        let mut a = Asm::new();
        a.trap(crate::instr::TrapCode::Syscall);
        a.trap(crate::instr::TrapCode::Break);
        a.halt();
        let mut cpu = Interp::new(&a.assemble().unwrap());
        cpu.run(10).unwrap();
        assert_eq!(cpu.trap_count(), 2);
        assert_eq!(cpu.retired(), 3);
    }

    #[test]
    fn budget_exceeded() {
        let mut a = Asm::new();
        let top = a.label();
        a.bind(top);
        a.j(top);
        let mut cpu = Interp::new(&a.assemble().unwrap());
        assert!(matches!(cpu.run(5), Err(IsaError::CycleBudgetExceeded(5))));
    }

    #[test]
    fn r0_is_hardwired_zero() {
        let mut a = Asm::new();
        a.addi(Reg::R0, Reg::R0, 7);
        a.add(Reg::R1, Reg::R0, Reg::R0);
        a.halt();
        let mut cpu = Interp::new(&a.assemble().unwrap());
        cpu.run(10).unwrap();
        assert_eq!(cpu.reg(Reg::R0), 0);
        assert_eq!(cpu.reg(Reg::R1), 0);
    }

    #[test]
    fn step_after_halt_returns_none() {
        let mut a = Asm::new();
        a.halt();
        let mut cpu = Interp::new(&a.assemble().unwrap());
        cpu.run(10).unwrap();
        assert!(cpu.halted());
        assert_eq!(cpu.step().unwrap(), None);
    }
}
