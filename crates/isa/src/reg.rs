//! Architectural register names.

use serde::{Deserialize, Serialize};
use std::fmt;

/// One of the 32 general-purpose registers.
///
/// `R0` is hardwired to zero, as in most RISC ISAs; writes to it are
/// discarded by the interpreter and the pipeline simulator alike.
///
/// # Example
///
/// ```
/// use r2d3_isa::Reg;
/// assert_eq!(Reg::R5.index(), 5);
/// assert_eq!(Reg::from_index(5), Some(Reg::R5));
/// assert_eq!(Reg::R5.to_string(), "r5");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
#[derive(Default)]
pub enum Reg {
    #[default]
    R0,
    R1,
    R2,
    R3,
    R4,
    R5,
    R6,
    R7,
    R8,
    R9,
    R10,
    R11,
    R12,
    R13,
    R14,
    R15,
    R16,
    R17,
    R18,
    R19,
    R20,
    R21,
    R22,
    R23,
    R24,
    R25,
    R26,
    R27,
    R28,
    R29,
    R30,
    R31,
}

impl Reg {
    /// All 32 registers in index order.
    pub const ALL: [Reg; 32] = [
        Reg::R0,
        Reg::R1,
        Reg::R2,
        Reg::R3,
        Reg::R4,
        Reg::R5,
        Reg::R6,
        Reg::R7,
        Reg::R8,
        Reg::R9,
        Reg::R10,
        Reg::R11,
        Reg::R12,
        Reg::R13,
        Reg::R14,
        Reg::R15,
        Reg::R16,
        Reg::R17,
        Reg::R18,
        Reg::R19,
        Reg::R20,
        Reg::R21,
        Reg::R22,
        Reg::R23,
        Reg::R24,
        Reg::R25,
        Reg::R26,
        Reg::R27,
        Reg::R28,
        Reg::R29,
        Reg::R30,
        Reg::R31,
    ];

    /// Returns the register's index in `0..32`.
    #[must_use]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Returns the register with the given index, or `None` if `idx >= 32`.
    #[must_use]
    pub fn from_index(idx: usize) -> Option<Reg> {
        Reg::ALL.get(idx).copied()
    }

    /// Returns `true` for the hardwired-zero register `R0`.
    #[must_use]
    pub fn is_zero(self) -> bool {
        self == Reg::R0
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.index())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_roundtrip() {
        for (i, r) in Reg::ALL.iter().enumerate() {
            assert_eq!(r.index(), i);
            assert_eq!(Reg::from_index(i), Some(*r));
        }
    }

    #[test]
    fn from_index_out_of_range() {
        assert_eq!(Reg::from_index(32), None);
        assert_eq!(Reg::from_index(usize::MAX), None);
    }

    #[test]
    fn zero_register() {
        assert!(Reg::R0.is_zero());
        assert!(!Reg::R1.is_zero());
    }

    #[test]
    fn display() {
        assert_eq!(Reg::R0.to_string(), "r0");
        assert_eq!(Reg::R31.to_string(), "r31");
    }
}
