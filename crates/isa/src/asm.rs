//! A tiny two-pass assembler with label support.

use crate::instr::{AluOp, BranchCond, FpuOp, Instruction, TrapCode};
use crate::program::Program;
use crate::reg::Reg;
use crate::IsaError;

/// An opaque forward-referenceable code label created by [`Asm::label`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(usize);

/// Instruction whose branch target is patched at assembly time.
#[derive(Debug, Clone, Copy)]
enum Pending {
    Branch { cond: BranchCond, rs1: Reg, rs2: Reg, target: Label },
    Jal { rd: Reg, target: Label },
}

/// A two-pass assembler: emit instructions, bind labels, then
/// [`assemble`](Asm::assemble) into a [`Program`].
///
/// # Example
///
/// ```
/// use r2d3_isa::{asm::Asm, interp::Interp, Reg};
///
/// # fn main() -> Result<(), r2d3_isa::IsaError> {
/// // Sum 1..=10 into r3.
/// let mut a = Asm::new();
/// a.li(Reg::R1, 1);        // i
/// a.li(Reg::R2, 10);       // n
/// let top = a.label();
/// a.bind(top);
/// a.add(Reg::R3, Reg::R3, Reg::R1);
/// a.addi(Reg::R1, Reg::R1, 1);
/// a.ble(Reg::R1, Reg::R2, top);
/// a.halt();
///
/// let mut cpu = Interp::new(&a.assemble()?);
/// cpu.run(1_000)?;
/// assert_eq!(cpu.reg(Reg::R3), 55);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct Asm {
    text: Vec<Slot>,
    labels: Vec<Option<u32>>,
    data: Vec<u32>,
    data_words: usize,
}

#[derive(Debug, Clone, Copy)]
enum Slot {
    Fixed(Instruction),
    Pending(Pending),
}

impl Asm {
    /// Creates an empty assembler.
    #[must_use]
    pub fn new() -> Self {
        Asm::default()
    }

    /// Current instruction address (where the next emit lands).
    #[must_use]
    pub fn here(&self) -> u32 {
        self.text.len() as u32
    }

    /// Creates a fresh, unbound label.
    pub fn label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Binds `label` to the current address.
    ///
    /// # Panics
    ///
    /// Panics if the label is already bound (each label may be bound once).
    pub fn bind(&mut self, label: Label) {
        let here = self.here();
        let slot = &mut self.labels[label.0];
        assert!(slot.is_none(), "label bound twice");
        *slot = Some(here);
    }

    /// Emits a raw instruction.
    pub fn emit(&mut self, instr: Instruction) {
        self.text.push(Slot::Fixed(instr));
    }

    /// Appends `words` to the data image, returning the word address of the
    /// first appended element.
    pub fn data(&mut self, words: &[u32]) -> u32 {
        let addr = self.data.len() as u32;
        self.data.extend_from_slice(words);
        self.data_words = self.data_words.max(self.data.len());
        addr
    }

    /// Reserves `words` zeroed data words, returning their start address.
    pub fn bss(&mut self, words: usize) -> u32 {
        let addr = self.data_words as u32;
        self.data_words += words;
        addr
    }

    // --- convenience emitters -------------------------------------------

    /// `rd = rs1 <op> rs2`
    pub fn alu(&mut self, op: AluOp, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Instruction::Alu { op, rd, rs1, rs2 });
    }

    /// `rd = rs1 + rs2`
    pub fn add(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.alu(AluOp::Add, rd, rs1, rs2);
    }

    /// `rd = rs1 - rs2`
    pub fn sub(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.alu(AluOp::Sub, rd, rs1, rs2);
    }

    /// `rd = rs1 * rs2` (low 32 bits)
    pub fn mul(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.alu(AluOp::Mul, rd, rs1, rs2);
    }

    /// `rd = rs1 + imm`
    pub fn addi(&mut self, rd: Reg, rs1: Reg, imm: i16) {
        self.emit(Instruction::AluImm { op: AluOp::Add, rd, rs1, imm });
    }

    /// `rd = rs1 << imm`
    pub fn slli(&mut self, rd: Reg, rs1: Reg, imm: i16) {
        self.emit(Instruction::AluImm { op: AluOp::Sll, rd, rs1, imm });
    }

    /// Loads a 32-bit constant with `lui`+`ori` (or a single `addi` when it
    /// fits in 16 bits signed).
    pub fn li(&mut self, rd: Reg, value: i32) {
        if let Ok(imm) = i16::try_from(value) {
            self.addi(rd, Reg::R0, imm);
        } else {
            let v = value as u32;
            self.emit(Instruction::Lui { rd, imm: (v >> 16) as u16 });
            self.emit(Instruction::AluImm {
                op: AluOp::Or,
                rd,
                rs1: rd,
                imm: (v & 0xffff) as u16 as i16,
            });
        }
    }

    /// `rd = mem[base + offset]`
    pub fn lw(&mut self, rd: Reg, base: Reg, offset: i16) {
        self.emit(Instruction::Load { rd, base, offset });
    }

    /// `mem[base + offset] = src`
    pub fn sw(&mut self, src: Reg, base: Reg, offset: i16) {
        self.emit(Instruction::Store { src, base, offset });
    }

    /// Conditional branch to `target`.
    pub fn branch(&mut self, cond: BranchCond, rs1: Reg, rs2: Reg, target: Label) {
        self.text.push(Slot::Pending(Pending::Branch { cond, rs1, rs2, target }));
    }

    /// Branch if equal.
    pub fn beq(&mut self, rs1: Reg, rs2: Reg, target: Label) {
        self.branch(BranchCond::Eq, rs1, rs2, target);
    }

    /// Branch if not equal.
    pub fn bne(&mut self, rs1: Reg, rs2: Reg, target: Label) {
        self.branch(BranchCond::Ne, rs1, rs2, target);
    }

    /// Branch if `rs1 < rs2` (signed).
    pub fn blt(&mut self, rs1: Reg, rs2: Reg, target: Label) {
        self.branch(BranchCond::Lt, rs1, rs2, target);
    }

    /// Branch if `rs1 <= rs2` (signed), i.e. not `rs2 < rs1`.
    pub fn ble(&mut self, rs1: Reg, rs2: Reg, target: Label) {
        self.branch(BranchCond::Ge, rs2, rs1, target);
    }

    /// Unconditional jump to `target` (discards the link).
    pub fn j(&mut self, target: Label) {
        self.text.push(Slot::Pending(Pending::Jal { rd: Reg::R0, target }));
    }

    /// Jump-and-link to `target`.
    pub fn jal(&mut self, rd: Reg, target: Label) {
        self.text.push(Slot::Pending(Pending::Jal { rd, target }));
    }

    /// Indirect jump through `rs1` (e.g. return from subroutine).
    pub fn jr(&mut self, rs1: Reg) {
        self.emit(Instruction::Jalr { rd: Reg::R0, rs1, offset: 0 });
    }

    /// Floating-point op.
    pub fn fpu(&mut self, op: FpuOp, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Instruction::Fpu { op, rd, rs1, rs2 });
    }

    /// `rd += rs1 * rs2` (FP multiply-accumulate)
    pub fn fmac(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.fpu(FpuOp::Fmac, rd, rs1, rs2);
    }

    /// Software trap.
    pub fn trap(&mut self, code: TrapCode) {
        self.emit(Instruction::Trap { code });
    }

    /// No-op.
    pub fn nop(&mut self) {
        self.emit(Instruction::Nop);
    }

    /// Halts the hart.
    pub fn halt(&mut self) {
        self.emit(Instruction::Halt);
    }

    /// Resolves all labels and produces the final [`Program`].
    ///
    /// # Errors
    ///
    /// * [`IsaError::UnboundLabel`] if a referenced label was never bound.
    /// * [`IsaError::BranchOutOfRange`] if a branch target does not fit the
    ///   16-bit PC-relative field.
    pub fn assemble(&self) -> Result<Program, IsaError> {
        let mut text = Vec::with_capacity(self.text.len());
        for (pc, slot) in self.text.iter().enumerate() {
            let pc = pc as u32;
            let instr = match *slot {
                Slot::Fixed(i) => i,
                Slot::Pending(p) => self.resolve(pc, p)?,
            };
            text.push(instr);
        }
        Ok(Program::new(text, self.data.clone(), self.data_words))
    }

    fn resolve(&self, pc: u32, pending: Pending) -> Result<Instruction, IsaError> {
        let target_of = |l: Label| self.labels[l.0].ok_or(IsaError::UnboundLabel(l.0));
        match pending {
            Pending::Branch { cond, rs1, rs2, target } => {
                let to = target_of(target)?;
                // Offset relative to the *next* instruction, in words.
                let delta = i64::from(to) - i64::from(pc) - 1;
                let offset = i16::try_from(delta)
                    .map_err(|_| IsaError::BranchOutOfRange { from: pc, to })?;
                Ok(Instruction::Branch { cond, rs1, rs2, offset })
            }
            Pending::Jal { rd, target } => {
                let to = target_of(target)?;
                let delta = i64::from(to) - i64::from(pc) - 1;
                let offset = i32::try_from(delta)
                    .map_err(|_| IsaError::BranchOutOfRange { from: pc, to })?;
                Ok(Instruction::Jal { rd, offset })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::Interp;

    #[test]
    fn forward_and_backward_labels() {
        let mut a = Asm::new();
        let end = a.label();
        a.li(Reg::R1, 3);
        let top = a.label();
        a.bind(top);
        a.addi(Reg::R1, Reg::R1, -1);
        a.beq(Reg::R1, Reg::R0, end); // forward ref
        a.j(top); // backward ref
        a.bind(end);
        a.halt();

        let p = a.assemble().unwrap();
        let mut cpu = Interp::new(&p);
        cpu.run(100).unwrap();
        assert_eq!(cpu.reg(Reg::R1), 0);
    }

    #[test]
    fn unbound_label_is_error() {
        let mut a = Asm::new();
        let l = a.label();
        a.j(l);
        assert!(matches!(a.assemble(), Err(IsaError::UnboundLabel(_))));
    }

    #[test]
    fn li_wide_constant() {
        let mut a = Asm::new();
        a.li(Reg::R1, 0x1234_5678);
        a.li(Reg::R2, -1);
        a.halt();
        let mut cpu = Interp::new(&a.assemble().unwrap());
        cpu.run(10).unwrap();
        assert_eq!(cpu.reg(Reg::R1), 0x1234_5678);
        assert_eq!(cpu.reg(Reg::R2), u32::MAX);
    }

    #[test]
    fn data_and_bss_layout() {
        let mut a = Asm::new();
        let d = a.data(&[10, 20]);
        let b = a.bss(3);
        assert_eq!(d, 0);
        assert_eq!(b, 2);
        a.halt();
        let p = a.assemble().unwrap();
        assert_eq!(p.initial_memory(), vec![10, 20, 0, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "label bound twice")]
    fn double_bind_panics() {
        let mut a = Asm::new();
        let l = a.label();
        a.bind(l);
        a.bind(l);
    }
}
