//! Instruction definitions and their mapping onto pipeline units.

use crate::reg::Reg;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Integer ALU operation, executed in the EXU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum AluOp {
    Add,
    Sub,
    And,
    Or,
    Xor,
    /// Shift left logical (shift amount from `rs2` or immediate, masked to 5 bits).
    Sll,
    /// Shift right logical.
    Srl,
    /// Shift right arithmetic.
    Sra,
    /// Set-less-than (signed): `rd = (rs1 < rs2) as u32`.
    Slt,
    /// 32-bit low multiply.
    Mul,
}

impl AluOp {
    /// All ALU operations, in encoding order.
    pub const ALL: [AluOp; 10] = [
        AluOp::Add,
        AluOp::Sub,
        AluOp::And,
        AluOp::Or,
        AluOp::Xor,
        AluOp::Sll,
        AluOp::Srl,
        AluOp::Sra,
        AluOp::Slt,
        AluOp::Mul,
    ];

    /// Applies the operation to two operand words.
    #[must_use]
    pub fn apply(self, a: u32, b: u32) -> u32 {
        match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Sll => a.wrapping_shl(b & 0x1f),
            AluOp::Srl => a.wrapping_shr(b & 0x1f),
            AluOp::Sra => (a as i32).wrapping_shr(b & 0x1f) as u32,
            AluOp::Slt => u32::from((a as i32) < (b as i32)),
            AluOp::Mul => a.wrapping_mul(b),
        }
    }
}

/// Branch condition evaluated in the EXU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum BranchCond {
    Eq,
    Ne,
    Lt,
    Ge,
}

impl BranchCond {
    /// All branch conditions, in encoding order.
    pub const ALL: [BranchCond; 4] =
        [BranchCond::Eq, BranchCond::Ne, BranchCond::Lt, BranchCond::Ge];

    /// Evaluates the condition on two operand words (signed comparison).
    #[must_use]
    pub fn eval(self, a: u32, b: u32) -> bool {
        match self {
            BranchCond::Eq => a == b,
            BranchCond::Ne => a != b,
            BranchCond::Lt => (a as i32) < (b as i32),
            BranchCond::Ge => (a as i32) >= (b as i32),
        }
    }
}

/// Floating-point operation, executed in the FFU.
///
/// Operands are general-purpose registers reinterpreted as IEEE-754 `f32`
/// bit patterns, mirroring how the OpenSPARC FFU fronts the FPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum FpuOp {
    Fadd,
    Fsub,
    Fmul,
    /// `rd = rd + rs1 * rs2` (fused multiply-accumulate; reads `rd`).
    Fmac,
}

impl FpuOp {
    /// All FPU operations, in encoding order.
    pub const ALL: [FpuOp; 4] = [FpuOp::Fadd, FpuOp::Fsub, FpuOp::Fmul, FpuOp::Fmac];

    /// Applies the operation to bit-pattern operands (`acc` is the old `rd`).
    #[must_use]
    pub fn apply(self, acc: u32, a: u32, b: u32) -> u32 {
        let (fa, fb) = (f32::from_bits(a), f32::from_bits(b));
        let out = match self {
            FpuOp::Fadd => fa + fb,
            FpuOp::Fsub => fa - fb,
            FpuOp::Fmul => fa * fb,
            FpuOp::Fmac => f32::from_bits(acc) + fa * fb,
        };
        out.to_bits()
    }
}

/// Software trap codes handled by the TLU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum TrapCode {
    /// Benign syscall-style trap; the simulator treats it as a no-op with
    /// TLU activity.
    Syscall,
    /// Software breakpoint.
    Break,
}

/// The five OpenSPARC T1 pipeline units R2D3 protects (paper Table III).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Unit {
    /// Instruction fetch unit.
    Ifu,
    /// Integer execution unit.
    Exu,
    /// Load/store unit.
    Lsu,
    /// Trap logic unit.
    Tlu,
    /// Floating-point frontend unit.
    Ffu,
}

impl Unit {
    /// All units in Table III order.
    pub const ALL: [Unit; 5] = [Unit::Ifu, Unit::Exu, Unit::Lsu, Unit::Tlu, Unit::Ffu];

    /// Number of distinct units.
    pub const COUNT: usize = 5;

    /// Index of the unit in [`Unit::ALL`].
    #[must_use]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Returns the unit with the given index, or `None` if out of range.
    #[must_use]
    pub fn from_index(idx: usize) -> Option<Unit> {
        Unit::ALL.get(idx).copied()
    }

    /// Short uppercase name used in reports (matches the paper's tables).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Unit::Ifu => "IFU",
            Unit::Exu => "EXU",
            Unit::Lsu => "LSU",
            Unit::Tlu => "TLU",
            Unit::Ffu => "FFU",
        }
    }
}

impl fmt::Display for Unit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A decoded instruction.
///
/// Each variant notes which pipeline unit performs its primary work; this
/// is what drives per-unit activity factors in the lifetime simulation.
/// Field meanings follow RISC convention: `rd` destination, `rs1`/`rs2`
/// sources, `imm`/`offset` immediates (PC-relative offsets in words).
#[allow(missing_docs)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Instruction {
    /// Register-register ALU operation (EXU).
    Alu { op: AluOp, rd: Reg, rs1: Reg, rs2: Reg },
    /// Register-immediate ALU operation (EXU).
    AluImm { op: AluOp, rd: Reg, rs1: Reg, imm: i16 },
    /// Load upper immediate: `rd = imm << 16` (EXU).
    Lui { rd: Reg, imm: u16 },
    /// Word load: `rd = mem[rs1 + offset]` (LSU).
    Load { rd: Reg, base: Reg, offset: i16 },
    /// Word store: `mem[rs1 + offset] = rs2` (LSU).
    Store { src: Reg, base: Reg, offset: i16 },
    /// Conditional PC-relative branch, offset in words (EXU resolves).
    Branch { cond: BranchCond, rs1: Reg, rs2: Reg, offset: i16 },
    /// Jump-and-link, PC-relative offset in words; `rd = pc + 1`.
    Jal { rd: Reg, offset: i32 },
    /// Indirect jump-and-link: `rd = pc + 1; pc = rs1 + offset` (words).
    Jalr { rd: Reg, rs1: Reg, offset: i16 },
    /// Floating-point operation (FFU).
    Fpu { op: FpuOp, rd: Reg, rs1: Reg, rs2: Reg },
    /// Software trap (TLU).
    Trap { code: TrapCode },
    /// No operation.
    Nop,
    /// Stop the hart.
    Halt,
}

impl Instruction {
    /// The pipeline unit that performs this instruction's primary work.
    ///
    /// Every instruction also exercises the IFU (fetch); this method
    /// reports the *execute-phase* unit used for activity accounting.
    #[must_use]
    pub fn primary_unit(self) -> Unit {
        match self {
            Instruction::Alu { .. }
            | Instruction::AluImm { .. }
            | Instruction::Lui { .. }
            | Instruction::Branch { .. }
            | Instruction::Jal { .. }
            | Instruction::Jalr { .. } => Unit::Exu,
            Instruction::Load { .. } | Instruction::Store { .. } => Unit::Lsu,
            Instruction::Fpu { .. } => Unit::Ffu,
            Instruction::Trap { .. } => Unit::Tlu,
            Instruction::Nop | Instruction::Halt => Unit::Ifu,
        }
    }

    /// Destination register, if the instruction writes one.
    #[must_use]
    pub fn dest(self) -> Option<Reg> {
        match self {
            Instruction::Alu { rd, .. }
            | Instruction::AluImm { rd, .. }
            | Instruction::Lui { rd, .. }
            | Instruction::Load { rd, .. }
            | Instruction::Jal { rd, .. }
            | Instruction::Jalr { rd, .. }
            | Instruction::Fpu { rd, .. } => (!rd.is_zero()).then_some(rd),
            _ => None,
        }
    }

    /// Source registers read by the instruction (up to three).
    #[must_use]
    pub fn sources(self) -> [Option<Reg>; 3] {
        match self {
            Instruction::Alu { rs1, rs2, .. } => [Some(rs1), Some(rs2), None],
            Instruction::AluImm { rs1, .. } => [Some(rs1), None, None],
            Instruction::Lui { .. } => [None, None, None],
            Instruction::Load { base, .. } => [Some(base), None, None],
            Instruction::Store { src, base, .. } => [Some(src), Some(base), None],
            Instruction::Branch { rs1, rs2, .. } => [Some(rs1), Some(rs2), None],
            Instruction::Jal { .. } => [None, None, None],
            Instruction::Jalr { rs1, .. } => [Some(rs1), None, None],
            // Fmac also reads the accumulator rd.
            Instruction::Fpu { op, rd, rs1, rs2 } => {
                if op == FpuOp::Fmac {
                    [Some(rs1), Some(rs2), Some(rd)]
                } else {
                    [Some(rs1), Some(rs2), None]
                }
            }
            Instruction::Trap { .. } | Instruction::Nop | Instruction::Halt => [None, None, None],
        }
    }

    /// Returns `true` for control-flow instructions (branches and jumps).
    #[must_use]
    pub fn is_control_flow(self) -> bool {
        matches!(
            self,
            Instruction::Branch { .. } | Instruction::Jal { .. } | Instruction::Jalr { .. }
        )
    }

    /// Returns `true` for memory instructions.
    #[must_use]
    pub fn is_memory(self) -> bool {
        matches!(self, Instruction::Load { .. } | Instruction::Store { .. })
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Instruction::Alu { op, rd, rs1, rs2 } => {
                write!(f, "{op:?} {rd}, {rs1}, {rs2}")
            }
            Instruction::AluImm { op, rd, rs1, imm } => {
                write!(f, "{op:?}i {rd}, {rs1}, {imm}")
            }
            Instruction::Lui { rd, imm } => write!(f, "lui {rd}, {imm:#x}"),
            Instruction::Load { rd, base, offset } => write!(f, "lw {rd}, {offset}({base})"),
            Instruction::Store { src, base, offset } => write!(f, "sw {src}, {offset}({base})"),
            Instruction::Branch { cond, rs1, rs2, offset } => {
                write!(f, "b{cond:?} {rs1}, {rs2}, {offset}")
            }
            Instruction::Jal { rd, offset } => write!(f, "jal {rd}, {offset}"),
            Instruction::Jalr { rd, rs1, offset } => write!(f, "jalr {rd}, {offset}({rs1})"),
            Instruction::Fpu { op, rd, rs1, rs2 } => write!(f, "{op:?} {rd}, {rs1}, {rs2}"),
            Instruction::Trap { code } => write!(f, "trap {code:?}"),
            Instruction::Nop => f.write_str("nop"),
            Instruction::Halt => f.write_str("halt"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alu_semantics() {
        assert_eq!(AluOp::Add.apply(3, 4), 7);
        assert_eq!(AluOp::Sub.apply(3, 4), u32::MAX);
        assert_eq!(AluOp::Sll.apply(1, 33), 2, "shift amount is masked to 5 bits");
        assert_eq!(AluOp::Sra.apply(0x8000_0000, 31), u32::MAX);
        assert_eq!(AluOp::Slt.apply(u32::MAX, 0), 1, "signed compare");
        assert_eq!(AluOp::Mul.apply(0x1_0000, 0x1_0000), 0);
    }

    #[test]
    fn branch_semantics() {
        assert!(BranchCond::Eq.eval(5, 5));
        assert!(BranchCond::Ne.eval(5, 6));
        assert!(BranchCond::Lt.eval(u32::MAX, 0), "signed: -1 < 0");
        assert!(BranchCond::Ge.eval(0, u32::MAX));
    }

    #[test]
    fn fpu_semantics() {
        let two = 2.0f32.to_bits();
        let three = 3.0f32.to_bits();
        assert_eq!(f32::from_bits(FpuOp::Fadd.apply(0, two, three)), 5.0);
        assert_eq!(f32::from_bits(FpuOp::Fmul.apply(0, two, three)), 6.0);
        let acc = 1.0f32.to_bits();
        assert_eq!(f32::from_bits(FpuOp::Fmac.apply(acc, two, three)), 7.0);
    }

    #[test]
    fn unit_mapping() {
        let i = Instruction::Load { rd: Reg::R1, base: Reg::R2, offset: 0 };
        assert_eq!(i.primary_unit(), Unit::Lsu);
        let i = Instruction::Fpu { op: FpuOp::Fadd, rd: Reg::R1, rs1: Reg::R2, rs2: Reg::R3 };
        assert_eq!(i.primary_unit(), Unit::Ffu);
        let i = Instruction::Trap { code: TrapCode::Syscall };
        assert_eq!(i.primary_unit(), Unit::Tlu);
    }

    #[test]
    fn dest_ignores_r0() {
        let i = Instruction::AluImm { op: AluOp::Add, rd: Reg::R0, rs1: Reg::R1, imm: 1 };
        assert_eq!(i.dest(), None);
    }

    #[test]
    fn fmac_reads_accumulator() {
        let i = Instruction::Fpu { op: FpuOp::Fmac, rd: Reg::R4, rs1: Reg::R1, rs2: Reg::R2 };
        assert!(i.sources().contains(&Some(Reg::R4)));
    }

    #[test]
    fn unit_index_roundtrip() {
        for u in Unit::ALL {
            assert_eq!(Unit::from_index(u.index()), Some(u));
        }
        assert_eq!(Unit::from_index(5), None);
    }
}
