//! Binary encoding of instructions.
//!
//! R2D3's inter-stage checkers compare raw bit patterns flowing between
//! pipeline stages, so the ISA needs a concrete 32-bit encoding. The
//! layout is MIPS-like:
//!
//! ```text
//! R-type  : opcode[31:26] rd[25:21] rs1[20:16] rs2[15:11] funct[10:0]
//! I-type  : opcode[31:26] rd[25:21] rs1[20:16] imm[15:0]
//! J-type  : opcode[31:26] rd[25:21] offset[20:0]
//! ```
//!
//! Every [`Instruction`] round-trips exactly through [`encode`] /
//! [`decode`]; this invariant is property-tested.

use crate::instr::{AluOp, BranchCond, FpuOp, Instruction, TrapCode};
use crate::reg::Reg;
use crate::IsaError;

const OP_ALU: u32 = 0x00;
const OP_FPU: u32 = 0x01;
const OP_NOP: u32 = 0x02;
const OP_HALT: u32 = 0x03;
const OP_ALUI_BASE: u32 = 0x08; // 0x08 ..= 0x11, one per AluOp
const OP_LUI: u32 = 0x12;
const OP_LOAD: u32 = 0x13;
const OP_STORE: u32 = 0x14;
const OP_BRANCH_BASE: u32 = 0x18; // 0x18 ..= 0x1b, one per BranchCond
const OP_JAL: u32 = 0x1c;
const OP_JALR: u32 = 0x1d;
const OP_TRAP: u32 = 0x1e;

/// Maximum magnitude of a [`Instruction::Jal`] offset (21-bit signed words).
pub const JAL_OFFSET_MAX: i32 = (1 << 20) - 1;
/// Minimum (most negative) [`Instruction::Jal`] offset.
pub const JAL_OFFSET_MIN: i32 = -(1 << 20);

fn field_reg(word: u32, hi_shift: u32) -> Reg {
    // 5-bit fields can only produce indices 0..32, so the lookup never fails.
    Reg::from_index(((word >> hi_shift) & 0x1f) as usize).expect("5-bit register field")
}

fn imm16(word: u32) -> i16 {
    (word & 0xffff) as u16 as i16
}

/// Encodes an instruction into its 32-bit word.
///
/// # Errors
///
/// Returns [`IsaError::ImmOutOfRange`] if a [`Instruction::Jal`] offset does
/// not fit in its 21-bit field. All other variants always encode.
///
/// # Example
///
/// ```
/// use r2d3_isa::{encode::{encode, decode}, Instruction, AluOp, Reg};
///
/// # fn main() -> Result<(), r2d3_isa::IsaError> {
/// let i = Instruction::Alu { op: AluOp::Xor, rd: Reg::R1, rs1: Reg::R2, rs2: Reg::R3 };
/// let word = encode(i)?;
/// assert_eq!(decode(word)?, i);
/// # Ok(())
/// # }
/// ```
pub fn encode(instr: Instruction) -> Result<u32, IsaError> {
    let r = |reg: Reg, shift: u32| (reg.index() as u32) << shift;
    let word = match instr {
        Instruction::Alu { op, rd, rs1, rs2 } => {
            (OP_ALU << 26) | r(rd, 21) | r(rs1, 16) | r(rs2, 11) | op as u32
        }
        Instruction::Fpu { op, rd, rs1, rs2 } => {
            (OP_FPU << 26) | r(rd, 21) | r(rs1, 16) | r(rs2, 11) | op as u32
        }
        Instruction::Nop => OP_NOP << 26,
        Instruction::Halt => OP_HALT << 26,
        Instruction::AluImm { op, rd, rs1, imm } => {
            ((OP_ALUI_BASE + op as u32) << 26) | r(rd, 21) | r(rs1, 16) | (imm as u16 as u32)
        }
        Instruction::Lui { rd, imm } => (OP_LUI << 26) | r(rd, 21) | u32::from(imm),
        Instruction::Load { rd, base, offset } => {
            (OP_LOAD << 26) | r(rd, 21) | r(base, 16) | (offset as u16 as u32)
        }
        Instruction::Store { src, base, offset } => {
            (OP_STORE << 26) | r(src, 21) | r(base, 16) | (offset as u16 as u32)
        }
        Instruction::Branch { cond, rs1, rs2, offset } => {
            ((OP_BRANCH_BASE + cond as u32) << 26)
                | r(rs1, 21)
                | r(rs2, 16)
                | (offset as u16 as u32)
        }
        Instruction::Jal { rd, offset } => {
            if !(JAL_OFFSET_MIN..=JAL_OFFSET_MAX).contains(&offset) {
                return Err(IsaError::ImmOutOfRange(i64::from(offset)));
            }
            (OP_JAL << 26) | r(rd, 21) | ((offset as u32) & 0x1f_ffff)
        }
        Instruction::Jalr { rd, rs1, offset } => {
            (OP_JALR << 26) | r(rd, 21) | r(rs1, 16) | (offset as u16 as u32)
        }
        Instruction::Trap { code } => (OP_TRAP << 26) | code as u32,
    };
    Ok(word)
}

/// Decodes a 32-bit word back into an instruction.
///
/// # Errors
///
/// Returns [`IsaError::DecodeInvalid`] for words whose opcode or function
/// field does not correspond to a defined instruction.
pub fn decode(word: u32) -> Result<Instruction, IsaError> {
    let opcode = word >> 26;
    let rd = field_reg(word, 21);
    let rs1 = field_reg(word, 16);
    let rs2 = field_reg(word, 11);
    let invalid = || IsaError::DecodeInvalid(word);

    let instr = match opcode {
        OP_ALU => {
            let funct = (word & 0x7ff) as usize;
            let op = *AluOp::ALL.get(funct).ok_or_else(invalid)?;
            Instruction::Alu { op, rd, rs1, rs2 }
        }
        OP_FPU => {
            let funct = (word & 0x7ff) as usize;
            let op = *FpuOp::ALL.get(funct).ok_or_else(invalid)?;
            Instruction::Fpu { op, rd, rs1, rs2 }
        }
        OP_NOP => Instruction::Nop,
        OP_HALT => Instruction::Halt,
        o if (OP_ALUI_BASE..OP_ALUI_BASE + AluOp::ALL.len() as u32).contains(&o) => {
            let op = AluOp::ALL[(o - OP_ALUI_BASE) as usize];
            Instruction::AluImm { op, rd, rs1, imm: imm16(word) }
        }
        OP_LUI => Instruction::Lui { rd, imm: (word & 0xffff) as u16 },
        OP_LOAD => Instruction::Load { rd, base: rs1, offset: imm16(word) },
        OP_STORE => Instruction::Store { src: rd, base: rs1, offset: imm16(word) },
        o if (OP_BRANCH_BASE..OP_BRANCH_BASE + BranchCond::ALL.len() as u32).contains(&o) => {
            let cond = BranchCond::ALL[(o - OP_BRANCH_BASE) as usize];
            Instruction::Branch { cond, rs1: rd, rs2: rs1, offset: imm16(word) }
        }
        OP_JAL => {
            // Sign-extend the 21-bit offset.
            let raw = word & 0x1f_ffff;
            let offset = ((raw << 11) as i32) >> 11;
            Instruction::Jal { rd, offset }
        }
        OP_JALR => Instruction::Jalr { rd, rs1, offset: imm16(word) },
        OP_TRAP => {
            let code = match word & 0x3ff_ffff {
                0 => TrapCode::Syscall,
                1 => TrapCode::Break,
                _ => return Err(invalid()),
            };
            Instruction::Trap { code }
        }
        _ => return Err(invalid()),
    };
    Ok(instr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn arb_reg() -> impl Strategy<Value = Reg> {
        (0usize..32).prop_map(|i| Reg::from_index(i).unwrap())
    }

    fn arb_instr() -> impl Strategy<Value = Instruction> {
        prop_oneof![
            (0usize..10, arb_reg(), arb_reg(), arb_reg()).prop_map(|(op, rd, rs1, rs2)| {
                Instruction::Alu { op: AluOp::ALL[op], rd, rs1, rs2 }
            }),
            (0usize..10, arb_reg(), arb_reg(), any::<i16>()).prop_map(|(op, rd, rs1, imm)| {
                Instruction::AluImm { op: AluOp::ALL[op], rd, rs1, imm }
            }),
            (arb_reg(), any::<u16>()).prop_map(|(rd, imm)| Instruction::Lui { rd, imm }),
            (arb_reg(), arb_reg(), any::<i16>()).prop_map(|(rd, base, offset)| Instruction::Load {
                rd,
                base,
                offset
            }),
            (arb_reg(), arb_reg(), any::<i16>())
                .prop_map(|(src, base, offset)| Instruction::Store { src, base, offset }),
            (0usize..4, arb_reg(), arb_reg(), any::<i16>()).prop_map(|(c, rs1, rs2, offset)| {
                Instruction::Branch { cond: BranchCond::ALL[c], rs1, rs2, offset }
            }),
            (arb_reg(), JAL_OFFSET_MIN..=JAL_OFFSET_MAX)
                .prop_map(|(rd, offset)| Instruction::Jal { rd, offset }),
            (arb_reg(), arb_reg(), any::<i16>()).prop_map(|(rd, rs1, offset)| Instruction::Jalr {
                rd,
                rs1,
                offset
            }),
            (0usize..4, arb_reg(), arb_reg(), arb_reg()).prop_map(|(op, rd, rs1, rs2)| {
                Instruction::Fpu { op: FpuOp::ALL[op], rd, rs1, rs2 }
            }),
            Just(Instruction::Trap { code: TrapCode::Syscall }),
            Just(Instruction::Trap { code: TrapCode::Break }),
            Just(Instruction::Nop),
            Just(Instruction::Halt),
        ]
    }

    proptest! {
        #[test]
        fn roundtrip(instr in arb_instr()) {
            let word = encode(instr).unwrap();
            prop_assert_eq!(decode(word).unwrap(), instr);
        }

        #[test]
        fn decode_never_panics(word in any::<u32>()) {
            let _ = decode(word);
        }
    }

    #[test]
    fn jal_range_checked() {
        let too_far = Instruction::Jal { rd: Reg::R1, offset: JAL_OFFSET_MAX + 1 };
        assert!(matches!(encode(too_far), Err(IsaError::ImmOutOfRange(_))));
        let ok = Instruction::Jal { rd: Reg::R1, offset: JAL_OFFSET_MIN };
        assert!(encode(ok).is_ok());
    }

    #[test]
    fn negative_jal_roundtrip() {
        let i = Instruction::Jal { rd: Reg::R0, offset: -3 };
        assert_eq!(decode(encode(i).unwrap()).unwrap(), i);
    }

    #[test]
    fn invalid_opcode_rejected() {
        assert!(decode(0x3f << 26).is_err());
        // ALU funct out of range.
        assert!(decode(10).is_err());
    }
}
