//! Textual assembly: a parser and formatter for the ISA.
//!
//! The binary [`crate::asm::Asm`] builder is the programmatic interface;
//! this module adds the human-facing layer — parse `.s`-style source
//! into a [`Program`], and format a program back to canonical text. The
//! two round-trip: `parse(format(p)) == p`.
//!
//! # Syntax
//!
//! ```text
//! ; comments run to end of line
//! .data 1 2 0x10        ; words appended to the data image
//! .bss 16               ; reserve 16 zeroed words
//!
//! start:
//!     li   r1, 100      ; pseudo-instruction (addi or lui+ori)
//!     addi r2, r0, 5
//! loop:
//!     add  r3, r3, r1
//!     sub  r1, r1, r2
//!     bne  r1, r0, loop ; branch targets may be labels or numbers
//!     lw   r4, 2(r3)    ; base-offset addressing
//!     sw   r4, 0(r3)
//!     fmac r5, r4, r4
//!     halt
//! ```
//!
//! # Example
//!
//! ```
//! use r2d3_isa::text::{format_program, parse_program};
//! use r2d3_isa::{Interp, Reg};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = parse_program(
//!     "li r1, 6\n\
//!      li r2, 7\n\
//!      mul r3, r1, r2\n\
//!      halt\n",
//! )?;
//! let mut cpu = Interp::new(&program);
//! cpu.run(100)?;
//! assert_eq!(cpu.reg(Reg::R3), 42);
//!
//! // Round trip through the formatter.
//! let again = parse_program(&format_program(&program))?;
//! assert_eq!(again, program);
//! # Ok(())
//! # }
//! ```

use crate::instr::{AluOp, BranchCond, FpuOp, Instruction, TrapCode};
use crate::program::Program;
use crate::reg::Reg;
use std::collections::HashMap;
use std::fmt;

/// Errors produced while parsing assembly text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseAsmError {
    /// 1-based source line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseAsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseAsmError {}

fn err(line: usize, message: impl Into<String>) -> ParseAsmError {
    ParseAsmError { line, message: message.into() }
}

/// Parses assembly text into a [`Program`].
///
/// # Errors
///
/// Returns [`ParseAsmError`] with the offending line on any syntax
/// error, unknown mnemonic, bad register, out-of-range immediate or
/// undefined label.
pub fn parse_program(source: &str) -> Result<Program, ParseAsmError> {
    // Pass 1: strip comments, collect labels and raw statements.
    struct Stmt<'a> {
        line: usize,
        mnemonic: &'a str,
        args: Vec<&'a str>,
    }
    let mut labels: HashMap<&str, u32> = HashMap::new();
    let mut stmts: Vec<Stmt> = Vec::new();
    let mut data: Vec<u32> = Vec::new();
    let mut bss_words = 0usize;
    let mut pc = 0u32;

    for (li, raw) in source.lines().enumerate() {
        let line = li + 1;
        let text = raw.split(';').next().unwrap_or("").trim();
        if text.is_empty() {
            continue;
        }
        let mut rest = text;
        // Labels (possibly several) at line start.
        while let Some(colon) = rest.find(':') {
            let (name, tail) = rest.split_at(colon);
            let name = name.trim();
            if name.is_empty() || !name.chars().all(|c| c.is_alphanumeric() || c == '_') {
                break;
            }
            if labels.insert(name, pc).is_some() {
                return Err(err(line, format!("label `{name}` defined twice")));
            }
            rest = tail[1..].trim();
        }
        if rest.is_empty() {
            continue;
        }
        let mut parts = rest.splitn(2, char::is_whitespace);
        let mnemonic = parts.next().unwrap_or("");
        let args: Vec<&str> = parts
            .next()
            .unwrap_or("")
            .split(',')
            .map(str::trim)
            .filter(|a| !a.is_empty())
            .collect();

        match mnemonic {
            ".data" => {
                for word in rest[".data".len()..].split_whitespace() {
                    data.push(
                        parse_word(word)
                            .ok_or_else(|| err(line, format!("bad data word `{word}`")))?,
                    );
                }
            }
            ".bss" => {
                let n = rest[".bss".len()..].trim();
                bss_words +=
                    n.parse::<usize>().map_err(|_| err(line, format!("bad .bss size `{n}`")))?;
            }
            _ => {
                // `li` with a wide constant expands to two words.
                let words = if mnemonic == "li" {
                    let imm = args
                        .get(1)
                        .and_then(|a| parse_imm(a))
                        .ok_or_else(|| err(line, "li needs `reg, imm`"))?;
                    if i16::try_from(imm).is_ok() {
                        1
                    } else {
                        2
                    }
                } else {
                    1
                };
                pc += words;
                stmts.push(Stmt { line, mnemonic, args });
            }
        }
    }

    // Pass 2: encode.
    let mut text_seg: Vec<Instruction> = Vec::new();
    let lookup = |tok: &str, next_pc: u32, line: usize| -> Result<i32, ParseAsmError> {
        if let Some(v) = parse_imm(tok) {
            return Ok(v);
        }
        labels
            .get(tok)
            .map(|&target| target as i32 - next_pc as i32)
            .ok_or_else(|| err(line, format!("undefined label `{tok}`")))
    };

    for stmt in &stmts {
        let line = stmt.line;
        let a = &stmt.args;
        let reg = |i: usize| -> Result<Reg, ParseAsmError> {
            a.get(i)
                .and_then(|t| parse_reg(t))
                .ok_or_else(|| err(line, format!("expected register as operand {}", i + 1)))
        };
        let imm16 = |i: usize| -> Result<i16, ParseAsmError> {
            a.get(i)
                .and_then(|t| parse_imm(t))
                .and_then(|v| i16::try_from(v).ok())
                .ok_or_else(|| err(line, format!("expected 16-bit immediate as operand {}", i + 1)))
        };
        let next_pc = text_seg.len() as u32 + 1;

        let lower = stmt.mnemonic.to_ascii_lowercase();
        match lower.as_str() {
            "nop" => text_seg.push(Instruction::Nop),
            "halt" => text_seg.push(Instruction::Halt),
            "syscall" => text_seg.push(Instruction::Trap { code: TrapCode::Syscall }),
            "break" => text_seg.push(Instruction::Trap { code: TrapCode::Break }),
            "lui" => {
                let imm = a
                    .get(1)
                    .and_then(|t| parse_imm(t))
                    .and_then(|v| u16::try_from(v).ok())
                    .ok_or_else(|| err(line, "lui needs `reg, imm16`"))?;
                text_seg.push(Instruction::Lui { rd: reg(0)?, imm });
            }
            "li" => {
                let rd = reg(0)?;
                let value = a
                    .get(1)
                    .and_then(|t| parse_imm(t))
                    .ok_or_else(|| err(line, "li needs `reg, imm`"))?;
                if let Ok(imm) = i16::try_from(value) {
                    text_seg.push(Instruction::AluImm { op: AluOp::Add, rd, rs1: Reg::R0, imm });
                } else {
                    let v = value as u32;
                    text_seg.push(Instruction::Lui { rd, imm: (v >> 16) as u16 });
                    text_seg.push(Instruction::AluImm {
                        op: AluOp::Or,
                        rd,
                        rs1: rd,
                        imm: (v & 0xffff) as u16 as i16,
                    });
                }
            }
            "lw" | "sw" => {
                let r = reg(0)?;
                let (offset, base) = a
                    .get(1)
                    .and_then(|t| parse_mem_operand(t))
                    .ok_or_else(|| err(line, "expected `offset(base)` operand"))?;
                text_seg.push(if lower == "lw" {
                    Instruction::Load { rd: r, base, offset }
                } else {
                    Instruction::Store { src: r, base, offset }
                });
            }
            "jal" => {
                let rd = reg(0)?;
                let target = a.get(1).ok_or_else(|| err(line, "jal needs a target"))?;
                let offset = lookup(target, next_pc, line)?;
                text_seg.push(Instruction::Jal { rd, offset });
            }
            "j" => {
                let target = a.first().ok_or_else(|| err(line, "j needs a target"))?;
                let offset = lookup(target, next_pc, line)?;
                text_seg.push(Instruction::Jal { rd: Reg::R0, offset });
            }
            "jalr" => {
                text_seg.push(Instruction::Jalr {
                    rd: reg(0)?,
                    rs1: reg(1)?,
                    offset: imm16(2).unwrap_or(0),
                });
            }
            "jr" => {
                text_seg.push(Instruction::Jalr { rd: Reg::R0, rs1: reg(0)?, offset: 0 });
            }
            "beq" | "bne" | "blt" | "bge" => {
                let cond = match lower.as_str() {
                    "beq" => BranchCond::Eq,
                    "bne" => BranchCond::Ne,
                    "blt" => BranchCond::Lt,
                    _ => BranchCond::Ge,
                };
                let target = a.get(2).ok_or_else(|| err(line, "branch needs a target"))?;
                let delta = lookup(target, next_pc, line)?;
                let offset =
                    i16::try_from(delta).map_err(|_| err(line, "branch target out of range"))?;
                text_seg.push(Instruction::Branch { cond, rs1: reg(0)?, rs2: reg(1)?, offset });
            }
            "fadd" | "fsub" | "fmul" | "fmac" => {
                let op = match lower.as_str() {
                    "fadd" => FpuOp::Fadd,
                    "fsub" => FpuOp::Fsub,
                    "fmul" => FpuOp::Fmul,
                    _ => FpuOp::Fmac,
                };
                text_seg.push(Instruction::Fpu { op, rd: reg(0)?, rs1: reg(1)?, rs2: reg(2)? });
            }
            other => {
                // ALU family: `add r,r,r` or `addi r,r,imm`.
                let (base, imm_form) = match other.strip_suffix('i') {
                    Some(b) if alu_op(b).is_some() => (b, true),
                    _ => (other, false),
                };
                let op =
                    alu_op(base).ok_or_else(|| err(line, format!("unknown mnemonic `{other}`")))?;
                if imm_form {
                    text_seg.push(Instruction::AluImm {
                        op,
                        rd: reg(0)?,
                        rs1: reg(1)?,
                        imm: imm16(2)?,
                    });
                } else {
                    text_seg.push(Instruction::Alu { op, rd: reg(0)?, rs1: reg(1)?, rs2: reg(2)? });
                }
            }
        }
    }

    Ok(Program::new(text_seg, data.clone(), data.len() + bss_words))
}

/// Formats a program as canonical assembly text (numeric branch offsets,
/// one instruction per line, data image first).
#[must_use]
pub fn format_program(program: &Program) -> String {
    let mut out = String::new();
    if !program.data().is_empty() {
        out.push_str(".data");
        for w in program.data() {
            out.push_str(&format!(" {w:#x}"));
        }
        out.push('\n');
    }
    let bss = program.data_words().saturating_sub(program.data().len());
    if bss > 0 {
        out.push_str(&format!(".bss {bss}\n"));
    }
    for instr in program.text() {
        out.push_str(&format_instruction(*instr));
        out.push('\n');
    }
    out
}

/// Formats one instruction in parseable syntax.
#[must_use]
pub fn format_instruction(instr: Instruction) -> String {
    match instr {
        Instruction::Alu { op, rd, rs1, rs2 } => {
            format!("{} {rd}, {rs1}, {rs2}", alu_name(op))
        }
        Instruction::AluImm { op, rd, rs1, imm } => {
            format!("{}i {rd}, {rs1}, {imm}", alu_name(op))
        }
        Instruction::Lui { rd, imm } => format!("lui {rd}, {imm:#x}"),
        Instruction::Load { rd, base, offset } => format!("lw {rd}, {offset}({base})"),
        Instruction::Store { src, base, offset } => format!("sw {src}, {offset}({base})"),
        Instruction::Branch { cond, rs1, rs2, offset } => {
            let name = match cond {
                BranchCond::Eq => "beq",
                BranchCond::Ne => "bne",
                BranchCond::Lt => "blt",
                BranchCond::Ge => "bge",
            };
            format!("{name} {rs1}, {rs2}, {offset}")
        }
        Instruction::Jal { rd, offset } => {
            if rd.is_zero() {
                format!("j {offset}")
            } else {
                format!("jal {rd}, {offset}")
            }
        }
        Instruction::Jalr { rd, rs1, offset } => format!("jalr {rd}, {rs1}, {offset}"),
        Instruction::Fpu { op, rd, rs1, rs2 } => {
            let name = match op {
                FpuOp::Fadd => "fadd",
                FpuOp::Fsub => "fsub",
                FpuOp::Fmul => "fmul",
                FpuOp::Fmac => "fmac",
            };
            format!("{name} {rd}, {rs1}, {rs2}")
        }
        Instruction::Trap { code } => match code {
            TrapCode::Syscall => "syscall".into(),
            TrapCode::Break => "break".into(),
        },
        Instruction::Nop => "nop".into(),
        Instruction::Halt => "halt".into(),
    }
}

fn alu_name(op: AluOp) -> &'static str {
    match op {
        AluOp::Add => "add",
        AluOp::Sub => "sub",
        AluOp::And => "and",
        AluOp::Or => "or",
        AluOp::Xor => "xor",
        AluOp::Sll => "sll",
        AluOp::Srl => "srl",
        AluOp::Sra => "sra",
        AluOp::Slt => "slt",
        AluOp::Mul => "mul",
    }
}

fn alu_op(name: &str) -> Option<AluOp> {
    Some(match name {
        "add" => AluOp::Add,
        "sub" => AluOp::Sub,
        "and" => AluOp::And,
        "or" => AluOp::Or,
        "xor" => AluOp::Xor,
        "sll" => AluOp::Sll,
        "srl" => AluOp::Srl,
        "sra" => AluOp::Sra,
        "slt" => AluOp::Slt,
        "mul" => AluOp::Mul,
        _ => return None,
    })
}

fn parse_reg(token: &str) -> Option<Reg> {
    let rest = token.strip_prefix(['r', 'R'])?;
    let idx: usize = rest.parse().ok()?;
    Reg::from_index(idx)
}

fn parse_imm(token: &str) -> Option<i32> {
    let token = token.trim();
    if let Some(hex) = token.strip_prefix("0x").or_else(|| token.strip_prefix("0X")) {
        return u32::from_str_radix(hex, 16).ok().map(|v| v as i32);
    }
    if let Some(hex) = token.strip_prefix("-0x") {
        return u32::from_str_radix(hex, 16).ok().map(|v| -(v as i32));
    }
    token.parse::<i32>().ok()
}

fn parse_word(token: &str) -> Option<u32> {
    parse_imm(token).map(|v| v as u32)
}

/// Parses `offset(base)` memory operands.
fn parse_mem_operand(token: &str) -> Option<(i16, Reg)> {
    let open = token.find('(')?;
    let close = token.rfind(')')?;
    let offset: i16 = if token[..open].trim().is_empty() {
        0
    } else {
        i16::try_from(parse_imm(token[..open].trim())?).ok()?
    };
    let base = parse_reg(token[open + 1..close].trim())?;
    Some((offset, base))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::Interp;
    use proptest::prelude::*;

    #[test]
    fn parses_and_runs_a_loop() {
        let src = "
            ; sum 1..=5 into r3
            li r1, 1
            li r2, 5
        loop:
            add r3, r3, r1
            addi r1, r1, 1
            bge r2, r1, loop
            halt
        ";
        let p = parse_program(src).unwrap();
        let mut cpu = Interp::new(&p);
        cpu.run(1000).unwrap();
        assert_eq!(cpu.reg(Reg::R3), 15);
    }

    #[test]
    fn data_and_bss_directives() {
        let p = parse_program(".data 10 0x20 3\n.bss 2\nhalt\n").unwrap();
        assert_eq!(p.initial_memory(), vec![10, 0x20, 3, 0, 0]);
    }

    #[test]
    fn memory_operands() {
        let p = parse_program(".data 7 0\nlw r1, 0(r0)\nsw r1, 1(r0)\nhalt\n").unwrap();
        let mut cpu = Interp::new(&p);
        cpu.run(10).unwrap();
        assert_eq!(cpu.mem(1).unwrap(), 7);
    }

    #[test]
    fn error_reporting_has_line_numbers() {
        let e = parse_program("nop\nbogus r1, r2\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("bogus"));

        let e = parse_program("beq r1, r2, nowhere\n").unwrap_err();
        assert!(e.message.contains("nowhere"));

        let e = parse_program("x: nop\nx: nop\n").unwrap_err();
        assert!(e.message.contains("twice"));
    }

    #[test]
    fn wide_li_occupies_two_slots_for_labels() {
        // The label after a wide li must account for the 2-word expansion.
        let src = "
            li r1, 0x12345678
            j end
            addi r2, r0, 1 ; skipped
        end:
            halt
        ";
        let p = parse_program(src).unwrap();
        let mut cpu = Interp::new(&p);
        cpu.run(100).unwrap();
        assert_eq!(cpu.reg(Reg::R1), 0x1234_5678);
        assert_eq!(cpu.reg(Reg::R2), 0);
    }

    #[test]
    fn kernels_roundtrip_through_text() {
        for program in [
            crate::kernels::gemv(4, 4, 1).program().clone(),
            crate::kernels::gemm(3, 3, 3, 2).program().clone(),
            crate::kernels::fft(3, 3).program().clone(),
        ] {
            let text = format_program(&program);
            let parsed = parse_program(&text).unwrap();
            assert_eq!(parsed, program, "kernel did not round-trip");
        }
    }

    fn arb_simple_instr() -> impl Strategy<Value = Instruction> {
        let reg = (0usize..32).prop_map(|i| Reg::from_index(i).unwrap());
        prop_oneof![
            (0usize..10, reg.clone(), reg.clone(), reg.clone()).prop_map(|(op, rd, rs1, rs2)| {
                Instruction::Alu { op: AluOp::ALL[op], rd, rs1, rs2 }
            }),
            (0usize..10, reg.clone(), reg.clone(), any::<i16>()).prop_map(|(op, rd, rs1, imm)| {
                Instruction::AluImm { op: AluOp::ALL[op], rd, rs1, imm }
            }),
            (reg.clone(), any::<u16>()).prop_map(|(rd, imm)| Instruction::Lui { rd, imm }),
            (reg.clone(), reg.clone(), any::<i16>())
                .prop_map(|(rd, base, offset)| Instruction::Load { rd, base, offset }),
            (reg.clone(), reg.clone(), any::<i16>())
                .prop_map(|(src, base, offset)| Instruction::Store { src, base, offset }),
            (0usize..4, reg.clone(), reg.clone(), any::<i16>()).prop_map(
                |(c, rs1, rs2, offset)| {
                    Instruction::Branch { cond: BranchCond::ALL[c], rs1, rs2, offset }
                }
            ),
            (0usize..4, reg.clone(), reg.clone(), reg).prop_map(|(op, rd, rs1, rs2)| {
                Instruction::Fpu { op: FpuOp::ALL[op], rd, rs1, rs2 }
            }),
            Just(Instruction::Nop),
            Just(Instruction::Halt),
        ]
    }

    proptest! {
        #[test]
        fn format_parse_roundtrip(instrs in proptest::collection::vec(arb_simple_instr(), 1..40)) {
            let program = Program::new(instrs, vec![1, 2, 3], 8);
            let text = format_program(&program);
            let parsed = parse_program(&text).unwrap();
            prop_assert_eq!(parsed, program);
        }
    }
}
