//! Program images: text plus initial data memory.

use crate::instr::Instruction;
use serde::{Deserialize, Serialize};

/// An executable image: a text segment of decoded instructions and an
/// initial word-addressed data segment.
///
/// Addresses are in *words*. Instruction addresses index `text`, data
/// addresses index the data memory (which the interpreter and simulator
/// grow to `data_words` on load).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Program {
    text: Vec<Instruction>,
    data: Vec<u32>,
    /// Total data memory size in words (≥ `data.len()`).
    data_words: usize,
}

impl Program {
    /// Creates a program from a text segment and initial data image.
    ///
    /// The data memory is sized to `data_words` words; the initial image in
    /// `data` occupies its start and the rest is zero-filled. If
    /// `data_words` is smaller than `data.len()` it is raised to fit.
    #[must_use]
    pub fn new(text: Vec<Instruction>, data: Vec<u32>, data_words: usize) -> Self {
        let data_words = data_words.max(data.len()).max(1);
        Program { text, data, data_words }
    }

    /// The instruction at word address `pc`, if in range.
    #[must_use]
    pub fn fetch(&self, pc: u32) -> Option<Instruction> {
        self.text.get(pc as usize).copied()
    }

    /// The text segment.
    #[must_use]
    pub fn text(&self) -> &[Instruction] {
        &self.text
    }

    /// The initial data image (prefix of data memory).
    #[must_use]
    pub fn data(&self) -> &[u32] {
        &self.data
    }

    /// Total data memory size in words.
    #[must_use]
    pub fn data_words(&self) -> usize {
        self.data_words
    }

    /// Number of instructions in the text segment.
    #[must_use]
    pub fn len(&self) -> usize {
        self.text.len()
    }

    /// Returns `true` if the text segment is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.text.is_empty()
    }

    /// Materializes the full data memory (initial image + zero fill).
    #[must_use]
    pub fn initial_memory(&self) -> Vec<u32> {
        let mut mem = self.data.clone();
        mem.resize(self.data_words, 0);
        mem
    }
}

/// Magic word heading a serialized program image ("R2D3" in ASCII).
pub const IMAGE_MAGIC: u32 = 0x5232_4433;

impl Program {
    /// Serializes the program into a flat word image:
    /// `[magic, text_len, data_len, data_words, text…, data…]`.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::ImmOutOfRange`] if an instruction cannot be
    /// encoded (a `Jal` offset outside its field).
    pub fn to_words(&self) -> Result<Vec<u32>, crate::IsaError> {
        let mut out = Vec::with_capacity(4 + self.text.len() + self.data.len());
        out.push(IMAGE_MAGIC);
        out.push(self.text.len() as u32);
        out.push(self.data.len() as u32);
        out.push(self.data_words as u32);
        for instr in &self.text {
            out.push(crate::encode::encode(*instr)?);
        }
        out.extend_from_slice(&self.data);
        Ok(out)
    }

    /// Deserializes a program from a word image produced by
    /// [`to_words`](Program::to_words).
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::DecodeInvalid`] for a bad magic word, a
    /// truncated image, or an undecodable instruction word.
    pub fn from_words(words: &[u32]) -> Result<Program, crate::IsaError> {
        let bad = || crate::IsaError::DecodeInvalid(words.first().copied().unwrap_or(0));
        if words.len() < 4 || words[0] != IMAGE_MAGIC {
            return Err(bad());
        }
        let text_len = words[1] as usize;
        let data_len = words[2] as usize;
        let data_words = words[3] as usize;
        let need = 4 + text_len + data_len;
        if words.len() != need {
            return Err(bad());
        }
        let text = words[4..4 + text_len]
            .iter()
            .map(|w| crate::encode::decode(*w))
            .collect::<Result<Vec<_>, _>>()?;
        let data = words[4 + text_len..].to_vec();
        Ok(Program::new(text, data, data_words))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_is_zero_filled() {
        let p = Program::new(vec![Instruction::Halt], vec![7, 8], 5);
        assert_eq!(p.initial_memory(), vec![7, 8, 0, 0, 0]);
    }

    #[test]
    fn data_words_raised_to_fit_image() {
        let p = Program::new(vec![], vec![1, 2, 3], 1);
        assert_eq!(p.data_words(), 3);
        assert!(p.is_empty());
    }

    #[test]
    fn word_image_roundtrip() {
        let p = crate::kernels::gemv(6, 6, 3).program().clone();
        let words = p.to_words().unwrap();
        assert_eq!(Program::from_words(&words).unwrap(), p);
    }

    #[test]
    fn word_image_rejects_corruption() {
        let p = Program::new(vec![Instruction::Halt], vec![1], 2);
        let mut words = p.to_words().unwrap();
        // Bad magic.
        let mut bad = words.clone();
        bad[0] = 0;
        assert!(Program::from_words(&bad).is_err());
        // Truncated.
        words.pop();
        assert!(Program::from_words(&words).is_err());
        // Empty.
        assert!(Program::from_words(&[]).is_err());
    }

    #[test]
    fn fetch_in_and_out_of_range() {
        let p = Program::new(vec![Instruction::Nop, Instruction::Halt], vec![], 1);
        assert_eq!(p.fetch(1), Some(Instruction::Halt));
        assert_eq!(p.fetch(2), None);
        assert_eq!(p.len(), 2);
    }
}
