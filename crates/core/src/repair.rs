//! Repair: logical-pipeline formation from the surviving stages.
//!
//! §III-D: "When a fault occurs, the victim unit is isolated and the
//! controller reconfigures the crossbars to construct logical pipelines
//! based on the latest failure map." Stage-level salvaging forms
//! `min_u |healthy stages of unit u|` pipelines, whereas a core-level
//! scheme only keeps layers whose *own* five stages are all healthy —
//! the comparison in the paper's Fig. 2.

use r2d3_isa::Unit;
use r2d3_pipeline_sim::StageId;
use serde::{Deserialize, Serialize};

/// A formed logical pipeline: the layer serving each unit slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FormedPipeline {
    /// `layer_of[unit.index()]` = physical layer serving that unit.
    pub layer_of: [usize; 5],
}

impl FormedPipeline {
    /// The physical stage serving `unit`.
    #[must_use]
    pub fn stage(&self, unit: Unit) -> StageId {
        StageId::new(self.layer_of[unit.index()], unit)
    }

    /// Maximum vertical distance between consecutive units (crossbar
    /// span), a locality metric.
    #[must_use]
    pub fn max_span(&self) -> usize {
        self.layer_of.windows(2).map(|w| w[0].abs_diff(w[1])).max().unwrap_or(0)
    }
}

/// Number of pipelines stage-level salvaging can form.
#[must_use]
pub fn stage_level_formable(layers: usize, usable: impl Fn(StageId) -> bool) -> usize {
    Unit::ALL
        .iter()
        .map(|&u| (0..layers).filter(|&l| usable(StageId::new(l, u))).count())
        .min()
        .unwrap_or(0)
}

/// Number of cores a core-level (NoRecon) scheme keeps: layers whose five
/// own stages are all usable.
#[must_use]
pub fn core_level_formable(layers: usize, usable: impl Fn(StageId) -> bool) -> usize {
    (0..layers).filter(|&l| Unit::ALL.iter().all(|&u| usable(StageId::new(l, u)))).count()
}

/// Forms up to `max_pipelines` logical pipelines from the usable stages.
///
/// Assignment strategy: for each unit, the usable layers are sorted
/// ascending; pipeline `i` receives the `i`-th usable layer of every
/// unit. When the healthy sets are aligned (no faults) this degenerates
/// to the identity mapping (zero crossbar span); as faults accumulate,
/// spans grow only where a unit's healthy set diverges — a greedy
/// locality heuristic matching the paper's goal of minimizing vertical
/// hops.
#[must_use]
pub fn form_pipelines(
    layers: usize,
    usable: impl Fn(StageId) -> bool,
    max_pipelines: usize,
) -> Vec<FormedPipeline> {
    let per_unit: Vec<Vec<usize>> = Unit::ALL
        .iter()
        .map(|&u| (0..layers).filter(|&l| usable(StageId::new(l, u))).collect())
        .collect();
    let n = per_unit.iter().map(Vec::len).min().unwrap_or(0).min(max_pipelines);
    (0..n)
        .map(|i| {
            let mut layer_of = [0usize; 5];
            for (ui, list) in per_unit.iter().enumerate() {
                layer_of[ui] = list[i];
            }
            FormedPipeline { layer_of }
        })
        .collect()
}

/// Locality-aware formation: greedy per-pipeline nearest-layer matching.
///
/// [`form_pipelines`] pairs the i-th healthy layer of every unit, which
/// is optimal when the healthy sets are aligned but can produce long
/// vertical spans once they diverge. This variant anchors each pipeline
/// at a healthy IFU layer and picks, for every other unit, the *nearest*
/// remaining healthy layer — trading global balance for short crossbar
/// hops (the paper's stated goal of minimizing inter-stage MIV crossings).
/// The ablation bench compares the two on span statistics.
#[must_use]
pub fn form_pipelines_local(
    layers: usize,
    usable: impl Fn(StageId) -> bool,
    max_pipelines: usize,
) -> Vec<FormedPipeline> {
    let mut available: Vec<Vec<usize>> = Unit::ALL
        .iter()
        .map(|&u| (0..layers).filter(|&l| usable(StageId::new(l, u))).collect())
        .collect();
    let n = available.iter().map(Vec::len).min().unwrap_or(0).min(max_pipelines);

    let mut formed = Vec::with_capacity(n);
    for _ in 0..n {
        // Anchor: the lowest remaining IFU layer.
        let anchor = available[0][0];
        let mut layer_of = [0usize; 5];
        layer_of[0] = anchor;
        available[0].remove(0);
        for ui in 1..Unit::COUNT {
            let (pos, &layer) = available[ui]
                .iter()
                .enumerate()
                .min_by_key(|(_, &l)| l.abs_diff(anchor))
                .expect("n bounded by min availability");
            layer_of[ui] = layer;
            available[ui].remove(pos);
        }
        formed.push(FormedPipeline { layer_of });
    }
    formed
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn usable_except(faulty: &[StageId]) -> impl Fn(StageId) -> bool + '_ {
        let set: HashSet<StageId> = faulty.iter().copied().collect();
        move |s| !set.contains(&s)
    }

    #[test]
    fn no_faults_identity_formation() {
        let formed = form_pipelines(8, |_| true, 8);
        assert_eq!(formed.len(), 8);
        for (i, p) in formed.iter().enumerate() {
            assert_eq!(p.layer_of, [i; 5]);
            assert_eq!(p.max_span(), 0);
        }
    }

    #[test]
    fn paper_fig2_scenario() {
        // Four faults on different layers (Fig. 2 of the paper): four
        // 4-layer cores, faults in distinct units of each layer. The
        // core-level scheme keeps 0 cores; R2D3 forms 3 pipelines
        // (min over units: one unit type lost 1 stage → 3 healthy).
        let faults = [
            StageId::new(0, Unit::Exu),
            StageId::new(1, Unit::Ifu),
            StageId::new(2, Unit::Lsu),
            StageId::new(3, Unit::Tlu),
        ];
        let usable = usable_except(&faults);
        assert_eq!(core_level_formable(4, &usable), 0, "every core lost a stage");
        assert_eq!(stage_level_formable(4, &usable), 3);
        let formed = form_pipelines(4, &usable, 8);
        assert_eq!(formed.len(), 3);
        // No formed pipeline uses a faulty stage.
        for p in &formed {
            for u in Unit::ALL {
                assert!(usable(p.stage(u)), "{} routed through faulty stage", p.stage(u));
            }
        }
    }

    #[test]
    fn stage_level_never_worse_than_core_level() {
        // Property: for random fault sets, stage-level salvaging forms at
        // least as many pipelines as the core-level scheme keeps.
        use proptest::prelude::*;
        proptest!(|(fault_bits in proptest::collection::vec(any::<bool>(), 40))| {
            let usable = |s: StageId| !fault_bits[s.flat_index()];
            let stage = stage_level_formable(8, usable);
            let core = core_level_formable(8, usable);
            prop_assert!(stage >= core, "stage {stage} < core {core}");
            prop_assert_eq!(form_pipelines(8, usable, 8).len(), stage);
        });
    }

    #[test]
    fn local_formation_matches_count_and_avoids_faults() {
        use proptest::prelude::*;
        proptest!(|(fault_bits in proptest::collection::vec(any::<bool>(), 40))| {
            let usable = |s: StageId| !fault_bits[s.flat_index()];
            let greedy = form_pipelines(8, usable, 8);
            let local = form_pipelines_local(8, usable, 8);
            prop_assert_eq!(local.len(), greedy.len(), "same salvage count");
            let mut seen = HashSet::new();
            for p in &local {
                for u in Unit::ALL {
                    prop_assert!(usable(p.stage(u)));
                    prop_assert!(seen.insert(p.stage(u)), "double-booked");
                }
            }
        });
    }

    #[test]
    fn local_formation_is_identity_when_healthy() {
        let formed = form_pipelines_local(8, |_| true, 8);
        for (i, p) in formed.iter().enumerate() {
            assert_eq!(p.layer_of, [i; 5]);
        }
    }

    #[test]
    fn formation_respects_cap() {
        assert_eq!(form_pipelines(8, |_| true, 3).len(), 3);
        assert_eq!(form_pipelines_local(8, |_| true, 3).len(), 3);
    }

    #[test]
    fn local_formation_zero_healthy_is_empty() {
        // Nothing usable at all: must return empty, not panic on the
        // empty IFU anchor column.
        assert!(form_pipelines_local(4, |_| false, 8).is_empty());
        assert!(form_pipelines_local(0, |_| true, 8).is_empty());
        // One unit column entirely dead starves formation even when every
        // other stage is healthy — both for the anchor unit (IFU) and for
        // a downstream unit matched against the anchor.
        assert!(form_pipelines_local(8, |s: StageId| s.unit != Unit::Ifu, 8).is_empty());
        assert!(form_pipelines_local(8, |s: StageId| s.unit != Unit::Lsu, 8).is_empty());
    }

    #[test]
    fn local_formation_cap_above_layer_count_is_identity() {
        // A cap larger than the stack cannot mint pipelines out of thin
        // air; with full health both strategies stay at identity.
        let local = form_pipelines_local(4, |_| true, 64);
        assert_eq!(local.len(), 4);
        for (i, p) in local.iter().enumerate() {
            assert_eq!(p.layer_of, [i; 5]);
        }
        assert_eq!(form_pipelines(4, |_| true, 64).len(), 4);
    }

    #[test]
    fn local_formation_single_survivor_per_unit_spans_the_stack() {
        // Exactly one usable layer per unit, staggered across the stack:
        // one pipeline must form, routed through every lone survivor.
        let survivor = |s: StageId| s.layer == s.unit.index() + 1;
        let formed = form_pipelines_local(8, survivor, 8);
        assert_eq!(formed.len(), 1);
        assert_eq!(formed[0].layer_of, [1, 2, 3, 4, 5]);
        assert_eq!(formed[0].max_span(), 1);
        // The balanced strategy agrees on the (only possible) assignment.
        assert_eq!(form_pipelines(8, survivor, 8), formed);
    }

    #[test]
    fn all_faulty_forms_nothing() {
        assert_eq!(form_pipelines(4, |_| false, 8).len(), 0);
        assert_eq!(stage_level_formable(4, |_| false), 0);
    }

    #[test]
    fn formed_stages_are_disjoint() {
        let faults = [StageId::new(2, Unit::Exu), StageId::new(5, Unit::Ffu)];
        let usable = usable_except(&faults);
        let formed = form_pipelines(8, &usable, 8);
        let mut seen = HashSet::new();
        for p in &formed {
            for u in Unit::ALL {
                assert!(seen.insert(p.stage(u)), "stage {} double-booked", p.stage(u));
            }
        }
    }
}
