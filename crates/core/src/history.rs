//! Per-stage symptom history with decaying counters and an escalation
//! threshold.
//!
//! The paper's single-replay TMR dichotomy is binary: a symptom either
//! recurs under replay (permanent) or it does not (transient). An
//! *intermittent* fault — a marginal net that fails duty-cycled, e.g.
//! 1-in-N operations — dodges that vote forever: each manifestation is
//! consumed before the replay, so the engine classifies an endless
//! stream of "transients" while the stage keeps corrupting state.
//!
//! This tracker closes the gap. Every transient verdict deposits one
//! symptom unit on the stage's counter; every epoch multiplies all
//! counters by a retain ratio < 1. Genuine one-shot soft errors decay
//! back to zero between (rare, independent) strikes, while a recurring
//! intermittent pumps its counter up a geometric series whose limit
//! `1 / (1 - r^p)` (retain ratio `r`, recurrence period `p` epochs)
//! exceeds the threshold for any duty cycle dense enough to matter.
//! Crossing the threshold *escalates*: the engine quarantines the stage
//! exactly as if the vote had returned permanent.
//!
//! Counters are integers in 1/1024 symptom units and every update is a
//! per-stage multiply-divide, so escalation decisions are deterministic
//! and — because the counters are independent and the decay is a global
//! scalar — insensitive to the order in which interleaved stages report
//! within an epoch (see the property tests).

use r2d3_pipeline_sim::StageId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Fixed-point scale of the symptom counters (1 symptom = 1024).
pub const SYMPTOM_SCALE: u32 = 1024;

/// Escalation policy for recurring transient verdicts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EscalationConfig {
    /// Per-epoch retained fraction of every counter, as `num / den`
    /// (must satisfy `num < den`; e.g. 15/16 keeps ≈ 94 % per epoch,
    /// a half-life of about 11 epochs).
    pub decay_num: u32,
    /// Denominator of the retain ratio.
    pub decay_den: u32,
    /// Score at or above which a stage escalates, in 1/1024 symptom
    /// units ([`SYMPTOM_SCALE`]). Must exceed one symptom, or a single
    /// soft error would quarantine healthy hardware.
    pub threshold: u32,
}

impl Default for EscalationConfig {
    fn default() -> Self {
        // Three symptoms' worth of accumulated evidence, retaining
        // 15/16 per epoch: a 1-in-2-epoch intermittent escalates after
        // 4 recurrences, a 1-in-3 after 4, while isolated soft errors
        // (peak score 1.0) never reach 3.0.
        EscalationConfig { decay_num: 15, decay_den: 16, threshold: 3 * SYMPTOM_SCALE }
    }
}

impl EscalationConfig {
    /// Validates the policy parameters.
    ///
    /// # Errors
    ///
    /// Returns [`crate::EngineError::InvalidConfig`] when the retain
    /// ratio is not strictly below one or the threshold does not exceed
    /// a single symptom.
    pub fn validate(&self) -> Result<(), crate::EngineError> {
        if self.decay_den == 0 || self.decay_num >= self.decay_den {
            return Err(crate::EngineError::InvalidConfig(
                "escalation retain ratio must be < 1".into(),
            ));
        }
        if self.threshold <= SYMPTOM_SCALE {
            return Err(crate::EngineError::InvalidConfig(
                "escalation threshold must exceed one symptom".into(),
            ));
        }
        Ok(())
    }
}

/// Decaying per-stage symptom counters (see the module docs).
#[derive(Debug, Clone, Default)]
pub struct SymptomHistory {
    scores: HashMap<StageId, u64>,
}

impl SymptomHistory {
    /// An empty history.
    #[must_use]
    pub fn new() -> Self {
        SymptomHistory::default()
    }

    /// Deposits one symptom unit on `stage` and returns whether its
    /// accumulated score now meets the escalation threshold.
    pub fn record(&mut self, stage: StageId, config: &EscalationConfig) -> bool {
        let score = self.scores.entry(stage).or_insert(0);
        *score += u64::from(SYMPTOM_SCALE);
        *score >= u64::from(config.threshold)
    }

    /// Applies one epoch of decay to every counter. Counters that decay
    /// to zero are dropped (a stage with no recurrences accumulates no
    /// state and can never escalate).
    pub fn decay(&mut self, config: &EscalationConfig) {
        let (num, den) = (u64::from(config.decay_num), u64::from(config.decay_den));
        self.scores.retain(|_, score| {
            *score = *score * num / den;
            *score > 0
        });
    }

    /// The current score of a stage, in 1/1024 symptom units.
    #[must_use]
    pub fn score(&self, stage: StageId) -> u64 {
        self.scores.get(&stage).copied().unwrap_or(0)
    }

    /// Clears a stage's counter (after it has been quarantined, its
    /// history no longer matters).
    pub fn forget(&mut self, stage: StageId) {
        self.scores.remove(&stage);
    }

    /// Stages currently holding a nonzero score, sorted for
    /// deterministic iteration.
    #[must_use]
    pub fn tracked(&self) -> Vec<StageId> {
        let mut stages: Vec<StageId> = self.scores.keys().copied().collect();
        stages.sort_unstable();
        stages
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use r2d3_isa::Unit;

    fn stage(i: usize) -> StageId {
        StageId::from_flat_index(i % (8 * Unit::COUNT))
    }

    #[test]
    fn single_symptom_never_escalates() {
        let cfg = EscalationConfig::default();
        let mut h = SymptomHistory::new();
        assert!(!h.record(stage(3), &cfg));
        for _ in 0..100 {
            h.decay(&cfg);
        }
        assert_eq!(h.score(stage(3)), 0);
        assert!(h.tracked().is_empty(), "fully decayed counters must be dropped");
    }

    #[test]
    fn dense_recurrence_escalates_and_sparse_does_not() {
        let cfg = EscalationConfig::default();
        // Every 2nd epoch: escalates within a handful of recurrences.
        let mut h = SymptomHistory::new();
        let mut escalated_at = None;
        for epoch in 0..40u32 {
            if epoch % 2 == 0 && h.record(stage(0), &cfg) {
                escalated_at = Some(epoch);
                break;
            }
            h.decay(&cfg);
        }
        assert!(escalated_at.is_some_and(|e| e <= 12), "dense intermittent must escalate");

        // Every 20th epoch: decays to nothing in between, never escalates.
        let mut h = SymptomHistory::new();
        for epoch in 0..200u32 {
            if epoch % 20 == 0 {
                assert!(!h.record(stage(0), &cfg), "sparse strikes must not escalate");
            }
            h.decay(&cfg);
        }
    }

    #[test]
    fn default_config_is_valid_and_bad_ones_are_rejected() {
        EscalationConfig::default().validate().unwrap();
        let bad = EscalationConfig { decay_num: 16, decay_den: 16, ..Default::default() };
        assert!(bad.validate().is_err());
        let bad = EscalationConfig { threshold: SYMPTOM_SCALE, ..Default::default() };
        assert!(bad.validate().is_err());
    }

    proptest! {
        /// Decay + threshold escalation is order-insensitive for
        /// interleaved stages: within an epoch, the order in which
        /// different stages report symptoms changes neither the final
        /// scores nor which stages have met the threshold.
        #[test]
        fn escalation_is_order_insensitive(
            epochs in proptest::collection::vec(
                proptest::collection::vec(0usize..12, 0..6), 1..8),
        ) {
            let cfg = EscalationConfig::default();
            let mut forward = SymptomHistory::new();
            let mut reversed = SymptomHistory::new();
            let mut esc_fwd = Vec::new();
            let mut esc_rev = Vec::new();
            for epoch in &epochs {
                for &s in epoch {
                    if forward.record(stage(s), &cfg) {
                        esc_fwd.push(stage(s));
                    }
                }
                for &s in epoch.iter().rev() {
                    if reversed.record(stage(s), &cfg) {
                        esc_rev.push(stage(s));
                    }
                }
                forward.decay(&cfg);
                reversed.decay(&cfg);
            }
            esc_fwd.sort_unstable();
            esc_fwd.dedup();
            esc_rev.sort_unstable();
            esc_rev.dedup();
            prop_assert_eq!(esc_fwd, esc_rev);
            prop_assert_eq!(forward.tracked(), reversed.tracked());
            for s in forward.tracked() {
                prop_assert_eq!(forward.score(s), reversed.score(s));
            }
        }

        /// A stage with zero recorded recurrences is never escalated, no
        /// matter how loudly its neighbours misbehave.
        #[test]
        fn silent_stage_never_escalates(
            noisy in proptest::collection::vec(1usize..12, 0..64),
        ) {
            let cfg = EscalationConfig::default();
            let mut h = SymptomHistory::new();
            for &s in &noisy {
                // Stage 0 never reports; everything else hammers away.
                let _ = h.record(stage(s), &cfg);
                h.decay(&cfg);
            }
            prop_assert_eq!(h.score(stage(0)), 0);
            prop_assert!(!h.tracked().contains(&stage(0)));
        }
    }
}
