//! Epoch-boundary concurrent detection.
//!
//! §III-C: at the end of each epoch the controller warms up a leftover
//! stage with the DUT's state and re-executes the last `T_test` cycles of
//! the DUT's instruction stream in parallel, comparing outputs with the
//! inter-stage checkers. Detection costs no performance (it runs on
//! otherwise-idle leftovers); if no leftover of the right unit type
//! exists, the controller may temporarily suspend another core's stage —
//! rare, because workloads and thermal limits rarely allow 100 %
//! utilization.

use crate::checker::{compare_window_counted, Symptom};
use crate::config::R2d3Config;
use crate::substrate::ReliabilitySubstrate;
use r2d3_isa::Unit;
use r2d3_pipeline_sim::StageId;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// How the redundant stage for a test was obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RedundantSource {
    /// A genuine leftover (idle functional stage).
    Leftover,
    /// Another core's stage, temporarily suspended for the test.
    SuspendedCore {
        /// The pipeline whose stage was borrowed.
        pipe: usize,
    },
}

/// One positive detection from an epoch scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Detection {
    /// Pipeline whose stage was under test.
    pub pipe: usize,
    /// Unit type tested.
    pub unit: Unit,
    /// The design-under-test stage.
    pub dut: StageId,
    /// The redundant stage that re-executed the window.
    pub redundant: StageId,
    /// Where the redundant stage came from.
    pub source: RedundantSource,
    /// The disagreeing record.
    pub symptom: Symptom,
    /// Records of the compared window that disagreed. A stage transient
    /// strikes exactly once per window; a TSV/crossbar path fault
    /// corrupts a large fraction of every window it carries — the
    /// engine's link-attribution evidence.
    pub mismatches: u32,
    /// Records compared in the window.
    pub compared: u32,
}

/// Coverage accounting for one epoch scan (telemetry feed).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanStats {
    /// Mapped stages whose window was actually compared.
    pub tested: u32,
    /// Mapped stages skipped for lack of a redundant stage (or an empty
    /// trace window).
    pub untested: u32,
    /// Tests that had to borrow a running core's stage.
    pub suspensions: u32,
}

/// Scans every mapped stage of every pipeline at an epoch boundary.
///
/// Returns all symptoms found. Stages already believed faulty are skipped
/// (they should no longer be mapped); tests without any available
/// redundant stage are skipped when the config forbids suspension.
///
/// `salt` (typically the epoch counter) rotates which leftover serves
/// each test, so every spare stage is exercised — and therefore itself
/// checked — over successive epochs.
#[must_use]
pub fn epoch_scan<S: ReliabilitySubstrate>(
    sys: &S,
    config: &R2d3Config,
    believed_faulty: &HashSet<StageId>,
    salt: u64,
) -> Vec<Detection> {
    epoch_scan_counted(sys, config, believed_faulty, salt, &HashSet::new()).0
}

/// [`epoch_scan`] plus coverage accounting — the engine's entry point,
/// feeding the per-epoch `scan` telemetry event.
///
/// `skip_pipes` excludes pipelines whose route was scrubbed this epoch:
/// their trace windows carry misroute skew that would be misattributed
/// to the (healthy) serving stages.
#[must_use]
pub fn epoch_scan_counted<S: ReliabilitySubstrate>(
    sys: &S,
    config: &R2d3Config,
    believed_faulty: &HashSet<StageId>,
    salt: u64,
    skip_pipes: &HashSet<usize>,
) -> (Vec<Detection>, ScanStats) {
    let mut detections = Vec::new();
    let mut stats = ScanStats::default();
    let leftovers = sys.leftovers();

    for pipe in 0..sys.pipeline_count() {
        if skip_pipes.contains(&pipe) {
            continue;
        }
        for unit in Unit::ALL {
            let Some(dut) = sys.stage_for(pipe, unit) else {
                continue;
            };
            if believed_faulty.contains(&dut) {
                continue;
            }
            let Some((redundant, source)) =
                pick_redundant(sys, pipe, unit, dut, &leftovers, believed_faulty, config, salt)
            else {
                stats.untested += 1;
                continue;
            };

            // Bound the compared window to the *current* epoch. The ring
            // keeps the last N records regardless of age; on a slowly
            // retiring pipeline "the last T_test records" can span many
            // epochs, and a record corrupted by an already-handled
            // transient would be re-detected — and re-counted by the
            // symptom history — every epoch until it scrolls out.
            let epoch_start = sys.now().saturating_sub(config.t_epoch);
            let mut window = sys.trace_window(dut, config.t_test as usize);
            window.retain(|record| record.cycle >= epoch_start);
            if window.is_empty() {
                stats.untested += 1;
                continue;
            }
            stats.tested += 1;
            if matches!(source, RedundantSource::SuspendedCore { .. }) {
                stats.suspensions += 1;
            }
            let cmp =
                compare_window_counted(&window, |record| sys.replay_output(redundant, record));
            if let Some(symptom) = cmp.symptom {
                detections.push(Detection {
                    pipe,
                    unit,
                    dut,
                    redundant,
                    source,
                    symptom,
                    mismatches: cmp.mismatches,
                    compared: cmp.compared,
                });
            }
        }
    }
    (detections, stats)
}

/// Chooses the redundant stage for a test: a believed-healthy leftover of
/// the same unit (rotated by `salt` so all spares get exercised), else
/// (if allowed) the same unit of the next pipeline.
#[allow(clippy::too_many_arguments)]
fn pick_redundant<S: ReliabilitySubstrate>(
    sys: &S,
    pipe: usize,
    unit: Unit,
    dut: StageId,
    leftovers: &[StageId],
    believed_faulty: &HashSet<StageId>,
    config: &R2d3Config,
    salt: u64,
) -> Option<(StageId, RedundantSource)> {
    let candidates: Vec<StageId> = leftovers
        .iter()
        .copied()
        .filter(|s| s.unit == unit && !believed_faulty.contains(s))
        .collect();
    if !candidates.is_empty() {
        let idx = (salt as usize + dut.layer) % candidates.len();
        return Some((candidates[idx], RedundantSource::Leftover));
    }
    if !config.suspend_when_no_leftover {
        return None;
    }
    // Borrow the same unit from another pipeline (the paper's rare
    // suspension path).
    let n = sys.pipeline_count();
    for step in 1..n {
        let other = (pipe + step) % n;
        if let Some(s) = sys.stage_for(other, unit) {
            if s != dut && !believed_faulty.contains(&s) {
                return Some((s, RedundantSource::SuspendedCore { pipe: other }));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use r2d3_isa::kernels::gemv;
    use r2d3_pipeline_sim::{FaultEffect, System3d, SystemConfig};

    fn system_with_kernel(pipelines: usize) -> System3d {
        let config = SystemConfig { pipelines, ..Default::default() };
        let mut sys = System3d::new(&config);
        for p in 0..pipelines {
            sys.load_program(p, gemv(12, 12, p as u64 + 1).program().clone()).unwrap();
        }
        sys
    }

    #[test]
    fn healthy_system_has_no_detections() {
        let mut sys = system_with_kernel(6);
        sys.run(20_000).unwrap();
        let d = epoch_scan(&sys, &R2d3Config::default(), &HashSet::new(), 0);
        assert!(d.is_empty(), "false positives: {d:?}");
    }

    #[test]
    fn faulty_exu_is_detected() {
        let mut sys = system_with_kernel(6);
        sys.inject_fault(StageId::new(1, Unit::Exu), FaultEffect { bit: 0, stuck: true }).unwrap();
        sys.run(20_000).unwrap();
        let d = epoch_scan(&sys, &R2d3Config::default(), &HashSet::new(), 0);
        assert!(d.iter().any(|x| x.dut == StageId::new(1, Unit::Exu)), "EXU fault missed: {d:?}");
    }

    #[test]
    fn faulty_leftover_fires_too() {
        // Fault in a *leftover* stage is caught when it serves as the
        // redundant side of a comparison.
        let mut sys = system_with_kernel(6);
        sys.inject_fault(StageId::new(7, Unit::Exu), FaultEffect { bit: 0, stuck: true }).unwrap();
        sys.run(20_000).unwrap();
        // The salt rotates which leftover serves; within two epochs the
        // faulty spare at layer 7 must have been exercised.
        let hit = (0..2).any(|salt| {
            epoch_scan(&sys, &R2d3Config::default(), &HashSet::new(), salt)
                .iter()
                .any(|x| x.redundant == StageId::new(7, Unit::Exu))
        });
        assert!(hit, "leftover fault missed");
    }

    #[test]
    fn full_stack_uses_suspension() {
        // 8 pipelines on 8 layers: no leftovers, so detection must borrow
        // a stage from another core when allowed.
        let mut sys = system_with_kernel(8);
        sys.inject_fault(StageId::new(0, Unit::Lsu), FaultEffect { bit: 1, stuck: true }).unwrap();
        sys.run(20_000).unwrap();
        let d = epoch_scan(&sys, &R2d3Config::default(), &HashSet::new(), 0);
        let hit = d.iter().find(|x| x.dut == StageId::new(0, Unit::Lsu));
        let hit = hit.expect("suspension path must detect the LSU fault");
        assert!(matches!(hit.source, RedundantSource::SuspendedCore { .. }));

        // With suspension disabled and no leftovers, nothing is tested.
        let no_suspend = R2d3Config { suspend_when_no_leftover: false, ..Default::default() };
        let d = epoch_scan(&sys, &no_suspend, &HashSet::new(), 0);
        assert!(d.is_empty());
    }

    #[test]
    fn nonmanifesting_fault_stays_hidden() {
        // SA1 on bit 31 of the EXU: GEMV index arithmetic never sets bit
        // 31, and a stuck bit that never changes an actual output cannot
        // be seen by any comparison.
        let mut sys = system_with_kernel(6);
        sys.inject_fault(StageId::new(1, Unit::Tlu), FaultEffect { bit: 7, stuck: true }).unwrap();
        sys.run(20_000).unwrap();
        let d = epoch_scan(&sys, &R2d3Config::default(), &HashSet::new(), 0);
        // GEMV has no traps, so the TLU never produced a record: no
        // detection is possible (and none should be fabricated).
        assert!(d.iter().all(|x| x.dut != StageId::new(1, Unit::Tlu)));
    }
}
