//! Measurement helpers and serializable experiment reports.

use r2d3_isa::kernels::{fft, gemm, gemv, KernelKind};
use r2d3_pipeline_sim::{System3d, SystemConfig};
use serde::{Deserialize, Serialize};

/// Measured cycle-level profile of one workload (the short-timescale leg
/// of the two-timescale methodology).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KernelProfile {
    /// Which workload.
    pub kind: KernelKind,
    /// Per-pipeline IPC measured on the cycle-level simulator.
    pub ipc: f64,
    /// Demand: fraction of pipelines the workload keeps busy.
    pub demand: f64,
    /// Relative switching-activity weight.
    pub activity_weight: f64,
    /// Mean EXU activity factor during the run.
    pub exu_activity: f64,
    /// Mean LSU activity factor during the run.
    pub lsu_activity: f64,
    /// Mean FFU activity factor during the run.
    pub ffu_activity: f64,
}

/// Measures a kernel's IPC and per-unit activity on the 8-core simulator.
///
/// Uses a mid-size instance of each kernel and runs every pipeline with a
/// distinct seed (independent instruction streams, as in the paper).
///
/// # Errors
///
/// Propagates simulator errors.
pub fn measure_kernel_profile(
    kind: KernelKind,
) -> Result<KernelProfile, r2d3_pipeline_sim::SimError> {
    let config = SystemConfig::default();
    let mut sys = System3d::new(&config);
    for p in 0..config.pipelines {
        let seed = p as u64 + 1;
        let program = match kind {
            KernelKind::Gemm => gemm(16, 16, 16, seed).program().clone(),
            KernelKind::Gemv => gemv(48, 48, seed).program().clone(),
            KernelKind::Fft => fft(8, seed).program().clone(),
        };
        sys.load_program(p, program)?;
    }
    let window = 60_000u64;
    sys.run(window)?;

    let mut ipc_sum = 0.0;
    let mut counted = 0usize;
    for p in 0..config.pipelines {
        let pipe = sys.pipeline(p).expect("index in range");
        if pipe.retired() > 0 {
            ipc_sum += pipe.retired() as f64 / pipe.cycles().max(1) as f64;
            counted += 1;
        }
    }
    let stats = sys.stats();
    let mean_unit = |unit: r2d3_isa::Unit| {
        let total: u64 =
            (0..config.layers).map(|l| stats.busy(r2d3_pipeline_sim::StageId::new(l, unit))).sum();
        total as f64 / (config.layers as f64 * window as f64)
    };

    Ok(KernelProfile {
        kind,
        ipc: if counted == 0 { 0.0 } else { ipc_sum / counted as f64 },
        demand: kind.core_demand_fraction(),
        activity_weight: kind.activity_weight(),
        exu_activity: mean_unit(r2d3_isa::Unit::Exu),
        lsu_activity: mean_unit(r2d3_isa::Unit::Lsu),
        ffu_activity: mean_unit(r2d3_isa::Unit::Ffu),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_measure_all_kernels() {
        for kind in KernelKind::ALL {
            let p = measure_kernel_profile(kind).unwrap();
            assert!(p.ipc > 0.1 && p.ipc < 1.0, "{kind} IPC {ipc}", ipc = p.ipc);
            assert!(p.exu_activity > 0.0);
            assert!(p.lsu_activity > 0.0);
        }
    }

    #[test]
    fn fp_kernels_exercise_the_ffu() {
        let p = measure_kernel_profile(KernelKind::Gemv).unwrap();
        assert!(p.ffu_activity > 0.0, "GEMV is FMAC-heavy");
    }
}
