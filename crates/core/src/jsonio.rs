//! Minimal owned-tree JSON reader shared by the telemetry validators
//! ([`telemetry::export`](crate::telemetry::export)) and the durable-run
//! parsers ([`snapshot`](crate::snapshot), campaign shard files).
//!
//! Parses enough JSON for our own emitters plus reasonable hand edits.
//! Numbers are held as `f64`, which is exact for every integer the
//! emitters write as a bare number (< 2^53); full-range `u64` payloads
//! (digests, RNG state words, `f64` bit patterns) are written as hex
//! *strings* and read back through [`Value::as_hex_u64`] so no precision
//! is lost in the round-trip.

/// Parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

impl Value {
    pub(crate) fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub(crate) fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub(crate) fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    pub(crate) fn as_usize(&self) -> Option<usize> {
        self.as_u64().map(|n| n as usize)
    }

    pub(crate) fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub(crate) fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Reads a full-precision `u64` serialized as a hex string
    /// (the convention for digests, RNG state and `f64` bit patterns;
    /// see [`hex_u64`]).
    pub(crate) fn as_hex_u64(&self) -> Option<u64> {
        u64::from_str_radix(self.as_str()?, 16).ok()
    }
}

/// Renders a `u64` as the hex-string JSON token [`Value::as_hex_u64`]
/// reads back. Used for values that would lose precision as an `f64`
/// JSON number.
pub(crate) fn hex_u64(v: u64) -> String {
    format!("\"{v:x}\"")
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser { bytes: text.as_bytes(), pos: 0 }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, ch: u8) -> Result<(), String> {
        if self.peek() == Some(ch) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", ch as char, self.pos))
        }
    }

    fn parse_value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b't') => self.parse_lit("true", Value::Bool(true)),
            Some(b'f') => self.parse_lit("false", Value::Bool(false)),
            Some(b'n') => self.parse_lit("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            Some(c) => Err(format!("unexpected '{}' at byte {}", c as char, self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn parse_lit(&mut self, lit: &str, value: Value) -> Result<Value, String> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn parse_number(&mut self) -> Result<Value, String> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Value::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        while let Some(&c) = self.bytes.get(self.pos) {
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        other => return Err(format!("unsupported escape '\\{}'", other as char)),
                    }
                }
                _ => out.push(c as char),
            }
        }
        Err("unterminated string".to_string())
    }

    fn parse_array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.parse_value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            let key = self.parse_string()?;
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

/// Parses a complete JSON document, rejecting trailing garbage.
pub(crate) fn parse_json(text: &str) -> Result<Value, String> {
    let mut p = Parser::new(text);
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_u64_round_trips_full_range() {
        for v in [0u64, 1, u64::MAX, 0x9e37_79b9_7f4a_7c15, (1 << 53) + 1] {
            let token = hex_u64(v);
            let parsed = parse_json(&token).unwrap();
            assert_eq!(parsed.as_hex_u64(), Some(v));
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse_json("{} x").is_err());
        assert!(parse_json("[1,2,]").is_err());
    }
}
