//! Deterministic quota-proportional unit scheduler.
//!
//! Pure data structure — no threads, no clocks — so its dispatch order
//! is a function of (queue contents, quotas) alone and can be unit
//! tested exhaustively. The daemon calls [`Scheduler::pick`] under one
//! mutex, which makes the *dispatch log* worker-count-independent
//! whenever the whole job set is enqueued before dispatch begins (the
//! paused-release pattern).
//!
//! Dispatch rule, in order:
//!
//! 1. Among clients with a queued unit, pick the one with the lowest
//!    served/quota ratio (deficit fairness; compared exactly as
//!    `served_a * quota_b < served_b * quota_a` — no floats). A client
//!    with quota 3 therefore receives three dispatches for every one a
//!    quota-1 client gets: with clients `a` (quota 3) and `b` (quota 1)
//!    both saturated, the steady-state pattern is `a a a b` repeating
//!    (first round `a b` while both ratios pass through zero).
//! 2. Ratio ties break to the lexicographically smaller client name.
//! 3. Within a client: higher priority first, then admission order
//!    (`seq`), then unit index.

use std::collections::BTreeMap;

/// One schedulable unit of a job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct QueueEntry {
    pub client: String,
    pub job: u64,
    pub seq: u64,
    pub priority: u8,
    pub unit: u64,
}

/// The daemon's dispatch queue plus per-client accounting.
#[derive(Debug)]
pub(crate) struct Scheduler {
    queue: Vec<QueueEntry>,
    served: BTreeMap<String, u64>,
    quotas: BTreeMap<String, u64>,
    default_quota: u64,
    paused: bool,
}

impl Scheduler {
    pub(crate) fn new(default_quota: u64, quotas: &[(String, u64)], paused: bool) -> Scheduler {
        Scheduler {
            queue: Vec::new(),
            served: BTreeMap::new(),
            quotas: quotas.iter().map(|(c, q)| (c.clone(), (*q).max(1))).collect(),
            default_quota: default_quota.max(1),
            paused,
        }
    }

    fn quota(&self, client: &str) -> u64 {
        self.quotas.get(client).copied().unwrap_or(self.default_quota)
    }

    pub(crate) fn push(&mut self, entry: QueueEntry) {
        self.queue.push(entry);
    }

    /// Removes every queued unit of a job (cancel / failure path).
    pub(crate) fn remove_job(&mut self, job: u64) {
        self.queue.retain(|e| e.job != job);
    }

    pub(crate) fn release(&mut self) {
        self.paused = false;
    }

    #[cfg(test)]
    pub(crate) fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Dispatches the next unit per the documented rule, updating the
    /// winner's served count. `None` when paused or empty.
    pub(crate) fn pick(&mut self) -> Option<QueueEntry> {
        if self.paused || self.queue.is_empty() {
            return None;
        }
        // Winning client: lowest served/quota, ties to the smaller name.
        // The queue is small (units in flight), so a linear scan is fine
        // and keeps the rule auditable.
        let mut winner: Option<&str> = None;
        for e in &self.queue {
            let better = match winner {
                None => true,
                Some(w) if w == e.client => false,
                Some(w) => {
                    let (sa, qa) = (
                        self.served.get(e.client.as_str()).copied().unwrap_or(0),
                        self.quota(&e.client),
                    );
                    let (sb, qb) = (self.served.get(w).copied().unwrap_or(0), self.quota(w));
                    sa * qb < sb * qa || (sa * qb == sb * qa && e.client.as_str() < w)
                }
            };
            if better {
                winner = Some(&e.client);
            }
        }
        let winner = winner?.to_string();
        // Within the winner: priority desc, seq asc, unit asc.
        let best = self
            .queue
            .iter()
            .enumerate()
            .filter(|(_, e)| e.client == winner)
            .min_by_key(|(_, e)| (std::cmp::Reverse(e.priority), e.seq, e.unit))
            .map(|(i, _)| i)?;
        let entry = self.queue.remove(best);
        *self.served.entry(winner).or_insert(0) += 1;
        Some(entry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(client: &str, job: u64, seq: u64, priority: u8, unit: u64) -> QueueEntry {
        QueueEntry { client: client.into(), job, seq, priority, unit }
    }

    fn drain(s: &mut Scheduler) -> Vec<String> {
        let mut out = Vec::new();
        while let Some(e) = s.pick() {
            out.push(format!("{}:{}.{}", e.client, e.job, e.unit));
        }
        out
    }

    #[test]
    fn quota_3_to_1_interleaving_is_documented_pattern() {
        let mut s = Scheduler::new(1, &[("alice".into(), 3)], false);
        for i in 0..12 {
            s.push(entry("alice", i, i, 0, 0));
        }
        for i in 0..4 {
            s.push(entry("bob", 100 + i, 100 + i, 0, 0));
        }
        let clients: String =
            drain(&mut s).iter().map(|d| if d.starts_with("alice") { 'a' } else { 'b' }).collect();
        // First round both ratios pass through zero (a then b by name),
        // then the 3:1 deficit pattern locks in: ab, then aaab repeating
        // until bob runs dry and alice drains the remainder.
        assert_eq!(
            clients, "abaaabaaabaaabaa",
            "dispatch interleaving must match the documented 3:1 pattern"
        );
    }

    #[test]
    fn equal_quotas_alternate_with_name_tiebreak() {
        let mut s = Scheduler::new(1, &[], false);
        for i in 0..3 {
            s.push(entry("zoe", i, i, 0, 0));
            s.push(entry("amy", 10 + i, 10 + i, 0, 0));
        }
        let order = drain(&mut s);
        assert_eq!(order, ["amy:10.0", "zoe:0.0", "amy:11.0", "zoe:1.0", "amy:12.0", "zoe:2.0"]);
    }

    #[test]
    fn within_client_priority_then_seq_then_unit() {
        let mut s = Scheduler::new(1, &[], false);
        s.push(entry("amy", 1, 1, 0, 0));
        s.push(entry("amy", 2, 2, 9, 1));
        s.push(entry("amy", 2, 2, 9, 0));
        s.push(entry("amy", 3, 3, 9, 0));
        let order = drain(&mut s);
        assert_eq!(order, ["amy:2.0", "amy:2.1", "amy:3.0", "amy:1.0"]);
    }

    #[test]
    fn paused_holds_until_release_and_remove_job_drops_units() {
        let mut s = Scheduler::new(1, &[], true);
        s.push(entry("amy", 1, 1, 0, 0));
        s.push(entry("amy", 1, 1, 0, 1));
        s.push(entry("amy", 2, 2, 0, 0));
        assert!(s.pick().is_none(), "paused scheduler must not dispatch");
        s.remove_job(1);
        s.release();
        assert_eq!(drain(&mut s), ["amy:2.0"]);
        assert!(s.is_empty());
    }

    #[test]
    fn dispatch_order_is_replay_stable() {
        // Same queue contents twice → same dispatch log, regardless of
        // push interleavings of distinct clients.
        let build = |flip: bool| {
            let mut s = Scheduler::new(2, &[("c1".into(), 3), ("c2".into(), 1)], true);
            for i in 0..5u64 {
                let (a, b) = (entry("c1", i, i, 0, 0), entry("c2", 50 + i, 50 + i, 0, 0));
                if flip {
                    s.push(b);
                    s.push(a);
                } else {
                    s.push(a);
                    s.push(b);
                }
            }
            s.release();
            s
        };
        assert_eq!(drain(&mut build(false)), drain(&mut build(true)));
    }
}
