//! Blocking client for the serve protocol: one socket, line-oriented
//! request/response, plus the streaming `watch` conversation.

use super::{Listen, ServeError};
use crate::api::wire::{decode_response, JobEvent, JobStatus, Reply, Request, Response};
use crate::api::{ApiError, JobId, JobSpec};
use crate::telemetry::OverflowPolicy;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;

enum Conn {
    Unix(UnixStream),
    Tcp(TcpStream),
}

impl Conn {
    fn try_clone(&self) -> std::io::Result<Conn> {
        Ok(match self {
            Conn::Unix(s) => Conn::Unix(s.try_clone()?),
            Conn::Tcp(s) => Conn::Tcp(s.try_clone()?),
        })
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Conn::Unix(s) => s.read(buf),
            Conn::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Conn::Unix(s) => s.write(buf),
            Conn::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Conn::Unix(s) => s.flush(),
            Conn::Tcp(s) => s.flush(),
        }
    }
}

/// A connection to a running [`super::Daemon`].
pub struct Client {
    reader: BufReader<Conn>,
    writer: Conn,
}

fn unexpected_reply() -> ServeError {
    ServeError::Protocol(ApiError::Invalid {
        field: "reply".into(),
        reason: "unexpected reply type for this request".into(),
    })
}

impl Client {
    /// Connects to a daemon at the given address.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] when the socket cannot be opened.
    pub fn connect(listen: &Listen) -> Result<Client, ServeError> {
        let writer = match listen {
            Listen::Unix(path) => Conn::Unix(UnixStream::connect(path)?),
            Listen::Tcp(addr) => Conn::Tcp(TcpStream::connect(addr.as_str())?),
        };
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Client { reader, writer })
    }

    fn read_line(&mut self) -> Result<String, ServeError> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(ServeError::Closed);
        }
        Ok(line)
    }

    fn roundtrip(&mut self, req: &Request) -> Result<Reply, ServeError> {
        self.writer.write_all(req.encode().as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let line = self.read_line()?;
        match decode_response(&line)? {
            Response::Ok(reply) => Ok(reply),
            Response::Err { code, message } => Err(ServeError::Remote { code, message }),
        }
    }

    /// Submits a job under a client name; returns its id.
    ///
    /// # Errors
    ///
    /// [`ServeError::Remote`] when the daemon rejects the job, transport
    /// errors otherwise.
    pub fn submit(&mut self, client: &str, spec: &JobSpec) -> Result<JobId, ServeError> {
        match self.roundtrip(&Request::Submit { client: client.to_string(), spec: spec.clone() })? {
            Reply::Submitted { job } => Ok(job),
            _ => Err(unexpected_reply()),
        }
    }

    /// Fetches the status of one job, or of every job when `job` is
    /// `None` (sorted by id).
    ///
    /// # Errors
    ///
    /// [`ServeError::Remote`] with code `not_found` for an unknown job.
    pub fn status(&mut self, job: Option<JobId>) -> Result<Vec<JobStatus>, ServeError> {
        match self.roundtrip(&Request::Status { job })? {
            Reply::Jobs(jobs) => Ok(jobs),
            _ => Err(unexpected_reply()),
        }
    }

    /// Requests cancellation. `Ok(false)` means the job was already
    /// terminal.
    ///
    /// # Errors
    ///
    /// [`ServeError::Remote`] with code `not_found` for an unknown job.
    pub fn cancel(&mut self, job: JobId) -> Result<bool, ServeError> {
        match self.roundtrip(&Request::Cancel { job })? {
            Reply::Canceled { canceled, .. } => Ok(canceled),
            _ => Err(unexpected_reply()),
        }
    }

    /// Fetches a completed job's rendered report.
    ///
    /// # Errors
    ///
    /// [`ServeError::Remote`] with code `not_ready` while the job is
    /// still running, `not_found` for an unknown job.
    pub fn result(&mut self, job: JobId) -> Result<String, ServeError> {
        match self.roundtrip(&Request::Result { job })? {
            Reply::Report { report, .. } => Ok(report),
            _ => Err(unexpected_reply()),
        }
    }

    /// Asks the daemon to shut down (running units checkpoint first).
    ///
    /// # Errors
    ///
    /// Transport errors only.
    pub fn shutdown_server(&mut self) -> Result<(), ServeError> {
        match self.roundtrip(&Request::Shutdown)? {
            Reply::ShuttingDown => Ok(()),
            _ => Err(unexpected_reply()),
        }
    }

    /// Streams a job's events — full history replay, then live — calling
    /// `on_event` for each, until the terminal event, which is returned.
    /// The connection remains usable for further requests afterwards.
    ///
    /// # Errors
    ///
    /// [`ServeError::Closed`] if the daemon goes away mid-stream,
    /// [`ServeError::Remote`] with `not_found` for an unknown job.
    pub fn watch(
        &mut self,
        job: JobId,
        overflow: OverflowPolicy,
        mut on_event: impl FnMut(&JobEvent),
    ) -> Result<JobEvent, ServeError> {
        match self.roundtrip(&Request::Watch { job, overflow })? {
            Reply::Watching { .. } => {}
            _ => return Err(unexpected_reply()),
        }
        loop {
            let line = self.read_line()?;
            let ev = JobEvent::decode(&line)?;
            on_event(&ev);
            if ev.is_terminal() {
                return Ok(ev);
            }
        }
    }
}
