//! Blocking client for the serve protocol: one socket, line-oriented
//! request/response, plus the streaming `watch` conversation.
//!
//! Deadlines: [`Client::connect_with_deadlines`] bounds both the TCP
//! connect and every request/response roundtrip; an expired deadline
//! surfaces as the typed [`ApiError::Timeout`] (wrapped in
//! [`ServeError::Protocol`]), never as a bare I/O error, so callers
//! can distinguish "the daemon is slow/gone" from "my request was
//! malformed". The streaming phase of [`Client::watch`] suspends the
//! per-request deadline — the gap between job events is unbounded by
//! design — and restores it before returning.

use super::{Listen, ServeError};
use crate::api::wire::{decode_response, JobEvent, JobStatus, Reply, Request, Response};
use crate::api::{ApiError, JobId, JobSpec};
use crate::telemetry::OverflowPolicy;
use std::io::{BufRead, BufReader, ErrorKind, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::os::unix::net::UnixStream;
use std::time::Duration;

enum Conn {
    Unix(UnixStream),
    Tcp(TcpStream),
}

impl Conn {
    fn try_clone(&self) -> std::io::Result<Conn> {
        Ok(match self {
            Conn::Unix(s) => Conn::Unix(s.try_clone()?),
            Conn::Tcp(s) => Conn::Tcp(s.try_clone()?),
        })
    }

    fn set_read_timeout(&self, d: Option<Duration>) -> std::io::Result<()> {
        match self {
            Conn::Unix(s) => s.set_read_timeout(d),
            Conn::Tcp(s) => s.set_read_timeout(d),
        }
    }

    fn set_write_timeout(&self, d: Option<Duration>) -> std::io::Result<()> {
        match self {
            Conn::Unix(s) => s.set_write_timeout(d),
            Conn::Tcp(s) => s.set_write_timeout(d),
        }
    }
}

/// Maps an expired socket deadline to the typed timeout error; every
/// other I/O failure stays an I/O error.
fn map_io(e: std::io::Error) -> ServeError {
    if matches!(e.kind(), ErrorKind::TimedOut | ErrorKind::WouldBlock) {
        ServeError::Protocol(ApiError::Timeout)
    } else {
        ServeError::Io(e)
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Conn::Unix(s) => s.read(buf),
            Conn::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Conn::Unix(s) => s.write(buf),
            Conn::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Conn::Unix(s) => s.flush(),
            Conn::Tcp(s) => s.flush(),
        }
    }
}

/// A connection to a running [`super::Daemon`].
pub struct Client {
    reader: BufReader<Conn>,
    writer: Conn,
    /// Per-roundtrip read/write deadline (`None` = wait forever).
    request_deadline: Option<Duration>,
}

fn unexpected_reply() -> ServeError {
    ServeError::Protocol(ApiError::Invalid {
        field: "reply".into(),
        reason: "unexpected reply type for this request".into(),
    })
}

impl Client {
    /// Connects to a daemon at the given address with no deadlines
    /// (waits forever, like a plain blocking socket).
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] when the socket cannot be opened.
    pub fn connect(listen: &Listen) -> Result<Client, ServeError> {
        Self::connect_with_deadlines(listen, None, None)
    }

    /// Connects with an optional connect deadline (TCP only — a Unix
    /// socket connect is a local operation that either succeeds or
    /// fails immediately) and an optional per-request deadline applied
    /// to every roundtrip.
    ///
    /// # Errors
    ///
    /// [`ServeError::Protocol`] carrying [`ApiError::Timeout`] when the
    /// connect deadline expires; [`ServeError::Io`] for other socket
    /// failures.
    pub fn connect_with_deadlines(
        listen: &Listen,
        connect: Option<Duration>,
        request: Option<Duration>,
    ) -> Result<Client, ServeError> {
        let writer = match listen {
            Listen::Unix(path) => Conn::Unix(UnixStream::connect(path)?),
            Listen::Tcp(addr) => Conn::Tcp(match connect {
                None => TcpStream::connect(addr.as_str())?,
                Some(d) => {
                    let sa =
                        addr.as_str().to_socket_addrs()?.next().ok_or_else(|| {
                            ServeError::Addr(format!("{addr}: no usable address"))
                        })?;
                    TcpStream::connect_timeout(&sa, d).map_err(map_io)?
                }
            }),
        };
        let reader = BufReader::new(writer.try_clone()?);
        let mut client = Client { reader, writer, request_deadline: None };
        client.set_request_deadline(request)?;
        Ok(client)
    }

    /// Sets (or clears) the per-roundtrip deadline on an existing
    /// connection.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] if the socket rejects the option.
    pub fn set_request_deadline(&mut self, d: Option<Duration>) -> Result<(), ServeError> {
        self.reader.get_ref().set_read_timeout(d)?;
        self.writer.set_write_timeout(d)?;
        self.request_deadline = d;
        Ok(())
    }

    fn read_line(&mut self) -> Result<String, ServeError> {
        let mut line = String::new();
        if self.reader.read_line(&mut line).map_err(map_io)? == 0 {
            return Err(ServeError::Closed);
        }
        Ok(line)
    }

    fn roundtrip(&mut self, req: &Request) -> Result<Reply, ServeError> {
        self.writer.write_all(req.encode().as_bytes()).map_err(map_io)?;
        self.writer.write_all(b"\n").map_err(map_io)?;
        self.writer.flush().map_err(map_io)?;
        let line = self.read_line()?;
        match decode_response(&line)? {
            Response::Ok(reply) => Ok(reply),
            Response::Err { code, message } => Err(ServeError::Remote { code, message }),
        }
    }

    /// Submits a job under a client name; returns its id.
    ///
    /// # Errors
    ///
    /// [`ServeError::Remote`] when the daemon rejects the job, transport
    /// errors otherwise.
    pub fn submit(&mut self, client: &str, spec: &JobSpec) -> Result<JobId, ServeError> {
        match self.roundtrip(&Request::Submit { client: client.to_string(), spec: spec.clone() })? {
            Reply::Submitted { job } => Ok(job),
            _ => Err(unexpected_reply()),
        }
    }

    /// Fetches the status of one job, or of every job when `job` is
    /// `None` (sorted by id).
    ///
    /// # Errors
    ///
    /// [`ServeError::Remote`] with code `not_found` for an unknown job.
    pub fn status(&mut self, job: Option<JobId>) -> Result<Vec<JobStatus>, ServeError> {
        match self.roundtrip(&Request::Status { job })? {
            Reply::Jobs(jobs) => Ok(jobs),
            _ => Err(unexpected_reply()),
        }
    }

    /// Requests cancellation. `Ok(false)` means the job was already
    /// terminal.
    ///
    /// # Errors
    ///
    /// [`ServeError::Remote`] with code `not_found` for an unknown job.
    pub fn cancel(&mut self, job: JobId) -> Result<bool, ServeError> {
        match self.roundtrip(&Request::Cancel { job })? {
            Reply::Canceled { canceled, .. } => Ok(canceled),
            _ => Err(unexpected_reply()),
        }
    }

    /// Fetches a completed job's rendered report.
    ///
    /// # Errors
    ///
    /// [`ServeError::Remote`] with code `not_ready` while the job is
    /// still running, `not_found` for an unknown job.
    pub fn result(&mut self, job: JobId) -> Result<String, ServeError> {
        match self.roundtrip(&Request::Result { job })? {
            Reply::Report { report, .. } => Ok(report),
            _ => Err(unexpected_reply()),
        }
    }

    /// Asks the daemon to shut down (running units checkpoint first).
    ///
    /// # Errors
    ///
    /// Transport errors only.
    pub fn shutdown_server(&mut self) -> Result<(), ServeError> {
        match self.roundtrip(&Request::Shutdown)? {
            Reply::ShuttingDown => Ok(()),
            _ => Err(unexpected_reply()),
        }
    }

    /// Streams a job's events — full history replay, then live — calling
    /// `on_event` for each, until the terminal event, which is returned.
    /// The connection remains usable for further requests afterwards.
    ///
    /// # Errors
    ///
    /// [`ServeError::Closed`] if the daemon goes away mid-stream,
    /// [`ServeError::Remote`] with `not_found` for an unknown job.
    pub fn watch(
        &mut self,
        job: JobId,
        overflow: OverflowPolicy,
        mut on_event: impl FnMut(&JobEvent),
    ) -> Result<JobEvent, ServeError> {
        match self.roundtrip(&Request::Watch { job, overflow })? {
            Reply::Watching { .. } => {}
            _ => return Err(unexpected_reply()),
        }
        // The gap between live events is unbounded (a unit can compute
        // arbitrarily long between observer steps), so the roundtrip
        // deadline is suspended for the stream and restored afterwards.
        self.reader.get_ref().set_read_timeout(None)?;
        let result = (|| loop {
            let line = self.read_line()?;
            let ev = JobEvent::decode(&line)?;
            on_event(&ev);
            if ev.is_terminal() {
                return Ok(ev);
            }
        })();
        let _ = self.reader.get_ref().set_read_timeout(self.request_deadline);
        result
    }
}
