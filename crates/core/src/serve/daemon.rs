//! The job daemon: socket front end, admission, worker pool, durable
//! execution and recovery.
//!
//! Locking discipline: `jobs` before `sched` before `parked` when more
//! than one is needed; event emission ([`EventHub::emit`]) never takes
//! any of them, so it may be called with or without them held (helpers
//! here emit *after* releasing `jobs` so a blocked watcher can never
//! stall status queries).
//!
//! Every durable byte goes through [`ServeConfig::io`]: transient
//! write/fsync/rename faults get a bounded retry on the env's clock;
//! persistent `ENOSPC` parks the affected job ([`JobState::Degraded`],
//! units moved off the run queue) instead of failing it, and a periodic
//! write probe un-parks everything once the state directory accepts
//! writes again.

use super::events::EventHub;
use super::sched::{QueueEntry, Scheduler};
use super::store::{scan_jobs, JobRec};
use super::{Listen, ServeConfig, ServeError};
use crate::api::wire::{JobEvent, JobState, Reply, Request, Response};
use crate::api::{
    render_outcome, run_inject_with, CampaignSpec, InjectSpec, JobId, JobKind, JobOutcome, JobSpec,
    LifetimeSpec,
};
use crate::campaign::{
    merge_shards, render_report, run_shard, CampaignState, ShardReport, ShardSpec,
};
use crate::chaos::{is_disk_full, IoEnv};
use crate::lifetime::{LifetimeRunState, LifetimeSim};
use crate::snapshot::SnapshotError;
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpListener;
use std::ops::ControlFlow;
use std::os::unix::net::UnixListener;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

struct Inner {
    config: ServeConfig,
    jobs: Mutex<BTreeMap<u64, JobRec>>,
    sched: Mutex<Scheduler>,
    cond: Condvar,
    hub: EventHub,
    shutdown: AtomicBool,
    next_id: AtomicU64,
    next_seq: AtomicU64,
    dispatch_log: Mutex<Vec<String>>,
    /// Units parked by disk-pressure degradation: off the run queue
    /// until a write probe succeeds, never lost.
    parked: Mutex<Vec<QueueEntry>>,
}

impl Inner {
    fn env(&self) -> &IoEnv {
        &self.config.io
    }
}

/// A running `r2d3 serve` daemon. Dropping the handle does **not**
/// stop it — call [`Daemon::shutdown`] then [`Daemon::join`] (or let a
/// remote `shutdown` request do it).
pub struct Daemon {
    inner: Arc<Inner>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Daemon {
    /// Binds the listener, recovers persisted jobs from the state
    /// directory (non-terminal jobs re-queue and resume from their unit
    /// checkpoints), and starts the accept loop and worker pool.
    ///
    /// # Errors
    ///
    /// [`ServeError`] on bind failure or unreadable state.
    pub fn start(config: ServeConfig, listen: &Listen) -> Result<Daemon, ServeError> {
        let env = config.io.clone();
        env.vfs.create_dir_all(&config.state_dir)?;
        let hub = EventHub::new(env.clone());
        let mut sched = Scheduler::new(config.default_quota, &config.quotas, config.paused);
        let mut jobs = BTreeMap::new();
        let (mut next_id, mut next_seq) = (1u64, 1u64);
        for mut j in scan_jobs(env.vfs.as_ref(), &config.state_dir)? {
            next_id = next_id.max(j.id + 1);
            next_seq = next_seq.max(j.seq + 1);
            hub.preload(j.id, &JobRec::events_path(&config.state_dir, j.id))?;
            if !j.state.is_terminal() {
                // A job mid-run (or parked for disk pressure) when the
                // previous daemon died starts over from Queued; its
                // units resume from their checkpoints.
                if j.state == JobState::Running || j.state == JobState::Degraded {
                    j.state = JobState::Queued;
                    j.error = None;
                    j.save(&env, &config.state_dir)?;
                }
                for unit in 0..j.units() {
                    if !j.unit_done[unit as usize] {
                        sched.push(QueueEntry {
                            client: j.client.clone(),
                            job: j.id,
                            seq: j.seq,
                            priority: j.spec.priority,
                            unit,
                        });
                    }
                }
            }
            jobs.insert(j.id, j);
        }

        let workers = config.workers.max(1);
        let inner = Arc::new(Inner {
            config,
            jobs: Mutex::new(jobs),
            sched: Mutex::new(sched),
            cond: Condvar::new(),
            hub,
            shutdown: AtomicBool::new(false),
            next_id: AtomicU64::new(next_id),
            next_seq: AtomicU64::new(next_seq),
            dispatch_log: Mutex::new(Vec::new()),
            parked: Mutex::new(Vec::new()),
        });

        let accept = spawn_accept(&inner, listen)?;
        let workers = (0..workers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("r2d3-worker-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn worker")
            })
            .collect();
        Ok(Daemon { inner, accept: Some(accept), workers })
    }

    /// Unpauses dispatch (no-op unless started with
    /// [`ServeConfig::paused`]).
    pub fn release(&self) {
        self.inner.sched.lock().unwrap().release();
        self.inner.cond.notify_all();
    }

    /// The dispatch decisions taken so far, in order, as
    /// `client:jobid.unit` strings — the observable scheduler trace the
    /// fairness contract is tested against.
    #[must_use]
    pub fn dispatch_log(&self) -> Vec<String> {
        self.inner.dispatch_log.lock().unwrap().clone()
    }

    /// Asks every thread to stop. Running units checkpoint and exit at
    /// their next observer step; their jobs resume on the next start
    /// over the same state directory.
    pub fn shutdown(&self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        self.inner.cond.notify_all();
    }

    /// Waits for the accept loop and workers to finish (connection
    /// handler threads are detached and die with their sockets).
    pub fn join(mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

fn spawn_accept(inner: &Arc<Inner>, listen: &Listen) -> Result<JoinHandle<()>, ServeError> {
    enum Bound {
        Unix(UnixListener),
        Tcp(TcpListener),
    }
    let bound = match listen {
        Listen::Unix(path) => {
            // The socket file is ephemeral plumbing, not durable state —
            // clearing a stale one bypasses the chaos Vfs seam on purpose.
            if path.exists() {
                std::fs::remove_file(path)?;
            }
            let l = UnixListener::bind(path)?;
            l.set_nonblocking(true)?;
            Bound::Unix(l)
        }
        Listen::Tcp(addr) => {
            let l = TcpListener::bind(addr.as_str())?;
            l.set_nonblocking(true)?;
            Bound::Tcp(l)
        }
    };
    let inner = Arc::clone(inner);
    let handle = std::thread::Builder::new()
        .name("r2d3-accept".into())
        .spawn(move || loop {
            if inner.shutdown.load(Ordering::SeqCst) {
                return;
            }
            let conn: Option<(Box<dyn Read + Send>, Box<dyn Write + Send>)> = match &bound {
                Bound::Unix(l) => match l.accept() {
                    Ok((s, _)) => {
                        let _ = s.set_nonblocking(false);
                        match s.try_clone() {
                            Ok(r) => Some((Box::new(r), Box::new(s))),
                            Err(_) => None,
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => None,
                    Err(_) => return,
                },
                Bound::Tcp(l) => match l.accept() {
                    Ok((s, _)) => {
                        let _ = s.set_nonblocking(false);
                        match s.try_clone() {
                            Ok(r) => Some((Box::new(r), Box::new(s))),
                            Err(_) => None,
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => None,
                    Err(_) => return,
                },
            };
            match conn {
                Some((reader, writer)) => {
                    let inner = Arc::clone(&inner);
                    let _ = std::thread::Builder::new()
                        .name("r2d3-conn".into())
                        .spawn(move || handle_conn(&inner, reader, writer));
                }
                None => std::thread::sleep(Duration::from_millis(20)),
            }
        })
        .map_err(ServeError::Io)?;
    Ok(handle)
}

// --- connection handling -------------------------------------------

fn write_line(out: &mut impl Write, line: &str) -> std::io::Result<()> {
    out.write_all(line.as_bytes())?;
    out.write_all(b"\n")?;
    out.flush()
}

fn handle_conn(inner: &Arc<Inner>, reader: Box<dyn Read + Send>, mut out: Box<dyn Write + Send>) {
    let reader = BufReader::new(reader);
    for line in reader.lines() {
        let Ok(line) = line else { return };
        if line.trim().is_empty() {
            continue;
        }
        let req = match Request::decode(&line) {
            Ok(req) => req,
            Err(e) => {
                // A malformed line is the sender's problem, not the
                // daemon's: typed error back, connection stays usable.
                if write_line(&mut out, &Response::protocol_error(&e).encode()).is_err() {
                    return;
                }
                continue;
            }
        };
        match serve_request(inner, req, &mut out) {
            Ok(true) => {}
            Ok(false) | Err(_) => return,
        }
    }
}

fn err_response(code: &str, message: String) -> Response {
    Response::Err { code: code.into(), message }
}

/// Handles one decoded request. `Ok(false)` closes the connection.
fn serve_request(inner: &Arc<Inner>, req: Request, out: &mut impl Write) -> std::io::Result<bool> {
    match req {
        Request::Submit { client, spec } => {
            let resp = match admit(inner, client, spec) {
                Ok(id) => Response::Ok(Reply::Submitted { job: JobId(id) }),
                Err(e) => err_response("rejected", e.to_string()),
            };
            write_line(out, &resp.encode())?;
        }
        Request::Status { job } => {
            let jobs = inner.jobs.lock().unwrap();
            let resp = match job {
                Some(id) => match jobs.get(&id.0) {
                    Some(j) => Response::Ok(Reply::Jobs(vec![j.status()])),
                    None => err_response("not_found", format!("no job {id}")),
                },
                None => Response::Ok(Reply::Jobs(jobs.values().map(JobRec::status).collect())),
            };
            drop(jobs);
            write_line(out, &resp.encode())?;
        }
        Request::Watch { job, overflow } => {
            if !inner.jobs.lock().unwrap().contains_key(&job.0) {
                write_line(out, &err_response("not_found", format!("no job {job}")).encode())?;
                return Ok(true);
            }
            // Subscribe *before* replying so the reply/replay/live
            // sequence is gapless.
            let (history, rx) = inner.hub.subscribe(job.0, overflow);
            write_line(out, &Response::Ok(Reply::Watching { job }).encode())?;
            let mut terminal = false;
            for ev in &history {
                terminal = ev.is_terminal();
                write_line(out, &ev.encode())?;
            }
            if let Some(rx) = rx {
                while !terminal {
                    let Ok(ev) = rx.recv() else { break };
                    terminal = ev.is_terminal();
                    write_line(out, &ev.encode())?;
                }
            }
        }
        Request::Cancel { job } => {
            let resp = match cancel_job(inner, job.0) {
                Some(canceled) => Response::Ok(Reply::Canceled { job, canceled }),
                None => err_response("not_found", format!("no job {job}")),
            };
            write_line(out, &resp.encode())?;
        }
        Request::Result { job } => {
            let state = inner.jobs.lock().unwrap().get(&job.0).map(|j| j.state);
            let resp = match state {
                None => err_response("not_found", format!("no job {job}")),
                Some(JobState::Completed) => {
                    let path = JobRec::report_path(&inner.config.state_dir, job.0);
                    match inner
                        .env()
                        .vfs
                        .read(&path)
                        .map_err(|e| e.to_string())
                        .and_then(|raw| String::from_utf8(raw).map_err(|e| e.to_string()))
                    {
                        Ok(report) => Response::Ok(Reply::Report { job, report }),
                        Err(e) => err_response("io", format!("report for {job}: {e}")),
                    }
                }
                Some(st) => err_response("not_ready", format!("job {job} is {}", st.token())),
            };
            write_line(out, &resp.encode())?;
        }
        Request::Shutdown => {
            write_line(out, &Response::Ok(Reply::ShuttingDown).encode())?;
            inner.shutdown.store(true, Ordering::SeqCst);
            inner.cond.notify_all();
            return Ok(false);
        }
    }
    Ok(true)
}

fn admit(inner: &Arc<Inner>, client: String, spec: JobSpec) -> Result<u64, ServeError> {
    let id = inner.next_id.fetch_add(1, Ordering::SeqCst);
    let seq = inner.next_seq.fetch_add(1, Ordering::SeqCst);
    let rec = JobRec::new(id, seq, client.clone(), spec);
    let units = rec.units();
    let priority = rec.spec.priority;
    let env = inner.env();
    env.vfs.create_dir_all(&JobRec::dir(&inner.config.state_dir, id))?;
    // The job directory's *entry* must be durable too, or a crash could
    // forget an accepted job — same bug class as the snapshot rename.
    env.retry_io(|| env.vfs.sync_dir(&inner.config.state_dir))?;
    rec.save(env, &inner.config.state_dir)?;
    inner.hub.open(id, &JobRec::events_path(&inner.config.state_dir, id))?;
    inner.jobs.lock().unwrap().insert(id, rec);
    inner.hub.emit(&JobEvent::Accepted { job: JobId(id), units });
    {
        let mut sched = inner.sched.lock().unwrap();
        for unit in 0..units {
            sched.push(QueueEntry { client: client.clone(), job: id, seq, priority, unit });
        }
    }
    inner.cond.notify_all();
    Ok(id)
}

/// `None` = unknown job; `Some(false)` = already terminal.
fn cancel_job(inner: &Arc<Inner>, id: u64) -> Option<bool> {
    let mut emit_canceled = false;
    {
        let mut jobs = inner.jobs.lock().unwrap();
        let j = jobs.get_mut(&id)?;
        if j.state.is_terminal() {
            return Some(false);
        }
        j.cancel_requested = true;
        inner.sched.lock().unwrap().remove_job(id);
        inner.parked.lock().unwrap().retain(|e| e.job != id);
        if j.running_units == 0 {
            j.state = JobState::Canceled;
            let _ = j.save(inner.env(), &inner.config.state_dir);
            emit_canceled = true;
        }
        // Units already on a worker observe the latch at their next
        // step, checkpoint, and the last one out finalizes the cancel.
    }
    if emit_canceled {
        inner.hub.emit(&JobEvent::Canceled { job: JobId(id) });
    }
    Some(true)
}

// --- workers -------------------------------------------------------

enum UnitRun {
    Done,
    Interrupted(Stop),
    Failed(String),
}

#[derive(Clone, PartialEq)]
enum Stop {
    Shutdown,
    Cancel,
    Lease,
    /// Persistent disk pressure: the unit parks instead of failing.
    Degraded(String),
}

fn worker_loop(inner: &Arc<Inner>) {
    loop {
        maybe_unpark(inner);
        let entry = {
            let mut sched = inner.sched.lock().unwrap();
            loop {
                if inner.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                if let Some(e) = sched.pick() {
                    break Some(e);
                }
                let (guard, timeout) =
                    inner.cond.wait_timeout(sched, Duration::from_millis(200)).unwrap();
                sched = guard;
                if timeout.timed_out() {
                    // Release the queue lock so the outer loop can
                    // re-probe parked (degraded) work without holding
                    // `sched` across the jobs lock.
                    break None;
                }
            }
        };
        let Some(entry) = entry else { continue };
        inner
            .dispatch_log
            .lock()
            .unwrap()
            .push(format!("{}:{:08x}.{}", entry.client, entry.job, entry.unit));
        run_unit(inner, entry);
    }
}

/// When parked units exist, probes the state directory with a small
/// write+fsync; on success every parked unit re-queues and its job
/// leaves [`JobState::Degraded`]. Pressure still present → leave them
/// parked and try again on the next idle tick.
fn maybe_unpark(inner: &Arc<Inner>) {
    if inner.parked.lock().unwrap().is_empty() {
        return;
    }
    let env = inner.env();
    let probe = inner.config.state_dir.join(".write-probe");
    let probe_ok = (|| -> std::io::Result<()> {
        let mut f = env.vfs.create(&probe)?;
        f.write_all(b"probe")?;
        f.sync_all()?;
        drop(f);
        env.vfs.remove_file(&probe)
    })()
    .is_ok();
    if !probe_ok {
        return;
    }
    let entries: Vec<QueueEntry> = std::mem::take(&mut *inner.parked.lock().unwrap());
    if entries.is_empty() {
        return;
    }
    {
        let mut jobs = inner.jobs.lock().unwrap();
        let mut sched = inner.sched.lock().unwrap();
        for entry in entries {
            if let Some(j) = jobs.get_mut(&entry.job) {
                if j.state == JobState::Degraded {
                    j.state = JobState::Queued;
                    j.error = None;
                    let _ = j.save(inner.env(), &inner.config.state_dir);
                }
                if !j.state.is_terminal() && !j.cancel_requested {
                    sched.push(entry);
                }
            }
        }
    }
    inner.cond.notify_all();
}

fn run_unit(inner: &Arc<Inner>, entry: QueueEntry) {
    let spec = {
        let mut jobs = inner.jobs.lock().unwrap();
        let Some(j) = jobs.get_mut(&entry.job) else { return };
        if j.state.is_terminal() || j.cancel_requested || j.unit_done[entry.unit as usize] {
            return;
        }
        j.running_units += 1;
        if j.state == JobState::Queued {
            j.state = JobState::Running;
            let _ = j.save(inner.env(), &inner.config.state_dir);
        }
        j.spec.clone()
    };
    inner.hub.emit(&JobEvent::Started { job: JobId(entry.job), unit: entry.unit });
    let outcome = match &spec.kind {
        JobKind::Campaign(c) => run_campaign_unit(inner, entry.job, entry.unit, &spec, c),
        JobKind::Lifetime(l) => run_lifetime_unit(inner, entry.job, &spec, l),
        JobKind::Inject(i) => run_inject_unit(inner, entry.job, &spec, i),
    };
    finalize_unit(inner, entry, &spec, outcome);
}

fn update_progress(inner: &Arc<Inner>, job: u64, unit: u64, unit_steps: u64) -> u64 {
    let mut jobs = inner.jobs.lock().unwrap();
    match jobs.get_mut(&job) {
        Some(j) => {
            j.unit_progress[unit as usize] = unit_steps;
            j.progress_done()
        }
        None => unit_steps,
    }
}

fn save_manifest(inner: &Arc<Inner>, job: u64) {
    let jobs = inner.jobs.lock().unwrap();
    if let Some(j) = jobs.get(&job) {
        let _ = j.save(inner.env(), &inner.config.state_dir);
    }
}

fn cancel_requested(inner: &Arc<Inner>, job: u64) -> bool {
    inner.jobs.lock().unwrap().get(&job).is_some_and(|j| j.cancel_requested)
}

/// The shared checkpoint-or-stop tail of every durable unit observer:
/// counts the step, decides whether to stop (shutdown / cancel /
/// lease expiry), persists on schedule or before stopping, and emits
/// the progress/checkpoint events.
struct UnitObserver<'a> {
    inner: &'a Arc<Inner>,
    job: u64,
    unit: u64,
    total: u64,
    since_ckpt: u64,
    lease_used: u64,
    stop: Option<Stop>,
}

impl<'a> UnitObserver<'a> {
    fn new(inner: &'a Arc<Inner>, job: u64, unit: u64, total: u64) -> Self {
        UnitObserver { inner, job, unit, total, since_ckpt: 0, lease_used: 0, stop: None }
    }

    /// Returns `(job_wide_done, should_checkpoint, control_flow)`.
    fn step(&mut self, unit_steps: u64) -> (u64, bool, ControlFlow<()>) {
        let done = update_progress(self.inner, self.job, self.unit, unit_steps);
        self.inner.hub.emit(&JobEvent::Progress {
            job: JobId(self.job),
            unit: self.unit,
            done,
            total: self.total,
        });
        self.since_ckpt += 1;
        self.lease_used += 1;
        let shutdown = self.inner.shutdown.load(Ordering::SeqCst);
        let cancel = cancel_requested(self.inner, self.job);
        let lease = self.inner.config.lease_steps.is_some_and(|n| self.lease_used >= n);
        let stopping = shutdown || cancel || lease;
        if stopping {
            self.stop = Some(if cancel {
                Stop::Cancel
            } else if shutdown {
                Stop::Shutdown
            } else {
                Stop::Lease
            });
        }
        let checkpoint = stopping || self.since_ckpt >= self.inner.config.snapshot_every.max(1);
        if checkpoint {
            self.since_ckpt = 0;
        }
        (
            done,
            checkpoint,
            if stopping { ControlFlow::Break(()) } else { ControlFlow::Continue(()) },
        )
    }

    fn checkpointed(&self, done: u64) {
        save_manifest(self.inner, self.job);
        self.inner.hub.emit(&JobEvent::Checkpointed {
            job: JobId(self.job),
            unit: self.unit,
            done,
        });
    }
}

fn run_campaign_unit(
    inner: &Arc<Inner>,
    job: u64,
    unit: u64,
    spec: &JobSpec,
    c: &CampaignSpec,
) -> UnitRun {
    let cfg = match c.to_config() {
        Ok(cfg) => cfg,
        Err(e) => return UnitRun::Failed(e.to_string()),
    };
    let shard = match ShardSpec::new(unit as usize + 1, c.shards) {
        Ok(s) => s,
        Err(e) => return UnitRun::Failed(e),
    };
    let env = inner.env();
    let state_path = JobRec::unit_state_path(&inner.config.state_dir, job, unit);
    // A corrupt or stale checkpoint is discarded (typed rejection →
    // fresh start for this unit); a valid one resumes mid-shard.
    let resume = CampaignState::load_with(env.vfs.as_ref(), &state_path).ok();
    let owned = (0..c.scenarios).filter(|id| id % c.shards == unit as usize).count();
    let mut obs = UnitObserver::new(inner, job, unit, spec.progress_total());
    let result = run_shard(&cfg, shard, resume, |st| {
        let unit_steps = (st.substrate() * owned + st.scenario()) as u64;
        let (done, checkpoint, flow) = obs.step(unit_steps);
        if checkpoint {
            match env.retry_snapshot(|| st.save_with(env.vfs.as_ref(), &state_path)) {
                Ok(()) => obs.checkpointed(done),
                Err(SnapshotError::Io(e)) if is_disk_full(&e) => {
                    // Persistent pressure: park instead of failing; the
                    // next dispatch resumes from the last checkpoint.
                    obs.stop = Some(Stop::Degraded(format!("unit checkpoint: {e}")));
                    return Ok(ControlFlow::Break(()));
                }
                Err(e) => return Err(e),
            }
        }
        Ok(flow)
    });
    match result {
        Err(e) => UnitRun::Failed(e.to_string()),
        Ok(None) => UnitRun::Interrupted(obs.stop.unwrap_or(Stop::Shutdown)),
        Ok(Some(shard_report)) => {
            let shard_path = JobRec::unit_shard_path(&inner.config.state_dir, job, unit);
            match env.retry_snapshot(|| shard_report.save_with(env.vfs.as_ref(), &shard_path)) {
                Ok(()) => {}
                Err(SnapshotError::Io(e)) if is_disk_full(&e) => {
                    return UnitRun::Interrupted(Stop::Degraded(format!("shard report: {e}")));
                }
                Err(e) => return UnitRun::Failed(e.to_string()),
            }
            let _ = env.vfs.remove_file(&state_path);
            update_progress(inner, job, unit, (owned * cfg.substrates.len()) as u64);
            UnitRun::Done
        }
    }
}

fn run_lifetime_unit(inner: &Arc<Inner>, job: u64, spec: &JobSpec, l: &LifetimeSpec) -> UnitRun {
    let cfg = l.to_config();
    let months = cfg.months;
    let env = inner.env();
    let state_path = JobRec::unit_state_path(&inner.config.state_dir, job, 0);
    let resume = LifetimeRunState::load_with(env.vfs.as_ref(), &state_path).ok();
    let mut obs = UnitObserver::new(inner, job, 0, spec.progress_total());
    let result = LifetimeSim::new(cfg).run_durable(resume, |st| {
        let (done, checkpoint, flow) = obs.step(st.months_done(months) as u64);
        if checkpoint {
            match env.retry_snapshot(|| st.save_with(env.vfs.as_ref(), &state_path)) {
                Ok(()) => obs.checkpointed(done),
                Err(SnapshotError::Io(e)) if is_disk_full(&e) => {
                    obs.stop = Some(Stop::Degraded(format!("unit checkpoint: {e}")));
                    return Ok(ControlFlow::Break(()));
                }
                Err(e) => return Err(e.into()),
            }
        }
        Ok(flow)
    });
    match result {
        Err(e) => UnitRun::Failed(e.to_string()),
        Ok(None) => UnitRun::Interrupted(obs.stop.unwrap_or(Stop::Shutdown)),
        Ok(Some(outcome)) => {
            let report = render_outcome(spec, &JobOutcome::Lifetime(Box::new(outcome)));
            match write_report(env, &JobRec::report_path(&inner.config.state_dir, job), &report) {
                Ok(()) => {}
                Err(e) if is_disk_full(&e) => {
                    return UnitRun::Interrupted(Stop::Degraded(format!("final report: {e}")));
                }
                Err(e) => return UnitRun::Failed(e.to_string()),
            }
            let _ = env.vfs.remove_file(&state_path);
            update_progress(inner, job, 0, spec.progress_total());
            UnitRun::Done
        }
    }
}

fn run_inject_unit(inner: &Arc<Inner>, job: u64, spec: &JobSpec, i: &InjectSpec) -> UnitRun {
    // Inject runs are short and have no durable mid-state: they are
    // non-preemptible, and a worker lost mid-run restarts the unit
    // (documented exception to resume-not-restart).
    match run_inject_with(i, |_| {}, |_, _| {}) {
        Err(e) => UnitRun::Failed(e.to_string()),
        Ok(outcome) => {
            let report = render_outcome(spec, &JobOutcome::Inject(Box::new(outcome)));
            match write_report(
                inner.env(),
                &JobRec::report_path(&inner.config.state_dir, job),
                &report,
            ) {
                Ok(()) => {}
                Err(e) if is_disk_full(&e) => {
                    return UnitRun::Interrupted(Stop::Degraded(format!("final report: {e}")));
                }
                Err(e) => return UnitRun::Failed(e.to_string()),
            }
            let done = update_progress(inner, job, 0, 1);
            inner.hub.emit(&JobEvent::Progress { job: JobId(job), unit: 0, done, total: 1 });
            UnitRun::Done
        }
    }
}

/// Atomic, durable report write: tmp + fsync + rename + dir sync, with
/// the env's transient-fault retry. The rendered report is the job's
/// externally-visible product; it gets the same durability discipline
/// as the snapshots.
fn write_report(env: &IoEnv, path: &Path, report: &str) -> std::io::Result<()> {
    let tmp = path.with_extension("json.tmp");
    env.retry_io(|| {
        let mut f = env.vfs.create(&tmp)?;
        f.write_all(report.as_bytes())?;
        f.sync_all()?;
        drop(f);
        env.vfs.rename(&tmp, path)?;
        match path.parent().filter(|d| !d.as_os_str().is_empty()) {
            Some(dir) => env.vfs.sync_dir(dir),
            None => Ok(()),
        }
    })
}

fn finalize_unit(inner: &Arc<Inner>, entry: QueueEntry, spec: &JobSpec, outcome: UnitRun) {
    let (job, unit) = (entry.job, entry.unit);
    match outcome {
        UnitRun::Done => {
            let all_done = {
                let mut jobs = inner.jobs.lock().unwrap();
                let Some(j) = jobs.get_mut(&job) else { return };
                j.unit_done[unit as usize] = true;
                j.running_units -= 1;
                let _ = j.save(inner.env(), &inner.config.state_dir);
                j.all_done()
            };
            inner.hub.emit(&JobEvent::UnitDone { job: JobId(job), unit });
            if all_done {
                finalize_job_completion(inner, job, spec);
            } else {
                maybe_finalize_cancel(inner, job);
            }
        }
        UnitRun::Failed(error) => {
            {
                let mut jobs = inner.jobs.lock().unwrap();
                let Some(j) = jobs.get_mut(&job) else { return };
                j.running_units -= 1;
                if !j.state.is_terminal() {
                    j.state = JobState::Failed;
                    j.error = Some(error.clone());
                    let _ = j.save(inner.env(), &inner.config.state_dir);
                }
                inner.sched.lock().unwrap().remove_job(job);
            }
            inner.hub.emit(&JobEvent::Failed { job: JobId(job), error });
        }
        UnitRun::Interrupted(Stop::Lease) => {
            let done = {
                let mut jobs = inner.jobs.lock().unwrap();
                let Some(j) = jobs.get_mut(&job) else { return };
                j.running_units -= 1;
                j.progress_done()
            };
            inner.hub.emit(&JobEvent::WorkerLost { job: JobId(job), unit, done });
            inner.sched.lock().unwrap().push(entry);
            inner.cond.notify_all();
        }
        UnitRun::Interrupted(Stop::Cancel) => {
            {
                let mut jobs = inner.jobs.lock().unwrap();
                if let Some(j) = jobs.get_mut(&job) {
                    j.running_units -= 1;
                }
            }
            maybe_finalize_cancel(inner, job);
        }
        UnitRun::Interrupted(Stop::Shutdown) => {
            let mut jobs = inner.jobs.lock().unwrap();
            if let Some(j) = jobs.get_mut(&job) {
                j.running_units -= 1;
                let _ = j.save(inner.env(), &inner.config.state_dir);
            }
        }
        UnitRun::Interrupted(Stop::Degraded(reason)) => {
            // Disk pressure: park the unit instead of failing the job.
            // The worker loop re-probes writability and requeues it when
            // the pressure lifts (`maybe_unpark`).
            {
                let mut jobs = inner.jobs.lock().unwrap();
                let Some(j) = jobs.get_mut(&job) else { return };
                j.running_units -= 1;
                if !j.state.is_terminal() {
                    j.state = JobState::Degraded;
                    j.error = Some(reason.clone());
                    // Best effort: under ENOSPC this save may itself
                    // fail; the in-memory state still degrades and the
                    // unpark path re-saves once writes succeed again.
                    let _ = j.save(inner.env(), &inner.config.state_dir);
                }
            }
            inner.parked.lock().unwrap().push(entry);
            inner.hub.emit(&JobEvent::Degraded { job: JobId(job), reason });
        }
    }
}

fn maybe_finalize_cancel(inner: &Arc<Inner>, job: u64) {
    let emit = {
        let mut jobs = inner.jobs.lock().unwrap();
        match jobs.get_mut(&job) {
            Some(j) if j.cancel_requested && !j.state.is_terminal() && j.running_units == 0 => {
                j.state = JobState::Canceled;
                let _ = j.save(inner.env(), &inner.config.state_dir);
                true
            }
            _ => false,
        }
    };
    if emit {
        inner.hub.emit(&JobEvent::Canceled { job: JobId(job) });
    }
}

/// All units done: render the final report (merging campaign shards),
/// then flip the job to its terminal state.
fn finalize_job_completion(inner: &Arc<Inner>, job: u64, spec: &JobSpec) {
    let result = render_final_report(inner, job, spec);
    let event = {
        let mut jobs = inner.jobs.lock().unwrap();
        let Some(j) = jobs.get_mut(&job) else { return };
        match &result {
            Ok(()) => {
                j.state = JobState::Completed;
                let _ = j.save(inner.env(), &inner.config.state_dir);
                JobEvent::Completed { job: JobId(job) }
            }
            Err(error) => {
                j.state = JobState::Failed;
                j.error = Some(error.clone());
                let _ = j.save(inner.env(), &inner.config.state_dir);
                JobEvent::Failed { job: JobId(job), error: error.clone() }
            }
        }
    };
    inner.hub.emit(&event);
}

fn render_final_report(inner: &Arc<Inner>, job: u64, spec: &JobSpec) -> Result<(), String> {
    match &spec.kind {
        JobKind::Campaign(_) => {
            let units = spec.units();
            let mut shards = Vec::with_capacity(units as usize);
            for unit in 0..units {
                let path = JobRec::unit_shard_path(&inner.config.state_dir, job, unit);
                shards.push(
                    ShardReport::load_with(inner.env().vfs.as_ref(), &path)
                        .map_err(|e| format!("shard {unit}: {e}"))?,
                );
            }
            let merged = merge_shards(&shards).map_err(|e| e.to_string())?;
            write_report(
                inner.env(),
                &JobRec::report_path(&inner.config.state_dir, job),
                &render_report(&merged),
            )
            .map_err(|e| e.to_string())
        }
        // Lifetime/inject units rendered their report on completion.
        JobKind::Lifetime(_) | JobKind::Inject(_) => {
            let path = JobRec::report_path(&inner.config.state_dir, job);
            if inner.env().vfs.exists(&path) {
                Ok(())
            } else {
                Err("unit completed without rendering its report".into())
            }
        }
    }
}
