//! Campaign-as-a-service: the `r2d3 serve` job daemon.
//!
//! A [`Daemon`] listens on a unix or TCP socket ([`Listen`]), speaks the
//! JSON-lines protocol from [`crate::api::wire`], and schedules accepted
//! jobs onto a pool of worker threads. The serving contract
//! (DESIGN.md §5.0):
//!
//! * **Served == batch, byte-compared.** A job's rendered report is
//!   byte-identical to what the batch CLI command with the same spec
//!   writes: single-unit jobs run through
//!   [`crate::api::execute_local`]'s machinery, sharded campaigns
//!   run one [`crate::campaign::ShardSpec`] partition per unit and are
//!   recombined with [`crate::campaign::merge_shards`], whose output is
//!   provably the unsharded report.
//! * **Killed workers resume, not restart.** Every unit checkpoints
//!   its durable state ([`crate::campaign::CampaignState`] /
//!   [`crate::lifetime::LifetimeRunState`]) into the job's state
//!   directory through the `R2D3SNAP` container; a unit re-dispatched
//!   after a worker loss — or a whole daemon restart over the same
//!   `--state-dir` — picks up from the last checkpoint, and the final
//!   report is still byte-identical (the durable runners' contract).
//! * **Malformed input never kills the daemon.** Every request line is
//!   decoded by the typed validators; a bad line gets a typed error
//!   response and the connection stays usable.
//! * **Fairness is deterministic.** Units are dispatched by a
//!   quota-proportional deficit scheduler ([`sched`]) with documented,
//!   worker-count-independent tie-breaking.
//!
//! Live job events stream to `watch` subscribers with per-subscriber
//! [`crate::telemetry::OverflowPolicy`] (Block = lossless backpressure,
//! Drop = lossy non-stalling), mirroring the telemetry stream sink's
//! overflow semantics.

mod client;
mod daemon;
mod events;
mod sched;
pub(crate) mod store;

pub use client::Client;
pub use daemon::Daemon;

use crate::api::ApiError;
use crate::snapshot::SnapshotError;
use crate::EngineError;
use std::fmt;
use std::path::PathBuf;

/// Where a daemon listens (and a client connects).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Listen {
    /// Unix-domain socket at this path.
    Unix(PathBuf),
    /// TCP socket at this `host:port`.
    Tcp(String),
}

impl Listen {
    /// Parses an address argument: `unix:PATH` and `tcp:HOST:PORT` are
    /// explicit; a bare token containing `:` is TCP, anything else is a
    /// unix socket path.
    ///
    /// # Errors
    ///
    /// [`ServeError::Addr`] on an empty address.
    pub fn parse(text: &str) -> Result<Listen, ServeError> {
        let listen = if let Some(path) = text.strip_prefix("unix:") {
            Listen::Unix(PathBuf::from(path))
        } else if let Some(addr) = text.strip_prefix("tcp:") {
            Listen::Tcp(addr.to_string())
        } else if text.contains(':') {
            Listen::Tcp(text.to_string())
        } else {
            Listen::Unix(PathBuf::from(text))
        };
        let empty = match &listen {
            Listen::Unix(p) => p.as_os_str().is_empty(),
            Listen::Tcp(a) => a.is_empty(),
        };
        if empty {
            return Err(ServeError::Addr(format!("empty listen address: `{text}`")));
        }
        Ok(listen)
    }
}

impl fmt::Display for Listen {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Listen::Unix(p) => write!(f, "unix:{}", p.display()),
            Listen::Tcp(a) => write!(f, "tcp:{a}"),
        }
    }
}

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Directory holding per-job state: manifests, unit checkpoints,
    /// shard reports, rendered reports and event logs. Restarting a
    /// daemon over the same directory resumes its unfinished jobs.
    pub state_dir: PathBuf,
    /// Worker threads executing job units.
    pub workers: usize,
    /// Scheduling quota for clients not named in `quotas`.
    pub default_quota: u64,
    /// Per-client scheduling quotas (`(client, weight)`); a client with
    /// quota 3 is dispatched three units for every one of a quota-1
    /// client under contention.
    pub quotas: Vec<(String, u64)>,
    /// Observer steps (scenarios / month-steps) between unit
    /// checkpoints; 1 = checkpoint after every step.
    pub snapshot_every: u64,
    /// When set, a worker voluntarily yields a unit back to the queue
    /// after this many observer steps (checkpointing first and emitting
    /// a `worker_lost` event). Exercises the kill/resume path
    /// deterministically; `None` disables leasing.
    pub lease_steps: Option<u64>,
    /// Start with dispatch paused; no unit runs until
    /// [`Daemon::release`]. Lets tests (and batch pre-loading) submit a
    /// whole job set before the first dispatch decision.
    pub paused: bool,
    /// I/O environment every durable byte goes through: filesystem seam,
    /// transient-failure retry policy, and the clock backoff sleeps on.
    /// Defaults to the real filesystem; chaos tests inject a
    /// [`crate::chaos::FaultyFs`] and a virtual clock here.
    pub io: crate::chaos::IoEnv,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            state_dir: PathBuf::from("r2d3-serve"),
            workers: 2,
            default_quota: 1,
            quotas: Vec::new(),
            snapshot_every: 1,
            lease_steps: None,
            paused: false,
            io: crate::chaos::IoEnv::default(),
        }
    }
}

/// Errors raised by the serve daemon and client.
#[derive(Debug)]
#[non_exhaustive]
pub enum ServeError {
    /// Socket or state-directory I/O failure.
    Io(std::io::Error),
    /// A durable artifact could not be written or restored.
    Snapshot(SnapshotError),
    /// A wire document was rejected.
    Protocol(ApiError),
    /// Job execution failed in the engine.
    Engine(EngineError),
    /// The listen/connect address is unusable.
    Addr(String),
    /// The daemon rejected a request (client side).
    Remote {
        /// Stable error class token.
        code: String,
        /// Human-readable description.
        message: String,
    },
    /// The peer closed the connection mid-conversation.
    Closed,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "i/o error: {e}"),
            ServeError::Snapshot(e) => write!(f, "{e}"),
            ServeError::Protocol(e) => write!(f, "protocol error: {e}"),
            ServeError::Engine(e) => write!(f, "{e}"),
            ServeError::Addr(msg) => write!(f, "{msg}"),
            ServeError::Remote { code, message } => write!(f, "daemon error ({code}): {message}"),
            ServeError::Closed => write!(f, "connection closed by peer"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Io(e) => Some(e),
            ServeError::Snapshot(e) => Some(e),
            ServeError::Protocol(e) => Some(e),
            ServeError::Engine(e) => Some(e),
            ServeError::Addr(_) | ServeError::Remote { .. } | ServeError::Closed => None,
        }
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<SnapshotError> for ServeError {
    fn from(e: SnapshotError) -> Self {
        ServeError::Snapshot(e)
    }
}

impl From<ApiError> for ServeError {
    fn from(e: ApiError) -> Self {
        ServeError::Protocol(e)
    }
}

impl From<EngineError> for ServeError {
    fn from(e: EngineError) -> Self {
        ServeError::Engine(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn listen_addresses_parse() {
        assert_eq!(Listen::parse("unix:/tmp/a.sock").unwrap(), Listen::Unix("/tmp/a.sock".into()));
        assert_eq!(
            Listen::parse("tcp:127.0.0.1:7373").unwrap(),
            Listen::Tcp("127.0.0.1:7373".into())
        );
        assert_eq!(Listen::parse("127.0.0.1:7373").unwrap(), Listen::Tcp("127.0.0.1:7373".into()));
        assert_eq!(Listen::parse("/tmp/a.sock").unwrap(), Listen::Unix("/tmp/a.sock".into()));
        assert!(Listen::parse("unix:").is_err());
    }
}
