//! Per-job live event streams with durable history.
//!
//! Every job owns one channel: events append to an in-memory history,
//! to the job's `events.jsonl` log (one wire line each, so history
//! survives a daemon restart), and fan out to live subscribers.
//! Subscription replays the full history first — atomically with
//! registration, so no event can fall in the gap — then delivers live
//! events per the subscriber's [`OverflowPolicy`]:
//!
//! * [`OverflowPolicy::Block`] — the emitter blocks until the
//!   subscriber drains (lossless backpressure; a stalled watcher slows
//!   its job's event emission, never the engine math).
//! * [`OverflowPolicy::Drop`] — events beyond the buffer are shed for
//!   that subscriber only (the history and log remain complete).
//!
//! A terminal event closes the channel: senders drop, subscribers see
//! end-of-stream after draining, and later subscribers get history
//! only. Mirrors the telemetry stream sink's overflow semantics.

use crate::api::wire::JobEvent;
use crate::telemetry::OverflowPolicy;
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::Path;
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};

/// Buffered events per live subscriber before its policy applies.
const SUBSCRIBER_CAPACITY: usize = 256;

struct Channel {
    history: Vec<JobEvent>,
    subs: Vec<(SyncSender<JobEvent>, OverflowPolicy)>,
    log: Option<File>,
    closed: bool,
}

/// All job channels of one daemon.
pub(crate) struct EventHub {
    chans: Mutex<HashMap<u64, Arc<Mutex<Channel>>>>,
}

impl EventHub {
    pub(crate) fn new() -> EventHub {
        EventHub { chans: Mutex::new(HashMap::new()) }
    }

    fn chan(&self, job: u64) -> Arc<Mutex<Channel>> {
        Arc::clone(self.chans.lock().unwrap().entry(job).or_insert_with(|| {
            Arc::new(Mutex::new(Channel {
                history: Vec::new(),
                subs: Vec::new(),
                log: None,
                closed: false,
            }))
        }))
    }

    /// Opens (or reopens) a job's channel with its durable log file.
    pub(crate) fn open(&self, job: u64, log_path: &Path) -> std::io::Result<()> {
        let chan = self.chan(job);
        let mut c = chan.lock().unwrap();
        c.log = Some(OpenOptions::new().create(true).append(true).open(log_path)?);
        Ok(())
    }

    /// Restores a job's history from its event log (daemon restart).
    /// Terminal history closes the channel immediately.
    pub(crate) fn preload(&self, job: u64, log_path: &Path) -> std::io::Result<()> {
        let mut history = Vec::new();
        if log_path.exists() {
            for line in std::fs::read_to_string(log_path)?.lines() {
                if line.trim().is_empty() {
                    continue;
                }
                // A torn tail line (daemon killed mid-write) is not an
                // error; everything before it is intact.
                if let Ok(ev) = JobEvent::decode(line) {
                    history.push(ev);
                }
            }
        }
        let closed = history.last().is_some_and(JobEvent::is_terminal);
        let chan = self.chan(job);
        let mut c = chan.lock().unwrap();
        c.history = history;
        c.closed = closed;
        c.log = Some(OpenOptions::new().create(true).append(true).open(log_path)?);
        Ok(())
    }

    /// Emits one event: history + log + live fanout. Terminal events
    /// close the channel.
    pub(crate) fn emit(&self, event: &JobEvent) {
        let chan = self.chan(event.job().0);
        let mut c = chan.lock().unwrap();
        if c.closed {
            return;
        }
        c.history.push(event.clone());
        if let Some(log) = &mut c.log {
            let _ = writeln!(log, "{}", event.encode());
            let _ = log.flush();
        }
        let mut i = 0;
        while i < c.subs.len() {
            let (tx, policy) = &c.subs[i];
            let gone = match policy {
                OverflowPolicy::Block => tx.send(event.clone()).is_err(),
                OverflowPolicy::Drop => {
                    matches!(tx.try_send(event.clone()), Err(TrySendError::Disconnected(_)))
                }
            };
            if gone {
                c.subs.swap_remove(i);
            } else {
                i += 1;
            }
        }
        if event.is_terminal() {
            c.closed = true;
            c.subs.clear();
        }
    }

    /// Subscribes to a job: returns the history so far and, when the
    /// stream is still open, a receiver for everything after it.
    /// History copy and registration happen under one lock, so the
    /// subscriber sees every event exactly once.
    pub(crate) fn subscribe(
        &self,
        job: u64,
        policy: OverflowPolicy,
    ) -> (Vec<JobEvent>, Option<Receiver<JobEvent>>) {
        let chan = self.chan(job);
        let mut c = chan.lock().unwrap();
        let history = c.history.clone();
        if c.closed {
            return (history, None);
        }
        let (tx, rx) = sync_channel(SUBSCRIBER_CAPACITY);
        c.subs.push((tx, policy));
        (history, Some(rx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::JobId;
    use std::path::PathBuf;

    fn tmp_log(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("r2d3-events-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join(format!("{}-{name}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    fn ev(done: u64) -> JobEvent {
        JobEvent::Progress { job: JobId(1), unit: 0, done, total: 10 }
    }

    #[test]
    fn history_replays_and_terminal_closes() {
        let hub = EventHub::new();
        let log = tmp_log("replay");
        hub.open(1, &log).unwrap();
        hub.emit(&ev(1));
        hub.emit(&ev(2));

        let (history, rx) = hub.subscribe(1, OverflowPolicy::Block);
        assert_eq!(history, vec![ev(1), ev(2)]);
        let rx = rx.expect("stream still open");

        hub.emit(&ev(3));
        hub.emit(&JobEvent::Completed { job: JobId(1) });
        assert_eq!(rx.recv().unwrap(), ev(3));
        assert!(rx.recv().unwrap().is_terminal());
        assert!(rx.recv().is_err(), "channel must close after the terminal event");

        // Late subscriber: full history, no live stream.
        let (history, rx) = hub.subscribe(1, OverflowPolicy::Block);
        assert_eq!(history.len(), 4);
        assert!(rx.is_none());

        // Restart path: preload reconstructs the same closed channel.
        let hub2 = EventHub::new();
        hub2.preload(1, &log).unwrap();
        let (history, rx) = hub2.subscribe(1, OverflowPolicy::Block);
        assert_eq!(history.len(), 4);
        assert!(rx.is_none());
        let _ = std::fs::remove_file(&log);
    }

    #[test]
    fn drop_policy_sheds_only_for_the_slow_subscriber() {
        let hub = EventHub::new();
        let log = tmp_log("drop");
        hub.open(2, &log).unwrap();
        let (_, rx) = hub.subscribe(2, OverflowPolicy::Drop);
        let rx = rx.unwrap();
        // Overfill the subscriber buffer without draining.
        for i in 0..(SUBSCRIBER_CAPACITY as u64 + 50) {
            hub.emit(&JobEvent::Progress { job: JobId(2), unit: 0, done: i, total: 1000 });
        }
        let delivered = rx.try_iter().count();
        assert_eq!(delivered, SUBSCRIBER_CAPACITY, "excess events are shed under Drop");
        // History kept everything regardless.
        let (history, _) = hub.subscribe(2, OverflowPolicy::Drop);
        assert_eq!(history.len(), SUBSCRIBER_CAPACITY + 50);
        let _ = std::fs::remove_file(&log);
    }
}
