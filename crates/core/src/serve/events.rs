//! Per-job live event streams with durable history.
//!
//! Every job owns one channel: events append to an in-memory history,
//! to the job's `events.jsonl` log (one wire line each, so history
//! survives a daemon restart), and fan out to live subscribers.
//! Subscription replays the full history first — atomically with
//! registration, so no event can fall in the gap — then delivers live
//! events per the subscriber's [`OverflowPolicy`]:
//!
//! * [`OverflowPolicy::Block`] — the emitter blocks until the
//!   subscriber drains (lossless backpressure; a stalled watcher slows
//!   its job's event emission, never the engine math).
//! * [`OverflowPolicy::Drop`] — events beyond the buffer are shed for
//!   that subscriber only (the history and log remain complete).
//!
//! A terminal event closes the channel: senders drop, subscribers see
//! end-of-stream after draining, and later subscribers get history
//! only. Mirrors the telemetry stream sink's overflow semantics.
//!
//! Log I/O goes through the daemon's [`IoEnv`]: a transient write fault
//! gets the env's bounded retry; a write that still fails is *counted*,
//! never blocks the scheduler, and the accounting reconciles exactly —
//! `log_recorded == log_written + log_dropped` per job
//! ([`EventHub::log_stats`]), the same contract the telemetry
//! [`StreamStats`](crate::telemetry::StreamStats) keeps.

use crate::api::wire::JobEvent;
use crate::chaos::{IoEnv, VfsFile};
use crate::telemetry::OverflowPolicy;
use std::collections::HashMap;
use std::io::Write as _;
use std::path::Path;
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};

/// Buffered events per live subscriber before its policy applies.
const SUBSCRIBER_CAPACITY: usize = 256;

struct Channel {
    history: Vec<JobEvent>,
    subs: Vec<(SyncSender<JobEvent>, OverflowPolicy)>,
    log: Option<Box<dyn VfsFile>>,
    closed: bool,
    /// Events offered to the durable log.
    log_recorded: u64,
    /// Events whose line landed in the log (possibly after retries).
    log_written: u64,
    /// Events whose line could not be written (fault persisted through
    /// the retry budget). `log_recorded == log_written + log_dropped`.
    log_dropped: u64,
}

/// All job channels of one daemon.
pub(crate) struct EventHub {
    chans: Mutex<HashMap<u64, Arc<Mutex<Channel>>>>,
    env: IoEnv,
}

impl EventHub {
    pub(crate) fn new(env: IoEnv) -> EventHub {
        EventHub { chans: Mutex::new(HashMap::new()), env }
    }

    fn chan(&self, job: u64) -> Arc<Mutex<Channel>> {
        Arc::clone(self.chans.lock().unwrap().entry(job).or_insert_with(|| {
            Arc::new(Mutex::new(Channel {
                history: Vec::new(),
                subs: Vec::new(),
                log: None,
                closed: false,
                log_recorded: 0,
                log_written: 0,
                log_dropped: 0,
            }))
        }))
    }

    /// Opens (or reopens) a job's channel with its durable log file.
    pub(crate) fn open(&self, job: u64, log_path: &Path) -> std::io::Result<()> {
        let chan = self.chan(job);
        let mut c = chan.lock().unwrap();
        c.log = Some(self.env.vfs.open_append(log_path)?);
        Ok(())
    }

    /// Restores a job's history from its event log (daemon restart).
    /// Terminal history closes the channel immediately.
    pub(crate) fn preload(&self, job: u64, log_path: &Path) -> std::io::Result<()> {
        let mut history = Vec::new();
        if self.env.vfs.exists(log_path) {
            let raw = self.env.vfs.read(log_path)?;
            let text = String::from_utf8_lossy(&raw);
            for line in text.lines() {
                if line.trim().is_empty() {
                    continue;
                }
                // A torn tail line (daemon killed mid-write) is not an
                // error; everything before it is intact.
                if let Ok(ev) = JobEvent::decode(line) {
                    history.push(ev);
                }
            }
        }
        let closed = history.last().is_some_and(JobEvent::is_terminal);
        let chan = self.chan(job);
        let mut c = chan.lock().unwrap();
        c.history = history;
        c.closed = closed;
        c.log = Some(self.env.vfs.open_append(log_path)?);
        Ok(())
    }

    /// Emits one event: history + log + live fanout. Terminal events
    /// close the channel. A log write that fails through the retry
    /// budget is dropped and counted — emission never propagates the
    /// fault into the scheduler.
    pub(crate) fn emit(&self, event: &JobEvent) {
        let chan = self.chan(event.job().0);
        let mut c = chan.lock().unwrap();
        if c.closed {
            return;
        }
        c.history.push(event.clone());
        if c.log.is_some() {
            c.log_recorded += 1;
            let line = format!("{}\n", event.encode());
            let log = c.log.as_mut().expect("checked above");
            let ok = self
                .env
                .retry
                .run(self.env.clock.as_ref(), || {
                    log.write_all(line.as_bytes())?;
                    log.flush()
                })
                .is_ok();
            if ok {
                c.log_written += 1;
            } else {
                c.log_dropped += 1;
            }
        }
        let mut i = 0;
        while i < c.subs.len() {
            let (tx, policy) = &c.subs[i];
            let gone = match policy {
                OverflowPolicy::Block => tx.send(event.clone()).is_err(),
                OverflowPolicy::Drop => {
                    matches!(tx.try_send(event.clone()), Err(TrySendError::Disconnected(_)))
                }
            };
            if gone {
                c.subs.swap_remove(i);
            } else {
                i += 1;
            }
        }
        if event.is_terminal() {
            c.closed = true;
            c.subs.clear();
        }
    }

    /// Durable-log accounting for a job:
    /// `(recorded, written, dropped)`, reconciling exactly as
    /// `recorded == written + dropped`. Exercised by the chaos tests;
    /// production code observes the invariant, not the counters.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn log_stats(&self, job: u64) -> (u64, u64, u64) {
        let chan = self.chan(job);
        let c = chan.lock().unwrap();
        (c.log_recorded, c.log_written, c.log_dropped)
    }

    /// Subscribes to a job: returns the history so far and, when the
    /// stream is still open, a receiver for everything after it.
    /// History copy and registration happen under one lock, so the
    /// subscriber sees every event exactly once.
    pub(crate) fn subscribe(
        &self,
        job: u64,
        policy: OverflowPolicy,
    ) -> (Vec<JobEvent>, Option<Receiver<JobEvent>>) {
        let chan = self.chan(job);
        let mut c = chan.lock().unwrap();
        let history = c.history.clone();
        if c.closed {
            return (history, None);
        }
        let (tx, rx) = sync_channel(SUBSCRIBER_CAPACITY);
        c.subs.push((tx, policy));
        (history, Some(rx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::JobId;
    use crate::chaos::{FaultPlan, FaultyFs, Vfs as _};
    use std::path::PathBuf;
    use std::sync::Arc;

    fn tmp_log(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("r2d3-events-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join(format!("{}-{name}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    fn ev(done: u64) -> JobEvent {
        JobEvent::Progress { job: JobId(1), unit: 0, done, total: 10 }
    }

    #[test]
    fn history_replays_and_terminal_closes() {
        let hub = EventHub::new(IoEnv::default());
        let log = tmp_log("replay");
        hub.open(1, &log).unwrap();
        hub.emit(&ev(1));
        hub.emit(&ev(2));

        let (history, rx) = hub.subscribe(1, OverflowPolicy::Block);
        assert_eq!(history, vec![ev(1), ev(2)]);
        let rx = rx.expect("stream still open");

        hub.emit(&ev(3));
        hub.emit(&JobEvent::Completed { job: JobId(1) });
        assert_eq!(rx.recv().unwrap(), ev(3));
        assert!(rx.recv().unwrap().is_terminal());
        assert!(rx.recv().is_err(), "channel must close after the terminal event");

        // Late subscriber: full history, no live stream.
        let (history, rx) = hub.subscribe(1, OverflowPolicy::Block);
        assert_eq!(history.len(), 4);
        assert!(rx.is_none());

        // Everything reconciled to the log.
        assert_eq!(hub.log_stats(1), (4, 4, 0));

        // Restart path: preload reconstructs the same closed channel.
        let hub2 = EventHub::new(IoEnv::default());
        hub2.preload(1, &log).unwrap();
        let (history, rx) = hub2.subscribe(1, OverflowPolicy::Block);
        assert_eq!(history.len(), 4);
        assert!(rx.is_none());
        let _ = std::fs::remove_file(&log);
    }

    #[test]
    fn drop_policy_sheds_only_for_the_slow_subscriber() {
        let hub = EventHub::new(IoEnv::default());
        let log = tmp_log("drop");
        hub.open(2, &log).unwrap();
        let (_, rx) = hub.subscribe(2, OverflowPolicy::Drop);
        let rx = rx.unwrap();
        // Overfill the subscriber buffer without draining.
        for i in 0..(SUBSCRIBER_CAPACITY as u64 + 50) {
            hub.emit(&JobEvent::Progress { job: JobId(2), unit: 0, done: i, total: 1000 });
        }
        let delivered = rx.try_iter().count();
        assert_eq!(delivered, SUBSCRIBER_CAPACITY, "excess events are shed under Drop");
        // History kept everything regardless.
        let (history, _) = hub.subscribe(2, OverflowPolicy::Drop);
        assert_eq!(history.len(), SUBSCRIBER_CAPACITY + 50);
        let _ = std::fs::remove_file(&log);
    }

    /// Satellite: a faulty `events.jsonl` writer preserves exact
    /// `recorded == written + dropped`, emission never errors out, and
    /// a Drop-policy subscriber (the scheduler side) never blocks.
    #[test]
    fn faulty_log_writer_keeps_exact_accounting() {
        let fs = FaultyFs::new(FaultPlan {
            seed: 0xE7E7,
            torn_write_in: 3,
            fsync_fail_in: 4,
            ..FaultPlan::default()
        });
        fs.create_dir_all(Path::new("/logs")).unwrap();
        let env = IoEnv {
            // One attempt: faults count as drops instead of being
            // retried away, so both sides of the ledger get exercised.
            retry: crate::chaos::RetryPolicy::disabled(),
            ..IoEnv::with_vfs(Arc::new(fs.clone()))
        };
        let hub = EventHub::new(env);
        hub.open(9, Path::new("/logs/events.jsonl")).unwrap();
        let (_, rx) = hub.subscribe(9, OverflowPolicy::Drop);
        let _rx = rx.unwrap();

        let total = 200u64;
        for i in 0..total {
            hub.emit(&JobEvent::Progress { job: JobId(9), unit: 0, done: i, total });
        }
        let (recorded, written, dropped) = hub.log_stats(9);
        assert_eq!(recorded, total, "every emit is offered to the log");
        assert_eq!(recorded, written + dropped, "ledger must reconcile exactly");
        assert!(dropped > 0, "the fault plan must actually drop some lines");
        assert!(written > 0, "the fault plan must let some lines through");

        // History is complete regardless of log faults.
        let (history, _) = hub.subscribe(9, OverflowPolicy::Drop);
        assert_eq!(history.len() as u64, total);

        // With the default retry budget the same fault plan drops far
        // fewer lines: most transients are retried away (a line only
        // drops if every attempt in the budget faults), and the ledger
        // still reconciles exactly.
        let fs2 = FaultyFs::new(FaultPlan {
            seed: 0xE7E7,
            torn_write_in: 3,
            fsync_fail_in: 4,
            ..FaultPlan::default()
        });
        fs2.create_dir_all(Path::new("/logs")).unwrap();
        let hub2 = EventHub::new(IoEnv::with_vfs(Arc::new(fs2)));
        hub2.open(9, Path::new("/logs/events.jsonl")).unwrap();
        for i in 0..total {
            hub2.emit(&JobEvent::Progress { job: JobId(9), unit: 0, done: i, total });
        }
        let (recorded2, written2, dropped2) = hub2.log_stats(9);
        assert_eq!(recorded2, total);
        assert_eq!(recorded2, written2 + dropped2, "ledger reconciles under retry too");
        assert!(dropped2 < dropped, "retries must strictly reduce drops ({dropped2} vs {dropped})");
    }
}
