//! Durable job records: one `job-<id>/` directory per job under the
//! daemon's state directory.
//!
//! ```text
//! state_dir/job-0000002a/
//!   manifest.r2d3s        R2D3SNAP "job" container: spec + lifecycle
//!   unit-<k>.state.r2d3s  unit checkpoint (campaign/lifetime state)
//!   unit-<k>.shard.r2d3s  completed campaign shard report
//!   report.json           rendered report (written once, on completion)
//!   events.jsonl          append-only event log (one wire line each)
//! ```
//!
//! The manifest rides the same `R2D3SNAP` container as every other
//! durable artifact (atomic replace, digest-verified, versioned with a
//! migration window), under the v2-introduced kind `"job"`.

use crate::api::wire::{decode_spec_value, encode_spec, JobState, JobStatus};
use crate::api::{JobId, JobSpec, PROTO_VERSION};
use crate::chaos::{IoEnv, Vfs};
use crate::jsonio;
use crate::snapshot::{self, SnapshotError};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

pub(crate) const JOB_KIND: &str = "job";

/// The daemon's in-memory (and persisted) record of one job.
#[derive(Debug, Clone)]
pub(crate) struct JobRec {
    pub id: u64,
    pub client: String,
    /// Admission order; scheduler tie-break and recovery-stable.
    pub seq: u64,
    pub spec: JobSpec,
    pub state: JobState,
    pub error: Option<String>,
    pub unit_done: Vec<bool>,
    /// Per-unit completed observer steps (progress numerators).
    pub unit_progress: Vec<u64>,
    /// Units currently on a worker. Not persisted: a restarted daemon
    /// has no workers running yet.
    pub running_units: u64,
    /// Cancellation latch. Not persisted: queued units of a canceled
    /// job are removed before the terminal state is saved.
    pub cancel_requested: bool,
}

impl JobRec {
    pub(crate) fn new(id: u64, seq: u64, client: String, spec: JobSpec) -> JobRec {
        let units = spec.units() as usize;
        JobRec {
            id,
            client,
            seq,
            spec,
            state: JobState::Queued,
            error: None,
            unit_done: vec![false; units],
            unit_progress: vec![0; units],
            running_units: 0,
            cancel_requested: false,
        }
    }

    pub(crate) fn units(&self) -> u64 {
        self.unit_done.len() as u64
    }

    pub(crate) fn all_done(&self) -> bool {
        self.unit_done.iter().all(|&d| d)
    }

    pub(crate) fn progress_done(&self) -> u64 {
        self.unit_progress.iter().sum()
    }

    pub(crate) fn status(&self) -> JobStatus {
        JobStatus {
            id: JobId(self.id),
            client: self.client.clone(),
            kind: self.spec.kind_name(),
            priority: self.spec.priority,
            state: self.state,
            error: self.error.clone(),
            units: self.units(),
            units_done: self.unit_done.iter().filter(|&&d| d).count() as u64,
            progress_done: self.progress_done(),
            progress_total: self.spec.progress_total(),
        }
    }

    pub(crate) fn dir(state_dir: &Path, id: u64) -> PathBuf {
        state_dir.join(format!("job-{id:08x}"))
    }

    pub(crate) fn manifest_path(state_dir: &Path, id: u64) -> PathBuf {
        Self::dir(state_dir, id).join("manifest.r2d3s")
    }

    pub(crate) fn unit_state_path(state_dir: &Path, id: u64, unit: u64) -> PathBuf {
        Self::dir(state_dir, id).join(format!("unit-{unit}.state.r2d3s"))
    }

    pub(crate) fn unit_shard_path(state_dir: &Path, id: u64, unit: u64) -> PathBuf {
        Self::dir(state_dir, id).join(format!("unit-{unit}.shard.r2d3s"))
    }

    pub(crate) fn report_path(state_dir: &Path, id: u64) -> PathBuf {
        Self::dir(state_dir, id).join("report.json")
    }

    pub(crate) fn events_path(state_dir: &Path, id: u64) -> PathBuf {
        Self::dir(state_dir, id).join("events.jsonl")
    }

    /// Atomically persists the manifest through the environment's
    /// [`Vfs`], retrying transient injected faults per its policy.
    pub(crate) fn save(&self, env: &IoEnv, state_dir: &Path) -> Result<(), SnapshotError> {
        let mut body = format!(
            "{{\"proto_version\":{PROTO_VERSION},\"id\":{},\"client\":\"{}\",\"seq\":{},\"state\":\"{}\",\"error\":",
            jsonio::hex_u64(self.id),
            crate::api::wire::escape(&self.client),
            self.seq,
            self.state.token(),
        );
        match &self.error {
            Some(e) => {
                let _ = write!(body, "\"{}\"", crate::api::wire::escape(e));
            }
            None => body.push_str("null"),
        }
        body.push_str(",\"unit_done\":[");
        for (i, d) in self.unit_done.iter().enumerate() {
            if i > 0 {
                body.push(',');
            }
            let _ = write!(body, "{d}");
        }
        body.push_str("],\"unit_progress\":[");
        for (i, p) in self.unit_progress.iter().enumerate() {
            if i > 0 {
                body.push(',');
            }
            let _ = write!(body, "{p}");
        }
        let _ = write!(body, "],\"spec\":{}}}", encode_spec(&self.spec));
        body.push('\n');
        // Transient write/fsync/rename faults get the env's bounded
        // retry; the atomic write syncs the job directory so the
        // manifest entry itself is crash-durable (satellite: the
        // unsynced-dir bug applies to manifests too).
        env.retry_snapshot(|| {
            snapshot::write_atomic_with(
                env.vfs.as_ref(),
                &Self::manifest_path(state_dir, self.id),
                JOB_KIND,
                body.as_bytes(),
            )
        })
    }

    /// Loads and validates a manifest.
    pub(crate) fn load(vfs: &dyn Vfs, path: &Path) -> Result<JobRec, SnapshotError> {
        let body = snapshot::read_verified_with(vfs, path, JOB_KIND)?;
        let v = snapshot::parse_body(&body)?;
        let bad = |msg: &str| SnapshotError::Malformed(msg.into());
        let id = snapshot::field(&v, "id")?.as_hex_u64().ok_or_else(|| bad("bad \"id\""))?;
        let spec = decode_spec_value(snapshot::field(&v, "spec")?)
            .map_err(|e| SnapshotError::Malformed(format!("job spec: {e}")))?;
        let unit_done: Vec<bool> = snapshot::field(&v, "unit_done")?
            .as_arr()
            .ok_or_else(|| bad("bad \"unit_done\""))?
            .iter()
            .map(|b| b.as_bool().ok_or_else(|| bad("bad \"unit_done\" entry")))
            .collect::<Result<_, _>>()?;
        let unit_progress: Vec<u64> = snapshot::field(&v, "unit_progress")?
            .as_arr()
            .ok_or_else(|| bad("bad \"unit_progress\""))?
            .iter()
            .map(|p| p.as_u64().ok_or_else(|| bad("bad \"unit_progress\" entry")))
            .collect::<Result<_, _>>()?;
        if unit_done.len() as u64 != spec.units() || unit_progress.len() != unit_done.len() {
            return Err(bad("unit arrays do not match the spec's unit count"));
        }
        let state = JobState::parse(
            snapshot::field(&v, "state")?.as_str().ok_or_else(|| bad("bad \"state\""))?,
        )
        .map_err(|e| SnapshotError::Malformed(format!("job state: {e}")))?;
        Ok(JobRec {
            id,
            client: snapshot::field(&v, "client")?
                .as_str()
                .ok_or_else(|| bad("bad \"client\""))?
                .to_string(),
            seq: snapshot::field(&v, "seq")?.as_u64().ok_or_else(|| bad("bad \"seq\""))?,
            spec,
            state,
            error: match v.get("error") {
                Some(jsonio::Value::Null) | None => None,
                Some(val) => Some(val.as_str().ok_or_else(|| bad("bad \"error\""))?.to_string()),
            },
            unit_done,
            unit_progress,
            running_units: 0,
            cancel_requested: false,
        })
    }
}

/// Scans a state directory for persisted jobs, skipping (and reporting
/// through the returned list's absence) nothing: a manifest that fails
/// to load is a hard error — a daemon must not silently forget jobs.
pub(crate) fn scan_jobs(vfs: &dyn Vfs, state_dir: &Path) -> Result<Vec<JobRec>, SnapshotError> {
    let mut jobs = Vec::new();
    if !vfs.exists(state_dir) {
        return Ok(jobs);
    }
    let mut dirs: Vec<PathBuf> = vfs
        .read_dir(state_dir)?
        .into_iter()
        .filter(|p| {
            vfs.is_dir(p)
                && p.file_name().and_then(|n| n.to_str()).is_some_and(|n| n.starts_with("job-"))
        })
        .collect();
    dirs.sort();
    for dir in dirs {
        let manifest = dir.join("manifest.r2d3s");
        if vfs.exists(&manifest) {
            jobs.push(JobRec::load(vfs, &manifest)?);
        }
    }
    Ok(jobs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::SubstrateKind;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("r2d3-store-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn manifests_round_trip_and_scan() {
        let dir = tmp_dir("roundtrip");
        let spec = JobSpec::campaign()
            .scenarios(12)
            .shards(3)
            .substrates(vec![SubstrateKind::Behavioral])
            .build()
            .unwrap();
        let mut rec = JobRec::new(0x2a, 7, "alice".into(), spec);
        rec.state = JobState::Running;
        rec.unit_done[1] = true;
        rec.unit_progress = vec![2, 4, 0];
        rec.error = Some("not really".into());
        let env = IoEnv::default();
        std::fs::create_dir_all(JobRec::dir(&dir, rec.id)).unwrap();
        rec.save(&env, &dir).unwrap();

        let jobs = scan_jobs(env.vfs.as_ref(), &dir).unwrap();
        assert_eq!(jobs.len(), 1);
        let back = &jobs[0];
        assert_eq!(back.id, rec.id);
        assert_eq!(back.client, rec.client);
        assert_eq!(back.seq, rec.seq);
        assert_eq!(back.spec, rec.spec);
        assert_eq!(back.state, rec.state);
        assert_eq!(back.error, rec.error);
        assert_eq!(back.unit_done, rec.unit_done);
        assert_eq!(back.unit_progress, rec.unit_progress);
        assert_eq!(back.status().progress_done, 6);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn wrong_kind_is_rejected() {
        let dir = tmp_dir("kind");
        let spec = JobSpec::lifetime().months(1).build().unwrap();
        let rec = JobRec::new(1, 1, "c".into(), spec);
        std::fs::create_dir_all(JobRec::dir(&dir, rec.id)).unwrap();
        rec.save(&IoEnv::default(), &dir).unwrap();
        let path = JobRec::manifest_path(&dir, rec.id);
        assert!(matches!(
            crate::campaign::CampaignState::load(&path),
            Err(SnapshotError::Kind { .. })
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
