#![warn(missing_docs)]

//! # R2D3 — Reliability by Reconfiguring 3D systems
//!
//! This crate is the paper's primary contribution: a holistic, aging-aware
//! reliability engine for vertically-stacked parallel processors that
//! concurrently provides the four features of reliability at runtime:
//!
//! 1. **Detection** ([`detect`]) — epoch-based concurrent re-execution of
//!    DUT stages on *leftover* stages, compared by inter-stage checkers.
//! 2. **Diagnosis** ([`engine`]) — single-replay TMR that distinguishes
//!    transient from permanent faults and localizes the faulty stage.
//! 3. **Repair** ([`repair`]) — crossbar reconfiguration that re-forms
//!    logical pipelines from the remaining healthy stages.
//! 4. **Prevention** ([`policy`], [`lifetime`]) — the R2D3-Lite
//!    (round-robin) and R2D3-Pro (activity-factor, Eq. 1–2) scheduling
//!    policies that balance NBTI wearout across the stack.
//!
//! The cycle-level engine ([`engine::R2d3Engine`]) drives a
//! [`r2d3_pipeline_sim::System3d`]; the coarse-timescale lifetime
//! co-simulation ([`lifetime::LifetimeSim`]) couples the policies with
//! the thermal solver and NBTI model to reproduce the paper's 8-year
//! evaluation (Figs. 5 and 6).
//!
//! Every engine action is observable through the [`telemetry`] module:
//! a sink injected at construction receives cycle-stamped structured
//! events, and [`engine::R2d3Engine::metrics`] returns a serializable
//! [`telemetry::MetricsSnapshot`] of counters and latency histograms.
//!
//! # Example: detect, diagnose and repair an injected fault
//!
//! ```
//! use r2d3_core::engine::R2d3Engine;
//! use r2d3_core::telemetry::RingSink;
//! use r2d3_pipeline_sim::{System3d, SystemConfig, StageId, FaultEffect};
//! use r2d3_isa::{kernels::gemv, Unit};
//!
//! # fn main() -> Result<(), r2d3_core::EngineError> {
//! let sys_config = SystemConfig { pipelines: 6, ..Default::default() };
//! let mut sys = System3d::new(&sys_config);
//! let kernel = gemv(16, 16, 1);
//! for p in 0..6 {
//!     sys.load_program(p, kernel.program().clone())?;
//! }
//! let mut engine = R2d3Engine::builder().telemetry(RingSink::new()).build()?;
//!
//! // A permanent stuck-at defect appears in pipeline 2's EXU.
//! sys.inject_fault(StageId::new(2, Unit::Exu), FaultEffect { bit: 0, stuck: true })?;
//!
//! // Epochs run until the engine has detected, diagnosed and repaired it.
//! for _ in 0..64 {
//!     engine.run_epoch(&mut sys)?;
//!     if engine.is_believed_faulty(StageId::new(2, Unit::Exu)) {
//!         break;
//!     }
//! }
//! let metrics = engine.metrics();
//! assert!(metrics.believed_faulty.contains(&StageId::new(2, Unit::Exu)));
//! assert_eq!(metrics.permanents_diagnosed, 1);
//! // The repaired fabric no longer routes anything through the bad stage.
//! assert!(sys.fabric().complete_pipelines() >= 5);
//! // Every step of the loop was recorded, cycle-stamped, in the sink.
//! assert!(!engine.telemetry().is_empty());
//! # Ok(())
//! # }
//! ```

pub mod activity;
pub mod api;
pub mod campaign;
pub mod chaos;
pub mod checker;
pub mod checkpoint;
pub mod config;
pub mod detect;
pub mod engine;
pub mod history;
pub(crate) mod jsonio;
pub mod lifetime;
pub mod policy;
pub mod repair;
pub mod report;
pub mod serve;
pub mod snapshot;
pub mod soft_error;
pub mod substrate;
pub mod telemetry;

pub use config::R2d3Config;
pub use engine::{EngineBuilder, EngineEvent, R2d3Engine};
pub use history::{EscalationConfig, SymptomHistory};
pub use lifetime::{LifetimeOutcome, LifetimeRunState, LifetimeSim};
pub use policy::PolicyKind;
pub use snapshot::SnapshotError;
pub use substrate::{
    GateFault, NetlistCheckpoint, NetlistSubstrate, NetlistSubstrateConfig, ReliabilitySubstrate,
};
pub use telemetry::{MetricsSnapshot, NullSink, RingSink, TelemetrySink};

use std::fmt;

/// Errors raised by the R2D3 engine.
#[derive(Debug)]
#[non_exhaustive]
pub enum EngineError {
    /// Underlying simulator failure.
    Sim(r2d3_pipeline_sim::SimError),
    /// Thermal solver failure inside the lifetime simulation.
    Thermal(r2d3_thermal::ThermalError),
    /// Configuration rejected.
    InvalidConfig(String),
    /// Substrate-specific failure (e.g. a gate-level fault referencing a
    /// net that does not exist in the stage netlist).
    Substrate(String),
    /// A committed checkpoint failed its payload digest check at
    /// recovery time; the slot has been invalidated and the pipeline
    /// must be recovered some other way (typically a program restart).
    CorruptCheckpoint {
        /// Pipeline whose slot failed verification.
        pipe: usize,
        /// Digest recorded when the checkpoint was committed.
        expected: u64,
        /// Digest of the payload as found at recovery.
        found: u64,
    },
    /// A durable-run snapshot could not be written or restored.
    Snapshot(SnapshotError),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Sim(e) => write!(f, "simulator error: {e}"),
            EngineError::Thermal(e) => write!(f, "thermal error: {e}"),
            EngineError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            EngineError::Substrate(msg) => write!(f, "substrate error: {msg}"),
            EngineError::CorruptCheckpoint { pipe, expected, found } => write!(
                f,
                "checkpoint for pipeline {pipe} is corrupt \
                 (digest {found:#018x}, committed as {expected:#018x})"
            ),
            EngineError::Snapshot(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Sim(e) => Some(e),
            EngineError::Thermal(e) => Some(e),
            EngineError::Snapshot(e) => Some(e),
            EngineError::InvalidConfig(_)
            | EngineError::Substrate(_)
            | EngineError::CorruptCheckpoint { .. } => None,
        }
    }
}

impl From<r2d3_pipeline_sim::SimError> for EngineError {
    fn from(e: r2d3_pipeline_sim::SimError) -> Self {
        EngineError::Sim(e)
    }
}

impl From<r2d3_thermal::ThermalError> for EngineError {
    fn from(e: r2d3_thermal::ThermalError) -> Self {
        EngineError::Thermal(e)
    }
}

impl From<SnapshotError> for EngineError {
    fn from(e: SnapshotError) -> Self {
        EngineError::Snapshot(e)
    }
}
