//! Epoch-committed checkpointing (§III-C / §III-D recovery).
//!
//! The paper: "R2D3 controller utilizes a checkpointing mechanism that
//! creates epochs of execution" and, after repair, "we re-execute the
//! task, starting either from a checkpoint or the beginning." The commit
//! rule follows BulletProof's epoch semantics: an epoch's state is only
//! *committed* as a checkpoint once the epoch-end detection pass found no
//! symptom — otherwise the corrupted epoch is discarded and recovery
//! rolls back to the last validated commit.
//!
//! The store itself is not assumed incorruptible: a checkpoint that rots
//! between commit and recovery (a flipped DRAM bit, a torn write) would
//! otherwise be restored as ground truth and silently poison the very
//! rollback meant to remove corruption. Each committed slot therefore
//! carries a digest of its payload, verified before any restore; a
//! mismatch invalidates the slot and surfaces
//! [`EngineError::CorruptCheckpoint`] so the engine can fall back to a
//! restart instead.

use crate::substrate::ReliabilitySubstrate;
use crate::EngineError;
use r2d3_pipeline_sim::PipelineCheckpoint;
use serde::{Deserialize, Serialize};

/// Checkpointing parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CheckpointConfig {
    /// Commit a checkpoint every `interval_epochs` clean epochs.
    pub interval_epochs: u64,
    /// Bookkeeping cost of one commit (cycles; state streams out over
    /// the vertical buses during normal execution, so this is small).
    pub save_cost_cycles: u64,
    /// Cost of a rollback restore (cycles).
    pub restore_cost_cycles: u64,
    /// Verify each slot's payload digest before restoring from it.
    /// `false` reproduces the historical restore-blindly behavior (the
    /// campaign harness uses it as its re-introduced-bug oracle: digests
    /// are still computed and mismatched restores counted in
    /// [`CheckpointStats::poisoned_restores`], but the poisoned state is
    /// restored anyway).
    pub verify_integrity: bool,
}

impl Default for CheckpointConfig {
    fn default() -> Self {
        CheckpointConfig {
            interval_epochs: 4,
            save_cost_cycles: 64,
            restore_cost_cycles: 256,
            verify_integrity: true,
        }
    }
}

/// Recovery accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CheckpointStats {
    /// Checkpoints committed.
    pub commits: u64,
    /// Rollback restores performed.
    pub restores: u64,
    /// Full restarts (no committed checkpoint was available).
    pub restarts: u64,
    /// Instructions of work discarded by rollbacks/restarts.
    pub lost_instructions: u64,
    /// Total bookkeeping cycles (commits + restores).
    pub overhead_cycles: u64,
    /// Digest mismatches caught before a restore could use the slot.
    pub corruptions_detected: u64,
    /// Digest-mismatched restores performed anyway because integrity
    /// verification was disabled — each one injected corrupted state
    /// into a live pipeline.
    pub poisoned_restores: u64,
}

/// A committed checkpoint plus the digest of its payload at commit time.
#[derive(Debug, Clone)]
struct Slot<C> {
    state: C,
    digest: u64,
}

/// Per-pipeline checkpoint store with validated-commit semantics,
/// generic over the substrate's checkpoint type (`C` is
/// [`ReliabilitySubstrate::Checkpoint`]; [`PipelineCheckpoint`] for the
/// behavioral backend).
#[derive(Debug, Clone)]
pub struct CheckpointManager<C = PipelineCheckpoint> {
    config: CheckpointConfig,
    slots: Vec<Option<Slot<C>>>,
    stats: CheckpointStats,
}

impl<C: Clone> CheckpointManager<C> {
    /// Creates a manager for `pipelines` slots.
    #[must_use]
    pub fn new(config: CheckpointConfig, pipelines: usize) -> Self {
        CheckpointManager {
            config,
            slots: vec![None; pipelines],
            stats: CheckpointStats::default(),
        }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &CheckpointConfig {
        &self.config
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> &CheckpointStats {
        &self.stats
    }

    /// Whether this epoch index is a commit boundary.
    #[must_use]
    pub fn is_commit_epoch(&self, epoch: u64) -> bool {
        self.config.interval_epochs > 0 && epoch.is_multiple_of(self.config.interval_epochs)
    }

    /// Commits checkpoints for all pipelines — call only after a clean
    /// (symptom-free) epoch-end scan.
    ///
    /// # Errors
    ///
    /// Propagates substrate errors.
    pub fn commit_all<S>(&mut self, sys: &S) -> Result<(), EngineError>
    where
        S: ReliabilitySubstrate<Checkpoint = C>,
    {
        for pipe in 0..self.slots.len().min(sys.pipeline_count()) {
            let state = sys.checkpoint_pipeline(pipe)?;
            let digest = S::checkpoint_digest(&state);
            self.slots[pipe] = Some(Slot { state, digest });
            self.stats.commits += 1;
            self.stats.overhead_cycles += self.config.save_cost_cycles;
        }
        Ok(())
    }

    /// Recovers one pipeline after repair: rolls back to its last
    /// committed checkpoint, or restarts the program when none exists.
    ///
    /// The slot's payload digest is re-checked first (unless
    /// [`CheckpointConfig::verify_integrity`] is off): a checkpoint that
    /// rotted since commit must never be restored as ground truth.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::CorruptCheckpoint`] when the slot fails its
    /// digest check — the slot is invalidated first, so retrying the
    /// recovery falls back to a program restart. Propagates substrate
    /// errors.
    pub fn recover<S>(&mut self, sys: &mut S, pipe: usize) -> Result<(), EngineError>
    where
        S: ReliabilitySubstrate<Checkpoint = C>,
    {
        let retired_now = sys.retired(pipe);
        match &self.slots[pipe] {
            Some(slot) => {
                let found = S::checkpoint_digest(&slot.state);
                if found != slot.digest {
                    if self.config.verify_integrity {
                        let expected = slot.digest;
                        self.stats.corruptions_detected += 1;
                        self.slots[pipe] = None;
                        return Err(EngineError::CorruptCheckpoint { pipe, expected, found });
                    }
                    self.stats.poisoned_restores += 1;
                }
                self.stats.lost_instructions +=
                    retired_now.saturating_sub(S::checkpoint_retired(&slot.state));
                self.stats.restores += 1;
                self.stats.overhead_cycles += self.config.restore_cost_cycles;
                sys.restore_pipeline(pipe, &slot.state.clone())?;
            }
            None => {
                self.stats.lost_instructions += retired_now;
                self.stats.restarts += 1;
                self.stats.overhead_cycles += self.config.restore_cost_cycles;
                sys.restart_program(pipe)?;
            }
        }
        Ok(())
    }

    /// Mutates a pipeline's committed checkpoint payload in place
    /// (fault-injection ground truth: models the store rotting between
    /// commit and recovery). The recorded commit-time digest is left
    /// untouched — that is the point. Returns whether a slot existed.
    pub fn corrupt_slot_with(&mut self, pipe: usize, corrupt: impl FnOnce(&mut C)) -> bool {
        match self.slots.get_mut(pipe).and_then(Option::as_mut) {
            Some(slot) => {
                corrupt(&mut slot.state);
                true
            }
            None => false,
        }
    }

    /// Drops a pipeline's committed checkpoint (e.g. when its epoch was
    /// found corrupted before commit).
    pub fn invalidate(&mut self, pipe: usize) {
        if let Some(slot) = self.slots.get_mut(pipe) {
            *slot = None;
        }
    }

    /// Whether a pipeline has a committed checkpoint.
    #[must_use]
    pub fn has_checkpoint(&self, pipe: usize) -> bool {
        self.slots.get(pipe).is_some_and(Option::is_some)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use r2d3_isa::kernels::gemv;
    use r2d3_pipeline_sim::{System3d, SystemConfig};

    fn loaded_system() -> System3d {
        let cfg = SystemConfig { pipelines: 2, ..Default::default() };
        let mut sys = System3d::new(&cfg);
        for p in 0..2 {
            sys.load_program(p, gemv(32, 32, p as u64 + 1).program().clone()).unwrap();
        }
        sys
    }

    #[test]
    fn rollback_restores_committed_state() {
        let mut sys = loaded_system();
        let mut mgr = CheckpointManager::new(CheckpointConfig::default(), 2);

        sys.run(5_000).unwrap();
        let retired_at_commit = sys.pipeline(0).unwrap().retired();
        mgr.commit_all(&sys).unwrap();

        sys.run(5_000).unwrap();
        let retired_later = sys.pipeline(0).unwrap().retired();
        assert!(retired_later > retired_at_commit);

        mgr.recover(&mut sys, 0).unwrap();
        assert_eq!(sys.pipeline(0).unwrap().retired(), retired_at_commit);
        assert_eq!(mgr.stats().restores, 1);
        assert_eq!(mgr.stats().lost_instructions, retired_later - retired_at_commit);
        // Physical time is not rewound.
        assert!(sys.pipeline(0).unwrap().cycles() >= 10_000);
    }

    #[test]
    fn recover_without_checkpoint_restarts() {
        let mut sys = loaded_system();
        let mut mgr = CheckpointManager::new(CheckpointConfig::default(), 2);
        sys.run(5_000).unwrap();
        let retired = sys.pipeline(1).unwrap().retired();
        mgr.recover(&mut sys, 1).unwrap();
        assert_eq!(sys.pipeline(1).unwrap().retired(), 0);
        assert_eq!(mgr.stats().restarts, 1);
        assert_eq!(mgr.stats().lost_instructions, retired);
    }

    #[test]
    fn resumed_run_finishes_correctly() {
        let kernel = gemv(32, 32, 1);
        let mut sys = loaded_system();
        let mut mgr = CheckpointManager::new(CheckpointConfig::default(), 2);
        sys.run(4_000).unwrap();
        mgr.commit_all(&sys).unwrap();
        sys.run(4_000).unwrap();
        mgr.recover(&mut sys, 0).unwrap();
        sys.run(400_000).unwrap();
        let p = sys.pipeline(0).unwrap();
        assert!(p.halted());
        assert!(kernel.verify(p.memory()), "post-rollback execution must be correct");
    }

    #[test]
    fn commit_epochs_follow_interval() {
        let mgr: CheckpointManager = CheckpointManager::new(
            CheckpointConfig { interval_epochs: 3, ..Default::default() },
            1,
        );
        assert!(mgr.is_commit_epoch(0));
        assert!(!mgr.is_commit_epoch(1));
        assert!(mgr.is_commit_epoch(3));
    }

    #[test]
    fn corrupted_slot_is_detected_invalidated_and_surfaced() {
        let mut sys = loaded_system();
        let mut mgr = CheckpointManager::new(CheckpointConfig::default(), 2);
        sys.run(5_000).unwrap();
        mgr.commit_all(&sys).unwrap();
        assert!(mgr.corrupt_slot_with(0, |cp| cp.corrupt_bit(7)));

        let err = mgr.recover(&mut sys, 0).unwrap_err();
        match err {
            EngineError::CorruptCheckpoint { pipe, expected, found } => {
                assert_eq!(pipe, 0);
                assert_ne!(expected, found);
            }
            other => panic!("expected CorruptCheckpoint, got {other}"),
        }
        assert_eq!(mgr.stats().corruptions_detected, 1);
        assert_eq!(mgr.stats().restores, 0);
        assert!(!mgr.has_checkpoint(0), "failed slot must be invalidated");

        // Retrying the recovery now falls back to a program restart.
        mgr.recover(&mut sys, 0).unwrap();
        assert_eq!(mgr.stats().restarts, 1);
        assert_eq!(sys.pipeline(0).unwrap().retired(), 0);
    }

    #[test]
    fn disabled_verification_restores_poison_and_counts_it() {
        let mut sys = loaded_system();
        let config = CheckpointConfig { verify_integrity: false, ..Default::default() };
        let mut mgr = CheckpointManager::new(config, 2);
        sys.run(5_000).unwrap();
        mgr.commit_all(&sys).unwrap();
        assert!(mgr.corrupt_slot_with(0, |cp| cp.corrupt_bit(7)));

        mgr.recover(&mut sys, 0).unwrap();
        assert_eq!(mgr.stats().poisoned_restores, 1);
        assert_eq!(mgr.stats().corruptions_detected, 0);
        assert_eq!(mgr.stats().restores, 1);
    }

    #[test]
    fn clean_slot_passes_verification() {
        let mut sys = loaded_system();
        let mut mgr = CheckpointManager::new(CheckpointConfig::default(), 2);
        sys.run(5_000).unwrap();
        mgr.commit_all(&sys).unwrap();
        sys.run(5_000).unwrap();
        mgr.recover(&mut sys, 0).unwrap();
        assert_eq!(mgr.stats().restores, 1);
        assert_eq!(mgr.stats().corruptions_detected, 0);
        assert_eq!(mgr.stats().poisoned_restores, 0);
    }

    #[test]
    fn invalidate_clears_slot() {
        let mut sys = loaded_system();
        let mut mgr = CheckpointManager::new(CheckpointConfig::default(), 2);
        sys.run(1_000).unwrap();
        mgr.commit_all(&sys).unwrap();
        assert!(mgr.has_checkpoint(0));
        mgr.invalidate(0);
        assert!(!mgr.has_checkpoint(0));
        assert!(mgr.has_checkpoint(1));
    }
}
