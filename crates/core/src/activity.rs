//! Activity indices (Eq. 1 and Eq. 2 of the paper).
//!
//! R2D3-Pro assigns each stage an activity index
//!
//! ```text
//! A_i = α_i / Σ_j α_j · n_workload        (Eq. 1)
//! T_sched,i = A_i · T_cal                 (Eq. 2)
//! ```
//!
//! where `α_i` is the stage's predicted activity factor — lower for
//! stages "more prone to hot spots and degradation". The paper derives
//! the `α_i` offline from steady-state temperatures of typical workloads
//! (implicitly the stage's layer position); this module provides both
//! that offline profile ([`pro_layer_weights`]) and the runtime
//! temperature-driven variant ([`alpha_from_temperature`]).

/// Eq. 1: converts predicted activity factors `α_i` into activity
/// indices `A_i` that sum to `n_workload`.
///
/// Returns an empty vector if all `α_i` are zero.
#[must_use]
pub fn activity_indices(alphas: &[f64], n_workload: f64) -> Vec<f64> {
    let total: f64 = alphas.iter().sum();
    if total <= 0.0 {
        return vec![0.0; alphas.len()];
    }
    alphas.iter().map(|a| a / total * n_workload).collect()
}

/// Eq. 2: schedule time per stage within a calibration window of
/// `t_cal` cycles. Indices above 1.0 are capped (a stage cannot serve
/// more than the whole window).
#[must_use]
pub fn schedule_times(indices: &[f64], t_cal: u64) -> Vec<u64> {
    indices.iter().map(|a| (a.clamp(0.0, 1.0) * t_cal as f64).round() as u64).collect()
}

/// Predicted activity factor from a measured/predicted temperature:
/// hotter stages get exponentially lower weight (θ in °C sets how
/// aggressively Pro shuns hot stages).
#[must_use]
pub fn alpha_from_temperature(temps_c: &[f64], theta: f64) -> Vec<f64> {
    let t_min = temps_c.iter().copied().fold(f64::INFINITY, f64::min);
    temps_c.iter().map(|t| (-(t - t_min) / theta.max(1e-9)).exp()).collect()
}

/// Offline per-layer weights for the steady-state-temperature method the
/// paper uses ("In this work, we use the steady state temperature
/// method").
///
/// The weights are chosen to *equalize wear rates*: NBTI damage grows as
/// `ΔVth ∝ exp(−Ea/kB·T) · duty^(q·n)`, so equal wear across tiers needs
/// `duty_l ∝ exp((Ea/(q·n·kB)) · (1/T_l − 1/T_0))` — cooler (sink-near)
/// tiers carry proportionally more duty so every tier's ΔVth advances at
/// the same rate. The offline temperature profile is the steady-state
/// per-layer gradient of the loaded stack.
#[must_use]
pub fn pro_layer_weights(layers: usize) -> Vec<f64> {
    use r2d3_aging::nbti::NbtiParams;
    use r2d3_aging::{kelvin, BOLTZMANN_EV};
    // Offline steady-state layer temperatures of a loaded stack (°C).
    let profile = |l: usize| 95.0 + 5.5 * l as f64;
    let p = NbtiParams::default();
    let t0 = kelvin(profile(0));
    let exponent = p.ea_ev / (p.duty_exponent * p.n * BOLTZMANN_EV);
    (0..layers)
        .map(|l| {
            let tl = kelvin(profile(l));
            (exponent * (1.0 / tl - 1.0 / t0)).exp()
        })
        .collect()
}

/// Weighted water-filling: finds duties `d_i = min(c·w_i, 1)` with the
/// scale `c` chosen so `Σ d_i = total` (or every stage saturates). This
/// realizes Eq. 1's proportional sharing under the physical per-stage
/// duty cap.
#[must_use]
pub fn weighted_fill(weights: &[f64], total: f64) -> Vec<f64> {
    if weights.is_empty() || weights.iter().all(|&w| w <= 0.0) {
        return vec![0.0; weights.len()];
    }
    let cap_total = weights.len() as f64;
    if total >= cap_total {
        return vec![1.0; weights.len()];
    }
    let (mut lo, mut hi) = (0.0f64, 1.0f64);
    let sum_at = |c: f64| weights.iter().map(|&w| (c * w).min(1.0)).sum::<f64>();
    while sum_at(hi) < total {
        hi *= 2.0;
    }
    for _ in 0..64 {
        let mid = 0.5 * (lo + hi);
        if sum_at(mid) < total {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    weights.iter().map(|&w| (hi * w).min(1.0)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq1_sums_to_n_workload() {
        let a = activity_indices(&[1.0, 2.0, 3.0], 6.0);
        let sum: f64 = a.iter().sum();
        assert!((sum - 6.0).abs() < 1e-12);
        assert!(a[2] > a[0]);
    }

    #[test]
    fn eq1_zero_alphas() {
        assert_eq!(activity_indices(&[0.0, 0.0], 4.0), vec![0.0, 0.0]);
    }

    #[test]
    fn eq2_caps_at_window() {
        let t = schedule_times(&[0.5, 1.5, 0.0], 1000);
        assert_eq!(t, vec![500, 1000, 0]);
    }

    #[test]
    fn hotter_means_lower_alpha() {
        let a = alpha_from_temperature(&[100.0, 120.0, 140.0], 20.0);
        assert!(a[0] > a[1] && a[1] > a[2]);
        assert!((a[0] - 1.0).abs() < 1e-12, "coolest is the reference");
    }

    #[test]
    fn weighted_fill_preserves_total() {
        let d = weighted_fill(&[1.0, 0.5, 0.25], 1.5);
        let sum: f64 = d.iter().sum();
        assert!((sum - 1.5).abs() < 1e-9, "{d:?}");
        assert!(d[0] > d[1] && d[1] > d[2]);
    }

    #[test]
    fn weighted_fill_caps_at_one() {
        let d = weighted_fill(&[10.0, 1.0], 1.5);
        assert!((d[0] - 1.0).abs() < 1e-9);
        assert!((d[1] - 0.5).abs() < 1e-6, "{d:?}");
    }

    #[test]
    fn weighted_fill_saturates_gracefully() {
        assert_eq!(weighted_fill(&[1.0, 1.0], 5.0), vec![1.0, 1.0]);
        assert_eq!(weighted_fill(&[0.0, 0.0], 1.0), vec![0.0, 0.0]);
        assert_eq!(weighted_fill(&[], 1.0), Vec::<f64>::new());
    }

    #[test]
    fn layer_weights_decay_monotonically() {
        let w = pro_layer_weights(8);
        assert_eq!(w.len(), 8);
        for pair in w.windows(2) {
            assert!(pair[0] > pair[1]);
        }
        assert_eq!(w[0], 1.0);
    }
}
