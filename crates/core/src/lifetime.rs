//! The 8-year lifetime co-simulation (paper §V-C, Figs. 5 and 6).
//!
//! Couples, on a monthly timestep, the pieces the paper's divide-and-
//! conquer methodology chains: the policy's duty assignment → the power
//! map → a HotSpot-style steady-state thermal solve → NBTI ΔVth
//! accumulation → stochastic permanent-fault arrival → pipeline
//! re-formation (repair) → throughput. Each monthly state also yields a
//! forward Monte-Carlo MTTF estimate (Fig. 5(b)) from the instantaneous
//! per-stage hazard rates.
//!
//! The cycle-level simulator is *not* stepped inside this loop (8 years
//! ≈ 2.5 × 10¹⁷ cycles); instead, per-workload IPC and occupancy come
//! from short cycle-level measurements (see
//! [`crate::report::measure_kernel_profile`]), exactly the two-timescale
//! split the paper uses between gem5 runs and the reliability evaluation.

use crate::activity::{alpha_from_temperature, pro_layer_weights, weighted_fill};
use crate::jsonio::Value;
use crate::policy::PolicyKind;
use crate::repair::{core_level_formable, stage_level_formable};
use crate::snapshot::{self, SnapshotError};
use crate::substrate::ReliabilitySubstrate;
use crate::EngineError;
use parking_lot::Mutex;
use r2d3_aging::mttf::{mttf_monte_carlo, MttfConfig};
use r2d3_aging::nbti::{NbtiModel, NbtiParams, NbtiState};
use r2d3_aging::{kelvin, BOLTZMANN_EV, SECONDS_PER_MONTH};
use r2d3_isa::Unit;
use r2d3_physical::{DesignVariant, PhysicalModel};
use r2d3_pipeline_sim::StageId;
use r2d3_thermal::{Floorplan, GridConfig, PowerMap, TemperatureField, ThermalGrid};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::ops::ControlFlow;
use std::path::Path;
use std::sync::Arc;

/// Which system-failure criterion the forward-MTTF Monte Carlo uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MttfCriterion {
    /// System fails when no complete logical pipeline can be formed
    /// (total loss). Produces the paper's declining Fig. 5(b) shape.
    TotalLoss,
    /// System fails at the next *service-degrading* fault: when
    /// deliverable capacity `min(formable, wanted)` drops below its
    /// current value (ablation variant).
    ServiceLevel,
}

/// Hard-fault arrival model parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReliabilityParams {
    /// Baseline per-stage hard-fault rate (per month) at the reference
    /// temperature with a fresh device.
    pub base_rate_per_month: f64,
    /// Arrhenius activation energy (eV) of the hard-fault mechanisms.
    pub fault_ea_ev: f64,
    /// Reference temperature (°C) for the baseline rate.
    pub ref_temp_c: f64,
    /// ΔVth acceleration: rate multiplies by `exp(ΔVth / scale)`.
    pub vth_accel_scale: f64,
    /// Extra duty leftovers carry from online testing (the paper accounts
    /// the "additional NBTI-based wearout of using leftovers for
    /// detection" — §III-C).
    pub detection_duty: f64,
    /// Also include the JEP122 mechanisms (EM, TDDB, HCI) in the
    /// per-stage hazard, beyond the NBTI-driven term. Off by default:
    /// the paper optimizes for NBTI and the calibration targets its
    /// numbers; the ablation bench flips this on.
    pub jep122: bool,
}

impl Default for ReliabilityParams {
    fn default() -> Self {
        ReliabilityParams {
            base_rate_per_month: 0.0045,
            fault_ea_ev: 0.35,
            ref_temp_c: 90.0,
            vth_accel_scale: 0.03,
            detection_duty: 0.05,
            jep122: false,
        }
    }
}

/// Configuration of one lifetime run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LifetimeConfig {
    /// Policy under evaluation.
    pub policy: PolicyKind,
    /// Months simulated (the paper evaluates 8 years = 96 months).
    pub months: usize,
    /// Tiers in the stack.
    pub layers: usize,
    /// Logical pipelines at full health.
    pub pipelines: usize,
    /// Fraction of the pipelines the workload wants busy
    /// ([`r2d3_isa::kernels::KernelKind::core_demand_fraction`]).
    pub demand: f64,
    /// Relative switching-activity weight of the workload.
    pub activity_weight: f64,
    /// Monte-Carlo replicas of the whole trajectory (fault arrival varies).
    pub replicas: usize,
    /// Worker threads for the replica loop (1 = serial). Replicas use
    /// deterministic per-replica seeds and are averaged in replica order,
    /// so the result is bit-identical for any thread count.
    pub threads: usize,
    /// RNG seed.
    pub seed: u64,
    /// Fault-arrival model.
    pub reliability: ReliabilityParams,
    /// NBTI model parameters.
    pub nbti: NbtiParams,
    /// Forward-MTTF Monte-Carlo trials per recorded month.
    pub mttf_trials: usize,
    /// Thermal grid configuration.
    pub grid: GridConfig,
    /// Temperature sensitivity θ (°C) of Pro's α prediction.
    pub alpha_theta: f64,
    /// Use runtime-measured temperatures for Pro's activity factors
    /// instead of the paper's offline steady-state-temperature method.
    pub pro_runtime_temps: bool,
    /// System-failure criterion for the forward-MTTF estimate.
    pub mttf_criterion: MttfCriterion,
}

impl LifetimeConfig {
    /// Default 8-year configuration for a policy and workload demand.
    #[must_use]
    pub fn new(policy: PolicyKind, demand: f64, activity_weight: f64) -> Self {
        LifetimeConfig {
            policy,
            months: 96,
            layers: 8,
            pipelines: 8,
            demand,
            activity_weight,
            replicas: 12,
            threads: default_threads(),
            seed: 0x52D3,
            reliability: ReliabilityParams::default(),
            nbti: NbtiParams::default(),
            mttf_trials: 300,
            grid: GridConfig::default(),
            alpha_theta: 18.0,
            pro_runtime_temps: false,
            mttf_criterion: MttfCriterion::TotalLoss,
        }
    }
}

/// Short-timescale execution profile measured on a live substrate — the
/// cycle-level leg of the paper's two-timescale split, feeding the
/// month-level lifetime co-simulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SubstrateProfile {
    /// Operations retired per cycle per pipeline (instructions on the
    /// behavioral substrate, pattern lanes on the gate-level one).
    pub ipc: f64,
    /// Fraction of pipelines that made forward progress.
    pub demand: f64,
    /// Mean busy fraction across all mapped stages — the workload's
    /// switching-activity weight.
    pub activity_weight: f64,
}

/// Measures a [`SubstrateProfile`] by running `cycles` of execution on
/// any [`ReliabilitySubstrate`] — behavioral or gate-level — so the same
/// lifetime study can be parameterized from either backend.
///
/// Activity statistics are reset before the measurement window; the
/// substrate's program state advances by `cycles`.
///
/// # Errors
///
/// Propagates substrate errors; rejects `cycles == 0`.
pub fn profile_substrate<S: ReliabilitySubstrate>(
    sys: &mut S,
    cycles: u64,
) -> Result<SubstrateProfile, EngineError> {
    if cycles == 0 {
        return Err(EngineError::InvalidConfig("profile window must be positive".into()));
    }
    let pipes = sys.pipeline_count();
    let before: Vec<u64> = (0..pipes).map(|p| sys.retired(p)).collect();
    sys.reset_stats();
    sys.run(cycles)?;

    let deltas: Vec<u64> = (0..pipes).map(|p| sys.retired(p).saturating_sub(before[p])).collect();
    let retired: u64 = deltas.iter().sum();
    let progressed = deltas.iter().filter(|&&d| d > 0).count();

    let stats = sys.stats();
    let busy: u64 = (0..sys.layers()).map(|l| stats.layer_busy(l)).sum();
    let stage_slots = (pipes * Unit::COUNT) as f64;
    Ok(SubstrateProfile {
        ipc: retired as f64 / (cycles as f64 * pipes.max(1) as f64),
        demand: progressed as f64 / pipes.max(1) as f64,
        activity_weight: (busy as f64 / (cycles as f64 * stage_slots.max(1.0))).min(1.0),
    })
}

impl LifetimeConfig {
    /// Builds a lifetime configuration from a measured substrate profile
    /// (see [`profile_substrate`]): the profile's demand and activity
    /// weight replace the offline per-kernel table values.
    #[must_use]
    pub fn from_profile(policy: PolicyKind, profile: &SubstrateProfile) -> Self {
        LifetimeConfig::new(policy, profile.demand, profile.activity_weight)
    }
}

/// Time series produced by the lifetime simulation (replica-averaged).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct LifetimeSeries {
    /// Month index of each sample.
    pub months: Vec<f64>,
    /// Mean ΔVth (V) over stages currently carrying duty (in-service
    /// wear; can dip when load shifts to fresher stages after a fault).
    pub mean_vth: Vec<f64>,
    /// Max ΔVth (V) over *all* stages, dead or alive — the system's
    /// accumulated degradation (Fig. 5(a) metric; monotone).
    pub max_vth: Vec<f64>,
    /// Forward MTTF estimate in months (Fig. 5(b)).
    pub mttf_months: Vec<f64>,
    /// Throughput normalized to the fresh NoRecon system (Fig. 5(c)).
    pub norm_ipc: Vec<f64>,
    /// Active (formed and demanded) pipelines.
    pub active_pipelines: Vec<f64>,
    /// Average temperature of the hottest layer (°C, Fig. 6 headline).
    pub hottest_layer_temp: Vec<f64>,
}

/// Result of a lifetime run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LifetimeOutcome {
    /// Policy evaluated.
    pub policy: PolicyKind,
    /// Replica-averaged series.
    pub series: LifetimeSeries,
    /// Month-0 temperature map of the hottest layer (Fig. 6), row-major
    /// `grid.ny × grid.nx` cells in °C.
    pub initial_hot_layer_map: Vec<f64>,
    /// Grid width of the map.
    pub map_nx: usize,
    /// Grid height of the map.
    pub map_ny: usize,
}

/// Final-month per-stage state of the last replica run (debug aid).
#[doc(hidden)]
#[derive(Debug, Clone, Default)]
pub struct ReplicaDebug {
    /// ΔVth per stage (flat index).
    pub wear: Vec<f64>,
    /// Duty per stage.
    pub duty: Vec<f64>,
    /// Temperature per stage (°C).
    pub temps: Vec<f64>,
}

/// Worker-thread default for [`LifetimeConfig::threads`]: available
/// parallelism capped at 8 (replica counts are small; more threads idle).
#[must_use]
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(8)
}

/// One cached monthly thermal solve: per-stage block temperatures plus
/// the full field (the next month's warm start).
#[derive(Debug)]
struct SolvedMonth {
    temps: Vec<f64>,
    field: TemperatureField,
}

/// Lock stripes in [`ThermalCache`]. A power of two (shard selection
/// masks the key's low bits); 16 comfortably exceeds the worker cap.
const CACHE_SHARDS: usize = 16;

/// Thermal solves shared across replicas, keyed by a *chained hash* of
/// the quantized duty history. Two trajectories collide on a key only if
/// their entire duty history matches — which also pins the warm-start
/// field — so every cache entry is a pure function of its key and the
/// simulation stays bit-identical for any thread count or interleaving.
///
/// The map is striped across [`CACHE_SHARDS`] independently locked
/// shards, so concurrent replicas rarely contend on the map locks (the
/// old single global `Mutex<HashMap>` serialized every lookup *and*
/// every multi-millisecond solve under one lock, making 4-thread runs
/// slightly slower than serial). Each key owns a per-entry slot mutex:
/// the first replica to want a key computes the solve while holding
/// only that slot, and later replicas wanting the same key block on the
/// slot — never the shard — and then reuse the result instead of
/// re-solving. Entries are pure functions of their key, so striping and
/// in-flight dedup change timing only, never results.
/// One in-flight-dedup cache slot: filled exactly once, under the slot's
/// own lock, by the first replica to claim the key.
type CacheSlot = Arc<Mutex<Option<Arc<SolvedMonth>>>>;

struct ThermalCache {
    shards: [Mutex<HashMap<u64, CacheSlot>>; CACHE_SHARDS],
}

impl ThermalCache {
    fn new() -> Self {
        ThermalCache { shards: std::array::from_fn(|_| Mutex::new(HashMap::new())) }
    }

    /// The slot for `key`, creating it empty if absent. Holds the shard
    /// lock only for the map access, never across a solve.
    fn slot(&self, key: u64) -> CacheSlot {
        let shard = &self.shards[key as usize & (CACHE_SHARDS - 1)];
        Arc::clone(shard.lock().entry(key).or_insert_with(|| Arc::new(Mutex::new(None))))
    }
}

/// Extends a duty-history hash with one month's quantized duty vector
/// (FNV-1a over the 8.8 fixed-point duties).
fn chain_duty_hash(prev: u64, duty: &[f64]) -> u64 {
    let mut h = prev ^ 0xcbf2_9ce4_8422_2325;
    for d in duty {
        h ^= u64::from((d * 256.0).round() as u16);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Live state of one replica mid-trajectory — everything
/// [`LifetimeSim::step_month`] reads and writes.
#[derive(Debug)]
struct ReplicaState {
    replica: usize,
    /// Months completed (the next month to simulate).
    month: usize,
    rng: StdRng,
    alive: Vec<bool>,
    wear: Vec<NbtiState>,
    last_temps: Vec<f64>,
    series: LifetimeSeries,
    hot_map_month0: Vec<f64>,
    /// Duty-history hash (thermal cache key).
    history_hash: u64,
    /// Previous month's converged field (warm start for the next solve).
    warm: Option<Arc<SolvedMonth>>,
    debug_final: Option<ReplicaDebug>,
}

impl ReplicaState {
    fn fresh(cfg: &LifetimeConfig, replica: usize) -> Self {
        let nstages = cfg.layers * Unit::COUNT;
        ReplicaState {
            replica,
            month: 0,
            rng: StdRng::seed_from_u64(cfg.seed ^ (replica as u64).wrapping_mul(0x9e37)),
            alive: vec![true; nstages],
            wear: vec![NbtiState::new(); nstages],
            last_temps: initial_temp_guess(cfg.layers),
            series: LifetimeSeries::default(),
            hot_map_month0: Vec::new(),
            history_hash: 0,
            warm: None,
            debug_final: None,
        }
    }
}

/// Portable mid-flight state of a lifetime run: the month-granular
/// cursor (replica × month), the accumulated average over completed
/// replicas, and the live replica's full state — RNG stream, fault map,
/// per-stage wear, warm-start thermal field. Serialized with `f64`s as
/// bit patterns, so save → load → continue is byte-identical to never
/// having stopped (the [`snapshot`] determinism contract).
///
/// Produced by [`LifetimeSim::run_durable`]'s observer callback and
/// persisted/recovered with [`save`](LifetimeRunState::save) /
/// [`load`](LifetimeRunState::load).
#[derive(Debug, Clone, PartialEq)]
pub struct LifetimeRunState {
    /// Digest of the originating [`LifetimeConfig`]; resuming under a
    /// different configuration is a [`SnapshotError::ConfigMismatch`].
    config_digest: u64,
    /// Replica currently in flight (replicas `0..replica` are folded
    /// into `acc`).
    replica: usize,
    /// Months the in-flight replica has completed.
    month: usize,
    /// Replica-average accumulated over completed replicas.
    acc: LifetimeSeries,
    /// Replica-0 hottest-layer map (empty until replica 0 completes).
    map: Vec<f64>,
    rng: [u64; 4],
    alive: Vec<bool>,
    wear: Vec<f64>,
    last_temps: Vec<f64>,
    series: LifetimeSeries,
    hot_map_month0: Vec<f64>,
    history_hash: u64,
    warm_temps: Option<Vec<f64>>,
    warm_cells: Option<Vec<f64>>,
}

impl LifetimeRunState {
    /// Snapshot-container kind tag for lifetime runs.
    pub const KIND: &'static str = "lifetime";

    /// Replica currently in flight (0-based).
    #[must_use]
    pub fn replica(&self) -> usize {
        self.replica
    }

    /// Months the in-flight replica has completed.
    #[must_use]
    pub fn month(&self) -> usize {
        self.month
    }

    /// Total months simulated across completed and in-flight replicas,
    /// given the run's months-per-replica.
    #[must_use]
    pub fn months_done(&self, months_per_replica: usize) -> usize {
        self.replica * months_per_replica + self.month
    }

    fn capture(st: &DurableCursor, rs: &ReplicaState, digest: u64) -> Self {
        LifetimeRunState {
            config_digest: digest,
            replica: rs.replica,
            month: rs.month,
            acc: st.acc.clone(),
            map: st.map.clone(),
            rng: rs.rng.state(),
            alive: rs.alive.clone(),
            wear: rs.wear.iter().map(NbtiState::vth_shift).collect(),
            last_temps: rs.last_temps.clone(),
            series: rs.series.clone(),
            hot_map_month0: rs.hot_map_month0.clone(),
            history_hash: rs.history_hash,
            warm_temps: rs.warm.as_deref().map(|s| s.temps.clone()),
            warm_cells: rs.warm.as_deref().map(|s| s.field.cells().to_vec()),
        }
    }

    fn rebuild_replica(&self, grid: &ThermalGrid) -> Result<ReplicaState, SnapshotError> {
        let warm = match (&self.warm_temps, &self.warm_cells) {
            (Some(temps), Some(cells)) => {
                let field = TemperatureField::from_cells(grid, cells.clone())
                    .map_err(|e| SnapshotError::ConfigMismatch(format!("warm-start field: {e}")))?;
                Some(Arc::new(SolvedMonth { temps: temps.clone(), field }))
            }
            (None, None) => None,
            _ => {
                return Err(SnapshotError::Malformed(
                    "warm_temps/warm_cells must be both present or both null".into(),
                ))
            }
        };
        Ok(ReplicaState {
            replica: self.replica,
            month: self.month,
            rng: StdRng::from_state(self.rng),
            alive: self.alive.clone(),
            wear: self.wear.iter().map(|&v| NbtiState::from_vth_shift(v)).collect(),
            last_temps: self.last_temps.clone(),
            series: self.series.clone(),
            hot_map_month0: self.hot_map_month0.clone(),
            history_hash: self.history_hash,
            warm,
            debug_final: None,
        })
    }

    /// Atomically persists the state at `path` (see [`snapshot`]).
    ///
    /// # Errors
    ///
    /// Propagates [`SnapshotError::Io`].
    pub fn save(&self, path: &Path) -> Result<(), SnapshotError> {
        snapshot::write_atomic(path, Self::KIND, self.to_body().as_bytes())
    }

    /// [`save`](LifetimeRunState::save) through a
    /// [`Vfs`](crate::chaos::Vfs) seam.
    ///
    /// # Errors
    ///
    /// Propagates [`SnapshotError::Io`].
    pub fn save_with(&self, vfs: &dyn crate::chaos::Vfs, path: &Path) -> Result<(), SnapshotError> {
        snapshot::write_atomic_with(vfs, path, Self::KIND, self.to_body().as_bytes())
    }

    /// Loads and verifies a state previously written by
    /// [`save`](LifetimeRunState::save).
    ///
    /// # Errors
    ///
    /// Any [`SnapshotError`]: I/O, wrong magic/version/kind, truncation,
    /// digest mismatch, malformed body.
    pub fn load(path: &Path) -> Result<Self, SnapshotError> {
        Self::from_body(&snapshot::read_verified(path, Self::KIND)?)
    }

    /// [`load`](LifetimeRunState::load) through a
    /// [`Vfs`](crate::chaos::Vfs) seam.
    ///
    /// # Errors
    ///
    /// Any [`SnapshotError`].
    pub fn load_with(vfs: &dyn crate::chaos::Vfs, path: &Path) -> Result<Self, SnapshotError> {
        Self::from_body(&snapshot::read_verified_with(vfs, path, Self::KIND)?)
    }

    fn to_body(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"config_digest\": {},", jsonio_hex(self.config_digest));
        let _ = writeln!(out, "  \"replica\": {},", self.replica);
        let _ = writeln!(out, "  \"month\": {},", self.month);
        let _ = writeln!(out, "  \"acc\": {},", series_to_json(&self.acc));
        let _ = writeln!(out, "  \"map\": {},", snapshot::f64_slice_to_json(&self.map));
        let _ = writeln!(
            out,
            "  \"rng\": [{}, {}, {}, {}],",
            jsonio_hex(self.rng[0]),
            jsonio_hex(self.rng[1]),
            jsonio_hex(self.rng[2]),
            jsonio_hex(self.rng[3])
        );
        out.push_str("  \"alive\": [");
        for (i, a) in self.alive.iter().enumerate() {
            let _ = write!(out, "{}{a}", if i == 0 { "" } else { ", " });
        }
        out.push_str("],\n");
        let _ = writeln!(out, "  \"wear\": {},", snapshot::f64_slice_to_json(&self.wear));
        let _ =
            writeln!(out, "  \"last_temps\": {},", snapshot::f64_slice_to_json(&self.last_temps));
        let _ = writeln!(out, "  \"series\": {},", series_to_json(&self.series));
        let _ = writeln!(
            out,
            "  \"hot_map_month0\": {},",
            snapshot::f64_slice_to_json(&self.hot_map_month0)
        );
        let _ = writeln!(out, "  \"history_hash\": {},", jsonio_hex(self.history_hash));
        match &self.warm_temps {
            Some(t) => {
                let _ = writeln!(out, "  \"warm_temps\": {},", snapshot::f64_slice_to_json(t));
            }
            None => out.push_str("  \"warm_temps\": null,\n"),
        }
        match &self.warm_cells {
            Some(c) => {
                let _ = writeln!(out, "  \"warm_cells\": {}", snapshot::f64_slice_to_json(c));
            }
            None => out.push_str("  \"warm_cells\": null\n"),
        }
        out.push_str("}\n");
        out
    }

    fn from_body(body: &str) -> Result<Self, SnapshotError> {
        let v = snapshot::parse_body(body)?;
        let hex = |key: &str| -> Result<u64, SnapshotError> {
            snapshot::field(&v, key)?.as_hex_u64().ok_or_else(|| {
                SnapshotError::Malformed(format!("field \"{key}\" is not a hex u64"))
            })
        };
        let usize_of = |key: &str| -> Result<usize, SnapshotError> {
            snapshot::field(&v, key)?.as_usize().ok_or_else(|| {
                SnapshotError::Malformed(format!("field \"{key}\" is not an integer"))
            })
        };
        let floats = |key: &str| -> Result<Vec<f64>, SnapshotError> {
            crate::snapshot::json_to_f64_vec(snapshot::field(&v, key)?)
        };
        let opt_floats = |key: &str| -> Result<Option<Vec<f64>>, SnapshotError> {
            let f = snapshot::field(&v, key)?;
            if *f == Value::Null {
                Ok(None)
            } else {
                crate::snapshot::json_to_f64_vec(f).map(Some)
            }
        };
        let rng_arr = snapshot::field(&v, "rng")?
            .as_arr()
            .ok_or_else(|| SnapshotError::Malformed("\"rng\" is not an array".into()))?;
        if rng_arr.len() != 4 {
            return Err(SnapshotError::Malformed("\"rng\" must have 4 words".into()));
        }
        let mut rng = [0u64; 4];
        for (slot, w) in rng.iter_mut().zip(rng_arr) {
            *slot = w
                .as_hex_u64()
                .ok_or_else(|| SnapshotError::Malformed("\"rng\" word is not hex".into()))?;
        }
        let alive = snapshot::field(&v, "alive")?
            .as_arr()
            .ok_or_else(|| SnapshotError::Malformed("\"alive\" is not an array".into()))?
            .iter()
            .map(|b| {
                b.as_bool()
                    .ok_or_else(|| SnapshotError::Malformed("\"alive\" entry not a bool".into()))
            })
            .collect::<Result<Vec<bool>, _>>()?;
        Ok(LifetimeRunState {
            config_digest: hex("config_digest")?,
            replica: usize_of("replica")?,
            month: usize_of("month")?,
            acc: series_from_json(snapshot::field(&v, "acc")?)?,
            map: floats("map")?,
            rng,
            alive,
            wear: floats("wear")?,
            last_temps: floats("last_temps")?,
            series: series_from_json(snapshot::field(&v, "series")?)?,
            hot_map_month0: floats("hot_map_month0")?,
            history_hash: hex("history_hash")?,
            warm_temps: opt_floats("warm_temps")?,
            warm_cells: opt_floats("warm_cells")?,
        })
    }
}

/// Accumulator half of a durable run (completed replicas).
struct DurableCursor {
    acc: LifetimeSeries,
    map: Vec<f64>,
}

/// Writes a `u64` as the snapshot hex-string token.
fn jsonio_hex(v: u64) -> String {
    crate::jsonio::hex_u64(v)
}

/// Digest identifying a [`LifetimeConfig`] (FNV-1a over its canonical
/// `Debug` rendering — every field participates).
fn config_digest(cfg: &LifetimeConfig) -> u64 {
    snapshot::fnv1a64(format!("{cfg:?}").as_bytes())
}

fn series_to_json(s: &LifetimeSeries) -> String {
    format!(
        "{{\"months\": {}, \"mean_vth\": {}, \"max_vth\": {}, \"mttf_months\": {}, \
         \"norm_ipc\": {}, \"active_pipelines\": {}, \"hottest_layer_temp\": {}}}",
        snapshot::f64_slice_to_json(&s.months),
        snapshot::f64_slice_to_json(&s.mean_vth),
        snapshot::f64_slice_to_json(&s.max_vth),
        snapshot::f64_slice_to_json(&s.mttf_months),
        snapshot::f64_slice_to_json(&s.norm_ipc),
        snapshot::f64_slice_to_json(&s.active_pipelines),
        snapshot::f64_slice_to_json(&s.hottest_layer_temp)
    )
}

fn series_from_json(v: &Value) -> Result<LifetimeSeries, SnapshotError> {
    let floats = |key: &str| -> Result<Vec<f64>, SnapshotError> {
        crate::snapshot::json_to_f64_vec(snapshot::field(v, key)?)
    };
    let series = LifetimeSeries {
        months: floats("months")?,
        mean_vth: floats("mean_vth")?,
        max_vth: floats("max_vth")?,
        mttf_months: floats("mttf_months")?,
        norm_ipc: floats("norm_ipc")?,
        active_pipelines: floats("active_pipelines")?,
        hottest_layer_temp: floats("hottest_layer_temp")?,
    };
    let n = series.months.len();
    if [
        series.mean_vth.len(),
        series.max_vth.len(),
        series.mttf_months.len(),
        series.norm_ipc.len(),
        series.active_pipelines.len(),
        series.hottest_layer_temp.len(),
    ]
    .iter()
    .any(|&l| l != n)
    {
        return Err(SnapshotError::Malformed("series arrays have mismatched lengths".into()));
    }
    Ok(series)
}

/// The lifetime co-simulation driver.
#[derive(Debug)]
pub struct LifetimeSim {
    config: LifetimeConfig,
    physical: PhysicalModel,
    debug: Mutex<Option<ReplicaDebug>>,
}

impl LifetimeSim {
    /// Creates a simulation from a configuration (physical model defaults
    /// to the paper's Table III anchor).
    #[must_use]
    pub fn new(config: LifetimeConfig) -> Self {
        LifetimeSim { config, physical: PhysicalModel::table_iii(), debug: Mutex::new(None) }
    }

    /// Final-month per-stage wear/duty/temps of the last replica run.
    #[doc(hidden)]
    pub fn take_debug(&self) -> Option<ReplicaDebug> {
        self.debug.lock().take()
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &LifetimeConfig {
        &self.config
    }

    /// Runs all replicas and returns the averaged outcome.
    ///
    /// Replicas run in parallel over [`LifetimeConfig::threads`] workers.
    /// Each replica draws from its own deterministic seed and the
    /// per-replica series are accumulated in replica order, so the
    /// averaged outcome is bit-identical for any thread count.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Thermal`] if a thermal solve fails.
    pub fn run(&self) -> Result<LifetimeOutcome, EngineError> {
        let cfg = &self.config;
        let floorplan = Floorplan::opensparc_3d(cfg.layers);
        let grid = ThermalGrid::new(&floorplan, &cfg.grid);
        let cache = ThermalCache::new();

        type ReplicaResult = Result<(LifetimeSeries, Vec<f64>, Option<ReplicaDebug>), EngineError>;
        // Oversubscribing a CPU-bound replica loop only adds context
        // switches, so the worker count is clamped to the host's
        // parallelism (results are thread-count-invariant either way).
        let host = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        let threads = cfg.threads.max(1).min(cfg.replicas.max(1)).min(host);
        let mut results: Vec<Option<ReplicaResult>> = (0..cfg.replicas).map(|_| None).collect();
        if threads <= 1 {
            for (replica, slot) in results.iter_mut().enumerate() {
                *slot = Some(self.run_replica(replica, &grid, &cache));
            }
        } else {
            let chunk_len = cfg.replicas.div_ceil(threads);
            crossbeam::scope(|scope| {
                for (ci, chunk) in results.chunks_mut(chunk_len).enumerate() {
                    let (grid, cache) = (&grid, &cache);
                    scope.spawn(move |_| {
                        for (j, slot) in chunk.iter_mut().enumerate() {
                            *slot = Some(self.run_replica(ci * chunk_len + j, grid, cache));
                        }
                    });
                }
            })
            .expect("lifetime replica scope failed");
        }

        let mut acc = LifetimeSeries::default();
        let mut map = Vec::new();
        for (replica, result) in results.into_iter().enumerate() {
            let (series, hot_map, debug) = result.expect("replica not run")?;
            accumulate(&mut acc, &series, cfg.replicas as f64);
            if replica == 0 {
                map = hot_map;
            }
            if replica + 1 == cfg.replicas {
                *self.debug.lock() = debug;
            }
        }

        Ok(LifetimeOutcome {
            policy: cfg.policy,
            series: acc,
            initial_hot_layer_map: map,
            map_nx: cfg.grid.nx,
            map_ny: cfg.grid.ny,
        })
    }

    /// One full 8-year trajectory.
    fn run_replica(
        &self,
        replica: usize,
        grid: &ThermalGrid,
        cache: &ThermalCache,
    ) -> Result<(LifetimeSeries, Vec<f64>, Option<ReplicaDebug>), EngineError> {
        let mut rs = ReplicaState::fresh(&self.config, replica);
        while rs.month < self.config.months {
            self.step_month(&mut rs, grid, cache)?;
        }
        Ok((rs.series, rs.hot_map_month0, rs.debug_final))
    }

    /// Runs the sweep serially and durably: after every simulated month
    /// the observer receives the complete portable [`LifetimeRunState`]
    /// and may persist it ([`LifetimeRunState::save`]) and/or stop the
    /// run ([`ControlFlow::Break`]). Passing a previously captured state
    /// resumes mid-flight; the monthly step is the same code as
    /// [`run`](LifetimeSim::run), so a killed-and-resumed run produces a
    /// byte-identical outcome to an uninterrupted one.
    ///
    /// Returns `Ok(None)` when the observer stopped the run early,
    /// `Ok(Some(outcome))` on completion.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::ConfigMismatch`] (as [`EngineError::Snapshot`])
    /// when `resume` was captured under a different configuration;
    /// otherwise the same errors as [`run`](LifetimeSim::run), plus
    /// whatever the observer raises.
    pub fn run_durable<F>(
        &self,
        resume: Option<LifetimeRunState>,
        mut observe: F,
    ) -> Result<Option<LifetimeOutcome>, EngineError>
    where
        F: FnMut(&LifetimeRunState) -> Result<ControlFlow<()>, EngineError>,
    {
        let cfg = &self.config;
        let digest = config_digest(cfg);
        let nstages = cfg.layers * Unit::COUNT;
        let floorplan = Floorplan::opensparc_3d(cfg.layers);
        let grid = ThermalGrid::new(&floorplan, &cfg.grid);
        let cache = ThermalCache::new();

        let (mut cursor, mut live) = match resume {
            Some(st) => {
                if st.config_digest != digest {
                    return Err(SnapshotError::ConfigMismatch(format!(
                        "snapshot was captured under a different lifetime configuration \
                         (digest {:#018x}, this run is {:#018x})",
                        st.config_digest, digest
                    ))
                    .into());
                }
                if st.replica >= cfg.replicas || st.month > cfg.months {
                    return Err(SnapshotError::ConfigMismatch(format!(
                        "snapshot cursor (replica {}, month {}) lies outside the run \
                         ({} replicas x {} months)",
                        st.replica, st.month, cfg.replicas, cfg.months
                    ))
                    .into());
                }
                if st.alive.len() != nstages
                    || st.wear.len() != nstages
                    || st.last_temps.len() != nstages
                {
                    return Err(SnapshotError::ConfigMismatch(format!(
                        "snapshot stage vectors do not match the run's {nstages} stages"
                    ))
                    .into());
                }
                let rs = st.rebuild_replica(&grid)?;
                (DurableCursor { acc: st.acc, map: st.map }, rs)
            }
            None => (
                DurableCursor { acc: LifetimeSeries::default(), map: Vec::new() },
                ReplicaState::fresh(cfg, 0),
            ),
        };

        let debug;
        loop {
            while live.month < cfg.months {
                self.step_month(&mut live, &grid, &cache)?;
                let portable = LifetimeRunState::capture(&cursor, &live, digest);
                if observe(&portable)?.is_break() {
                    return Ok(None);
                }
            }
            accumulate(&mut cursor.acc, &live.series, cfg.replicas as f64);
            if live.replica == 0 {
                cursor.map = std::mem::take(&mut live.hot_map_month0);
            }
            let next = live.replica + 1;
            if next >= cfg.replicas {
                debug = live.debug_final.take();
                break;
            }
            live = ReplicaState::fresh(cfg, next);
        }
        *self.debug.lock() = debug;

        Ok(Some(LifetimeOutcome {
            policy: cfg.policy,
            series: cursor.acc,
            initial_hot_layer_map: cursor.map,
            map_nx: cfg.grid.nx,
            map_ny: cfg.grid.ny,
        }))
    }

    /// Advances one replica by one month. The whole monthly co-sim loop
    /// lives here so the parallel sweep ([`run`](LifetimeSim::run)) and
    /// the durable resumable runner ([`run_durable`](LifetimeSim::run_durable))
    /// execute the exact same code, which is what makes a resumed run
    /// byte-identical to an uninterrupted one.
    #[allow(clippy::too_many_lines)]
    fn step_month(
        &self,
        rs: &mut ReplicaState,
        grid: &ThermalGrid,
        cache: &ThermalCache,
    ) -> Result<(), EngineError> {
        let cfg = &self.config;
        let nstages = cfg.layers * Unit::COUNT;
        let nbti = NbtiModel::new(cfg.nbti);
        let rel = &cfg.reliability;
        let wanted = ((cfg.demand * cfg.pipelines as f64).round() as usize).max(1);
        let freq_factor = self.frequency_factor();
        let power_factor = self.power_factor();
        let unit_w = self.physical.unit_powers_w();
        let uncore_w = self.physical.uncore_power_w();
        let month = rs.month;

        // --- formation + duty assignment ---------------------------
        let alive_c = rs.alive.clone();
        let usable = move |s: StageId| alive_c[s.flat_index()];
        let formable = match cfg.policy {
            PolicyKind::NoRecon => core_level_formable(cfg.layers, &usable),
            _ => stage_level_formable(cfg.layers, &usable),
        };
        let active = formable.min(wanted);
        let duty = self.assign_duty(&rs.alive, &rs.last_temps, active, month);

        // --- power map + thermal solve ------------------------------
        rs.history_hash = chain_duty_hash(rs.history_hash, &duty);
        let solved = self.solve_temps(
            grid,
            &duty,
            &unit_w,
            uncore_w,
            power_factor,
            rs.history_hash,
            rs.warm.as_deref().map(|s| &s.field),
            cache,
        )?;
        let temps = solved.temps.clone();
        rs.warm = Some(solved);
        if month == 0 {
            rs.hot_map_month0 = hottest_layer_map(grid, &duty, &unit_w, uncore_w, power_factor)?;
        }

        // --- aging ---------------------------------------------------
        for s in 0..nstages {
            if rs.alive[s] {
                nbti.advance(&mut rs.wear[s], duty[s], temps[s], SECONDS_PER_MONTH);
            }
        }

        // --- metrics -------------------------------------------------
        let used: Vec<usize> = (0..nstages).filter(|&s| duty[s] > 0.02).collect();
        let mean_vth = if used.is_empty() {
            0.0
        } else {
            used.iter().map(|&s| rs.wear[s].vth_shift()).sum::<f64>() / used.len() as f64
        };
        let max_vth = rs.wear.iter().map(NbtiState::vth_shift).fold(0.0f64, f64::max);

        let rates: Vec<f64> = (0..nstages)
            .map(|s| {
                if rs.alive[s] {
                    self.hazard_rate(rel, temps[s], duty[s], rs.wear[s].vth_shift())
                } else {
                    0.0
                }
            })
            .collect();

        let mttf = self.forward_mttf(&rs.alive, &rates, wanted, month as u64);
        let norm_ipc = active as f64 / wanted as f64 * freq_factor;
        let hottest =
            (0..cfg.layers).map(|l| layer_mean(&temps, l)).fold(f64::NEG_INFINITY, f64::max);

        rs.series.months.push(month as f64);
        rs.series.mean_vth.push(mean_vth);
        rs.series.max_vth.push(max_vth);
        rs.series.mttf_months.push(mttf);
        rs.series.norm_ipc.push(norm_ipc);
        rs.series.active_pipelines.push(active as f64);
        rs.series.hottest_layer_temp.push(hottest);

        if month + 1 == cfg.months {
            rs.debug_final = Some(ReplicaDebug {
                wear: rs.wear.iter().map(NbtiState::vth_shift).collect(),
                duty: duty.clone(),
                temps: temps.clone(),
            });
        }

        // --- stochastic fault arrival for next month -----------------
        for (s, rate) in rates.iter().enumerate().take(nstages) {
            if rs.alive[s] {
                let p = 1.0 - (-rate).exp();
                if rs.rng.gen_bool(p.clamp(0.0, 1.0)) {
                    rs.alive[s] = false;
                }
            }
        }
        rs.last_temps = temps;
        rs.month += 1;
        Ok(())
    }

    /// Per-stage duty assignment for the month, per policy.
    fn assign_duty(
        &self,
        alive: &[bool],
        last_temps: &[f64],
        active: usize,
        month: usize,
    ) -> Vec<f64> {
        let cfg = &self.config;
        let nstages = cfg.layers * Unit::COUNT;
        let mut duty = vec![0.0f64; nstages];

        // The thermally-unaware baselines fill cores from the tier
        // *farthest* from the heat sink: the stack's I/O lands on the top
        // tier (the controller occupies the sink-side tier, §III-A), so a
        // naive allocator enumerates cores top-down. This reproduces the
        // paper's observed Static behaviour — its Fig. 6 map shows the
        // far-from-sink layer fully loaded and hot.
        match cfg.policy {
            PolicyKind::NoRecon => {
                // Top-down fully-healthy layers serve at full duty.
                let mut taken = 0;
                for layer in (0..cfg.layers).rev() {
                    if taken == active {
                        break;
                    }
                    if Unit::ALL.iter().all(|&u| alive[StageId::new(layer, u).flat_index()]) {
                        for u in Unit::ALL {
                            duty[StageId::new(layer, u).flat_index()] = 1.0;
                        }
                        taken += 1;
                    }
                }
            }
            PolicyKind::Static => {
                // Stage-level salvaging, but with the same top-down,
                // thermally-unaware preference as NoRecon.
                for u in Unit::ALL {
                    let mut healthy: Vec<usize> = (0..cfg.layers)
                        .filter(|&l| alive[StageId::new(l, u).flat_index()])
                        .collect();
                    healthy.reverse();
                    for &l in healthy.iter().take(active) {
                        duty[StageId::new(l, u).flat_index()] = 1.0;
                    }
                }
            }
            PolicyKind::Lite => {
                // Round-robin over the calibration window: every healthy
                // stage of a unit carries an equal share of the demand.
                for u in Unit::ALL {
                    let healthy: Vec<usize> = (0..cfg.layers)
                        .filter(|&l| alive[StageId::new(l, u).flat_index()])
                        .collect();
                    if healthy.is_empty() {
                        continue;
                    }
                    let share = (active as f64 / healthy.len() as f64).min(1.0);
                    for l in healthy {
                        duty[StageId::new(l, u).flat_index()] = share;
                    }
                }
                let _ = month;
            }
            PolicyKind::Pro => {
                // Eq. 1: duty follows the temperature-predicted activity
                // indices, clamped and water-filled to preserve the total.
                for u in Unit::ALL {
                    let healthy: Vec<usize> = (0..cfg.layers)
                        .filter(|&l| alive[StageId::new(l, u).flat_index()])
                        .collect();
                    if healthy.is_empty() {
                        continue;
                    }
                    // The paper: "Activity factors can either be
                    // determined offline based on the steady state
                    // temperature of cores for typical workloads
                    // (implicitly based on the location of cores), or at
                    // runtime based on the temperature and wear-out
                    // history. In this work, we use the steady state
                    // temperature method." The offline layer weights are
                    // that method; the runtime variant feeds measured
                    // block temperatures through Eq. 1 instead.
                    let alphas: Vec<f64> = if cfg.pro_runtime_temps && month > 0 {
                        let temps: Vec<f64> = healthy
                            .iter()
                            .map(|&l| last_temps[StageId::new(l, u).flat_index()])
                            .collect();
                        alpha_from_temperature(&temps, cfg.alpha_theta)
                    } else {
                        let w = pro_layer_weights(cfg.layers);
                        healthy.iter().map(|&l| w[l]).collect()
                    };
                    let shares = weighted_fill(&alphas, active as f64);
                    for (&l, &share) in healthy.iter().zip(&shares) {
                        duty[StageId::new(l, u).flat_index()] = share;
                    }
                }
            }
        }

        // Detection wearout: leftovers of repair-capable policies carry
        // the online-test duty.
        if cfg.policy.rotates() {
            for s in 0..nstages {
                if alive[s] && duty[s] == 0.0 {
                    duty[s] = cfg.reliability.detection_duty;
                }
            }
        }
        duty
    }

    /// Thermal solve for a duty vector, warm-started from the previous
    /// month's field and cached across replicas (duty trajectories repeat
    /// until a replica's fault map diverges).
    ///
    /// `key` must be the chained duty-history hash: it uniquely determines
    /// both the power map *and* the warm-start field, so cache insertion
    /// races between replicas are benign (both compute the same value).
    #[allow(clippy::too_many_arguments)]
    fn solve_temps(
        &self,
        grid: &ThermalGrid,
        duty: &[f64],
        unit_w: &[f64; 5],
        uncore_w: f64,
        power_factor: f64,
        key: u64,
        warm: Option<&TemperatureField>,
        cache: &ThermalCache,
    ) -> Result<Arc<SolvedMonth>, EngineError> {
        // Hold only this key's slot during the solve: replicas solving
        // different months proceed in parallel, and a replica wanting a
        // month already in flight waits for that result instead of
        // recomputing it. (An errored solve releases the slot empty, so
        // waiters retry the solve themselves.)
        let slot = cache.slot(key);
        let mut entry = slot.lock();
        if let Some(hit) = entry.as_ref() {
            return Ok(hit.clone());
        }
        let outcome = grid
            .steady_state_warm(&self.power_map(grid, duty, unit_w, uncore_w, power_factor), warm)
            .map_err(EngineError::Thermal)?;
        let cfg = &self.config;
        let mut temps = vec![0.0; cfg.layers * Unit::COUNT];
        for s in StageId::all(cfg.layers) {
            temps[s.flat_index()] = outcome
                .field
                .block_avg(r2d3_thermal::BlockId { layer: s.layer, unit: s.unit })
                .map_err(EngineError::Thermal)?;
        }
        let solved = Arc::new(SolvedMonth { temps, field: outcome.field });
        *entry = Some(solved.clone());
        Ok(solved)
    }

    fn power_map(
        &self,
        grid: &ThermalGrid,
        duty: &[f64],
        unit_w: &[f64; 5],
        uncore_w: f64,
        power_factor: f64,
    ) -> PowerMap {
        let cfg = &self.config;
        let fp = Floorplan::opensparc_3d(cfg.layers);
        let mut p = PowerMap::new(&fp);
        let _ = grid;
        for s in StageId::all(cfg.layers) {
            let d = duty[s.flat_index()];
            let watts = unit_w[s.unit.index()] * d * cfg.activity_weight * power_factor;
            p.add_block(s.layer, s.unit, watts);
        }
        // Uncore power scales with the layer's mean duty.
        for layer in 0..cfg.layers {
            let mean: f64 =
                Unit::ALL.iter().map(|&u| duty[StageId::new(layer, u).flat_index()]).sum::<f64>()
                    / Unit::COUNT as f64;
            // Spread uncore power over the layer's five blocks pro rata
            // by area (add_block accumulates onto unit blocks).
            for u in Unit::ALL {
                let frac = r2d3_thermal::grid::UNIT_AREA_MM2[u.index()]
                    / r2d3_thermal::grid::UNIT_AREA_MM2.iter().sum::<f64>();
                p.add_block(layer, u, uncore_w * mean * cfg.activity_weight * frac);
            }
        }
        p
    }

    /// Instantaneous per-stage hazard rate (per month).
    fn hazard_rate(&self, rel: &ReliabilityParams, temp_c: f64, duty: f64, vth: f64) -> f64 {
        let arrhenius = (rel.fault_ea_ev / BOLTZMANN_EV
            * (1.0 / kelvin(rel.ref_temp_c) - 1.0 / kelvin(temp_c)))
        .exp();
        let mut rate = rel.base_rate_per_month * arrhenius * (vth / rel.vth_accel_scale).exp();
        if rel.jep122 {
            // Competing risks: add the JEP122 mechanisms at this stage's
            // operating point. Current density and switching activity
            // scale with duty; the oxide field is nominal.
            let op = r2d3_aging::jep122::OperatingPoint {
                temp_c,
                j_rel: duty.max(0.05),
                activity: (duty * self.config.activity_weight).max(0.05),
                ..Default::default()
            };
            let composite = r2d3_aging::jep122::CompositeModel::default();
            let hours_per_month = SECONDS_PER_MONTH / 3600.0;
            rate += composite.rate_per_hour(&op) * hours_per_month;
        }
        rate
    }

    /// Forward MTTF (months) from the current state via Monte Carlo.
    ///
    /// See [`MttfCriterion`] for the failure definition.
    fn forward_mttf(&self, alive: &[bool], rates: &[f64], wanted: usize, salt: u64) -> f64 {
        let cfg = &self.config;
        let layers = cfg.layers;
        let policy = cfg.policy;
        let criterion = cfg.mttf_criterion;
        let base_alive = alive.to_vec();
        let formable_of = move |ok: &dyn Fn(StageId) -> bool| match policy {
            PolicyKind::NoRecon => core_level_formable(layers, ok),
            _ => stage_level_formable(layers, ok),
        };
        let alive_now = base_alive.clone();
        let level_now = match criterion {
            MttfCriterion::TotalLoss => 1,
            MttfCriterion::ServiceLevel => {
                formable_of(&move |s: StageId| alive_now[s.flat_index()]).min(wanted)
            }
        };
        if level_now == 0 {
            return 0.0;
        }
        let predicate = move |mask: &[bool]| {
            let ok = |s: StageId| base_alive[s.flat_index()] && mask[s.flat_index()];
            formable_of(&ok).min(wanted) >= level_now
        };
        let mc = MttfConfig {
            trials: cfg.mttf_trials,
            seed: cfg.seed ^ salt.wrapping_mul(0x517c_c1b7),
            survivor_horizon: 1e9,
        };
        mttf_monte_carlo(rates, predicate, &mc)
    }

    fn frequency_factor(&self) -> f64 {
        let variant = if self.config.policy.has_fabric() {
            DesignVariant::R2d3
        } else {
            DesignVariant::NoRecon
        };
        self.physical.design(variant).frequency_ghz / self.physical.nominal_ghz
    }

    fn power_factor(&self) -> f64 {
        if self.config.policy.has_fabric() {
            1.0 + self.physical.power_overhead
        } else {
            1.0
        }
    }
}

fn initial_temp_guess(layers: usize) -> Vec<f64> {
    // Warmer with layer distance from the sink; refined after month 0.
    StageId::all(layers).map(|s| 90.0 + 5.0 * s.layer as f64).collect()
}

fn layer_mean(temps: &[f64], layer: usize) -> f64 {
    let base = layer * Unit::COUNT;
    temps[base..base + Unit::COUNT].iter().sum::<f64>() / Unit::COUNT as f64
}

fn accumulate(acc: &mut LifetimeSeries, one: &LifetimeSeries, replicas: f64) {
    let w = 1.0 / replicas;
    if acc.months.is_empty() {
        acc.months = one.months.clone();
        acc.mean_vth = vec![0.0; one.months.len()];
        acc.max_vth = vec![0.0; one.months.len()];
        acc.mttf_months = vec![0.0; one.months.len()];
        acc.norm_ipc = vec![0.0; one.months.len()];
        acc.active_pipelines = vec![0.0; one.months.len()];
        acc.hottest_layer_temp = vec![0.0; one.months.len()];
    }
    for i in 0..one.months.len() {
        acc.mean_vth[i] += one.mean_vth[i] * w;
        acc.max_vth[i] += one.max_vth[i] * w;
        acc.mttf_months[i] += one.mttf_months[i] * w;
        acc.norm_ipc[i] += one.norm_ipc[i] * w;
        acc.active_pipelines[i] += one.active_pipelines[i] * w;
        acc.hottest_layer_temp[i] += one.hottest_layer_temp[i] * w;
    }
}

/// Solves the month-0 thermal map and extracts the hottest layer's cells.
fn hottest_layer_map(
    grid: &ThermalGrid,
    duty: &[f64],
    unit_w: &[f64; 5],
    uncore_w: f64,
    power_factor: f64,
) -> Result<Vec<f64>, EngineError> {
    let layers = grid.layers();
    let fp = Floorplan::opensparc_3d(layers);
    let mut p = PowerMap::new(&fp);
    for s in StageId::all(layers) {
        let watts = unit_w[s.unit.index()] * duty[s.flat_index()] * power_factor;
        p.add_block(s.layer, s.unit, watts);
    }
    for layer in 0..layers {
        let mean: f64 =
            Unit::ALL.iter().map(|&u| duty[StageId::new(layer, u).flat_index()]).sum::<f64>()
                / Unit::COUNT as f64;
        for u in Unit::ALL {
            let frac = r2d3_thermal::grid::UNIT_AREA_MM2[u.index()]
                / r2d3_thermal::grid::UNIT_AREA_MM2.iter().sum::<f64>();
            p.add_block(layer, u, uncore_w * mean * frac);
        }
    }
    let field = grid.steady_state(&p)?;
    let hot = field.hottest_layer();
    let per = grid.nx() * grid.ny();
    Ok(field.cells()[hot * per..(hot + 1) * per].to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config(policy: PolicyKind) -> LifetimeConfig {
        LifetimeConfig {
            months: 24,
            replicas: 3,
            mttf_trials: 60,
            grid: GridConfig { nx: 8, ny: 6, ..Default::default() },
            ..LifetimeConfig::new(policy, 0.75, 0.85)
        }
    }

    #[test]
    fn profile_measures_behavioral_substrate() {
        use r2d3_isa::kernels::gemv;
        use r2d3_pipeline_sim::{System3d, SystemConfig};
        let mut sys = System3d::new(&SystemConfig { pipelines: 4, ..Default::default() });
        for p in 0..4 {
            sys.load_program(p, gemv(16, 16, 3).program().clone()).unwrap();
        }
        let profile = profile_substrate(&mut sys, 20_000).unwrap();
        assert!(profile.ipc > 0.0, "no progress measured");
        assert!((profile.demand - 1.0).abs() < f64::EPSILON, "all 4 pipes were loaded");
        assert!(profile.activity_weight > 0.0 && profile.activity_weight <= 1.0);
        let config = LifetimeConfig::from_profile(PolicyKind::Pro, &profile);
        assert_eq!(config.demand, profile.demand);
        assert_eq!(config.activity_weight, profile.activity_weight);
    }

    #[test]
    fn profile_measures_netlist_substrate() {
        use crate::substrate::{NetlistSubstrate, NetlistSubstrateConfig};
        let mut sub = NetlistSubstrate::new(&NetlistSubstrateConfig {
            layers: 4,
            pipelines: 2,
            trace_capacity: 512,
            ..Default::default()
        });
        let profile = profile_substrate(&mut sub, 20_000).unwrap();
        assert!(profile.ipc > 0.0);
        assert!((profile.demand - 1.0).abs() < f64::EPSILON);
        assert!(profile.activity_weight > 0.0 && profile.activity_weight <= 1.0);
        assert!(profile_substrate(&mut sub, 0).is_err());
    }

    #[test]
    fn thread_count_is_bit_identical() {
        // Same config at 1 and 4 workers must produce the exact same
        // averaged series: deterministic per-replica seeds, trajectory-
        // keyed thermal cache, and replica-order accumulation.
        let mut serial = quick_config(PolicyKind::Static);
        serial.replicas = 6;
        serial.threads = 1;
        // Enough fault pressure that replica trajectories diverge.
        serial.reliability.base_rate_per_month = 0.02;
        let mut par = serial.clone();
        par.threads = 4;
        let a = LifetimeSim::new(serial).run().unwrap();
        let b = LifetimeSim::new(par).run().unwrap();
        assert_eq!(a.series, b.series, "averaged series must be bit-identical");
        assert_eq!(a.initial_hot_layer_map, b.initial_hot_layer_map);
    }

    #[test]
    fn series_has_expected_length() {
        let out = LifetimeSim::new(quick_config(PolicyKind::Static)).run().unwrap();
        assert_eq!(out.series.months.len(), 24);
        assert_eq!(out.initial_hot_layer_map.len(), 8 * 6);
    }

    #[test]
    fn vth_grows_monotonically() {
        let out = LifetimeSim::new(quick_config(PolicyKind::NoRecon)).run().unwrap();
        for w in out.series.max_vth.windows(2) {
            assert!(w[1] >= w[0] - 1e-9, "max ΔVth decreased: {w:?}");
        }
        assert!(out.series.max_vth.last().unwrap() > &0.01);
    }

    #[test]
    fn pro_ages_slower_than_norecon() {
        // Disable fault noise for a clean aging comparison.
        let mut pro_cfg = quick_config(PolicyKind::Pro);
        pro_cfg.reliability.base_rate_per_month = 0.0;
        let mut base_cfg = quick_config(PolicyKind::NoRecon);
        base_cfg.reliability.base_rate_per_month = 0.0;
        let pro = LifetimeSim::new(pro_cfg).run().unwrap();
        let base = LifetimeSim::new(base_cfg).run().unwrap();
        let pro_final = *pro.series.max_vth.last().unwrap();
        let base_final = *base.series.max_vth.last().unwrap();
        assert!(
            pro_final < base_final,
            "Pro ΔVth {pro_final:.4} should be below NoRecon {base_final:.4}"
        );
    }

    #[test]
    fn repairing_policies_sustain_more_throughput() {
        let mut cfg_static = quick_config(PolicyKind::Static);
        let mut cfg_norecon = quick_config(PolicyKind::NoRecon);
        // Accelerate failures so the 24-month window shows attrition.
        cfg_static.reliability.base_rate_per_month = 0.02;
        cfg_norecon.reliability.base_rate_per_month = 0.02;
        let st = LifetimeSim::new(cfg_static).run().unwrap();
        let nr = LifetimeSim::new(cfg_norecon).run().unwrap();
        let st_final = *st.series.active_pipelines.last().unwrap();
        let nr_final = *nr.series.active_pipelines.last().unwrap();
        assert!(
            st_final >= nr_final,
            "stage-level repair ({st_final:.2}) must keep at least as many pipelines as core-level loss ({nr_final:.2})"
        );
    }

    #[test]
    fn jep122_mechanisms_lower_mttf() {
        let base = quick_config(PolicyKind::Pro);
        let mut multi = base.clone();
        multi.reliability.jep122 = true;
        let a = LifetimeSim::new(base).run().unwrap();
        let b = LifetimeSim::new(multi).run().unwrap();
        assert!(
            b.series.mttf_months[0] < a.series.mttf_months[0],
            "adding mechanisms must lower MTTF: {} vs {}",
            b.series.mttf_months[0],
            a.series.mttf_months[0]
        );
    }

    #[test]
    fn mttf_declines_with_age() {
        // Strong ΔVth acceleration so 24 months of wear dominates the
        // Monte-Carlo noise of the forward-MTTF estimate.
        let mut cfg = quick_config(PolicyKind::Static);
        cfg.reliability.vth_accel_scale = 0.015;
        cfg.mttf_trials = 200;
        let out = LifetimeSim::new(cfg).run().unwrap();
        let head: f64 = out.series.mttf_months[..3].iter().sum::<f64>() / 3.0;
        let n = out.series.mttf_months.len();
        let tail: f64 = out.series.mttf_months[n - 3..].iter().sum::<f64>() / 3.0;
        assert!(tail < head * 0.95, "MTTF should decline: {head:.1} -> {tail:.1}");
    }

    /// Small config with enough fault pressure that RNG state, fault
    /// maps and warm-start fields all matter for byte-identity.
    fn durable_config() -> LifetimeConfig {
        let mut cfg = quick_config(PolicyKind::Pro);
        cfg.months = 10;
        cfg.replicas = 2;
        cfg.reliability.base_rate_per_month = 0.02;
        cfg
    }

    #[test]
    fn durable_run_matches_parallel_run() {
        let cfg = durable_config();
        let parallel = LifetimeSim::new(cfg.clone()).run().unwrap();
        let durable = LifetimeSim::new(cfg)
            .run_durable(None, |_| Ok(std::ops::ControlFlow::Continue(())))
            .unwrap()
            .expect("observer never breaks");
        assert_eq!(parallel.series, durable.series, "durable runner must be bit-identical");
        assert_eq!(parallel.initial_hot_layer_map, durable.initial_hot_layer_map);
    }

    #[test]
    fn run_state_codec_round_trips() {
        let dir = std::env::temp_dir().join("r2d3-lifetime-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("{}-codec", std::process::id()));

        let cfg = durable_config();
        let mut captured = None;
        LifetimeSim::new(cfg)
            .run_durable(None, |st| {
                // Month 7 of replica 1: RNG advanced, faults possible,
                // warm field present, replica 0 already accumulated.
                if st.replica() == 1 && st.month() == 7 {
                    captured = Some(st.clone());
                    return Ok(std::ops::ControlFlow::Break(()));
                }
                Ok(std::ops::ControlFlow::Continue(()))
            })
            .unwrap();
        let original = captured.expect("run reached replica 1, month 7");
        original.save(&path).unwrap();
        let reloaded = LifetimeRunState::load(&path).unwrap();
        assert_eq!(original, reloaded, "save -> load must be lossless");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn stop_and_resume_is_byte_identical() {
        let cfg = durable_config();
        let uninterrupted = LifetimeSim::new(cfg.clone())
            .run_durable(None, |_| Ok(std::ops::ControlFlow::Continue(())))
            .unwrap()
            .unwrap();

        // Stop after 13 months total (mid-replica-1), then resume.
        let mut steps = 0;
        let mut captured = None;
        LifetimeSim::new(cfg.clone())
            .run_durable(None, |st| {
                steps += 1;
                if steps == 13 {
                    captured = Some(st.clone());
                    return Ok(std::ops::ControlFlow::Break(()));
                }
                Ok(std::ops::ControlFlow::Continue(()))
            })
            .unwrap();
        let resumed = LifetimeSim::new(cfg)
            .run_durable(captured, |_| Ok(std::ops::ControlFlow::Continue(())))
            .unwrap()
            .unwrap();
        assert_eq!(uninterrupted.series, resumed.series, "resume must be bit-identical");
        assert_eq!(uninterrupted.initial_hot_layer_map, resumed.initial_hot_layer_map);
    }

    #[test]
    fn resume_under_different_config_is_typed_error() {
        let cfg = durable_config();
        let mut captured = None;
        LifetimeSim::new(cfg.clone())
            .run_durable(None, |st| {
                captured = Some(st.clone());
                Ok(std::ops::ControlFlow::Break(()))
            })
            .unwrap();

        let mut other = cfg;
        other.seed ^= 1;
        match LifetimeSim::new(other).run_durable(captured, |_| unreachable!()) {
            Err(EngineError::Snapshot(SnapshotError::ConfigMismatch(msg))) => {
                assert!(msg.contains("different lifetime configuration"), "msg: {msg}");
            }
            other => panic!("expected ConfigMismatch, got {other:?}"),
        }
    }
}
