//! Engine configuration.

use serde::{Deserialize, Serialize};

/// R2D3 engine parameters (§III-C and §III-E of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct R2d3Config {
    /// Epoch length in cycles (`T_epoch`): how often each stage is tested.
    pub t_epoch: u64,
    /// Online-test window in cycles (`T_test`): how many recent DUT
    /// operations the leftover re-executes at each epoch boundary. The
    /// paper selects 5 k cycles as the coverage/power sweet spot (§V-B).
    pub t_test: u64,
    /// Calibration window in cycles (`T_cal`): how often the lifetime
    /// policies re-evaluate activity indices and rotate leftovers. The
    /// paper uses 5 ms = 5 M cycles at 1 GHz.
    pub t_cal: u64,
    /// Which rotation policy the engine applies at calibration boundaries.
    pub policy: crate::policy::PolicyKind,
    /// When no leftover of a unit type exists, temporarily suspend another
    /// core to provide the redundant stage (paper: "extremely rare"). If
    /// `false`, the test is skipped for that unit.
    pub suspend_when_no_leftover: bool,
    /// Epoch-committed checkpointing for post-repair recovery; `None`
    /// restarts corrupted programs from the beginning.
    pub checkpoint: Option<crate::checkpoint::CheckpointConfig>,
    /// Decaying symptom-history escalation for intermittent faults: a
    /// stage whose "transient" verdicts recur densely enough is
    /// quarantined as if diagnosed permanent. `None` trusts every
    /// transient verdict forever (the paper's baseline dichotomy).
    pub escalation: Option<crate::history::EscalationConfig>,
    /// How many *additional* third voters the diagnosis tries after an
    /// inconclusive TMR vote before giving up and double-quarantining
    /// the comparison pair. Retries cost one replay each and can tell
    /// a two-fault pair apart when any healthy same-unit stage remains.
    pub inconclusive_retries: u32,
    /// Roll corrupted pipelines back to their last validated checkpoint
    /// after a transient verdict. Without this the engine "classifies
    /// and forgets": the architectural state poisoned by the consumed
    /// upset keeps executing — a silent-corruption hole.
    pub rollback_on_transient: bool,
    /// Compare every crossbar select register against the controller's
    /// routing intent at each epoch boundary and rewrite registers that
    /// disagree (an SEU in the mux-select silently feeds a pipeline the
    /// wrong layer's stage). Without this the engine never notices a
    /// misroute: data keeps flowing from the wrong stage — the
    /// `misrouted_undetected` hole in the campaign taxonomy.
    pub route_scrub: bool,
}

impl Default for R2d3Config {
    fn default() -> Self {
        R2d3Config {
            t_epoch: 20_000,
            t_test: 5_000,
            t_cal: 5_000_000,
            policy: crate::policy::PolicyKind::Pro,
            suspend_when_no_leftover: true,
            checkpoint: Some(crate::checkpoint::CheckpointConfig::default()),
            escalation: Some(crate::history::EscalationConfig::default()),
            inconclusive_retries: 2,
            rollback_on_transient: true,
            route_scrub: true,
        }
    }
}

impl R2d3Config {
    /// Validates parameter consistency.
    ///
    /// # Errors
    ///
    /// Returns [`crate::EngineError::InvalidConfig`] when `t_test` is zero
    /// or exceeds `t_epoch`, or when `t_cal < t_epoch`.
    pub fn validate(&self) -> Result<(), crate::EngineError> {
        if self.t_test == 0 {
            return Err(crate::EngineError::InvalidConfig("t_test must be positive".into()));
        }
        if self.t_test > self.t_epoch {
            return Err(crate::EngineError::InvalidConfig("t_test cannot exceed t_epoch".into()));
        }
        if self.t_cal < self.t_epoch {
            return Err(crate::EngineError::InvalidConfig(
                "t_cal must be at least one epoch".into(),
            ));
        }
        if let Some(escalation) = &self.escalation {
            escalation.validate()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        R2d3Config::default().validate().unwrap();
    }

    #[test]
    fn rejects_inconsistent_windows() {
        let bad = R2d3Config { t_test: 0, ..Default::default() };
        assert!(bad.validate().is_err());
        let bad = R2d3Config { t_test: 10, t_epoch: 5, ..Default::default() };
        assert!(bad.validate().is_err());
        let bad = R2d3Config { t_cal: 10, t_epoch: 100, ..Default::default() };
        assert!(bad.validate().is_err());
    }
}
