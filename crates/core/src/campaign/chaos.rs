//! Chaos torture harness: seeded fault schedules over the durable stack.
//!
//! Each *schedule* takes one durable subsystem — snapshot container,
//! durable campaign, durable lifetime, telemetry stream sink, or the
//! serve job store — puts it on a [`FaultyFs`] with a deterministically
//! derived [`FaultPlan`] (torn writes, fsync/rename failures, ENOSPC
//! windows, a crash point), runs a workload against it, and checks the
//! reliability contract the rest of the crate promises:
//!
//! * **No panics.** Every fault surfaces as a typed error.
//! * **No silent corruption.** A durable artifact read back at any
//!   point — including after a crash rollback — is a byte-exact
//!   previously written version, never garbage. Digest/format errors
//!   from a *committed* artifact are violations.
//! * **Byte-identical resume.** A campaign or lifetime run that
//!   crashes and resumes from its checkpoint produces exactly the
//!   report an uninterrupted run produces ([`PartialEq`] on the report
//!   structures, which is the same as comparing rendered bytes).
//! * **Exact accounting.** Stream sinks reconcile
//!   `recorded == written + dropped` whenever they finish cleanly, and
//!   fail with a typed error otherwise.
//!
//! Schedules are pure functions of `(seed, index)`: a failing index
//! reproduces by itself, which is what makes `r2d3 chaos --seed S`
//! a regression command rather than a flake generator.

use super::durable::{run_shard, CampaignState, ShardReport, ShardSpec};
use super::runner::{CampaignConfig, SubstrateKind};
use crate::api::wire::JobState;
use crate::api::JobSpec;
use crate::chaos::{injected_fault, splitmix64, FaultPlan, FaultyFs, InjectedFault, IoEnv, Vfs};
use crate::lifetime::{LifetimeConfig, LifetimeOutcome, LifetimeSim};
use crate::policy::PolicyKind;
use crate::serve::store::JobRec;
use crate::snapshot::{self, SnapshotError};
use crate::telemetry::{
    validate_json_lines, OverflowPolicy, StreamSink, TelemetryEvent, TelemetryRecord, TelemetrySink,
};
use crate::EngineError;
use r2d3_thermal::GridConfig;
use std::fmt::Write as _;
use std::ops::ControlFlow;
use std::path::Path;
use std::sync::Arc;

/// The durable subsystems a schedule can torture, in rotation order.
pub const CHAOS_TARGETS: [&str; 5] = ["snapshot", "campaign", "lifetime", "stream", "serve-store"];

/// Most re-run attempts a single schedule may take to drive its
/// workload to completion through the fault plan. Probabilistic faults
/// have 1-in-N odds per op with fresh op indices every attempt, so a
/// schedule that can complete at all converges far below this; hitting
/// the bound is itself reported as a violation.
const MAX_ATTEMPTS: u32 = 64;

/// Chaos sweep configuration.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Master seed; schedule `i` derives its plan from `(seed, i)`.
    pub seed: u64,
    /// Fault schedules to run (rotating over [`CHAOS_TARGETS`]).
    pub schedules: u64,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig { seed: 0xC4A0, schedules: 256 }
    }
}

/// Outcome of a chaos sweep. `violations` empty means every schedule
/// upheld the contract.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosReport {
    /// Master seed the sweep ran under.
    pub seed: u64,
    /// Schedules executed.
    pub schedules: u64,
    /// Schedules per target, in [`CHAOS_TARGETS`] order.
    pub per_target: [u64; 5],
    /// Crash points that fired (each followed by a restart + recovery).
    pub crashes: u64,
    /// Typed injected faults observed (non-crash).
    pub faults: u64,
    /// Contract violations, each tagged with its schedule index — a
    /// failing index replays alone via the same seed.
    pub violations: Vec<String>,
}

impl ChaosReport {
    /// Whether every schedule upheld the reliability contract.
    #[must_use]
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// Deterministic human-readable rendering.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "chaos sweep: seed {:#x}, {} schedule(s)", self.seed, self.schedules);
        for (name, runs) in CHAOS_TARGETS.iter().zip(self.per_target) {
            let _ = writeln!(out, "  {name:<12} {runs} schedule(s)");
        }
        let _ = writeln!(out, "  crashes injected   {}", self.crashes);
        let _ = writeln!(out, "  faults injected    {}", self.faults);
        if self.violations.is_empty() {
            let _ = writeln!(out, "  contract           upheld (0 violations)");
        } else {
            let _ = writeln!(out, "  VIOLATIONS         {}", self.violations.len());
            for v in &self.violations {
                let _ = writeln!(out, "    - {v}");
            }
        }
        out
    }
}

/// Counters one schedule feeds back into the sweep report.
#[derive(Default)]
struct Tally {
    crashes: u64,
    faults: u64,
}

/// Derives schedule `i`'s fault plan from the master seed. Half the
/// schedules carry a crash point; the rest mix probabilistic faults
/// and occasional ENOSPC pressure windows.
fn plan_for(seed: u64, schedule: u64) -> FaultPlan {
    let h = splitmix64(seed ^ schedule.wrapping_mul(0xA5A5_5A5A_0F0F_F0F0).wrapping_add(1));
    let crash = h & 1 == 0;
    FaultPlan {
        seed: splitmix64(h),
        torn_write_in: 3 + ((h >> 8) as u32 % 4),
        enospc_in: if (h >> 2) & 7 == 0 { 9 } else { 0 },
        fsync_fail_in: 4 + ((h >> 16) as u32 % 4),
        rename_fail_in: 6 + ((h >> 24) as u32 % 4),
        crash_at: crash.then(|| 4 + ((h >> 32) % 48)),
        enospc_window: (!crash && (h >> 5) & 3 == 0)
            .then(|| ((h >> 40) % 24, (h >> 40) % 24 + 8 + (h >> 48) % 16)),
    }
}

fn injected_in_snap(e: &SnapshotError) -> Option<InjectedFault> {
    match e {
        SnapshotError::Io(io) => injected_fault(io),
        _ => None,
    }
}

fn injected_in_engine(e: &EngineError) -> Option<InjectedFault> {
    match e {
        EngineError::Snapshot(s) => injected_in_snap(s),
        _ => None,
    }
}

/// Runs the whole sweep. Never panics and never errors: everything a
/// schedule can do wrong lands in [`ChaosReport::violations`].
#[must_use]
pub fn run_chaos(config: &ChaosConfig) -> ChaosReport {
    let mut report = ChaosReport {
        seed: config.seed,
        schedules: config.schedules,
        per_target: [0; 5],
        crashes: 0,
        faults: 0,
        violations: Vec::new(),
    };
    for i in 0..config.schedules {
        let target = (i % CHAOS_TARGETS.len() as u64) as usize;
        report.per_target[target] += 1;
        let plan = plan_for(config.seed, i);
        let mut tally = Tally::default();
        let result = match target {
            0 => torture_snapshot(&plan, i, &mut tally),
            1 => torture_campaign(&plan, i, &mut tally),
            2 => torture_lifetime(&plan, i, &mut tally),
            3 => torture_stream(&plan, i, &mut tally),
            _ => torture_store(&plan, i, &mut tally),
        };
        report.crashes += tally.crashes;
        report.faults += tally.faults;
        if let Err(v) = result {
            report.violations.push(format!("schedule {i} ({}): {v}", CHAOS_TARGETS[target]));
        }
    }
    report
}

/// Creates a scratch directory *durably* (created and dir-synced under
/// whatever plan is active — call before arming faults): the schedules
/// torture the artifacts inside the directory, not the fixture itself.
fn scratch_dir(fs: &FaultyFs, dir: &Path) -> Result<(), String> {
    fs.create_dir_all(dir).map_err(|e| e.to_string())?;
    fs.sync_dir(dir).map_err(|e| e.to_string())
}

/// Reads `path` through the fault-free [`MemFs`] view and checks it is
/// a byte-exact member of `allowed` — the no-silent-corruption check.
fn check_visible(
    fs: &FaultyFs,
    path: &Path,
    kind: &'static str,
    allowed: &[&[u8]],
    ctx: &str,
) -> Result<(), String> {
    let mem = fs.mem();
    match snapshot::read_verified_with(&mem, path, kind) {
        Ok(body) => {
            if allowed.contains(&body.as_bytes()) {
                Ok(())
            } else {
                Err(format!("{ctx}: visible body is none of the written versions"))
            }
        }
        Err(e) => Err(format!("{ctx}: committed artifact unreadable: {e}")),
    }
}

/// Target 0: the `R2D3SNAP` atomic-write container itself. Generations
/// of bodies are written through the fault plan; at every failure the
/// visible artifact must still be a previously written generation, and
/// after a crash rollback it must be exactly the last *committed* one.
fn torture_snapshot(plan: &FaultPlan, schedule: u64, tally: &mut Tally) -> Result<(), String> {
    let fs = FaultyFs::new(FaultPlan::clean());
    let dir = Path::new("/chaos");
    let path = dir.join("state.r2d3s");
    scratch_dir(&fs, dir)?;
    let seed_tag = splitmix64(plan.seed);
    let gen_body = |g: u64| format!("generation {g} of schedule {schedule} ({seed_tag:016x})");

    // Generation 0 commits fault-free: a durable baseline always exists.
    snapshot::write_atomic_with(&fs, &path, "chaos", gen_body(0).as_bytes())
        .map_err(|e| format!("clean baseline write failed: {e}"))?;
    let mut committed = gen_body(0).into_bytes();
    // Bodies that may be *visible* (renamed into place) without being
    // durable yet — acceptable to observe until the next crash.
    let mut pending: Vec<Vec<u8>> = Vec::new();

    fs.set_plan(plan.clone());
    for g in 1..=8u64 {
        let body = gen_body(g).into_bytes();
        match snapshot::write_atomic_with(&fs, &path, "chaos", &body) {
            Ok(()) => {
                committed = body;
                pending.clear();
            }
            Err(e) => match injected_in_snap(&e) {
                Some(InjectedFault::Crash) => {
                    tally.crashes += 1;
                    fs.restart();
                    // Rollback: only the dir-synced generation survives.
                    check_visible(&fs, &path, "chaos", &[&committed], "after crash rollback")?;
                    pending.clear();
                }
                Some(_) => {
                    tally.faults += 1;
                    // The write may have landed (rename done, dir sync
                    // failed) or not; either way the artifact must read
                    // back as one exact written version.
                    pending.push(body);
                    let mut allowed: Vec<&[u8]> = vec![&committed];
                    allowed.extend(pending.iter().map(Vec::as_slice));
                    check_visible(&fs, &path, "chaos", &allowed, "after injected fault")?;
                }
                None => return Err(format!("untyped write error: {e}")),
            },
        }
    }
    let mut allowed: Vec<&[u8]> = vec![&committed];
    allowed.extend(pending.iter().map(Vec::as_slice));
    check_visible(&fs, &path, "chaos", &allowed, "final state")
}

/// Drives a durable runner to completion through the fault plan:
/// `run_once(resume)` executes (checkpointing through the faulty fs)
/// and `reload()` recovers the checkpoint after a failure. Returns the
/// completed value and counts crashes/faults into the tally.
fn drive<T, S>(
    fs: &FaultyFs,
    tally: &mut Tally,
    mut run_once: impl FnMut(Option<S>) -> Result<T, (Option<InjectedFault>, String)>,
    mut reload: impl FnMut() -> Option<S>,
) -> Result<T, String> {
    let mut resume: Option<S> = None;
    for _ in 0..MAX_ATTEMPTS {
        match run_once(resume.take()) {
            Ok(done) => return Ok(done),
            Err((Some(InjectedFault::Crash), _)) => {
                tally.crashes += 1;
                fs.restart();
                resume = reload();
            }
            Err((Some(_), _)) => {
                tally.faults += 1;
                resume = reload();
            }
            Err((None, msg)) => return Err(format!("untyped durable-run error: {msg}")),
        }
    }
    Err(format!("schedule did not converge within {MAX_ATTEMPTS} attempts"))
}

/// Target 1: the durable campaign runner. A clean reference run fixes
/// the expected report; the chaos run checkpoints through the faulty
/// fs, crashes, resumes — and must produce the identical report.
fn torture_campaign(plan: &FaultPlan, schedule: u64, tally: &mut Tally) -> Result<(), String> {
    let config = CampaignConfig {
        seed: splitmix64(plan.seed ^ 0xCA),
        scenarios_per_substrate: 3,
        substrates: vec![SubstrateKind::Behavioral],
        ..Default::default()
    };
    let shard = ShardSpec::new(1, 1).map_err(|e| e.to_string())?;
    let reference: ShardReport = run_shard(&config, shard, None, |_| Ok(ControlFlow::Continue(())))
        .map_err(|e| format!("clean reference run failed: {e}"))?
        .expect("observer never breaks");

    let fs = FaultyFs::new(FaultPlan::clean());
    let dir = Path::new("/campaign");
    let path = dir.join("unit.state.r2d3s");
    scratch_dir(&fs, dir)?;
    fs.set_plan(plan.clone());
    let env = IoEnv::with_vfs(Arc::new(fs.clone()));

    let torture = drive(
        &fs,
        tally,
        |resume| {
            run_shard(&config, shard, resume, |st| {
                env.retry_snapshot(|| st.save_with(env.vfs.as_ref(), &path))?;
                Ok(ControlFlow::Continue(()))
            })
            .map(|r| r.expect("observer never breaks"))
            .map_err(|e| (injected_in_snap(&e), e.to_string()))
        },
        || CampaignState::load_with(&fs.mem(), &path).ok(),
    )?;
    if torture == reference {
        Ok(())
    } else {
        Err(format!("resumed campaign report diverged from clean run (schedule {schedule})"))
    }
}

/// Target 2: the durable lifetime runner, same contract as the
/// campaign — crash, resume from checkpoint, byte-identical outcome.
fn torture_lifetime(plan: &FaultPlan, schedule: u64, tally: &mut Tally) -> Result<(), String> {
    let config = LifetimeConfig {
        months: 2,
        replicas: 1,
        threads: 1,
        mttf_trials: 16,
        seed: splitmix64(plan.seed ^ 0x11FE) | 1,
        grid: GridConfig { nx: 6, ny: 4, ..Default::default() },
        ..LifetimeConfig::new(PolicyKind::Pro, 0.75, 0.85)
    };
    let sim = LifetimeSim::new(config);
    let reference: LifetimeOutcome = sim
        .run_durable(None, |_| Ok(ControlFlow::Continue(())))
        .map_err(|e| format!("clean reference run failed: {e}"))?
        .expect("observer never breaks");

    let fs = FaultyFs::new(FaultPlan::clean());
    let dir = Path::new("/lifetime");
    let path = dir.join("unit.state.r2d3s");
    scratch_dir(&fs, dir)?;
    fs.set_plan(plan.clone());
    let env = IoEnv::with_vfs(Arc::new(fs.clone()));

    let torture = drive(
        &fs,
        tally,
        |resume| {
            sim.run_durable(resume, |st| {
                env.retry_snapshot(|| st.save_with(env.vfs.as_ref(), &path))
                    .map_err(EngineError::Snapshot)?;
                Ok(ControlFlow::Continue(()))
            })
            .map(|r| r.expect("observer never breaks"))
            .map_err(|e| (injected_in_engine(&e), e.to_string()))
        },
        || crate::lifetime::LifetimeRunState::load_with(&fs.mem(), &path).ok(),
    )?;
    if torture == reference {
        Ok(())
    } else {
        Err(format!("resumed lifetime outcome diverged from clean run (schedule {schedule})"))
    }
}

/// Target 3: the telemetry stream sink. The writer thread runs on the
/// faulty fs; whatever happens, the sink must finish with exact
/// accounting or a typed error — and the bytes on disk must be intact
/// JSON lines (a torn tail is allowed, mid-file garbage is not).
fn torture_stream(plan: &FaultPlan, schedule: u64, tally: &mut Tally) -> Result<(), String> {
    let fs = FaultyFs::new(FaultPlan::clean());
    let dir = Path::new("/stream");
    let path = dir.join("trace.jsonl");
    scratch_dir(&fs, dir)?;
    fs.set_plan(plan.clone());
    let policy = if schedule & 8 == 0 { OverflowPolicy::Block } else { OverflowPolicy::Drop };

    let total = 120u64;
    let mut sink = match StreamSink::to_file_with(&fs, &path, policy) {
        Ok(s) => s,
        Err(e) if injected_fault(&e).is_some() => {
            // The create itself faulted — a typed error, contract held.
            tally.faults += 1;
            return Ok(());
        }
        Err(e) => return Err(format!("untyped create error: {e}")),
    };
    for i in 0..total {
        sink.record(TelemetryRecord {
            epoch: i,
            cycle: i * 10,
            event: TelemetryEvent::Scan { tested: 3, untested: 0, detections: 0 },
        });
    }
    let clean_finish = match sink.finish() {
        Ok(stats) => {
            if stats.recorded != total {
                return Err(format!("recorded {} of {total} records", stats.recorded));
            }
            if stats.recorded != stats.written + stats.dropped {
                return Err(format!(
                    "accounting does not reconcile: {} != {} + {}",
                    stats.recorded, stats.written, stats.dropped
                ));
            }
            true
        }
        Err(e) if injected_fault(&e).is_some() => {
            // Typed error: the log is declared suspect, which is the
            // contract — a fault may leave a torn tail behind.
            tally.faults += 1;
            false
        }
        Err(e) => return Err(format!("untyped stream error: {e}")),
    };
    if fs.crashed() {
        tally.crashes += 1;
        fs.restart();
    }

    // A *clean* finish promised intact output: every line must parse.
    if clean_finish {
        let raw = fs.mem().read(&path).map_err(|e| format!("clean log unreadable: {e}"))?;
        let text = String::from_utf8_lossy(&raw);
        validate_json_lines(&text)
            .map_err(|e| format!("corruption in cleanly finished stream log: {e}"))?;
    }
    Ok(())
}

/// Target 4: the serve job store. Job manifests are saved through an
/// [`IoEnv`] with retry (exactly as the daemon does), crashed over,
/// and must always load back as an exact previously saved lifecycle
/// state.
fn torture_store(plan: &FaultPlan, schedule: u64, tally: &mut Tally) -> Result<(), String> {
    let fs = FaultyFs::new(FaultPlan::clean());
    let state_dir = Path::new("/serve");
    let spec = JobSpec::lifetime()
        .months(1)
        .seed(splitmix64(plan.seed ^ schedule))
        .build()
        .map_err(|e| e.to_string())?;
    let mut rec = JobRec::new(0x2a, 1, "chaos".into(), spec);
    scratch_dir(&fs, &JobRec::dir(state_dir, rec.id))?;
    let env = IoEnv::with_vfs(Arc::new(fs.clone()));
    rec.save(&env, state_dir).map_err(|e| format!("clean baseline save failed: {e}"))?;

    fs.set_plan(plan.clone());
    let states = [JobState::Running, JobState::Degraded, JobState::Running, JobState::Completed];
    let mut committed = (rec.state, rec.unit_progress[0]);
    let mut pending: Vec<(JobState, u64)> = Vec::new();
    for (g, state) in states.iter().enumerate() {
        rec.state = *state;
        rec.unit_progress[0] = g as u64 + 1;
        rec.error = (*state == JobState::Degraded).then(|| "disk pressure".to_string());
        match rec.save(&env, state_dir) {
            Ok(()) => {
                committed = (rec.state, rec.unit_progress[0]);
                pending.clear();
            }
            Err(e) => match injected_in_snap(&e) {
                Some(InjectedFault::Crash) => {
                    tally.crashes += 1;
                    fs.restart();
                    pending.clear();
                    let back = load_manifest(&fs, state_dir, rec.id)?;
                    if (back.state, back.unit_progress[0]) != committed {
                        return Err(
                            "manifest after crash rollback is not the committed version".into()
                        );
                    }
                }
                Some(_) => {
                    tally.faults += 1;
                    pending.push((rec.state, rec.unit_progress[0]));
                    let back = load_manifest(&fs, state_dir, rec.id)?;
                    let got = (back.state, back.unit_progress[0]);
                    if got != committed && !pending.contains(&got) {
                        return Err("manifest after fault is none of the saved versions".into());
                    }
                }
                None => return Err(format!("untyped manifest save error: {e}")),
            },
        }
    }
    Ok(())
}

fn load_manifest(fs: &FaultyFs, state_dir: &Path, id: u64) -> Result<JobRec, String> {
    let mem = fs.mem();
    JobRec::load(&mem, &JobRec::manifest_path(state_dir, id))
        .map_err(|e| format!("committed manifest unreadable: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_deterministic_and_diverse() {
        let a = plan_for(7, 3);
        assert_eq!(a, plan_for(7, 3));
        assert_ne!(a, plan_for(7, 4));
        let crashes = (0..64).filter(|i| plan_for(7, *i).crash_at.is_some()).count();
        assert!(crashes > 16 && crashes < 48, "crash mix should be near half, got {crashes}");
    }

    /// One schedule per target, fixed seed — the cheap always-on check;
    /// `tests/chaos.rs` runs the full 256-schedule sweep.
    #[test]
    fn five_schedule_smoke_upholds_contract() {
        let report = run_chaos(&ChaosConfig { seed: 0x5EED, schedules: 5 });
        assert_eq!(report.per_target, [1, 1, 1, 1, 1]);
        assert!(report.ok(), "violations: {:?}", report.violations);
        assert!(report.render().contains("contract"));
    }
}
