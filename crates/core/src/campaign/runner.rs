//! Campaign execution: run scenarios end-to-end, classify outcomes.
//!
//! Each scenario gets a fresh substrate and a fresh engine; the runner
//! applies the scenario's injections at their epochs, drives
//! [`R2d3Engine::run_epoch`] for the scenario's duration, and classifies
//! what the engine did about it. The runner manages *workload* (restarts
//! pipelines whose program ran dry) but never repairs *corruption* — a
//! tainted pipeline the engine failed to recover must remain visible as a
//! silent-corruption verdict.

use crate::campaign::adversary::Adversary;
use crate::campaign::scenario::{
    generate_scenarios_with, truth_defective, truth_links, FaultKind, FaultScenario, KindId,
    ScenarioSpace,
};
use crate::campaign::shrink::shrink_scenario;
use crate::checkpoint::CheckpointConfig;
use crate::config::R2d3Config;
use crate::engine::{EngineEvent, R2d3Engine};
use crate::history::EscalationConfig;
use crate::policy::PolicyKind;
use crate::substrate::{LinkFault, NetlistSubstrate, NetlistSubstrateConfig, ReliabilitySubstrate};
use crate::telemetry::{
    Histogram, MetricsSnapshot, NullSink, RingSink, TelemetryRecord, TelemetrySink,
    DETECTION_LATENCY_BOUNDS, REPLAY_COUNT_BOUNDS,
};
use r2d3_isa::kernels::trap_mix;
use r2d3_isa::{Program, Unit};
use r2d3_netlist::stages::StageNetlist;
use r2d3_pipeline_sim::{StageId, System3d, SystemConfig};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Which substrate a sweep runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SubstrateKind {
    /// Instruction-level behavioral simulator ([`System3d`]).
    Behavioral,
    /// Synthesized gate-level stage netlists ([`NetlistSubstrate`]).
    Netlist,
}

impl SubstrateKind {
    /// Stable report name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            SubstrateKind::Behavioral => "behavioral",
            SubstrateKind::Netlist => "netlist",
        }
    }
}

/// End-to-end verdict on one scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Outcome {
    /// The fault never manifested architecturally and nothing fired.
    Benign,
    /// The engine saw the fault and handled it; the final state is clean
    /// and nothing healthy was condemned.
    DetectedRepaired,
    /// A crossbar mux-select upset was caught by the route scrub and the
    /// select register rewritten; the final state is clean.
    Rerouted,
    /// The engine attributed the symptoms to a vertical link, quarantined
    /// the link (a routing constraint — the stage behind it stays in
    /// service) and rerouted around it; the final state is clean.
    LinkQuarantined,
    /// The engine quarantined hardware the scenario never broke (beyond
    /// the documented inconclusive double-quarantine).
    Misdiagnosed,
    /// A pipeline still latches a layer other than the controller's
    /// routing intent at scenario end — the crossbar upset outlived every
    /// detection mechanism.
    MisroutedUndetected,
    /// Corrupted architectural state survived to the end of the scenario
    /// — or a poisoned checkpoint was restored — without the engine
    /// knowing.
    SilentCorruption,
    /// `run_epoch` returned an error.
    EngineFailure,
}

impl Outcome {
    /// Stable report name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Outcome::Benign => "benign",
            Outcome::DetectedRepaired => "detected_repaired",
            Outcome::Rerouted => "rerouted",
            Outcome::LinkQuarantined => "link_quarantined",
            Outcome::Misdiagnosed => "misdiagnosed",
            Outcome::MisroutedUndetected => "misrouted_undetected",
            Outcome::SilentCorruption => "silent_corruption",
            Outcome::EngineFailure => "engine_failure",
        }
    }

    /// All outcomes in fixed report order.
    pub const ALL: [Outcome; 8] = [
        Outcome::Benign,
        Outcome::DetectedRepaired,
        Outcome::Rerouted,
        Outcome::LinkQuarantined,
        Outcome::Misdiagnosed,
        Outcome::MisroutedUndetected,
        Outcome::SilentCorruption,
        Outcome::EngineFailure,
    ];

    /// Whether the engine got this scenario *wrong* (shrink-worthy).
    #[must_use]
    pub fn is_failure(&self) -> bool {
        matches!(
            self,
            Outcome::Misdiagnosed
                | Outcome::MisroutedUndetected
                | Outcome::SilentCorruption
                | Outcome::EngineFailure
        )
    }
}

/// Engine-event tallies over one scenario.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EventCounts {
    /// Checker firings.
    pub symptoms: u64,
    /// Transient verdicts.
    pub transients: u64,
    /// Permanent diagnoses.
    pub permanents: u64,
    /// Inconclusive votes (double-quarantines).
    pub inconclusives: u64,
    /// Symptom-history escalations.
    pub escalations: u64,
    /// Pipeline recoveries (rollback or restart).
    pub recoveries: u64,
    /// Checkpoint-integrity rejections.
    pub checkpoint_corruptions: u64,
    /// Route-scrub rewrites of upset mux-select registers.
    pub reroutes: u64,
    /// Vertical-link quarantines (routing constraints, not stage
    /// retirements).
    pub link_quarantines: u64,
}

/// One scenario's result on one substrate.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScenarioResult {
    /// Scenario id (stable across substrates).
    pub id: u32,
    /// Fault-kind name.
    pub kind: &'static str,
    /// Classified verdict.
    pub outcome: Outcome,
    /// Event tallies.
    pub counts: EventCounts,
    /// Minimal reproduction, present for failure outcomes when shrinking
    /// is enabled.
    pub shrunk: Option<FaultScenario>,
}

/// Engine metrics aggregated over one substrate sweep. Derived from
/// [`MetricsSnapshot`]s, which accumulate independently of the
/// telemetry sink — so a traced campaign reports byte-identical
/// metrics to an untraced one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SweepMetrics {
    /// Checker firings across the sweep.
    pub detections: u64,
    /// TMR replays across the sweep.
    pub replays: u64,
    /// Symptom-to-scan detection latency (cycles), merged.
    pub detection_latency: Histogram,
    /// Replays per diagnosis, merged.
    pub replay_count: Histogram,
}

impl Default for SweepMetrics {
    fn default() -> Self {
        SweepMetrics {
            detections: 0,
            replays: 0,
            detection_latency: Histogram::new(DETECTION_LATENCY_BOUNDS),
            replay_count: Histogram::new(REPLAY_COUNT_BOUNDS),
        }
    }
}

impl SweepMetrics {
    /// Folds one scenario's engine snapshot into the sweep aggregate.
    pub fn absorb(&mut self, snapshot: &MetricsSnapshot) {
        self.detections += snapshot.detections;
        self.replays += snapshot.replays;
        self.detection_latency.merge(&snapshot.detection_latency);
        self.replay_count.merge(&snapshot.replay_count);
    }
}

/// One substrate's sweep.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SubstrateReport {
    /// Substrate name.
    pub substrate: &'static str,
    /// Per-scenario results, in scenario-id order.
    pub results: Vec<ScenarioResult>,
    /// Engine metrics aggregated over the sweep.
    pub metrics: SweepMetrics,
}

impl SubstrateReport {
    /// Scenarios that ended with `outcome`.
    #[must_use]
    pub fn outcome_count(&self, outcome: Outcome) -> usize {
        self.results.iter().filter(|r| r.outcome == outcome).count()
    }

    /// Sum of event tallies across the sweep.
    #[must_use]
    pub fn total_counts(&self) -> EventCounts {
        let mut total = EventCounts::default();
        for r in &self.results {
            total.symptoms += r.counts.symptoms;
            total.transients += r.counts.transients;
            total.permanents += r.counts.permanents;
            total.inconclusives += r.counts.inconclusives;
            total.escalations += r.counts.escalations;
            total.recoveries += r.counts.recoveries;
            total.checkpoint_corruptions += r.counts.checkpoint_corruptions;
            total.reroutes += r.counts.reroutes;
            total.link_quarantines += r.counts.link_quarantines;
        }
        total
    }
}

/// Full campaign output.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CampaignReport {
    /// Campaign seed.
    pub seed: u64,
    /// Scenarios generated per substrate.
    pub scenarios_per_substrate: usize,
    /// Active fault-kind names (the `--kinds` filter, or the full
    /// universe), in generation-cycle order.
    pub kinds: Vec<&'static str>,
    /// Per-substrate sweeps, in configuration order.
    pub substrates: Vec<SubstrateReport>,
}

impl CampaignReport {
    /// Total scenarios executed across all substrates.
    #[must_use]
    pub fn total_scenarios(&self) -> usize {
        self.substrates.iter().map(|s| s.results.len()).sum()
    }

    /// Scenarios (across all substrates) the engine got wrong.
    #[must_use]
    pub fn failures(&self) -> usize {
        self.substrates
            .iter()
            .map(|s| s.results.iter().filter(|r| r.outcome.is_failure()).count())
            .sum()
    }
}

/// Campaign parameters.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Master seed: scenario generation and fault derivation.
    pub seed: u64,
    /// Scenarios per substrate (the same list runs on every substrate).
    pub scenarios_per_substrate: usize,
    /// Substrates to sweep.
    pub substrates: Vec<SubstrateKind>,
    /// Fault kinds the generator cycles through (the `--kinds` CLI
    /// filter). Defaults to the full [`KindId::ALL`] universe; must not
    /// be empty.
    pub kinds: Vec<KindId>,
    /// Formed pipelines per substrate instance.
    pub pipelines: usize,
    /// Stack height.
    pub layers: usize,
    /// Fault-free epochs appended to every scenario so delayed
    /// consequences (missed recoveries, late escalations) surface.
    pub settle_epochs: u64,
    /// Shrink failure scenarios to minimal reproductions.
    pub shrink: bool,
    /// Engine configuration under test.
    pub engine: R2d3Config,
    /// Caller-provided stage netlists for the gate-level substrate (one
    /// per unit, in [`r2d3_isa::Unit::ALL`] order) — e.g. a core imported
    /// from Yosys JSON mapped onto the pipeline stages. `None` (the
    /// default) synthesizes the built-in stage netlists.
    pub netlist_stages: Option<Vec<StageNetlist>>,
}

/// The engine configuration campaigns exercise: epoch-long test windows
/// (`t_test` counts *records*, and both trace rings hold at least a full
/// 4 k-cycle epoch) so every operation of an epoch is inside the compared
/// window, checkpoints every other epoch, and all hardening features
/// (escalation, inconclusive retries, transient rollback) at defaults.
/// `t_cal` is pushed beyond scenario horizons: rotation is lifetime
/// machinery, not a detection feature, and keeping the formation static
/// makes fault placement deterministic.
#[must_use]
pub fn campaign_engine_config() -> R2d3Config {
    R2d3Config {
        t_epoch: 4_000,
        t_test: 4_000,
        t_cal: 1 << 40,
        policy: PolicyKind::Pro,
        suspend_when_no_leftover: true,
        checkpoint: Some(CheckpointConfig { interval_epochs: 2, ..Default::default() }),
        escalation: Some(EscalationConfig::default()),
        inconclusive_retries: 2,
        rollback_on_transient: true,
        route_scrub: true,
    }
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            seed: 0xCA3A,
            scenarios_per_substrate: 256,
            substrates: vec![SubstrateKind::Behavioral, SubstrateKind::Netlist],
            kinds: KindId::ALL.to_vec(),
            pipelines: 5,
            layers: 8,
            settle_epochs: 8,
            shrink: true,
            engine: campaign_engine_config(),
            netlist_stages: None,
        }
    }
}

/// The cycle-stamped telemetry stream of one traced scenario.
#[derive(Debug, Clone)]
pub struct CampaignTrace {
    /// Substrate name.
    pub substrate: &'static str,
    /// Scenario id the records belong to.
    pub scenario: u32,
    /// Records in emission order (oldest first).
    pub records: Vec<TelemetryRecord>,
}

/// Runs the full campaign: generates the scenario list once, sweeps it
/// over every configured substrate, shrinks failures. Deterministic: the
/// same configuration produces an identical report.
#[must_use]
pub fn run_campaign(config: &CampaignConfig) -> CampaignReport {
    run_campaign_inner(config, None)
}

/// [`run_campaign`] with a [`RingSink`] attached to every scenario's
/// engine, returning the per-scenario telemetry streams alongside the
/// report. The report itself is byte-identical to [`run_campaign`]'s
/// (the sink never feeds back into the engine); shrink re-executions
/// stay untraced.
#[must_use]
pub fn run_campaign_traced(config: &CampaignConfig) -> (CampaignReport, Vec<CampaignTrace>) {
    let mut traces = Vec::new();
    let report = run_campaign_inner(config, Some(&mut traces));
    (report, traces)
}

fn run_campaign_inner(
    config: &CampaignConfig,
    mut traces: Option<&mut Vec<CampaignTrace>>,
) -> CampaignReport {
    let space = ScenarioSpace {
        seed: config.seed,
        count: config.scenarios_per_substrate,
        pipelines: config.pipelines,
        layers: config.layers,
        settle_epochs: config.settle_epochs,
    };
    let scenarios = generate_scenarios_with(&space, &config.kinds);
    let substrates = config
        .substrates
        .iter()
        .map(|&kind| substrate_sweep_inner(kind, &scenarios, config, traces.as_deref_mut()))
        .collect();
    CampaignReport {
        seed: config.seed,
        scenarios_per_substrate: config.scenarios_per_substrate,
        kinds: config.kinds.iter().map(|k| k.name()).collect(),
        substrates,
    }
}

/// Sweeps the scenario list over one substrate kind.
#[must_use]
pub fn run_substrate_sweep(
    kind: SubstrateKind,
    scenarios: &[FaultScenario],
    config: &CampaignConfig,
) -> SubstrateReport {
    substrate_sweep_inner(kind, scenarios, config, None)
}

fn substrate_sweep_inner(
    kind: SubstrateKind,
    scenarios: &[FaultScenario],
    config: &CampaignConfig,
    mut traces: Option<&mut Vec<CampaignTrace>>,
) -> SubstrateReport {
    let prepared = PreparedSubstrate::new(kind, config);
    let mut results = Vec::with_capacity(scenarios.len());
    let mut metrics = SweepMetrics::default();
    for scenario in scenarios {
        let (result, snapshot) = prepared.run_one(scenario, config, traces.as_deref_mut());
        metrics.absorb(&snapshot);
        results.push(result);
    }
    SubstrateReport { substrate: kind.name(), results, metrics }
}

/// A substrate kind with its expensive per-sweep setup done (workload
/// programs built, netlists synthesized), able to execute scenarios one
/// at a time — the unit of work the durable campaign runner checkpoints
/// between. The batch sweep is a loop over [`PreparedSubstrate::run_one`],
/// so resumed and sharded campaigns execute byte-identical per-scenario
/// code.
pub(crate) struct PreparedSubstrate {
    kind: SubstrateKind,
    inner: PreparedInner,
}

enum PreparedInner {
    /// Long-running syscall-heavy kernels keep every unit class busy;
    /// built once, cloned per scenario.
    Behavioral { programs: Vec<Program>, sys_cfg: SystemConfig },
    /// Synthesis is the expensive part; one template, cloned per
    /// scenario. Boxed: the substrate dwarfs the behavioral variant.
    Netlist { template: Box<NetlistSubstrate> },
}

impl PreparedSubstrate {
    pub(crate) fn new(kind: SubstrateKind, config: &CampaignConfig) -> Self {
        let inner = match kind {
            SubstrateKind::Behavioral => PreparedInner::Behavioral {
                programs: (0..config.pipelines)
                    .map(|p| trap_mix(4096, config.seed ^ (p as u64 + 1)).program().clone())
                    .collect(),
                sys_cfg: SystemConfig {
                    pipelines: config.pipelines,
                    layers: config.layers,
                    ..Default::default()
                },
            },
            SubstrateKind::Netlist => {
                let sub_cfg = NetlistSubstrateConfig {
                    pipelines: config.pipelines,
                    layers: config.layers,
                    ..Default::default()
                };
                let template = match &config.netlist_stages {
                    Some(stages) => NetlistSubstrate::with_stage_netlists(&sub_cfg, stages.clone())
                        .expect("netlist_stages validated at configuration time"),
                    None => NetlistSubstrate::new(&sub_cfg),
                };
                PreparedInner::Netlist { template: Box::new(template) }
            }
        };
        PreparedSubstrate { kind, inner }
    }

    /// Executes one scenario end-to-end: run, classify, optionally
    /// trace, shrink failures.
    pub(crate) fn run_one(
        &self,
        scenario: &FaultScenario,
        config: &CampaignConfig,
        traces: Option<&mut Vec<CampaignTrace>>,
    ) -> (ScenarioResult, MetricsSnapshot) {
        match &self.inner {
            PreparedInner::Behavioral { programs, sys_cfg } => {
                run_one_scenario(self.kind, scenario, config, traces, || {
                    let mut sys = System3d::new(sys_cfg);
                    for (p, prog) in programs.iter().enumerate() {
                        sys.load_program(p, prog.clone()).expect("campaign workload load");
                    }
                    sys
                })
            }
            PreparedInner::Netlist { template } => {
                run_one_scenario(self.kind, scenario, config, traces, || (**template).clone())
            }
        }
    }
}

fn run_one_scenario<S, F>(
    kind: SubstrateKind,
    scenario: &FaultScenario,
    config: &CampaignConfig,
    traces: Option<&mut Vec<CampaignTrace>>,
    make: F,
) -> (ScenarioResult, MetricsSnapshot)
where
    S: ReliabilitySubstrate,
    F: Fn() -> S,
{
    // The sink is an observer only: outcome, counts and metrics are
    // identical on both arms (see `run_campaign_traced`).
    let (outcome, counts, snapshot) = match traces {
        Some(traces) => {
            let exec = execute_scenario(make(), scenario, &config.engine, RingSink::new());
            traces.push(CampaignTrace {
                substrate: kind.name(),
                scenario: scenario.id,
                records: exec.engine.telemetry().records(),
            });
            (exec.outcome, exec.counts, exec.metrics)
        }
        None => {
            let exec = execute_scenario(make(), scenario, &config.engine, NullSink);
            (exec.outcome, exec.counts, exec.metrics)
        }
    };
    let shrunk = (config.shrink && outcome.is_failure()).then(|| {
        shrink_scenario(scenario, outcome, |cand| {
            execute_scenario(make(), cand, &config.engine, NullSink).outcome
        })
    });
    let result =
        ScenarioResult { id: scenario.id, kind: scenario.kind.name(), outcome, counts, shrunk };
    (result, snapshot)
}

struct Execution<S: ReliabilitySubstrate, T: TelemetrySink> {
    outcome: Outcome,
    counts: EventCounts,
    metrics: MetricsSnapshot,
    engine: R2d3Engine<Adversary<S>, T>,
}

/// Runs one scenario end-to-end on a fresh substrate and classifies it.
fn execute_scenario<S: ReliabilitySubstrate, T: TelemetrySink>(
    sys: S,
    scenario: &FaultScenario,
    engine_cfg: &R2d3Config,
    sink: T,
) -> Execution<S, T> {
    let mut sys = Adversary::new(sys);
    let mut engine: R2d3Engine<Adversary<S>, T> = R2d3Engine::builder()
        .config(*engine_cfg)
        .telemetry(sink)
        .build()
        .expect("campaign engine configuration must be valid");
    let truth: BTreeSet<StageId> = truth_defective(scenario).into_iter().collect();
    // `allowed` is what the engine may quarantine without being wrong:
    // the ground-truth defective stages, plus both parties of any
    // inconclusive vote (the documented double-quarantine fallback).
    let mut allowed = truth;
    // Same contract for vertical links: the engine may only quarantine
    // links the scenario actually damaged.
    let allowed_links: BTreeSet<StageId> = truth_links(scenario).into_iter().collect();
    let mut counts = EventCounts::default();
    let mut engine_failed = false;
    let pipes = sys.pipeline_count();
    let mut last_retired = vec![0u64; pipes];

    for epoch in 0..scenario.epochs {
        apply_injections(&mut sys, &mut engine, scenario, epoch, engine_cfg.t_epoch);
        match engine.run_epoch(&mut sys) {
            Ok(events) => tally(&events, &mut counts, &mut allowed),
            Err(_) => {
                engine_failed = true;
                break;
            }
        }
        // Workload keep-alive: a pipeline whose program finished retires
        // nothing and would starve detection of fresh trace records.
        // Restart is gated on the pipeline being *uncorrupted* — the
        // runner must never clean up state the engine failed to recover.
        for (p, last) in last_retired.iter_mut().enumerate() {
            if sys.retired(p) == *last && !sys.pipeline_corrupted(p) {
                let _ = sys.restart_program(p);
            }
            *last = sys.retired(p);
        }
    }

    let metrics = engine.metrics();
    let poisoned = metrics.checkpoints.map_or(0, |s| s.poisoned_restores);
    let residual_corruption = (0..pipes).any(|p| sys.pipeline_corrupted(p));
    // Ground truth the engine cannot see if scrubbing is off: does any
    // pipeline slot still latch a layer other than the controller's
    // routing intent?
    let misrouted_end = (0..pipes).any(|p| {
        Unit::ALL.iter().any(|&u| {
            sys.stage_for(p, u).is_some_and(|intent| sys.route_readback(p, u) != Some(intent.layer))
        })
    });
    let misdiagnosed = metrics.believed_faulty.iter().any(|s| !allowed.contains(s))
        || metrics.quarantined_links.iter().any(|s| !allowed_links.contains(s));
    let saw_fault = counts.symptoms > 0
        || counts.escalations > 0
        || counts.reroutes > 0
        || counts.link_quarantines > 0;

    let outcome = if engine_failed {
        Outcome::EngineFailure
    } else if misrouted_end {
        Outcome::MisroutedUndetected
    } else if poisoned > 0 || residual_corruption {
        Outcome::SilentCorruption
    } else if misdiagnosed {
        Outcome::Misdiagnosed
    } else if counts.link_quarantines > 0 {
        Outcome::LinkQuarantined
    } else if counts.reroutes > 0 {
        Outcome::Rerouted
    } else if saw_fault {
        Outcome::DetectedRepaired
    } else {
        Outcome::Benign
    };
    Execution { outcome, counts, metrics, engine }
}

/// Applies a scenario's injections due at `epoch` (before the epoch runs).
fn apply_injections<S: ReliabilitySubstrate, T: TelemetrySink>(
    sys: &mut Adversary<S>,
    engine: &mut R2d3Engine<Adversary<S>, T>,
    scenario: &FaultScenario,
    epoch: u64,
    t_epoch: u64,
) {
    // Injection failures (e.g. a target the engine already power-gated)
    // mean the fault has nowhere left to land; the scenario simply
    // becomes less eventful, which the classifier handles.
    for inj in &scenario.injections {
        match scenario.kind {
            FaultKind::Permanent | FaultKind::Burst | FaultKind::MidDiagnosis => {
                if inj.epoch == epoch {
                    let _ = sys.inject_permanent_seeded(inj.stage, inj.seed);
                }
            }
            FaultKind::Transient => {
                if inj.epoch == epoch {
                    let _ = sys.inject_transient_seeded(inj.stage, inj.seed);
                }
            }
            FaultKind::Intermittent { period } => {
                // Duty-cycled recurrence until the engine quarantines the
                // stage (at which point the defect is out of service).
                if epoch >= inj.epoch
                    && (epoch - inj.epoch).is_multiple_of(period)
                    && !engine.is_believed_faulty(inj.stage)
                {
                    let _ = sys.inject_transient_seeded(inj.stage, inj.seed);
                }
            }
            FaultKind::CheckerCorrupt { persistent } => {
                if inj.epoch == epoch {
                    sys.arm_checker_corrupt(inj.stage, mask_from(inj.seed), persistent);
                }
            }
            FaultKind::ReplayCorrupt => {
                if inj.epoch == epoch {
                    sys.arm_replay_corrupt(inj.stage, mask_from(inj.seed));
                }
            }
            FaultKind::CheckpointCorrupt => {
                if inj.epoch == epoch {
                    // Rot the committed slot, then force a recovery before
                    // the next commit boundary via a transient on the
                    // pipeline the slot belongs to.
                    engine.corrupt_checkpoint(inj.pipe, inj.seed);
                    let _ = sys.inject_transient_seeded(inj.stage, inj.seed.wrapping_add(1));
                }
            }
            FaultKind::MidWindow => {
                if inj.epoch == epoch {
                    let third = (t_epoch / 3).max(1);
                    sys.arm_mid_window(inj.stage, inj.seed, third + inj.seed % third);
                }
            }
            FaultKind::TsvStuck => {
                if inj.epoch == epoch {
                    let fault = LinkFault::Stuck {
                        mask: mask_from(inj.seed),
                        pattern: (inj.seed >> 32) as u32,
                    };
                    let _ = sys.inject_link_fault(inj.stage, fault);
                }
            }
            FaultKind::TsvBridge => {
                if inj.epoch == epoch {
                    // One scenario entry arms both ends of the bridge
                    // (the partner is the layer above — see generation).
                    let mask = mask_from(inj.seed);
                    let lo = inj.stage;
                    let hi = StageId::new(lo.layer + 1, lo.unit);
                    let _ = sys
                        .inject_link_fault(lo, LinkFault::Bridge { other_layer: hi.layer, mask });
                    let _ = sys
                        .inject_link_fault(hi, LinkFault::Bridge { other_layer: lo.layer, mask });
                }
            }
            FaultKind::Crosstalk => {
                if inj.epoch == epoch {
                    // The aggressor is the physically adjacent *serving*
                    // layer (the coupling is gated on its activity).
                    let aggressor = if inj.stage.layer + 1 < sys.pipeline_count() {
                        inj.stage.layer + 1
                    } else {
                        inj.stage.layer.saturating_sub(1)
                    };
                    let period = 2 + 2 * (inj.seed & 1);
                    let fault = LinkFault::Crosstalk {
                        aggressor_layer: aggressor,
                        mask: mask_from(inj.seed),
                        period,
                        phase: (inj.seed >> 1) % period,
                    };
                    let _ = sys.inject_link_fault(inj.stage, fault);
                }
            }
            FaultKind::MuxSelect => {
                if inj.epoch == epoch && sys.pipeline_count() > 1 {
                    let pipes = sys.pipeline_count();
                    let intent = sys
                        .stage_for(inj.pipe, inj.stage.unit)
                        .map_or(inj.stage.layer, |s| s.layer);
                    // Any serving layer other than the intended one.
                    let wrong = (intent + 1 + (inj.seed as usize) % (pipes - 1)) % pipes;
                    let _ = sys.corrupt_route(inj.pipe, inj.stage.unit, wrong);
                }
            }
            FaultKind::SeuBurst => {
                if inj.epoch == epoch {
                    let fault = LinkFault::BurstOnce {
                        mask: mask_from(inj.seed),
                        ops: 1 + ((inj.seed >> 8) % 3) as u32,
                    };
                    let _ = sys.inject_link_fault(inj.stage, fault);
                }
            }
        }
    }
}

fn mask_from(seed: u64) -> u32 {
    (seed as u32) | 1
}

fn tally(events: &[EngineEvent], counts: &mut EventCounts, allowed: &mut BTreeSet<StageId>) {
    for event in events {
        match event {
            EngineEvent::Symptom { .. } => counts.symptoms += 1,
            EngineEvent::Transient { .. } => counts.transients += 1,
            EngineEvent::Permanent { .. } => counts.permanents += 1,
            EngineEvent::Inconclusive { dut, redundant } => {
                counts.inconclusives += 1;
                allowed.insert(*dut);
                allowed.insert(*redundant);
            }
            EngineEvent::Escalated { .. } => counts.escalations += 1,
            EngineEvent::Recovered { .. } => counts.recoveries += 1,
            EngineEvent::CheckpointCorrupt { .. } => counts.checkpoint_corruptions += 1,
            EngineEvent::Misrouted { .. } => counts.reroutes += 1,
            EngineEvent::LinkQuarantined { .. } => counts.link_quarantines += 1,
            EngineEvent::Repaired { .. }
            | EngineEvent::Suspended { .. }
            | EngineEvent::Rotated { .. } => {}
        }
    }
}
