//! Deterministic JSON rendering of campaign reports.
//!
//! Hand-rolled writer: fixed key order, fixed outcome/kind ordering, no
//! floats, no timestamps — the same campaign configuration renders to a
//! byte-identical document on every run and every machine, so reports
//! can be diffed (and CI can assert on them) directly.

use crate::campaign::runner::{CampaignReport, EventCounts, Outcome, SubstrateReport};
use crate::campaign::scenario::{FaultScenario, Injection, KIND_NAMES};
use std::fmt::Write;

/// Renders a campaign report as deterministic, pretty-printed JSON.
#[must_use]
pub fn render_report(report: &CampaignReport) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"seed\": {},", report.seed);
    let _ = writeln!(out, "  \"scenarios_per_substrate\": {},", report.scenarios_per_substrate);
    out.push_str("  \"active_kinds\": [");
    for (i, k) in report.kinds.iter().enumerate() {
        let sep = if i == 0 { "" } else { ", " };
        let _ = write!(out, "{sep}\"{k}\"");
    }
    out.push_str("],\n");
    let _ = writeln!(out, "  \"total_scenarios\": {},", report.total_scenarios());
    let _ = writeln!(out, "  \"failures\": {},", report.failures());
    out.push_str("  \"substrates\": [\n");
    for (i, sub) in report.substrates.iter().enumerate() {
        render_substrate(&mut out, sub);
        out.push_str(if i + 1 < report.substrates.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

fn render_substrate(out: &mut String, sub: &SubstrateReport) {
    out.push_str("    {\n");
    let _ = writeln!(out, "      \"substrate\": \"{}\",", sub.substrate);
    let _ = writeln!(out, "      \"scenarios\": {},", sub.results.len());

    out.push_str("      \"outcomes\": {");
    for (i, o) in Outcome::ALL.iter().enumerate() {
        let sep = if i == 0 { "" } else { ", " };
        let _ = write!(out, "{sep}\"{}\": {}", o.name(), sub.outcome_count(*o));
    }
    out.push_str("},\n");

    out.push_str("      \"kinds\": {\n");
    for (i, kind) in KIND_NAMES.iter().enumerate() {
        let _ = write!(out, "        \"{kind}\": {{");
        for (j, o) in Outcome::ALL.iter().enumerate() {
            let n = sub.results.iter().filter(|r| r.kind == *kind && r.outcome == *o).count();
            let sep = if j == 0 { "" } else { ", " };
            let _ = write!(out, "{sep}\"{}\": {n}", o.name());
        }
        out.push_str(if i + 1 < KIND_NAMES.len() { "},\n" } else { "}\n" });
    }
    out.push_str("      },\n");

    out.push_str("      \"events\": ");
    render_counts(out, &sub.total_counts());
    out.push_str(",\n");

    let _ = writeln!(
        out,
        "      \"metrics\": {{\"detections\": {}, \"replays\": {}, \
         \"detection_latency\": {}, \"replay_count\": {}}},",
        sub.metrics.detections,
        sub.metrics.replays,
        sub.metrics.detection_latency.to_json(),
        sub.metrics.replay_count.to_json()
    );

    out.push_str("      \"results\": [\n");
    for (i, r) in sub.results.iter().enumerate() {
        let _ = write!(
            out,
            "        {{\"id\": {}, \"kind\": \"{}\", \"outcome\": \"{}\"}}",
            r.id,
            r.kind,
            r.outcome.name()
        );
        out.push_str(if i + 1 < sub.results.len() { ",\n" } else { "\n" });
    }
    out.push_str("      ],\n");

    let failures: Vec<_> = sub.results.iter().filter(|r| r.outcome.is_failure()).collect();
    if failures.is_empty() {
        out.push_str("      \"failure_details\": []\n");
    } else {
        out.push_str("      \"failure_details\": [\n");
        for (i, r) in failures.iter().enumerate() {
            out.push_str("        {");
            let _ = write!(
                out,
                "\"id\": {}, \"kind\": \"{}\", \"outcome\": \"{}\", \"counts\": ",
                r.id,
                r.kind,
                r.outcome.name()
            );
            render_counts(out, &r.counts);
            if let Some(shrunk) = &r.shrunk {
                out.push_str(", \"shrunk\": ");
                render_scenario(out, shrunk);
            }
            out.push('}');
            out.push_str(if i + 1 < failures.len() { ",\n" } else { "\n" });
        }
        out.push_str("      ]\n");
    }
    out.push_str("    }");
}

fn render_counts(out: &mut String, c: &EventCounts) {
    let _ = write!(
        out,
        "{{\"symptoms\": {}, \"transients\": {}, \"permanents\": {}, \
         \"inconclusives\": {}, \"escalations\": {}, \"recoveries\": {}, \
         \"checkpoint_corruptions\": {}, \"reroutes\": {}, \"link_quarantines\": {}}}",
        c.symptoms,
        c.transients,
        c.permanents,
        c.inconclusives,
        c.escalations,
        c.recoveries,
        c.checkpoint_corruptions,
        c.reroutes,
        c.link_quarantines
    );
}

fn render_scenario(out: &mut String, sc: &FaultScenario) {
    let _ = write!(out, "{{\"epochs\": {}, \"injections\": [", sc.epochs);
    for (i, inj) in sc.injections.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        render_injection(out, inj);
    }
    out.push_str("]}");
}

fn render_injection(out: &mut String, inj: &Injection) {
    let _ = write!(
        out,
        "{{\"epoch\": {}, \"stage\": \"L{}.{:?}\", \"pipe\": {}, \"seed\": {}}}",
        inj.epoch, inj.stage.layer, inj.stage.unit, inj.pipe, inj.seed
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::runner::ScenarioResult;
    use crate::campaign::scenario::FaultKind;
    use r2d3_isa::Unit;
    use r2d3_pipeline_sim::StageId;

    fn tiny_report() -> CampaignReport {
        let shrunk = FaultScenario {
            id: 1,
            kind: FaultKind::Burst,
            injections: vec![Injection {
                epoch: 1,
                stage: StageId::new(2, Unit::Exu),
                pipe: 2,
                seed: 9,
            }],
            epochs: 3,
        };
        CampaignReport {
            seed: 7,
            scenarios_per_substrate: 2,
            kinds: vec!["permanent", "burst"],
            substrates: vec![SubstrateReport {
                substrate: "behavioral",
                results: vec![
                    ScenarioResult {
                        id: 0,
                        kind: "permanent",
                        outcome: Outcome::DetectedRepaired,
                        counts: EventCounts { symptoms: 1, permanents: 1, ..Default::default() },
                        shrunk: None,
                    },
                    ScenarioResult {
                        id: 1,
                        kind: "burst",
                        outcome: Outcome::SilentCorruption,
                        counts: EventCounts::default(),
                        shrunk: Some(shrunk),
                    },
                ],
                metrics: crate::campaign::SweepMetrics::default(),
            }],
        }
    }

    #[test]
    fn rendering_is_deterministic_and_structurally_sound() {
        let report = tiny_report();
        let a = render_report(&report);
        let b = render_report(&report);
        assert_eq!(a, b);
        // Balanced braces/brackets (cheap structural check without a
        // JSON parser in the dependency set).
        assert_eq!(a.matches('{').count(), a.matches('}').count());
        assert_eq!(a.matches('[').count(), a.matches(']').count());
        assert!(a.contains("\"failures\": 1"));
        assert!(a.contains("\"silent_corruption\": 1"));
        assert!(a.contains("\"shrunk\": {\"epochs\": 3"));
        assert!(a.contains("L2.Exu"));
    }

    #[test]
    fn failure_free_report_has_empty_details() {
        let mut report = tiny_report();
        report.substrates[0].results.truncate(1);
        let text = render_report(&report);
        assert!(text.contains("\"failure_details\": []"));
        assert!(text.contains("\"failures\": 0"));
    }
}
