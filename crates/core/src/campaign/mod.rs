//! Adversarial fault-injection campaign harness.
//!
//! The engine's unit tests each probe one failure mode with a hand-built
//! scenario. This module industrializes that: it generates a seeded,
//! deterministic population of adversarial [`FaultScenario`]s —
//! permanents, transients, duty-cycled intermittents, multi-stage bursts,
//! corrupted checker inputs, stuck replay registers, rotting checkpoint
//! slots, mid-window upsets and concurrent-fault diagnoses — runs every
//! one end-to-end on a fresh substrate (behavioral and gate-level), and
//! classifies what the engine did about it. The universe covers *fabric*
//! faults too — stuck/bridged/crosstalking TSV links, crossbar
//! mux-select upsets and multi-link SEU bursts — where the hardware at
//! fault is the vertical interconnect, not any stage:
//!
//! * [`Outcome::Benign`] — the fault never manifested;
//! * [`Outcome::DetectedRepaired`] — handled, final state clean;
//! * [`Outcome::Rerouted`] — a mux-select upset caught by the route
//!   scrub and rewritten;
//! * [`Outcome::LinkQuarantined`] — symptoms attributed to a vertical
//!   link; the link became a routing constraint and the (healthy) stage
//!   behind it stayed in service;
//! * [`Outcome::Misdiagnosed`] — healthy hardware was condemned;
//! * [`Outcome::MisroutedUndetected`] — a crossbar upset outlived every
//!   detection mechanism;
//! * [`Outcome::SilentCorruption`] — corrupted state survived unnoticed
//!   (including a poisoned checkpoint being restored);
//! * [`Outcome::EngineFailure`] — the engine itself errored.
//!
//! Failure scenarios are [shrunk](shrink_scenario) to minimal
//! reproductions, and the whole campaign renders to a byte-deterministic
//! JSON [report](render_report): same seed, same report, every time.
//!
//! ```
//! use r2d3_core::campaign::{run_campaign, CampaignConfig, SubstrateKind};
//!
//! let config = CampaignConfig {
//!     scenarios_per_substrate: 9,
//!     substrates: vec![SubstrateKind::Behavioral],
//!     ..Default::default()
//! };
//! let report = run_campaign(&config);
//! assert_eq!(report.total_scenarios(), 9);
//! assert_eq!(report.failures(), 0, "engine got a scenario wrong");
//! ```

mod adversary;
pub mod chaos;
mod durable;
mod report;
mod runner;
mod scenario;
mod shrink;

pub use adversary::Adversary;
pub use chaos::{run_chaos, ChaosConfig, ChaosReport, CHAOS_TARGETS};
pub use durable::{
    merge_shards, run_campaign_durable, run_campaign_sharded, run_shard, shard_scenarios,
    CampaignState, ShardReport, ShardSpec,
};
pub use report::render_report;
pub use runner::{
    campaign_engine_config, run_campaign, run_campaign_traced, run_substrate_sweep, CampaignConfig,
    CampaignReport, CampaignTrace, EventCounts, Outcome, ScenarioResult, SubstrateKind,
    SubstrateReport, SweepMetrics,
};
pub use scenario::{
    generate_scenarios, generate_scenarios_with, truth_defective, truth_links, FaultKind,
    FaultScenario, Injection, KindId, ScenarioSpace, INJECTABLE_UNITS, KIND_NAMES,
};
pub use shrink::shrink_scenario;
