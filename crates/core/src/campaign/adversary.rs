//! Adversarial substrate wrapper.
//!
//! [`Adversary`] sits between the engine and a real substrate and
//! forwards everything — except where a scenario has armed a *tap*. Taps
//! model faults in the reliability machinery itself, which no substrate
//! fault-injection API can express:
//!
//! * **checker corruption** — the checker's DUT-side input register is
//!   wrong, so the scan compares against an output the stage never
//!   produced ([`Adversary::arm_checker_corrupt`]);
//! * **replay-register corruption** — every re-execution on a stage
//!   returns a flipped output, poisoning detection comparisons and TMR
//!   votes ([`Adversary::arm_replay_corrupt`]);
//! * **mid-window upsets** — a transient fires *inside* the epoch's
//!   execution window rather than at its boundary
//!   ([`Adversary::arm_mid_window`]).
//!
//! Interior mutability (taps behind a `Mutex`) is required because the
//! tapped trait methods (`trace_window`, `replay_output`) take `&self`,
//! yet one-shot taps must disarm on first use.

use crate::substrate::ReliabilitySubstrate;
use crate::EngineError;
use parking_lot::Mutex;
use r2d3_isa::Unit;
use r2d3_pipeline_sim::{ActivityStats, StageId, StageRecord};

/// Corrupts the checker's view of a stage's most recent traced output.
#[derive(Debug, Clone, Copy)]
struct CheckerTap {
    stage: StageId,
    mask: u32,
    /// `false`: disarm after the first corrupted window.
    persistent: bool,
}

/// Corrupts every replayed output of a stage.
#[derive(Debug, Clone, Copy)]
struct ReplayTap {
    stage: StageId,
    mask: u32,
}

/// One transient injected part-way through the next `run` call.
#[derive(Debug, Clone, Copy)]
struct MidWindowShot {
    stage: StageId,
    seed: u64,
    offset: u64,
}

#[derive(Debug, Default)]
struct Taps {
    checker: Option<CheckerTap>,
    replay: Option<ReplayTap>,
    mid_window: Option<MidWindowShot>,
}

/// A [`ReliabilitySubstrate`] decorator that injects faults into the
/// engine's own sensing and recovery paths.
#[derive(Debug)]
pub struct Adversary<S> {
    inner: S,
    taps: Mutex<Taps>,
}

impl<S: ReliabilitySubstrate> Adversary<S> {
    /// Wraps a substrate with no taps armed.
    pub fn new(inner: S) -> Self {
        Adversary { inner, taps: Mutex::new(Taps::default()) }
    }

    /// Arms checker-input corruption of `stage`: the newest record of the
    /// next compared window (every window when `persistent`) reports
    /// `actual_output ^ mask`.
    pub fn arm_checker_corrupt(&self, stage: StageId, mask: u32, persistent: bool) {
        self.taps.lock().checker = Some(CheckerTap { stage, mask, persistent });
    }

    /// Arms replay-register corruption: every `replay_output` of `stage`
    /// returns its true value XOR `mask` until quarantine removes the
    /// stage from all comparisons.
    pub fn arm_replay_corrupt(&self, stage: StageId, mask: u32) {
        self.taps.lock().replay = Some(ReplayTap { stage, mask });
    }

    /// Schedules a seeded transient on `stage`, `offset` cycles into the
    /// next `run` call (clamped to the call's span).
    pub fn arm_mid_window(&self, stage: StageId, seed: u64, offset: u64) {
        self.taps.lock().mid_window = Some(MidWindowShot { stage, seed, offset });
    }

    /// The wrapped substrate.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// The wrapped substrate, mutably (direct ground-truth injection).
    pub fn inner_mut(&mut self) -> &mut S {
        &mut self.inner
    }
}

impl<S: ReliabilitySubstrate> ReliabilitySubstrate for Adversary<S> {
    type Checkpoint = S::Checkpoint;
    type Fault = S::Fault;

    fn layers(&self) -> usize {
        self.inner.layers()
    }

    fn pipeline_count(&self) -> usize {
        self.inner.pipeline_count()
    }

    fn now(&self) -> u64 {
        self.inner.now()
    }

    fn run(&mut self, cycles: u64) -> Result<(), EngineError> {
        let shot = self.taps.lock().mid_window.take();
        match shot {
            Some(shot) if cycles > 1 => {
                let offset = shot.offset.clamp(1, cycles - 1);
                self.inner.run(offset)?;
                self.inner.inject_transient_seeded(shot.stage, shot.seed)?;
                self.inner.run(cycles - offset)
            }
            _ => self.inner.run(cycles),
        }
    }

    fn stage_for(&self, pipe: usize, unit: Unit) -> Option<StageId> {
        self.inner.stage_for(pipe, unit)
    }

    fn leftovers(&self) -> Vec<StageId> {
        self.inner.leftovers()
    }

    fn trace_window(&self, stage: StageId, n: usize) -> Vec<StageRecord> {
        let mut window = self.inner.trace_window(stage, n);
        let mut taps = self.taps.lock();
        if let Some(tap) = taps.checker {
            if tap.stage == stage {
                if let Some(last) = window.last_mut() {
                    last.actual_output ^= tap.mask;
                    if !tap.persistent {
                        taps.checker = None;
                    }
                }
            }
        }
        window
    }

    fn replay_output(&self, stage: StageId, record: &StageRecord) -> u32 {
        let out = self.inner.replay_output(stage, record);
        match self.taps.lock().replay {
            Some(tap) if tap.stage == stage => out ^ tap.mask,
            _ => out,
        }
    }

    fn stage_usable(&self, stage: StageId) -> bool {
        self.inner.stage_usable(stage)
    }

    fn power_off(&mut self, stage: StageId) -> Result<(), EngineError> {
        self.inner.power_off(stage)
    }

    fn unassign(&mut self, pipe: usize, unit: Unit) -> Result<(), EngineError> {
        self.inner.unassign(pipe, unit)
    }

    fn assign(&mut self, pipe: usize, unit: Unit, layer: usize) -> Result<(), EngineError> {
        self.inner.assign(pipe, unit, layer)
    }

    fn pipeline_corrupted(&self, pipe: usize) -> bool {
        self.inner.pipeline_corrupted(pipe)
    }

    fn retired(&self, pipe: usize) -> u64 {
        self.inner.retired(pipe)
    }

    fn restart_program(&mut self, pipe: usize) -> Result<(), EngineError> {
        self.inner.restart_program(pipe)
    }

    fn checkpoint_pipeline(&self, pipe: usize) -> Result<Self::Checkpoint, EngineError> {
        self.inner.checkpoint_pipeline(pipe)
    }

    fn checkpoint_retired(checkpoint: &Self::Checkpoint) -> u64 {
        S::checkpoint_retired(checkpoint)
    }

    fn restore_pipeline(
        &mut self,
        pipe: usize,
        checkpoint: &Self::Checkpoint,
    ) -> Result<(), EngineError> {
        self.inner.restore_pipeline(pipe, checkpoint)
    }

    fn inject_fault(&mut self, stage: StageId, fault: Self::Fault) -> Result<(), EngineError> {
        self.inner.inject_fault(stage, fault)
    }

    fn inject_permanent_seeded(&mut self, stage: StageId, seed: u64) -> Result<(), EngineError> {
        self.inner.inject_permanent_seeded(stage, seed)
    }

    fn inject_transient_seeded(&mut self, stage: StageId, seed: u64) -> Result<(), EngineError> {
        self.inner.inject_transient_seeded(stage, seed)
    }

    fn checkpoint_digest(checkpoint: &Self::Checkpoint) -> u64 {
        S::checkpoint_digest(checkpoint)
    }

    fn corrupt_checkpoint(checkpoint: &mut Self::Checkpoint, seed: u64) {
        S::corrupt_checkpoint(checkpoint, seed);
    }

    fn inject_link_fault(
        &mut self,
        link: StageId,
        fault: crate::substrate::LinkFault,
    ) -> Result<(), EngineError> {
        self.inner.inject_link_fault(link, fault)
    }

    fn route_readback(&self, pipe: usize, unit: Unit) -> Option<usize> {
        self.inner.route_readback(pipe, unit)
    }

    fn corrupt_route(&mut self, pipe: usize, unit: Unit, layer: usize) -> Result<(), EngineError> {
        self.inner.corrupt_route(pipe, unit, layer)
    }

    fn scrub_route(&mut self, pipe: usize, unit: Unit) {
        self.inner.scrub_route(pipe, unit);
    }

    fn stats(&self) -> &ActivityStats {
        self.inner.stats()
    }

    fn reset_stats(&mut self) {
        self.inner.reset_stats();
    }

    fn name(&self) -> &'static str {
        self.inner.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use r2d3_isa::kernels::gemv;
    use r2d3_pipeline_sim::{System3d, SystemConfig};

    fn system() -> Adversary<System3d> {
        let mut sys = System3d::new(&SystemConfig { pipelines: 5, ..Default::default() });
        let kernel = gemv(8, 8, 1);
        for p in 0..5 {
            sys.load_program(p, kernel.program().clone()).unwrap();
        }
        Adversary::new(sys)
    }

    #[test]
    fn checker_tap_corrupts_newest_record_once() {
        let mut sys = system();
        sys.run(2_000).unwrap();
        let stage = StageId::new(0, Unit::Exu);
        let clean = sys.trace_window(stage, 4);
        assert!(!clean.is_empty());

        sys.arm_checker_corrupt(stage, 0b101, false);
        let tapped = sys.trace_window(stage, 4);
        let last = tapped.len() - 1;
        assert_eq!(tapped[last].actual_output, clean[last].actual_output ^ 0b101);
        // Older records and other stages are untouched.
        assert_eq!(tapped[..last], clean[..last]);
        // One-shot: the next read is clean again.
        assert_eq!(sys.trace_window(stage, 4), clean);
    }

    #[test]
    fn replay_tap_flips_only_the_armed_stage() {
        let mut sys = system();
        sys.run(2_000).unwrap();
        let armed = StageId::new(5, Unit::Exu);
        let other = StageId::new(6, Unit::Exu);
        let record = sys.trace_window(StageId::new(0, Unit::Exu), 1)[0];

        let clean_armed = sys.replay_output(armed, &record);
        let clean_other = sys.replay_output(other, &record);
        sys.arm_replay_corrupt(armed, 0xF);
        assert_eq!(sys.replay_output(armed, &record), clean_armed ^ 0xF);
        assert_eq!(sys.replay_output(other, &record), clean_other);
        // Persistent until disarmed/quarantined.
        assert_eq!(sys.replay_output(armed, &record), clean_armed ^ 0xF);
    }

    #[test]
    fn mid_window_shot_fires_inside_the_run() {
        let mut sys = system();
        let stage = StageId::new(1, Unit::Exu);
        sys.arm_mid_window(stage, 7, 500);
        sys.run(1_000).unwrap();
        // The transient manifested mid-run: the serving pipeline tainted
        // without any engine involvement.
        assert!(sys.pipeline_corrupted(1));
        // Consumed: does not recur.
        sys.run(1_000).unwrap();
    }
}
