//! Failure-scenario shrinking.
//!
//! A failing campaign scenario may carry injections and epochs that are
//! irrelevant to the failure. [`shrink_scenario`] greedily removes
//! injections and trims trailing epochs, re-running the candidate after
//! every mutation and keeping it only when the *same* outcome class
//! reproduces — the result is a minimal reproduction to debug from.
//! Cost is bounded: O(injections²) + O(epochs) re-runs, and campaign
//! scenarios have at most a handful of injections.

use crate::campaign::runner::Outcome;
use crate::campaign::scenario::FaultScenario;

/// Shrinks `scenario` while `rerun` keeps reproducing `target`.
///
/// `rerun` must execute a candidate from scratch on a fresh substrate
/// (determinism makes each verdict reliable). The returned scenario always
/// reproduces `target` and keeps at least one injection and one epoch.
pub fn shrink_scenario<F>(scenario: &FaultScenario, target: Outcome, mut rerun: F) -> FaultScenario
where
    F: FnMut(&FaultScenario) -> Outcome,
{
    let mut best = scenario.clone();

    // Drop injections one at a time until no single removal reproduces.
    'outer: while best.injections.len() > 1 {
        for i in 0..best.injections.len() {
            let mut candidate = best.clone();
            candidate.injections.remove(i);
            if rerun(&candidate) == target {
                best = candidate;
                continue 'outer;
            }
        }
        break;
    }

    // Trim trailing epochs; an injection epoch is a hard floor.
    let floor = best.injections.iter().map(|i| i.epoch + 1).max().unwrap_or(1);
    while best.epochs > floor {
        let mut candidate = best.clone();
        candidate.epochs -= 1;
        if rerun(&candidate) != target {
            break;
        }
        best = candidate;
    }

    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::scenario::{FaultKind, Injection};
    use r2d3_isa::Unit;
    use r2d3_pipeline_sim::StageId;

    fn scenario(injections: Vec<Injection>, epochs: u64) -> FaultScenario {
        FaultScenario { id: 0, kind: FaultKind::Burst, injections, epochs }
    }

    fn injection(epoch: u64, layer: usize) -> Injection {
        Injection { epoch, stage: StageId::new(layer, Unit::Exu), pipe: layer, seed: 7 }
    }

    #[test]
    fn drops_irrelevant_injections_and_trims_epochs() {
        let sc = scenario(vec![injection(1, 0), injection(1, 1), injection(2, 2)], 20);
        // Only the layer-1 injection matters, and only up to epoch 5.
        let oracle = |c: &FaultScenario| {
            let has_culprit = c.injections.iter().any(|i| i.stage.layer == 1);
            if has_culprit && c.epochs >= 5 {
                Outcome::SilentCorruption
            } else {
                Outcome::Benign
            }
        };
        let minimal = shrink_scenario(&sc, Outcome::SilentCorruption, oracle);
        assert_eq!(minimal.injections, vec![injection(1, 1)]);
        assert_eq!(minimal.epochs, 5);
    }

    #[test]
    fn keeps_everything_when_all_injections_matter() {
        let sc = scenario(vec![injection(1, 0), injection(1, 1)], 6);
        let oracle = |c: &FaultScenario| {
            if c.injections.len() == 2 {
                Outcome::Misdiagnosed
            } else {
                Outcome::Benign
            }
        };
        let minimal = shrink_scenario(&sc, Outcome::Misdiagnosed, oracle);
        assert_eq!(minimal.injections.len(), 2);
        // Epochs trimmed to the injection floor.
        assert_eq!(minimal.epochs, 2);
    }

    #[test]
    fn never_shrinks_below_one_injection_or_the_injection_epoch() {
        let sc = scenario(vec![injection(3, 0)], 10);
        let minimal = shrink_scenario(&sc, Outcome::EngineFailure, |_| Outcome::EngineFailure);
        assert_eq!(minimal.injections.len(), 1);
        assert_eq!(minimal.epochs, 4);
    }

    #[test]
    fn shrinking_fabric_scenarios_preserves_invariants() {
        // Greedy shrink over generated fabric scenarios: whatever subset
        // the oracle keeps, the result must stay a well-formed scenario
        // of the same kind, reproduce the target under the oracle, and
        // never lose every injection or cut below an injection epoch.
        use crate::campaign::scenario::{generate_scenarios_with, KindId, ScenarioSpace};
        use proptest::prelude::*;
        let fabric = [
            KindId::TsvStuck,
            KindId::TsvBridge,
            KindId::Crosstalk,
            KindId::MuxSelect,
            KindId::SeuBurst,
        ];
        proptest!(|(seed in any::<u64>(), culprit_layer in 0usize..5, floor_epochs in 1u64..12)| {
            let sp = ScenarioSpace { seed, count: 10, pipelines: 5, layers: 8, settle_epochs: 8 };
            for sc in generate_scenarios_with(&sp, &fabric) {
                let oracle = |c: &crate::campaign::scenario::FaultScenario| {
                    let hit = c.injections.iter().any(|i| i.stage.layer == culprit_layer);
                    if hit && c.epochs >= floor_epochs {
                        Outcome::MisroutedUndetected
                    } else {
                        Outcome::Benign
                    }
                };
                let target = oracle(&sc);
                let minimal = shrink_scenario(&sc, target, oracle);
                prop_assert_eq!(oracle(&minimal), target, "shrink lost the repro");
                prop_assert_eq!(minimal.kind, sc.kind);
                prop_assert_eq!(minimal.id, sc.id);
                prop_assert!(!minimal.injections.is_empty());
                let floor =
                    minimal.injections.iter().map(|i| i.epoch + 1).max().unwrap();
                prop_assert!(minimal.epochs >= floor);
                prop_assert!(minimal.epochs <= sc.epochs);
                // Shrinking only removes: every surviving injection was
                // in the original.
                for inj in &minimal.injections {
                    prop_assert!(sc.injections.contains(inj));
                }
            }
        });
    }
}
