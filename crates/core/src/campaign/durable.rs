//! Durable campaign execution: sharding, fault-tolerant merge, and
//! crash-safe resume.
//!
//! Three pieces, all built on the [`snapshot`] container format:
//!
//! * **Sharding** — [`ShardSpec`] deterministically partitions the
//!   scenario space (`id % total == index - 1`, so the round-robin kind
//!   cycle stays balanced across shards); [`run_campaign_sharded`]
//!   sweeps one partition and [`ShardReport::save`] persists it.
//! * **Merge** — [`merge_shards`] recombines per-shard reports into one
//!   [`CampaignReport`], validating seed/size/substrate compatibility
//!   and detecting scenario overlaps and gaps. Scenario execution is
//!   independent and the metric folds are commutative, so the merged
//!   report renders byte-identical to an unsharded run.
//! * **Resume** — [`run_campaign_durable`] executes scenarios one at a
//!   time through the same per-scenario code as the batch sweep, handing
//!   a portable [`CampaignState`] to an observer after each one; a state
//!   captured mid-flight resumes into a byte-identical report.

use crate::campaign::runner::{
    CampaignConfig, CampaignReport, EventCounts, Outcome, PreparedSubstrate, ScenarioResult,
    SubstrateKind, SubstrateReport, SweepMetrics,
};
use crate::campaign::scenario::{
    generate_scenarios_with, FaultKind, FaultScenario, Injection, KindId, ScenarioSpace, KIND_NAMES,
};
use crate::chaos::Vfs;
use crate::jsonio::{hex_u64, Value};
use crate::snapshot::{self, SnapshotError};
use crate::telemetry::Histogram;
use r2d3_pipeline_sim::StageId;
use std::fmt;
use std::fmt::Write as _;
use std::ops::ControlFlow;
use std::path::Path;

/// One shard of a partitioned campaign: shard `index` of `total`
/// (1-based, like the CLI's `--shard K/N`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    index: usize,
    total: usize,
}

impl ShardSpec {
    /// Builds a shard spec; `index` is 1-based.
    ///
    /// # Errors
    ///
    /// Rejects `total == 0` and `index` outside `1..=total`.
    pub fn new(index: usize, total: usize) -> Result<Self, String> {
        if total == 0 {
            return Err("shard total must be at least 1".into());
        }
        if index == 0 || index > total {
            return Err(format!("shard index must be in 1..={total}, got {index}"));
        }
        Ok(ShardSpec { index, total })
    }

    /// Parses the CLI form `K/N`.
    ///
    /// # Errors
    ///
    /// Malformed syntax or an out-of-range pair.
    pub fn parse(text: &str) -> Result<Self, String> {
        let (k, n) = text
            .split_once('/')
            .ok_or_else(|| format!("expected K/N (e.g. 2/4), got \"{text}\""))?;
        let index = k.trim().parse::<usize>().map_err(|_| format!("bad shard index \"{k}\""))?;
        let total = n.trim().parse::<usize>().map_err(|_| format!("bad shard total \"{n}\""))?;
        ShardSpec::new(index, total)
    }

    /// 1-based shard index.
    #[must_use]
    pub fn index(&self) -> usize {
        self.index
    }

    /// Number of shards in the partition.
    #[must_use]
    pub fn total(&self) -> usize {
        self.total
    }

    /// Whether this shard owns scenario `id`. Strided assignment keeps
    /// the generator's round-robin kind cycle balanced across shards.
    #[must_use]
    pub fn owns(&self, id: u32) -> bool {
        id as usize % self.total == self.index - 1
    }
}

impl fmt::Display for ShardSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.index, self.total)
    }
}

/// The scenarios of `config`'s campaign owned by `shard`, in id order.
#[must_use]
pub fn shard_scenarios(config: &CampaignConfig, shard: ShardSpec) -> Vec<FaultScenario> {
    campaign_scenarios(config).into_iter().filter(|s| shard.owns(s.id)).collect()
}

fn campaign_scenarios(config: &CampaignConfig) -> Vec<FaultScenario> {
    generate_scenarios_with(
        &ScenarioSpace {
            seed: config.seed,
            count: config.scenarios_per_substrate,
            pipelines: config.pipelines,
            layers: config.layers,
            settle_epochs: config.settle_epochs,
        },
        &config.kinds,
    )
}

fn kind_names(config: &CampaignConfig) -> Vec<&'static str> {
    config.kinds.iter().map(|k| k.name()).collect()
}

/// One shard's sweep output: the shard coordinates plus a
/// [`CampaignReport`] whose result lists cover only the shard's
/// scenario ids (under their campaign-global ids).
#[derive(Debug, Clone, PartialEq)]
pub struct ShardReport {
    /// Which shard of how many.
    pub shard: ShardSpec,
    /// The shard's sweep, scoped to its scenario partition.
    pub report: CampaignReport,
}

impl ShardReport {
    /// Snapshot-container kind tag for shard reports.
    pub const KIND: &'static str = "shard";

    /// Atomically persists the shard report at `path`.
    ///
    /// # Errors
    ///
    /// Propagates [`SnapshotError::Io`].
    pub fn save(&self, path: &Path) -> Result<(), SnapshotError> {
        snapshot::write_atomic(path, Self::KIND, self.to_body().as_bytes())
    }

    /// [`save`](ShardReport::save) through a [`Vfs`] seam.
    ///
    /// # Errors
    ///
    /// Propagates [`SnapshotError::Io`].
    pub fn save_with(&self, vfs: &dyn Vfs, path: &Path) -> Result<(), SnapshotError> {
        snapshot::write_atomic_with(vfs, path, Self::KIND, self.to_body().as_bytes())
    }

    /// Loads and verifies a shard report written by
    /// [`save`](ShardReport::save).
    ///
    /// # Errors
    ///
    /// Any [`SnapshotError`]: I/O, wrong magic/version/kind, truncation,
    /// digest mismatch, malformed body.
    pub fn load(path: &Path) -> Result<Self, SnapshotError> {
        Self::from_body(&snapshot::read_verified(path, Self::KIND)?)
    }

    /// [`load`](ShardReport::load) through a [`Vfs`] seam.
    ///
    /// # Errors
    ///
    /// Any [`SnapshotError`].
    pub fn load_with(vfs: &dyn Vfs, path: &Path) -> Result<Self, SnapshotError> {
        Self::from_body(&snapshot::read_verified_with(vfs, path, Self::KIND)?)
    }

    fn to_body(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"shard\": [{}, {}],", self.shard.index, self.shard.total);
        let _ = writeln!(out, "  \"seed\": {},", hex_u64(self.report.seed));
        let _ = writeln!(
            out,
            "  \"scenarios_per_substrate\": {},",
            self.report.scenarios_per_substrate
        );
        out.push_str("  \"kinds\": [");
        for (i, k) in self.report.kinds.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "\"{k}\"");
        }
        out.push_str("],\n");
        out.push_str("  \"substrates\": [");
        for (i, sub) in self.report.substrates.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            substrate_report_to_json(&mut out, sub);
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    fn from_body(body: &str) -> Result<Self, SnapshotError> {
        let v = snapshot::parse_body(body)?;
        let pair = snapshot::field(&v, "shard")?
            .as_arr()
            .ok_or_else(|| SnapshotError::Malformed("\"shard\" is not an array".into()))?;
        let (Some(index), Some(total)) =
            (pair.first().and_then(Value::as_usize), pair.get(1).and_then(Value::as_usize))
        else {
            return Err(SnapshotError::Malformed("\"shard\" must be [index, total]".into()));
        };
        let shard = ShardSpec::new(index, total).map_err(SnapshotError::Malformed)?;
        Ok(ShardReport { shard, report: campaign_report_from_json(&v)? })
    }
}

/// Sweeps one shard of the campaign over every configured substrate.
/// Shard scenarios execute the same per-scenario code as the full sweep,
/// so a merged set of shard reports is byte-identical to an unsharded
/// run.
#[must_use]
pub fn run_campaign_sharded(config: &CampaignConfig, shard: ShardSpec) -> ShardReport {
    let scenarios = shard_scenarios(config, shard);
    let substrates = config
        .substrates
        .iter()
        .map(|&kind| crate::campaign::runner::run_substrate_sweep(kind, &scenarios, config))
        .collect();
    ShardReport {
        shard,
        report: CampaignReport {
            seed: config.seed,
            scenarios_per_substrate: config.scenarios_per_substrate,
            kinds: kind_names(config),
            substrates,
        },
    }
}

/// Recombines per-shard reports into one campaign report.
///
/// Validation, in order: at least one shard; every shard agrees on the
/// partition size, seed, scenario count and substrate list; shard
/// indices `1..=total` are each present exactly once; every result id
/// belongs to the shard that reported it; and per substrate the union of
/// ids is exactly `0..scenarios_per_substrate` — duplicates (overlap)
/// and holes (gap) are rejected. Results are recombined in id order and
/// metrics are folded with the same commutative merges the straight
/// sweep uses, so the merged report renders byte-identical to an
/// unsharded run.
///
/// # Errors
///
/// [`SnapshotError::ConfigMismatch`] for incompatible shards,
/// [`SnapshotError::Malformed`] for duplicate/missing shards and
/// overlapping or gapped scenario coverage.
pub fn merge_shards(shards: &[ShardReport]) -> Result<CampaignReport, SnapshotError> {
    let Some(first) = shards.first() else {
        return Err(SnapshotError::Malformed("no shard reports to merge".into()));
    };
    let total = first.shard.total;
    let seed = first.report.seed;
    let count = first.report.scenarios_per_substrate;
    let names: Vec<&'static str> = first.report.substrates.iter().map(|s| s.substrate).collect();

    let mut seen = vec![false; total];
    for sh in shards {
        if sh.shard.total != total {
            return Err(SnapshotError::ConfigMismatch(format!(
                "shard {} is of a {}-way partition, expected {}-way",
                sh.shard, sh.shard.total, total
            )));
        }
        if sh.report.seed != seed {
            return Err(SnapshotError::ConfigMismatch(format!(
                "shard {} ran seed {:#x}, expected {:#x}",
                sh.shard, sh.report.seed, seed
            )));
        }
        if sh.report.scenarios_per_substrate != count {
            return Err(SnapshotError::ConfigMismatch(format!(
                "shard {} covers a {}-scenario campaign, expected {}",
                sh.shard, sh.report.scenarios_per_substrate, count
            )));
        }
        if sh.report.kinds != first.report.kinds {
            return Err(SnapshotError::ConfigMismatch(format!(
                "shard {} ran kinds {:?}, expected {:?}",
                sh.shard, sh.report.kinds, first.report.kinds
            )));
        }
        let sh_names: Vec<&'static str> =
            sh.report.substrates.iter().map(|s| s.substrate).collect();
        if sh_names != names {
            return Err(SnapshotError::ConfigMismatch(format!(
                "shard {} swept substrates {sh_names:?}, expected {names:?}",
                sh.shard
            )));
        }
        if seen[sh.shard.index - 1] {
            return Err(SnapshotError::Malformed(format!(
                "shard {} appears more than once",
                sh.shard
            )));
        }
        seen[sh.shard.index - 1] = true;
        for sub in &sh.report.substrates {
            for r in &sub.results {
                if (r.id as usize) >= count || !sh.shard.owns(r.id) {
                    return Err(SnapshotError::Malformed(format!(
                        "shard {} reports scenario {} it does not own",
                        sh.shard, r.id
                    )));
                }
            }
        }
    }
    if let Some(missing) = seen.iter().position(|s| !s) {
        return Err(SnapshotError::Malformed(format!(
            "shard {}/{total} is missing from the merge set",
            missing + 1
        )));
    }

    let mut substrates = Vec::with_capacity(names.len());
    for (si, name) in names.iter().enumerate() {
        let mut results: Vec<ScenarioResult> = Vec::with_capacity(count);
        let mut metrics = SweepMetrics::default();
        for sh in shards {
            let sub = &sh.report.substrates[si];
            results.extend(sub.results.iter().cloned());
            metrics.detections += sub.metrics.detections;
            metrics.replays += sub.metrics.replays;
            metrics.detection_latency.merge(&sub.metrics.detection_latency);
            metrics.replay_count.merge(&sub.metrics.replay_count);
        }
        results.sort_by_key(|r| r.id);
        for (want, r) in results.iter().enumerate() {
            if r.id as usize != want {
                let verb = if (r.id as usize) < want { "twice (overlap)" } else { "never (gap)" };
                return Err(SnapshotError::Malformed(format!(
                    "substrate \"{name}\" covers scenario {want} {verb}"
                )));
            }
        }
        if results.len() != count {
            return Err(SnapshotError::Malformed(format!(
                "substrate \"{name}\" covers {} scenarios, expected {count}",
                results.len()
            )));
        }
        substrates.push(SubstrateReport { substrate: name, results, metrics });
    }
    Ok(CampaignReport {
        seed,
        scenarios_per_substrate: count,
        kinds: first.report.kinds.clone(),
        substrates,
    })
}

/// Portable mid-flight state of a (possibly sharded) campaign run: the
/// scenario-granular cursor, every completed substrate sweep, and the
/// in-flight substrate's partial results. Scenario execution is
/// self-contained (fresh substrate and engine per scenario), so the
/// scenario boundary is a perfect resume point: a resumed campaign's
/// report is byte-identical to an uninterrupted one.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignState {
    /// Digest of the originating configuration and shard selection.
    config_digest: u64,
    /// Shard this run covers, if sharded.
    shard: Option<ShardSpec>,
    /// Index into the configured substrate list.
    substrate_cursor: usize,
    /// Scenarios of the current substrate completed so far.
    scenario_cursor: usize,
    /// Fully swept substrates.
    completed: Vec<SubstrateReport>,
    /// Results of the in-flight substrate, in execution order.
    partial_results: Vec<ScenarioResult>,
    /// Metric aggregate of the in-flight substrate.
    partial_metrics: SweepMetrics,
}

impl CampaignState {
    /// Snapshot-container kind tag for campaign run states.
    pub const KIND: &'static str = "campaign";

    /// Index of the substrate currently being swept.
    #[must_use]
    pub fn substrate(&self) -> usize {
        self.substrate_cursor
    }

    /// Scenarios of the current substrate completed so far.
    #[must_use]
    pub fn scenario(&self) -> usize {
        self.scenario_cursor
    }

    /// Atomically persists the state at `path` (see [`snapshot`]).
    ///
    /// # Errors
    ///
    /// Propagates [`SnapshotError::Io`].
    pub fn save(&self, path: &Path) -> Result<(), SnapshotError> {
        snapshot::write_atomic(path, Self::KIND, self.to_body().as_bytes())
    }

    /// [`save`](CampaignState::save) through a [`Vfs`] seam.
    ///
    /// # Errors
    ///
    /// Propagates [`SnapshotError::Io`].
    pub fn save_with(&self, vfs: &dyn Vfs, path: &Path) -> Result<(), SnapshotError> {
        snapshot::write_atomic_with(vfs, path, Self::KIND, self.to_body().as_bytes())
    }

    /// Loads and verifies a state written by [`save`](CampaignState::save).
    ///
    /// # Errors
    ///
    /// Any [`SnapshotError`]: I/O, wrong magic/version/kind, truncation,
    /// digest mismatch, malformed body.
    pub fn load(path: &Path) -> Result<Self, SnapshotError> {
        Self::from_body(&snapshot::read_verified(path, Self::KIND)?)
    }

    /// [`load`](CampaignState::load) through a [`Vfs`] seam.
    ///
    /// # Errors
    ///
    /// Any [`SnapshotError`].
    pub fn load_with(vfs: &dyn Vfs, path: &Path) -> Result<Self, SnapshotError> {
        Self::from_body(&snapshot::read_verified_with(vfs, path, Self::KIND)?)
    }

    fn to_body(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"config_digest\": {},", hex_u64(self.config_digest));
        match self.shard {
            Some(s) => {
                let _ = writeln!(out, "  \"shard\": [{}, {}],", s.index, s.total);
            }
            None => out.push_str("  \"shard\": null,\n"),
        }
        let _ = writeln!(out, "  \"substrate_cursor\": {},", self.substrate_cursor);
        let _ = writeln!(out, "  \"scenario_cursor\": {},", self.scenario_cursor);
        out.push_str("  \"completed\": [");
        for (i, sub) in self.completed.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            substrate_report_to_json(&mut out, sub);
        }
        out.push_str(if self.completed.is_empty() { "],\n" } else { "\n  ],\n" });
        out.push_str("  \"partial_results\": [");
        for (i, r) in self.partial_results.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    ");
            scenario_result_to_json(&mut out, r);
        }
        out.push_str(if self.partial_results.is_empty() { "],\n" } else { "\n  ],\n" });
        out.push_str("  \"partial_metrics\": ");
        sweep_metrics_to_json(&mut out, &self.partial_metrics);
        out.push_str("\n}\n");
        out
    }

    fn from_body(body: &str) -> Result<Self, SnapshotError> {
        let v = snapshot::parse_body(body)?;
        let config_digest = snapshot::field(&v, "config_digest")?
            .as_hex_u64()
            .ok_or_else(|| SnapshotError::Malformed("\"config_digest\" is not hex".into()))?;
        let shard_field = snapshot::field(&v, "shard")?;
        let shard = if *shard_field == Value::Null {
            None
        } else {
            let pair = shard_field
                .as_arr()
                .ok_or_else(|| SnapshotError::Malformed("\"shard\" is not an array".into()))?;
            let (Some(index), Some(total)) =
                (pair.first().and_then(Value::as_usize), pair.get(1).and_then(Value::as_usize))
            else {
                return Err(SnapshotError::Malformed("\"shard\" must be [index, total]".into()));
            };
            Some(ShardSpec::new(index, total).map_err(SnapshotError::Malformed)?)
        };
        let completed = snapshot::field(&v, "completed")?
            .as_arr()
            .ok_or_else(|| SnapshotError::Malformed("\"completed\" is not an array".into()))?
            .iter()
            .map(substrate_report_from_json)
            .collect::<Result<Vec<_>, _>>()?;
        let partial_results = snapshot::field(&v, "partial_results")?
            .as_arr()
            .ok_or_else(|| SnapshotError::Malformed("\"partial_results\" is not an array".into()))?
            .iter()
            .map(scenario_result_from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(CampaignState {
            config_digest,
            shard,
            substrate_cursor: snapshot::field(&v, "substrate_cursor")?
                .as_usize()
                .ok_or_else(|| SnapshotError::Malformed("bad \"substrate_cursor\"".into()))?,
            scenario_cursor: snapshot::field(&v, "scenario_cursor")?
                .as_usize()
                .ok_or_else(|| SnapshotError::Malformed("bad \"scenario_cursor\"".into()))?,
            completed,
            partial_results,
            partial_metrics: sweep_metrics_from_json(snapshot::field(&v, "partial_metrics")?)?,
        })
    }
}

/// Digest identifying a campaign configuration plus shard selection
/// (FNV-1a over their canonical `Debug` renderings).
fn campaign_digest(config: &CampaignConfig, shard: Option<ShardSpec>) -> u64 {
    snapshot::fnv1a64(format!("{config:?}|{shard:?}").as_bytes())
}

/// Runs the campaign (or one shard of it) durably: scenarios execute one
/// at a time through the same per-scenario code as [`run_campaign`]
/// (fresh substrate and engine each), and after every scenario the
/// observer receives the complete portable [`CampaignState`] to persist
/// ([`CampaignState::save`]) and/or stop on ([`ControlFlow::Break`]).
/// Passing a previously captured state resumes mid-flight; the final
/// report is byte-identical to an uninterrupted run.
///
/// Returns `Ok(None)` when the observer stopped the run early,
/// `Ok(Some(report))` on completion.
///
/// [`run_campaign`]: crate::campaign::run_campaign
///
/// # Errors
///
/// [`SnapshotError::ConfigMismatch`] when `resume` was captured under a
/// different configuration or shard selection (or its cursors lie
/// outside this run), plus whatever the observer raises.
pub fn run_campaign_durable<F>(
    config: &CampaignConfig,
    shard: Option<ShardSpec>,
    resume: Option<CampaignState>,
    mut observe: F,
) -> Result<Option<CampaignReport>, SnapshotError>
where
    F: FnMut(&CampaignState) -> Result<ControlFlow<()>, SnapshotError>,
{
    let digest = campaign_digest(config, shard);
    let scenarios = match shard {
        Some(s) => shard_scenarios(config, s),
        None => campaign_scenarios(config),
    };

    let mut st = match resume {
        Some(st) => {
            if st.config_digest != digest {
                return Err(SnapshotError::ConfigMismatch(format!(
                    "snapshot was captured under a different campaign configuration \
                     (digest {:#018x}, this run is {:#018x})",
                    st.config_digest, digest
                )));
            }
            if st.substrate_cursor > config.substrates.len()
                || st.completed.len() != st.substrate_cursor
                || st.scenario_cursor > scenarios.len()
                || st.partial_results.len() != st.scenario_cursor
            {
                return Err(SnapshotError::ConfigMismatch(format!(
                    "snapshot cursor (substrate {}, scenario {}) is inconsistent with \
                     this run ({} substrates x {} scenarios)",
                    st.substrate_cursor,
                    st.scenario_cursor,
                    config.substrates.len(),
                    scenarios.len()
                )));
            }
            st
        }
        None => CampaignState {
            config_digest: digest,
            shard,
            substrate_cursor: 0,
            scenario_cursor: 0,
            completed: Vec::new(),
            partial_results: Vec::new(),
            partial_metrics: SweepMetrics::default(),
        },
    };

    while st.substrate_cursor < config.substrates.len() {
        let kind = config.substrates[st.substrate_cursor];
        let prepared = PreparedSubstrate::new(kind, config);
        while st.scenario_cursor < scenarios.len() {
            let scenario = &scenarios[st.scenario_cursor];
            let (result, metrics) = prepared.run_one(scenario, config, None);
            st.partial_metrics.absorb(&metrics);
            st.partial_results.push(result);
            st.scenario_cursor += 1;
            if observe(&st)?.is_break() {
                return Ok(None);
            }
        }
        st.completed.push(SubstrateReport {
            substrate: kind.name(),
            results: std::mem::take(&mut st.partial_results),
            metrics: std::mem::take(&mut st.partial_metrics),
        });
        st.substrate_cursor += 1;
        st.scenario_cursor = 0;
    }

    Ok(Some(CampaignReport {
        seed: config.seed,
        scenarios_per_substrate: config.scenarios_per_substrate,
        kinds: kind_names(config),
        substrates: st.completed,
    }))
}

/// Durable single-shard execution: [`run_campaign_durable`] scoped to
/// one shard, with the completed sweep wrapped as a [`ShardReport`] so a
/// worker pool can drive shards incrementally and hand the results
/// straight to [`merge_shards`]. The observer sees the same
/// scenario-granular [`CampaignState`] as the unsharded durable path.
///
/// Returns `Ok(None)` when the observer stopped the run early,
/// `Ok(Some(shard_report))` on completion.
///
/// # Errors
///
/// Same as [`run_campaign_durable`].
pub fn run_shard<F>(
    config: &CampaignConfig,
    shard: ShardSpec,
    resume: Option<CampaignState>,
    observe: F,
) -> Result<Option<ShardReport>, SnapshotError>
where
    F: FnMut(&CampaignState) -> Result<ControlFlow<()>, SnapshotError>,
{
    Ok(run_campaign_durable(config, Some(shard), resume, observe)?
        .map(|report| ShardReport { shard, report }))
}

// --- JSON codec for report structures ------------------------------
//
// Hand-rolled like `render_report`, but *round-trippable*: every field
// of the Rust structures is preserved, u64 seeds travel as hex strings
// (JSON numbers go through f64 and lose bits past 2^53), and names are
// parsed back to the crate's `&'static str` tables.

fn substrate_report_to_json(out: &mut String, sub: &SubstrateReport) {
    let _ = write!(out, "    {{\"substrate\": \"{}\", \"results\": [", sub.substrate);
    for (i, r) in sub.results.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        scenario_result_to_json(out, r);
    }
    out.push_str("], \"metrics\": ");
    sweep_metrics_to_json(out, &sub.metrics);
    out.push('}');
}

fn substrate_report_from_json(v: &Value) -> Result<SubstrateReport, SnapshotError> {
    let name = snapshot::field(v, "substrate")?
        .as_str()
        .ok_or_else(|| SnapshotError::Malformed("\"substrate\" is not a string".into()))?;
    let substrate = [SubstrateKind::Behavioral, SubstrateKind::Netlist]
        .iter()
        .map(|k| k.name())
        .find(|n| *n == name)
        .ok_or_else(|| SnapshotError::Malformed(format!("unknown substrate \"{name}\"")))?;
    let results = snapshot::field(v, "results")?
        .as_arr()
        .ok_or_else(|| SnapshotError::Malformed("\"results\" is not an array".into()))?
        .iter()
        .map(scenario_result_from_json)
        .collect::<Result<Vec<_>, _>>()?;
    Ok(SubstrateReport {
        substrate,
        results,
        metrics: sweep_metrics_from_json(snapshot::field(v, "metrics")?)?,
    })
}

fn scenario_result_to_json(out: &mut String, r: &ScenarioResult) {
    let _ = write!(
        out,
        "{{\"id\": {}, \"kind\": \"{}\", \"outcome\": \"{}\", \"counts\": ",
        r.id,
        r.kind,
        r.outcome.name()
    );
    event_counts_to_json(out, &r.counts);
    out.push_str(", \"shrunk\": ");
    match &r.shrunk {
        Some(sc) => fault_scenario_to_json(out, sc),
        None => out.push_str("null"),
    }
    out.push('}');
}

fn scenario_result_from_json(v: &Value) -> Result<ScenarioResult, SnapshotError> {
    let id = snapshot::field(v, "id")?
        .as_u64()
        .and_then(|n| u32::try_from(n).ok())
        .ok_or_else(|| SnapshotError::Malformed("\"id\" is not a u32".into()))?;
    let kind_name = snapshot::field(v, "kind")?
        .as_str()
        .ok_or_else(|| SnapshotError::Malformed("\"kind\" is not a string".into()))?;
    let kind =
        KIND_NAMES.iter().find(|n| **n == kind_name).copied().ok_or_else(|| {
            SnapshotError::Malformed(format!("unknown fault kind \"{kind_name}\""))
        })?;
    let outcome_name = snapshot::field(v, "outcome")?
        .as_str()
        .ok_or_else(|| SnapshotError::Malformed("\"outcome\" is not a string".into()))?;
    let outcome =
        Outcome::ALL.iter().find(|o| o.name() == outcome_name).copied().ok_or_else(|| {
            SnapshotError::Malformed(format!("unknown outcome \"{outcome_name}\""))
        })?;
    let shrunk_field = snapshot::field(v, "shrunk")?;
    let shrunk = if *shrunk_field == Value::Null {
        None
    } else {
        Some(fault_scenario_from_json(shrunk_field)?)
    };
    Ok(ScenarioResult {
        id,
        kind,
        outcome,
        counts: event_counts_from_json(snapshot::field(v, "counts")?)?,
        shrunk,
    })
}

fn event_counts_to_json(out: &mut String, c: &EventCounts) {
    let _ = write!(
        out,
        "{{\"symptoms\": {}, \"transients\": {}, \"permanents\": {}, \
         \"inconclusives\": {}, \"escalations\": {}, \"recoveries\": {}, \
         \"checkpoint_corruptions\": {}, \"reroutes\": {}, \"link_quarantines\": {}}}",
        c.symptoms,
        c.transients,
        c.permanents,
        c.inconclusives,
        c.escalations,
        c.recoveries,
        c.checkpoint_corruptions,
        c.reroutes,
        c.link_quarantines
    );
}

fn event_counts_from_json(v: &Value) -> Result<EventCounts, SnapshotError> {
    let n = |key: &str| -> Result<u64, SnapshotError> {
        snapshot::field(v, key)?
            .as_u64()
            .ok_or_else(|| SnapshotError::Malformed(format!("\"{key}\" is not an integer")))
    };
    Ok(EventCounts {
        symptoms: n("symptoms")?,
        transients: n("transients")?,
        permanents: n("permanents")?,
        inconclusives: n("inconclusives")?,
        escalations: n("escalations")?,
        recoveries: n("recoveries")?,
        checkpoint_corruptions: n("checkpoint_corruptions")?,
        reroutes: n("reroutes")?,
        link_quarantines: n("link_quarantines")?,
    })
}

fn sweep_metrics_to_json(out: &mut String, m: &SweepMetrics) {
    let _ = write!(
        out,
        "{{\"detections\": {}, \"replays\": {}, \"detection_latency\": {}, \
         \"replay_count\": {}}}",
        m.detections,
        m.replays,
        m.detection_latency.to_json(),
        m.replay_count.to_json()
    );
}

fn sweep_metrics_from_json(v: &Value) -> Result<SweepMetrics, SnapshotError> {
    let n = |key: &str| -> Result<u64, SnapshotError> {
        snapshot::field(v, key)?
            .as_u64()
            .ok_or_else(|| SnapshotError::Malformed(format!("\"{key}\" is not an integer")))
    };
    Ok(SweepMetrics {
        detections: n("detections")?,
        replays: n("replays")?,
        detection_latency: histogram_from_json(snapshot::field(v, "detection_latency")?)?,
        replay_count: histogram_from_json(snapshot::field(v, "replay_count")?)?,
    })
}

fn histogram_from_json(v: &Value) -> Result<Histogram, SnapshotError> {
    let arr = |key: &str| -> Result<Vec<u64>, SnapshotError> {
        snapshot::field(v, key)?
            .as_arr()
            .ok_or_else(|| SnapshotError::Malformed(format!("\"{key}\" is not an array")))?
            .iter()
            .map(|e| {
                e.as_u64()
                    .ok_or_else(|| SnapshotError::Malformed(format!("\"{key}\" entry not a u64")))
            })
            .collect()
    };
    let n = |key: &str| -> Result<u64, SnapshotError> {
        snapshot::field(v, key)?
            .as_u64()
            .ok_or_else(|| SnapshotError::Malformed(format!("\"{key}\" is not an integer")))
    };
    let bounds: [u64; 7] = arr("bounds")?
        .try_into()
        .map_err(|_| SnapshotError::Malformed("histogram needs 7 bounds".into()))?;
    if !bounds.windows(2).all(|w| w[0] < w[1]) {
        return Err(SnapshotError::Malformed("histogram bounds must increase".into()));
    }
    let counts: [u64; 8] = arr("counts")?
        .try_into()
        .map_err(|_| SnapshotError::Malformed("histogram needs 8 counts".into()))?;
    Ok(Histogram::from_parts(bounds, counts, n("total")?, n("sum")?, n("max")?))
}

fn fault_scenario_to_json(out: &mut String, sc: &FaultScenario) {
    let _ = write!(out, "{{\"id\": {}, \"kind\": ", sc.id);
    fault_kind_to_json(out, sc.kind);
    let _ = write!(out, ", \"epochs\": {}, \"injections\": [", sc.epochs);
    for (i, inj) in sc.injections.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(
            out,
            "{{\"epoch\": {}, \"stage\": {}, \"pipe\": {}, \"seed\": {}}}",
            inj.epoch,
            inj.stage.flat_index(),
            inj.pipe,
            hex_u64(inj.seed)
        );
    }
    out.push_str("]}");
}

fn fault_scenario_from_json(v: &Value) -> Result<FaultScenario, SnapshotError> {
    let id = snapshot::field(v, "id")?
        .as_u64()
        .and_then(|n| u32::try_from(n).ok())
        .ok_or_else(|| SnapshotError::Malformed("scenario \"id\" is not a u32".into()))?;
    let epochs = snapshot::field(v, "epochs")?
        .as_u64()
        .ok_or_else(|| SnapshotError::Malformed("\"epochs\" is not an integer".into()))?;
    let injections = snapshot::field(v, "injections")?
        .as_arr()
        .ok_or_else(|| SnapshotError::Malformed("\"injections\" is not an array".into()))?
        .iter()
        .map(injection_from_json)
        .collect::<Result<Vec<_>, _>>()?;
    Ok(FaultScenario {
        id,
        kind: fault_kind_from_json(snapshot::field(v, "kind")?)?,
        injections,
        epochs,
    })
}

fn injection_from_json(v: &Value) -> Result<Injection, SnapshotError> {
    let epoch = snapshot::field(v, "epoch")?
        .as_u64()
        .ok_or_else(|| SnapshotError::Malformed("injection \"epoch\" is not an integer".into()))?;
    let stage = snapshot::field(v, "stage")?
        .as_usize()
        .ok_or_else(|| SnapshotError::Malformed("injection \"stage\" is not an index".into()))?;
    let pipe = snapshot::field(v, "pipe")?
        .as_usize()
        .ok_or_else(|| SnapshotError::Malformed("injection \"pipe\" is not an index".into()))?;
    let seed = snapshot::field(v, "seed")?
        .as_hex_u64()
        .ok_or_else(|| SnapshotError::Malformed("injection \"seed\" is not hex".into()))?;
    Ok(Injection { epoch, stage: StageId::from_flat_index(stage), pipe, seed })
}

fn fault_kind_to_json(out: &mut String, kind: FaultKind) {
    match kind {
        FaultKind::Intermittent { period } => {
            let _ = write!(out, "{{\"name\": \"intermittent\", \"period\": {period}}}");
        }
        FaultKind::CheckerCorrupt { persistent } => {
            let _ = write!(out, "{{\"name\": \"checker_corrupt\", \"persistent\": {persistent}}}");
        }
        other => {
            let _ = write!(out, "{{\"name\": \"{}\"}}", other.name());
        }
    }
}

fn fault_kind_from_json(v: &Value) -> Result<FaultKind, SnapshotError> {
    let name = snapshot::field(v, "name")?
        .as_str()
        .ok_or_else(|| SnapshotError::Malformed("fault-kind \"name\" is not a string".into()))?;
    Ok(match name {
        "permanent" => FaultKind::Permanent,
        "transient" => FaultKind::Transient,
        "intermittent" => FaultKind::Intermittent {
            period: snapshot::field(v, "period")?.as_u64().ok_or_else(|| {
                SnapshotError::Malformed("intermittent \"period\" is not an integer".into())
            })?,
        },
        "burst" => FaultKind::Burst,
        "checker_corrupt" => FaultKind::CheckerCorrupt {
            persistent: snapshot::field(v, "persistent")?.as_bool().ok_or_else(|| {
                SnapshotError::Malformed("checker_corrupt \"persistent\" is not a bool".into())
            })?,
        },
        "replay_corrupt" => FaultKind::ReplayCorrupt,
        "checkpoint_corrupt" => FaultKind::CheckpointCorrupt,
        "mid_window" => FaultKind::MidWindow,
        "mid_diagnosis" => FaultKind::MidDiagnosis,
        "tsv_stuck" => FaultKind::TsvStuck,
        "tsv_bridge" => FaultKind::TsvBridge,
        "crosstalk" => FaultKind::Crosstalk,
        "mux_select" => FaultKind::MuxSelect,
        "seu_burst" => FaultKind::SeuBurst,
        other => return Err(SnapshotError::Malformed(format!("unknown fault kind \"{other}\""))),
    })
}

fn campaign_report_from_json(v: &Value) -> Result<CampaignReport, SnapshotError> {
    let kinds = snapshot::field(v, "kinds")?
        .as_arr()
        .ok_or_else(|| SnapshotError::Malformed("\"kinds\" is not an array".into()))?
        .iter()
        .map(|k| {
            let name = k
                .as_str()
                .ok_or_else(|| SnapshotError::Malformed("kind name is not a string".into()))?;
            KindId::from_name(name)
                .map(KindId::name)
                .ok_or_else(|| SnapshotError::Malformed(format!("unknown fault kind \"{name}\"")))
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok(CampaignReport {
        seed: snapshot::field(v, "seed")?
            .as_hex_u64()
            .ok_or_else(|| SnapshotError::Malformed("\"seed\" is not hex".into()))?,
        scenarios_per_substrate: snapshot::field(v, "scenarios_per_substrate")?
            .as_usize()
            .ok_or_else(|| {
                SnapshotError::Malformed("\"scenarios_per_substrate\" is not an integer".into())
            })?,
        kinds,
        substrates: snapshot::field(v, "substrates")?
            .as_arr()
            .ok_or_else(|| SnapshotError::Malformed("\"substrates\" is not an array".into()))?
            .iter()
            .map(substrate_report_from_json)
            .collect::<Result<Vec<_>, _>>()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::run_campaign;

    fn tiny_config() -> CampaignConfig {
        CampaignConfig {
            scenarios_per_substrate: 9,
            substrates: vec![SubstrateKind::Behavioral],
            ..Default::default()
        }
    }

    fn tmp_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("r2d3-campaign-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{}-{name}", std::process::id()))
    }

    #[test]
    fn shard_spec_parses_and_validates() {
        let s = ShardSpec::parse("2/4").unwrap();
        assert_eq!((s.index(), s.total()), (2, 4));
        assert_eq!(s.to_string(), "2/4");
        assert!(s.owns(1) && s.owns(5) && !s.owns(0) && !s.owns(2));
        assert!(ShardSpec::parse("0/4").is_err());
        assert!(ShardSpec::parse("5/4").is_err());
        assert!(ShardSpec::parse("1/0").is_err());
        assert!(ShardSpec::parse("nope").is_err());
    }

    #[test]
    fn shards_partition_the_scenario_space() {
        let config = tiny_config();
        let mut ids = Vec::new();
        for k in 1..=3 {
            let shard = ShardSpec::new(k, 3).unwrap();
            ids.extend(shard_scenarios(&config, shard).iter().map(|s| s.id));
        }
        ids.sort_unstable();
        assert_eq!(ids, (0..9).collect::<Vec<u32>>());
    }

    #[test]
    fn merged_shards_equal_unsharded_report() {
        let config = tiny_config();
        let full = run_campaign(&config);
        let shards: Vec<ShardReport> =
            (1..=2).map(|k| run_campaign_sharded(&config, ShardSpec::new(k, 2).unwrap())).collect();
        let merged = merge_shards(&shards).unwrap();
        assert_eq!(full, merged, "merge must reproduce the straight sweep exactly");
    }

    #[test]
    fn shard_report_round_trips_through_disk() {
        let config = tiny_config();
        let report = run_campaign_sharded(&config, ShardSpec::new(1, 3).unwrap());
        let path = tmp_path("shard-roundtrip");
        report.save(&path).unwrap();
        let reloaded = ShardReport::load(&path).unwrap();
        assert_eq!(report, reloaded);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn merge_detects_incompatible_and_incomplete_sets() {
        let config = tiny_config();
        let s1 = run_campaign_sharded(&config, ShardSpec::new(1, 2).unwrap());
        let s2 = run_campaign_sharded(&config, ShardSpec::new(2, 2).unwrap());

        // Missing shard -> gap.
        match merge_shards(std::slice::from_ref(&s1)) {
            Err(SnapshotError::Malformed(msg)) => assert!(msg.contains("missing"), "{msg}"),
            other => panic!("expected Malformed, got {other:?}"),
        }
        // Duplicate shard.
        match merge_shards(&[s1.clone(), s1.clone()]) {
            Err(SnapshotError::Malformed(msg)) => {
                assert!(msg.contains("more than once"), "{msg}")
            }
            other => panic!("expected Malformed, got {other:?}"),
        }
        // Seed mismatch.
        let mut alien = s2.clone();
        alien.report.seed ^= 1;
        match merge_shards(&[s1.clone(), alien]) {
            Err(SnapshotError::ConfigMismatch(msg)) => assert!(msg.contains("seed"), "{msg}"),
            other => panic!("expected ConfigMismatch, got {other:?}"),
        }
        // Overlapping coverage: a result smuggled into the wrong shard.
        let mut overlap = s2.clone();
        let stolen = s1.report.substrates[0].results[0].clone();
        overlap.report.substrates[0].results.insert(0, stolen);
        match merge_shards(&[s1, overlap]) {
            Err(SnapshotError::Malformed(msg)) => {
                assert!(msg.contains("does not own"), "{msg}")
            }
            other => panic!("expected Malformed, got {other:?}"),
        }
    }

    #[test]
    fn durable_campaign_matches_batch_run() {
        let config = tiny_config();
        let batch = run_campaign(&config);
        let durable = run_campaign_durable(&config, None, None, |_| Ok(ControlFlow::Continue(())))
            .unwrap()
            .expect("observer never breaks");
        assert_eq!(batch, durable);
    }

    #[test]
    fn campaign_stop_and_resume_is_identical() {
        let config = tiny_config();
        let straight = run_campaign_durable(&config, None, None, |_| Ok(ControlFlow::Continue(())))
            .unwrap()
            .unwrap();

        let path = tmp_path("campaign-resume");
        let mut done = 0;
        let stopped = run_campaign_durable(&config, None, None, |st| {
            done += 1;
            if done == 4 {
                st.save(&path)?;
                return Ok(ControlFlow::Break(()));
            }
            Ok(ControlFlow::Continue(()))
        })
        .unwrap();
        assert!(stopped.is_none());

        let state = CampaignState::load(&path).unwrap();
        assert_eq!(state.scenario(), 4);
        let resumed =
            run_campaign_durable(&config, None, Some(state), |_| Ok(ControlFlow::Continue(())))
                .unwrap()
                .unwrap();
        assert_eq!(straight, resumed, "resumed campaign must be byte-identical");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn campaign_resume_rejects_config_change() {
        let config = tiny_config();
        let mut captured = None;
        run_campaign_durable(&config, None, None, |st| {
            captured = Some(st.clone());
            Ok(ControlFlow::Break(()))
        })
        .unwrap();

        let mut other = tiny_config();
        other.seed ^= 1;
        match run_campaign_durable(&other, None, captured, |_| unreachable!()) {
            Err(SnapshotError::ConfigMismatch(msg)) => {
                assert!(msg.contains("different campaign configuration"), "{msg}");
            }
            other => panic!("expected ConfigMismatch, got {other:?}"),
        }
    }
}
