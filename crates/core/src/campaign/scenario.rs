//! Seeded, deterministic fault-scenario generation.
//!
//! A [`FaultScenario`] is a complete adversarial experiment: what to
//! break, where, when, and how long to keep the engine running
//! afterwards so the outcome can settle. Generation is a pure function
//! of the campaign seed — scenario `i` of seed `s` is identical across
//! runs, substrates and machines, which is what makes campaign reports
//! byte-comparable.

use r2d3_isa::Unit;
use r2d3_pipeline_sim::StageId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Units the generator injects into. FFU is excluded: the behavioral
/// campaign workload (trap-mix) performs no floating-point work, so FFU
/// faults can never manifest there and every scenario would be trivially
/// benign on one substrate but not the other.
pub const INJECTABLE_UNITS: [Unit; 4] = [Unit::Ifu, Unit::Exu, Unit::Lsu, Unit::Tlu];

/// Discriminant-only view of [`FaultKind`]: the single source of truth
/// for the campaign's kind universe. Report tables, JSON codecs, the
/// `--kinds` CLI filter and the round-robin generator all derive from
/// [`KindId::ALL`] / [`KindId::name`], so adding a kind here is the only
/// hand-edit — every table is exhaustive-match checked by the compiler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum KindId {
    /// See [`FaultKind::Permanent`].
    Permanent,
    /// See [`FaultKind::Transient`].
    Transient,
    /// See [`FaultKind::Intermittent`].
    Intermittent,
    /// See [`FaultKind::Burst`].
    Burst,
    /// See [`FaultKind::CheckerCorrupt`].
    CheckerCorrupt,
    /// See [`FaultKind::ReplayCorrupt`].
    ReplayCorrupt,
    /// See [`FaultKind::CheckpointCorrupt`].
    CheckpointCorrupt,
    /// See [`FaultKind::MidWindow`].
    MidWindow,
    /// See [`FaultKind::MidDiagnosis`].
    MidDiagnosis,
    /// See [`FaultKind::TsvStuck`].
    TsvStuck,
    /// See [`FaultKind::TsvBridge`].
    TsvBridge,
    /// See [`FaultKind::Crosstalk`].
    Crosstalk,
    /// See [`FaultKind::MuxSelect`].
    MuxSelect,
    /// See [`FaultKind::SeuBurst`].
    SeuBurst,
}

impl KindId {
    /// Number of kinds in the universe.
    pub const COUNT: usize = 14;

    /// Every kind, in fixed report order.
    pub const ALL: [KindId; Self::COUNT] = [
        KindId::Permanent,
        KindId::Transient,
        KindId::Intermittent,
        KindId::Burst,
        KindId::CheckerCorrupt,
        KindId::ReplayCorrupt,
        KindId::CheckpointCorrupt,
        KindId::MidWindow,
        KindId::MidDiagnosis,
        KindId::TsvStuck,
        KindId::TsvBridge,
        KindId::Crosstalk,
        KindId::MuxSelect,
        KindId::SeuBurst,
    ];

    /// Stable report/JSON/CLI name.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            KindId::Permanent => "permanent",
            KindId::Transient => "transient",
            KindId::Intermittent => "intermittent",
            KindId::Burst => "burst",
            KindId::CheckerCorrupt => "checker_corrupt",
            KindId::ReplayCorrupt => "replay_corrupt",
            KindId::CheckpointCorrupt => "checkpoint_corrupt",
            KindId::MidWindow => "mid_window",
            KindId::MidDiagnosis => "mid_diagnosis",
            KindId::TsvStuck => "tsv_stuck",
            KindId::TsvBridge => "tsv_bridge",
            KindId::Crosstalk => "crosstalk",
            KindId::MuxSelect => "mux_select",
            KindId::SeuBurst => "seu_burst",
        }
    }

    /// Inverse of [`KindId::name`] (CLI `--kinds` parsing, durable
    /// shard decoding).
    #[must_use]
    pub fn from_name(name: &str) -> Option<KindId> {
        Self::ALL.iter().copied().find(|k| k.name() == name)
    }
}

/// The adversarial fault classes the campaign exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// A stuck-at defect that persists from injection onwards.
    Permanent,
    /// A one-shot upset consumed by the next operation.
    Transient,
    /// A duty-cycled defect: re-arms a one-shot upset every `period`
    /// epochs until the stage is quarantined — each individual replay
    /// votes "transient", only the symptom history can catch it.
    Intermittent {
        /// Epochs between recurrences.
        period: u64,
    },
    /// Several permanents landing in the same epoch on distinct stages
    /// (a multi-stage burst, e.g. a particle strike across tiers).
    Burst,
    /// The checker's DUT-side input register is corrupted: the trace the
    /// scan compares shows an output the stage never produced, creating
    /// symptoms with no underlying stage defect.
    CheckerCorrupt {
        /// `false`: one glitched comparison; `true`: the register is
        /// stuck and every scan of the stage is corrupted.
        persistent: bool,
    },
    /// A replay register sticks: every re-execution on the target stage
    /// returns a corrupted output, poisoning detection comparisons and
    /// TMR votes in which the stage participates.
    ReplayCorrupt,
    /// A committed checkpoint rots in storage; a transient then forces a
    /// recovery that would restore the poisoned state.
    CheckpointCorrupt,
    /// A transient fired *inside* the epoch (mid `T_test` window) rather
    /// than at an epoch boundary.
    MidWindow,
    /// Two distinct permanents on a same-unit pair in the same epoch:
    /// when they meet as DUT and redundant, every third voter disagrees
    /// with both — the vote stays inconclusive through the bounded
    /// retries and must fall back to double-quarantine.
    MidDiagnosis,
    /// A TSV bundle with bits stuck open/short: every transfer the link
    /// carries is corrupted, but the serving stage itself is healthy —
    /// replays (which bypass the TSV) come back clean, and repair must
    /// quarantine the *link*, not retire the stage.
    TsvStuck,
    /// A wired-OR bridge between the same-unit links of two adjacent
    /// serving layers: both ends deliver corrupted values while both are
    /// active; rerouting either end silences the bridge.
    TsvBridge,
    /// Capacitive coupling onto a victim link from the adjacent
    /// same-unit link: a fraction of transfers flip, gated on the
    /// aggressor layer actually carrying traffic.
    Crosstalk,
    /// The crossbar mux-select register for one pipeline slot is upset:
    /// the pipeline silently latches another layer's stage output. Only
    /// the route-scrub readback can tell this from stage corruption.
    MuxSelect,
    /// An SEU/MBU particle strike spanning several links of one layer in
    /// the same epoch: each affected link corrupts a handful of
    /// transfers, then the upset clears itself.
    SeuBurst,
}

impl FaultKind {
    /// The kind's discriminant in the campaign universe.
    #[must_use]
    pub const fn id(&self) -> KindId {
        match self {
            FaultKind::Permanent => KindId::Permanent,
            FaultKind::Transient => KindId::Transient,
            FaultKind::Intermittent { .. } => KindId::Intermittent,
            FaultKind::Burst => KindId::Burst,
            FaultKind::CheckerCorrupt { .. } => KindId::CheckerCorrupt,
            FaultKind::ReplayCorrupt => KindId::ReplayCorrupt,
            FaultKind::CheckpointCorrupt => KindId::CheckpointCorrupt,
            FaultKind::MidWindow => KindId::MidWindow,
            FaultKind::MidDiagnosis => KindId::MidDiagnosis,
            FaultKind::TsvStuck => KindId::TsvStuck,
            FaultKind::TsvBridge => KindId::TsvBridge,
            FaultKind::Crosstalk => KindId::Crosstalk,
            FaultKind::MuxSelect => KindId::MuxSelect,
            FaultKind::SeuBurst => KindId::SeuBurst,
        }
    }

    /// Stable report/JSON name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.id().name()
    }
}

/// All kind names in fixed report order (derived from [`KindId::ALL`]).
pub const KIND_NAMES: [&str; KindId::COUNT] = {
    let mut names = [""; KindId::COUNT];
    let mut i = 0;
    while i < KindId::COUNT {
        names[i] = KindId::ALL[i].name();
        i += 1;
    }
    names
};

/// One injection action of a scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Injection {
    /// Runner epoch (0-based) at whose start the action is applied.
    pub epoch: u64,
    /// Target stage.
    pub stage: StageId,
    /// The pipeline the target serves at injection time (identity
    /// formation: pipeline `p` is served by layer `p`). Checkpoint
    /// corruption targets this pipeline's slot.
    pub pipe: usize,
    /// Kind-specific seed (fault derivation, corruption mask, timing).
    pub seed: u64,
}

/// A complete adversarial experiment.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultScenario {
    /// Index within the campaign (stable across substrates).
    pub id: u32,
    /// Fault class.
    pub kind: FaultKind,
    /// Injection actions (shrinking removes entries from this list).
    pub injections: Vec<Injection>,
    /// Total epochs to run, including the post-injection settle phase.
    pub epochs: u64,
}

/// Generation parameters (a subset of the campaign configuration).
#[derive(Debug, Clone, Copy)]
pub struct ScenarioSpace {
    /// Campaign seed.
    pub seed: u64,
    /// Scenarios to generate.
    pub count: usize,
    /// Formed pipelines (serving layers `0..pipelines`).
    pub pipelines: usize,
    /// Stack height (leftover layers `pipelines..layers`).
    pub layers: usize,
    /// Fault-free epochs appended after the active phase.
    pub settle_epochs: u64,
}

fn scenario_rng(seed: u64, id: u32) -> StdRng {
    // SplitMix-style stream separation so neighbouring ids decorrelate.
    let mut z = seed ^ (u64::from(id).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    StdRng::seed_from_u64(z ^ (z >> 31))
}

/// Generates the campaign's scenario list over the full kind universe:
/// kinds cycle round-robin (so every class is covered at any campaign
/// size) and all remaining choices are drawn from the scenario's own
/// seeded stream.
#[must_use]
pub fn generate_scenarios(space: &ScenarioSpace) -> Vec<FaultScenario> {
    generate_scenarios_with(space, &KindId::ALL)
}

/// [`generate_scenarios`] restricted to a kind subset (the `--kinds` CLI
/// filter): scenario `i` draws its class from `kinds[i % kinds.len()]`,
/// keeping the total count — and each scenario's id-keyed random stream —
/// independent of the filter.
///
/// # Panics
/// Panics if `kinds` is empty.
#[must_use]
pub fn generate_scenarios_with(space: &ScenarioSpace, kinds: &[KindId]) -> Vec<FaultScenario> {
    assert!(!kinds.is_empty(), "campaign needs at least one fault kind");
    (0..space.count).map(|i| generate_one(space, i as u32, kinds[i % kinds.len()])).collect()
}

fn generate_one(space: &ScenarioSpace, id: u32, kind_id: KindId) -> FaultScenario {
    let mut rng = scenario_rng(space.seed, id);
    let settle = space.settle_epochs;
    let unit = INJECTABLE_UNITS[rng.gen_range(0..INJECTABLE_UNITS.len())];
    let pipe = rng.gen_range(0..space.pipelines);
    let serving = StageId::new(pipe, unit);
    let spare_layers = space.pipelines..space.layers;
    let seed: u64 = rng.gen();

    let (kind, injections, active) = match kind_id {
        KindId::Permanent => {
            let epoch = 1 + rng.gen_range(0..3u64);
            (FaultKind::Permanent, vec![Injection { epoch, stage: serving, pipe, seed }], epoch + 2)
        }
        KindId::Transient => {
            let epoch = 1 + rng.gen_range(0..3u64);
            (FaultKind::Transient, vec![Injection { epoch, stage: serving, pipe, seed }], epoch + 2)
        }
        KindId::Intermittent => {
            let period = 1 + rng.gen_range(0..3u64);
            // Enough firings for the decaying history to escalate
            // (threshold 3.0 needs 4 recurrences at period <= 3), plus
            // the repair epoch.
            (
                FaultKind::Intermittent { period },
                vec![Injection { epoch: 1, stage: serving, pipe, seed }],
                1 + 4 * period + 2,
            )
        }
        KindId::Burst => {
            let epoch = 1 + rng.gen_range(0..2u64);
            let n = 2 + rng.gen_range(0..2usize);
            let mut stages = vec![serving];
            while stages.len() < n {
                let u = INJECTABLE_UNITS[rng.gen_range(0..INJECTABLE_UNITS.len())];
                let p = rng.gen_range(0..space.pipelines);
                let s = StageId::new(p, u);
                if !stages.contains(&s) {
                    stages.push(s);
                }
            }
            let injections = stages
                .iter()
                .enumerate()
                .map(|(j, &stage)| Injection {
                    epoch,
                    stage,
                    pipe: stage.layer,
                    // Consecutive seeds derive distinct fault effects, so
                    // two burst faults meeting as a comparison pair can
                    // never out-vote a healthy third stage.
                    seed: seed.wrapping_add(j as u64),
                })
                .collect();
            (FaultKind::Burst, injections, epoch + 3)
        }
        KindId::CheckerCorrupt => {
            let persistent = rng.gen_bool(0.5);
            let epoch = 1 + rng.gen_range(0..2u64);
            // Persistent corruption must outlast the escalation threshold.
            let active = if persistent { epoch + 6 } else { epoch + 2 };
            (
                FaultKind::CheckerCorrupt { persistent },
                vec![Injection { epoch, stage: serving, pipe, seed }],
                active,
            )
        }
        KindId::ReplayCorrupt => {
            // Replay registers matter on the *redundant* side, so the
            // target is a leftover; the rotating scan pairs every spare
            // within `candidates` epochs.
            let layer = rng.gen_range(spare_layers.clone());
            let stage = StageId::new(layer, unit);
            (
                FaultKind::ReplayCorrupt,
                vec![Injection { epoch: 1, stage, pipe, seed }],
                1 + (space.layers - space.pipelines) as u64 + 2,
            )
        }
        KindId::CheckpointCorrupt => {
            // Epoch 2: the first commit boundary (interval 2) has passed,
            // and recovery fires before the next one can overwrite the
            // rotted slot.
            (
                FaultKind::CheckpointCorrupt,
                vec![Injection { epoch: 2, stage: serving, pipe, seed }],
                4,
            )
        }
        KindId::MidWindow => {
            let epoch = 1 + rng.gen_range(0..2u64);
            (FaultKind::MidWindow, vec![Injection { epoch, stage: serving, pipe, seed }], epoch + 2)
        }
        KindId::MidDiagnosis => {
            let layer = rng.gen_range(spare_layers);
            let pair = [
                Injection { epoch: 1, stage: serving, pipe, seed },
                Injection {
                    epoch: 1,
                    stage: StageId::new(layer, unit),
                    pipe,
                    seed: seed.wrapping_add(1),
                },
            ];
            (
                FaultKind::MidDiagnosis,
                pair.to_vec(),
                1 + (space.layers - space.pipelines) as u64 + 2,
            )
        }
        KindId::TsvStuck => {
            // Every transfer on the serving link is corrupted from the
            // injection onwards: four dense windows escalate the history,
            // then the link quarantine and reroute need a repair epoch.
            let epoch = 1 + rng.gen_range(0..2u64);
            (FaultKind::TsvStuck, vec![Injection { epoch, stage: serving, pipe, seed }], epoch + 7)
        }
        KindId::TsvBridge => {
            // Both ends of the bridge are serving links; the partner is
            // the physically adjacent layer above (`v + 1`), so the
            // victim draws from `0..pipelines-1`. `apply_injections`
            // arms the fault on both ends from this single entry.
            let v = if space.pipelines > 1 { rng.gen_range(0..space.pipelines - 1) } else { 0 };
            let stage = StageId::new(v, unit);
            (FaultKind::TsvBridge, vec![Injection { epoch: 1, stage, pipe: v, seed }], 1 + 7)
        }
        KindId::Crosstalk => {
            // Victim is the serving link; the aggressor is the adjacent
            // serving layer (leftovers idle, and the coupling is gated
            // on aggressor activity).
            let epoch = 1 + rng.gen_range(0..2u64);
            (FaultKind::Crosstalk, vec![Injection { epoch, stage: serving, pipe, seed }], epoch + 7)
        }
        KindId::MuxSelect => {
            // Injected two epochs before scenario end (inside the settle
            // tail): the symptom history cannot reach its escalation
            // threshold in that span, so when route scrubbing is off the
            // misroute demonstrably survives to the final ground-truth
            // readback (`misrouted_undetected`), while the scrub — when
            // on — catches it within one epoch.
            let epoch = settle + 1;
            (FaultKind::MuxSelect, vec![Injection { epoch, stage: serving, pipe, seed }], 3)
        }
        KindId::SeuBurst => {
            // One particle strike spanning several same-layer links in
            // the same epoch; each burst self-clears after a few
            // transfers, so every window stays below the density and
            // escalation thresholds.
            let epoch = 1 + rng.gen_range(0..2u64);
            let n = 2 + rng.gen_range(0..3usize);
            let mut units = vec![unit];
            while units.len() < n {
                let u = INJECTABLE_UNITS[rng.gen_range(0..INJECTABLE_UNITS.len())];
                if !units.contains(&u) {
                    units.push(u);
                }
            }
            let injections = units
                .iter()
                .enumerate()
                .map(|(j, &u)| Injection {
                    epoch,
                    stage: StageId::new(pipe, u),
                    pipe,
                    seed: seed.wrapping_add(j as u64),
                })
                .collect();
            (FaultKind::SeuBurst, injections, epoch + 2)
        }
    };

    FaultScenario { id, kind, injections, epochs: active + settle }
}

/// The ground-truth defective stages of a scenario: the stages whose
/// hardware (stage logic, checker input register, replay register) the
/// scenario actually breaks. Quarantining anything outside this set —
/// beyond the engine's documented inconclusive double-quarantine — is a
/// misdiagnosis.
#[must_use]
pub fn truth_defective(scenario: &FaultScenario) -> Vec<StageId> {
    let mut stages: Vec<StageId> = match scenario.kind {
        FaultKind::Permanent
        | FaultKind::Intermittent { .. }
        | FaultKind::Burst
        | FaultKind::ReplayCorrupt
        | FaultKind::MidDiagnosis
        | FaultKind::CheckerCorrupt { persistent: true } => {
            scenario.injections.iter().map(|i| i.stage).collect()
        }
        FaultKind::Transient
        | FaultKind::MidWindow
        | FaultKind::CheckpointCorrupt
        | FaultKind::CheckerCorrupt { persistent: false } => Vec::new(),
        // Fabric faults break interconnect, never stage hardware:
        // quarantining any *stage* for one is a misdiagnosis.
        FaultKind::TsvStuck
        | FaultKind::TsvBridge
        | FaultKind::Crosstalk
        | FaultKind::MuxSelect
        | FaultKind::SeuBurst => Vec::new(),
    };
    stages.sort_unstable();
    stages.dedup();
    stages
}

/// The ground-truth defective *links* of a scenario: the TSV bundles the
/// scenario actually damages (identified by the serving stage whose
/// vertical span they are). Quarantining a link outside this set is a
/// misdiagnosis, exactly as for stages. Transient fabric upsets
/// (mux-select flips, SEU bursts) damage no link.
#[must_use]
pub fn truth_links(scenario: &FaultScenario) -> Vec<StageId> {
    let mut links: Vec<StageId> = match scenario.kind {
        FaultKind::TsvStuck | FaultKind::Crosstalk => {
            scenario.injections.iter().map(|i| i.stage).collect()
        }
        // Both ends of the bridge are damaged; the partner end is the
        // layer above the recorded victim (see generation).
        FaultKind::TsvBridge => scenario
            .injections
            .iter()
            .flat_map(|i| [i.stage, StageId::new(i.stage.layer + 1, i.stage.unit)])
            .collect(),
        _ => Vec::new(),
    };
    links.sort_unstable();
    links.dedup();
    links
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> ScenarioSpace {
        ScenarioSpace { seed: 0xCA3A, count: 70, pipelines: 5, layers: 8, settle_epochs: 8 }
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(generate_scenarios(&space()), generate_scenarios(&space()));
        let other = ScenarioSpace { seed: 1, ..space() };
        assert_ne!(generate_scenarios(&space()), generate_scenarios(&other));
    }

    #[test]
    fn kinds_cycle_and_targets_are_in_range() {
        let scenarios = generate_scenarios(&space());
        for name in KIND_NAMES {
            assert!(scenarios.iter().any(|s| s.kind.name() == name), "kind {name} never generated");
        }
        for s in &scenarios {
            assert!(!s.injections.is_empty());
            for inj in &s.injections {
                assert!(inj.stage.layer < 8);
                assert!(inj.epoch < s.epochs, "injection after scenario end");
                assert!(inj.stage.unit != Unit::Ffu);
            }
            match s.kind {
                FaultKind::ReplayCorrupt => assert!(s.injections[0].stage.layer >= 5),
                FaultKind::MidDiagnosis => {
                    assert_eq!(s.injections.len(), 2);
                    assert_eq!(s.injections[0].stage.unit, s.injections[1].stage.unit);
                    assert_ne!(s.injections[0].stage, s.injections[1].stage);
                }
                FaultKind::Burst => assert!(s.injections.len() >= 2),
                // Link-fault targets must be serving links (layer <
                // pipelines), with the bridge partner also serving.
                FaultKind::TsvStuck | FaultKind::Crosstalk => {
                    assert!(s.injections[0].stage.layer < 5);
                }
                FaultKind::TsvBridge => {
                    assert!(s.injections[0].stage.layer + 1 < 5);
                }
                FaultKind::MuxSelect => {
                    assert_eq!(s.injections[0].epoch + 2, s.epochs, "mux upset lands late");
                }
                FaultKind::SeuBurst => {
                    assert!(s.injections.len() >= 2);
                    assert!(s.injections.iter().all(|i| i.stage.layer == s.injections[0].pipe));
                }
                _ => {}
            }
        }
    }

    #[test]
    fn kind_filter_restricts_generation() {
        let active = [KindId::TsvStuck, KindId::SeuBurst];
        let scenarios = generate_scenarios_with(&space(), &active);
        assert_eq!(scenarios.len(), space().count);
        for s in &scenarios {
            assert!(active.contains(&s.kind.id()), "filtered kind generated: {:?}", s.kind);
        }
        // A filtered scenario keeps its id-keyed stream: same id + same
        // kind => identical scenario regardless of the filter shape.
        let full = generate_scenarios(&space());
        let stuck_full = full.iter().find(|s| s.kind == FaultKind::TsvStuck).unwrap();
        let same = generate_scenarios_with(&space(), &[KindId::TsvStuck])
            .into_iter()
            .find(|s| s.id == stuck_full.id)
            .unwrap();
        assert_eq!(*stuck_full, same);
    }

    #[test]
    fn kind_names_and_ids_round_trip() {
        assert_eq!(KIND_NAMES.len(), KindId::COUNT);
        for id in KindId::ALL {
            assert_eq!(KindId::from_name(id.name()), Some(id));
        }
        assert_eq!(KindId::from_name("no_such_kind"), None);
    }

    #[test]
    fn fabric_generation_is_deterministic_for_any_seed() {
        use proptest::prelude::*;
        let fabric = [
            KindId::TsvStuck,
            KindId::TsvBridge,
            KindId::Crosstalk,
            KindId::MuxSelect,
            KindId::SeuBurst,
        ];
        proptest!(|(seed in any::<u64>(), count in 1usize..40)| {
            let sp = ScenarioSpace { seed, count, ..space() };
            let a = generate_scenarios_with(&sp, &fabric);
            let b = generate_scenarios_with(&sp, &fabric);
            prop_assert_eq!(&a, &b);
            for s in &a {
                prop_assert!(fabric.contains(&s.kind.id()));
                for inj in &s.injections {
                    prop_assert!(inj.epoch < s.epochs);
                    prop_assert!(inj.stage.layer < sp.layers);
                }
                // Link-fault victims (and the bridge partner) must be
                // serving links for the fault to carry traffic.
                for link in truth_links(s) {
                    prop_assert!(link.layer < sp.pipelines);
                }
            }
        });
    }

    #[test]
    fn truth_links_match_kind_semantics() {
        for s in generate_scenarios(&space()) {
            let links = truth_links(&s);
            match s.kind {
                FaultKind::TsvStuck | FaultKind::Crosstalk => assert_eq!(links.len(), 1),
                FaultKind::TsvBridge => {
                    assert_eq!(links.len(), 2);
                    assert_eq!(links[0].layer + 1, links[1].layer, "bridge spans adjacent layers");
                }
                _ => assert!(links.is_empty(), "{:?} damages no link", s.kind),
            }
        }
    }

    #[test]
    fn truth_sets_match_kind_semantics() {
        for s in generate_scenarios(&space()) {
            let truth = truth_defective(&s);
            match s.kind {
                FaultKind::Transient
                | FaultKind::MidWindow
                | FaultKind::CheckpointCorrupt
                | FaultKind::CheckerCorrupt { persistent: false }
                | FaultKind::TsvStuck
                | FaultKind::TsvBridge
                | FaultKind::Crosstalk
                | FaultKind::MuxSelect
                | FaultKind::SeuBurst => {
                    assert!(truth.is_empty(), "{:?} has no defective stage", s.kind);
                }
                _ => assert!(!truth.is_empty()),
            }
        }
    }
}
