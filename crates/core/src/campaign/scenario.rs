//! Seeded, deterministic fault-scenario generation.
//!
//! A [`FaultScenario`] is a complete adversarial experiment: what to
//! break, where, when, and how long to keep the engine running
//! afterwards so the outcome can settle. Generation is a pure function
//! of the campaign seed — scenario `i` of seed `s` is identical across
//! runs, substrates and machines, which is what makes campaign reports
//! byte-comparable.

use r2d3_isa::Unit;
use r2d3_pipeline_sim::StageId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Units the generator injects into. FFU is excluded: the behavioral
/// campaign workload (trap-mix) performs no floating-point work, so FFU
/// faults can never manifest there and every scenario would be trivially
/// benign on one substrate but not the other.
pub const INJECTABLE_UNITS: [Unit; 4] = [Unit::Ifu, Unit::Exu, Unit::Lsu, Unit::Tlu];

/// The adversarial fault classes the campaign exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// A stuck-at defect that persists from injection onwards.
    Permanent,
    /// A one-shot upset consumed by the next operation.
    Transient,
    /// A duty-cycled defect: re-arms a one-shot upset every `period`
    /// epochs until the stage is quarantined — each individual replay
    /// votes "transient", only the symptom history can catch it.
    Intermittent {
        /// Epochs between recurrences.
        period: u64,
    },
    /// Several permanents landing in the same epoch on distinct stages
    /// (a multi-stage burst, e.g. a particle strike across tiers).
    Burst,
    /// The checker's DUT-side input register is corrupted: the trace the
    /// scan compares shows an output the stage never produced, creating
    /// symptoms with no underlying stage defect.
    CheckerCorrupt {
        /// `false`: one glitched comparison; `true`: the register is
        /// stuck and every scan of the stage is corrupted.
        persistent: bool,
    },
    /// A replay register sticks: every re-execution on the target stage
    /// returns a corrupted output, poisoning detection comparisons and
    /// TMR votes in which the stage participates.
    ReplayCorrupt,
    /// A committed checkpoint rots in storage; a transient then forces a
    /// recovery that would restore the poisoned state.
    CheckpointCorrupt,
    /// A transient fired *inside* the epoch (mid `T_test` window) rather
    /// than at an epoch boundary.
    MidWindow,
    /// Two distinct permanents on a same-unit pair in the same epoch:
    /// when they meet as DUT and redundant, every third voter disagrees
    /// with both — the vote stays inconclusive through the bounded
    /// retries and must fall back to double-quarantine.
    MidDiagnosis,
}

impl FaultKind {
    /// Stable report/JSON name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::Permanent => "permanent",
            FaultKind::Transient => "transient",
            FaultKind::Intermittent { .. } => "intermittent",
            FaultKind::Burst => "burst",
            FaultKind::CheckerCorrupt { .. } => "checker_corrupt",
            FaultKind::ReplayCorrupt => "replay_corrupt",
            FaultKind::CheckpointCorrupt => "checkpoint_corrupt",
            FaultKind::MidWindow => "mid_window",
            FaultKind::MidDiagnosis => "mid_diagnosis",
        }
    }
}

/// All kind names in fixed report order.
pub const KIND_NAMES: [&str; 9] = [
    "permanent",
    "transient",
    "intermittent",
    "burst",
    "checker_corrupt",
    "replay_corrupt",
    "checkpoint_corrupt",
    "mid_window",
    "mid_diagnosis",
];

/// One injection action of a scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Injection {
    /// Runner epoch (0-based) at whose start the action is applied.
    pub epoch: u64,
    /// Target stage.
    pub stage: StageId,
    /// The pipeline the target serves at injection time (identity
    /// formation: pipeline `p` is served by layer `p`). Checkpoint
    /// corruption targets this pipeline's slot.
    pub pipe: usize,
    /// Kind-specific seed (fault derivation, corruption mask, timing).
    pub seed: u64,
}

/// A complete adversarial experiment.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultScenario {
    /// Index within the campaign (stable across substrates).
    pub id: u32,
    /// Fault class.
    pub kind: FaultKind,
    /// Injection actions (shrinking removes entries from this list).
    pub injections: Vec<Injection>,
    /// Total epochs to run, including the post-injection settle phase.
    pub epochs: u64,
}

/// Generation parameters (a subset of the campaign configuration).
#[derive(Debug, Clone, Copy)]
pub struct ScenarioSpace {
    /// Campaign seed.
    pub seed: u64,
    /// Scenarios to generate.
    pub count: usize,
    /// Formed pipelines (serving layers `0..pipelines`).
    pub pipelines: usize,
    /// Stack height (leftover layers `pipelines..layers`).
    pub layers: usize,
    /// Fault-free epochs appended after the active phase.
    pub settle_epochs: u64,
}

fn scenario_rng(seed: u64, id: u32) -> StdRng {
    // SplitMix-style stream separation so neighbouring ids decorrelate.
    let mut z = seed ^ (u64::from(id).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    StdRng::seed_from_u64(z ^ (z >> 31))
}

/// Generates the campaign's scenario list: kinds cycle round-robin (so
/// every class is covered at any campaign size) and all remaining choices
/// are drawn from the scenario's own seeded stream.
#[must_use]
pub fn generate_scenarios(space: &ScenarioSpace) -> Vec<FaultScenario> {
    (0..space.count).map(|i| generate_one(space, i as u32)).collect()
}

fn generate_one(space: &ScenarioSpace, id: u32) -> FaultScenario {
    let mut rng = scenario_rng(space.seed, id);
    let settle = space.settle_epochs;
    let unit = INJECTABLE_UNITS[rng.gen_range(0..INJECTABLE_UNITS.len())];
    let pipe = rng.gen_range(0..space.pipelines);
    let serving = StageId::new(pipe, unit);
    let spare_layers = space.pipelines..space.layers;
    let seed: u64 = rng.gen();

    let (kind, injections, active) = match id % 9 {
        0 => {
            let epoch = 1 + rng.gen_range(0..3u64);
            (FaultKind::Permanent, vec![Injection { epoch, stage: serving, pipe, seed }], epoch + 2)
        }
        1 => {
            let epoch = 1 + rng.gen_range(0..3u64);
            (FaultKind::Transient, vec![Injection { epoch, stage: serving, pipe, seed }], epoch + 2)
        }
        2 => {
            let period = 1 + rng.gen_range(0..3u64);
            // Enough firings for the decaying history to escalate
            // (threshold 3.0 needs 4 recurrences at period <= 3), plus
            // the repair epoch.
            (
                FaultKind::Intermittent { period },
                vec![Injection { epoch: 1, stage: serving, pipe, seed }],
                1 + 4 * period + 2,
            )
        }
        3 => {
            let epoch = 1 + rng.gen_range(0..2u64);
            let n = 2 + rng.gen_range(0..2usize);
            let mut stages = vec![serving];
            while stages.len() < n {
                let u = INJECTABLE_UNITS[rng.gen_range(0..INJECTABLE_UNITS.len())];
                let p = rng.gen_range(0..space.pipelines);
                let s = StageId::new(p, u);
                if !stages.contains(&s) {
                    stages.push(s);
                }
            }
            let injections = stages
                .iter()
                .enumerate()
                .map(|(j, &stage)| Injection {
                    epoch,
                    stage,
                    pipe: stage.layer,
                    // Consecutive seeds derive distinct fault effects, so
                    // two burst faults meeting as a comparison pair can
                    // never out-vote a healthy third stage.
                    seed: seed.wrapping_add(j as u64),
                })
                .collect();
            (FaultKind::Burst, injections, epoch + 3)
        }
        4 => {
            let persistent = rng.gen_bool(0.5);
            let epoch = 1 + rng.gen_range(0..2u64);
            // Persistent corruption must outlast the escalation threshold.
            let active = if persistent { epoch + 6 } else { epoch + 2 };
            (
                FaultKind::CheckerCorrupt { persistent },
                vec![Injection { epoch, stage: serving, pipe, seed }],
                active,
            )
        }
        5 => {
            // Replay registers matter on the *redundant* side, so the
            // target is a leftover; the rotating scan pairs every spare
            // within `candidates` epochs.
            let layer = rng.gen_range(spare_layers.clone());
            let stage = StageId::new(layer, unit);
            (
                FaultKind::ReplayCorrupt,
                vec![Injection { epoch: 1, stage, pipe, seed }],
                1 + (space.layers - space.pipelines) as u64 + 2,
            )
        }
        6 => {
            // Epoch 2: the first commit boundary (interval 2) has passed,
            // and recovery fires before the next one can overwrite the
            // rotted slot.
            (
                FaultKind::CheckpointCorrupt,
                vec![Injection { epoch: 2, stage: serving, pipe, seed }],
                4,
            )
        }
        7 => {
            let epoch = 1 + rng.gen_range(0..2u64);
            (FaultKind::MidWindow, vec![Injection { epoch, stage: serving, pipe, seed }], epoch + 2)
        }
        _ => {
            let layer = rng.gen_range(spare_layers);
            let pair = [
                Injection { epoch: 1, stage: serving, pipe, seed },
                Injection {
                    epoch: 1,
                    stage: StageId::new(layer, unit),
                    pipe,
                    seed: seed.wrapping_add(1),
                },
            ];
            (
                FaultKind::MidDiagnosis,
                pair.to_vec(),
                1 + (space.layers - space.pipelines) as u64 + 2,
            )
        }
    };

    FaultScenario { id, kind, injections, epochs: active + settle }
}

/// The ground-truth defective stages of a scenario: the stages whose
/// hardware (stage logic, checker input register, replay register) the
/// scenario actually breaks. Quarantining anything outside this set —
/// beyond the engine's documented inconclusive double-quarantine — is a
/// misdiagnosis.
#[must_use]
pub fn truth_defective(scenario: &FaultScenario) -> Vec<StageId> {
    let mut stages: Vec<StageId> = match scenario.kind {
        FaultKind::Permanent
        | FaultKind::Intermittent { .. }
        | FaultKind::Burst
        | FaultKind::ReplayCorrupt
        | FaultKind::MidDiagnosis
        | FaultKind::CheckerCorrupt { persistent: true } => {
            scenario.injections.iter().map(|i| i.stage).collect()
        }
        FaultKind::Transient
        | FaultKind::MidWindow
        | FaultKind::CheckpointCorrupt
        | FaultKind::CheckerCorrupt { persistent: false } => Vec::new(),
    };
    stages.sort_unstable();
    stages.dedup();
    stages
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> ScenarioSpace {
        ScenarioSpace { seed: 0xCA3A, count: 45, pipelines: 5, layers: 8, settle_epochs: 8 }
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(generate_scenarios(&space()), generate_scenarios(&space()));
        let other = ScenarioSpace { seed: 1, ..space() };
        assert_ne!(generate_scenarios(&space()), generate_scenarios(&other));
    }

    #[test]
    fn kinds_cycle_and_targets_are_in_range() {
        let scenarios = generate_scenarios(&space());
        for name in KIND_NAMES {
            assert!(scenarios.iter().any(|s| s.kind.name() == name), "kind {name} never generated");
        }
        for s in &scenarios {
            assert!(!s.injections.is_empty());
            for inj in &s.injections {
                assert!(inj.stage.layer < 8);
                assert!(inj.epoch < s.epochs, "injection after scenario end");
                assert!(inj.stage.unit != Unit::Ffu);
            }
            match s.kind {
                FaultKind::ReplayCorrupt => assert!(s.injections[0].stage.layer >= 5),
                FaultKind::MidDiagnosis => {
                    assert_eq!(s.injections.len(), 2);
                    assert_eq!(s.injections[0].stage.unit, s.injections[1].stage.unit);
                    assert_ne!(s.injections[0].stage, s.injections[1].stage);
                }
                FaultKind::Burst => assert!(s.injections.len() >= 2),
                _ => {}
            }
        }
    }

    #[test]
    fn truth_sets_match_kind_semantics() {
        for s in generate_scenarios(&space()) {
            let truth = truth_defective(&s);
            match s.kind {
                FaultKind::Transient
                | FaultKind::MidWindow
                | FaultKind::CheckpointCorrupt
                | FaultKind::CheckerCorrupt { persistent: false } => {
                    assert!(truth.is_empty(), "{:?} has no defective hardware", s.kind);
                }
                _ => assert!(!truth.is_empty()),
            }
        }
    }
}
