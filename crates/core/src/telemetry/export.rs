//! Trace exporters and schema validators.
//!
//! Two textual formats, both hand-rolled (the vendored `serde` is a
//! no-op marker crate) and byte-deterministic:
//!
//! * **JSON-lines** — one object per [`TelemetryRecord`], first keys
//!   always `epoch`, `cycle`, `type`; greppable and diffable.
//! * **Chrome trace-event** — the `{"traceEvents": [...]}` object
//!   form understood by Perfetto and `chrome://tracing`. Execution
//!   spans become `"X"` complete events; everything else is an `"i"`
//!   instant event carried with its fields in `args`.
//!
//! The validators parse with the crate's minimal JSON reader
//! ([`crate::jsonio`]) and check the schema the golden-file tests pin,
//! so CI can verify an emitted trace without any external tooling.

use super::{TelemetryEvent, TelemetryRecord};
use crate::jsonio::{parse_json, Value};
use crate::lifetime::LifetimeSeries;
use std::fmt::Write;

/// Pushes `"key": value` pairs for one event into `out` (no leading
/// comma; caller provides separators). Shared by both exporters so
/// field names never diverge between formats.
fn event_fields(event: &TelemetryEvent, out: &mut String) {
    match event {
        TelemetryEvent::Exec { pipe, cycles, retired } => {
            let _ = write!(out, "\"pipe\": {pipe}, \"cycles\": {cycles}, \"retired\": {retired}");
        }
        TelemetryEvent::Scan { tested, untested, detections } => {
            let _ = write!(
                out,
                "\"tested\": {tested}, \"untested\": {untested}, \"detections\": {detections}"
            );
        }
        TelemetryEvent::Detect { dut, pipe, latency, suspended } => {
            let _ = write!(
                out,
                "\"dut\": \"{}\", \"pipe\": {pipe}, \"latency\": {latency}, \
                 \"suspended\": {suspended}",
                super::stage_label(*dut)
            );
        }
        TelemetryEvent::Replay { stage } => {
            let _ = write!(out, "\"stage\": \"{}\"", super::stage_label(*stage));
        }
        TelemetryEvent::Verdict { dut, verdict, replays } => {
            let _ = write!(
                out,
                "\"dut\": \"{}\", \"verdict\": \"{}\", \"replays\": {replays}",
                super::stage_label(*dut),
                verdict.name()
            );
        }
        TelemetryEvent::Escalated { stage, score } => {
            let _ =
                write!(out, "\"stage\": \"{}\", \"score\": {score}", super::stage_label(*stage));
        }
        TelemetryEvent::CheckpointCommit { pipes } => {
            let _ = write!(out, "\"pipes\": {pipes}");
        }
        TelemetryEvent::CheckpointVerify { pipe, ok } => {
            let _ = write!(out, "\"pipe\": {pipe}, \"ok\": {ok}");
        }
        TelemetryEvent::Recovery { pipe, rolled_back } => {
            let _ = write!(out, "\"pipe\": {pipe}, \"rolled_back\": {rolled_back}");
        }
        TelemetryEvent::Reform { formed, ops, churn, rotation } => {
            let _ = write!(
                out,
                "\"formed\": {formed}, \"ops\": {ops}, \"churn\": {churn}, \
                 \"rotation\": {rotation}"
            );
        }
        TelemetryEvent::Rotate { window } => {
            let _ = write!(out, "\"window\": {window}");
        }
        TelemetryEvent::Misroute { pipe, expected, actual } => {
            let _ = write!(out, "\"pipe\": {pipe}, \"expected\": {expected}, \"actual\": {actual}");
        }
        TelemetryEvent::LinkQuarantine { link } => {
            let _ = write!(out, "\"link\": \"{}\"", super::stage_label(*link));
        }
        TelemetryEvent::EpochEnd { events } => {
            let _ = write!(out, "\"events\": {events}");
        }
    }
}

/// Lane (Chrome `tid`) an event renders on: its pipeline where one is
/// identified, else lane 0 (engine-wide events).
fn event_tid(event: &TelemetryEvent) -> u32 {
    match event {
        TelemetryEvent::Exec { pipe, .. }
        | TelemetryEvent::Detect { pipe, .. }
        | TelemetryEvent::CheckpointVerify { pipe, .. }
        | TelemetryEvent::Recovery { pipe, .. }
        | TelemetryEvent::Misroute { pipe, .. } => *pipe,
        _ => 0,
    }
}

/// Renders records as JSON-lines: one `{"epoch":…,"cycle":…,"type":…}`
/// object per line, trailing newline included when non-empty.
#[must_use]
pub fn json_lines(records: &[TelemetryRecord]) -> String {
    let mut out = String::new();
    for r in records {
        let _ = write!(
            out,
            "{{\"epoch\": {}, \"cycle\": {}, \"type\": \"{}\"",
            r.epoch,
            r.cycle,
            r.event.name()
        );
        let mut fields = String::new();
        event_fields(&r.event, &mut fields);
        if !fields.is_empty() {
            out.push_str(", ");
            out.push_str(&fields);
        }
        out.push_str("}\n");
    }
    out
}

/// Incremental Chrome trace-event builder; one process per traced
/// engine (campaigns use one pid per scenario).
#[derive(Debug, Default)]
pub struct ChromeTrace {
    events: Vec<String>,
}

impl ChromeTrace {
    /// An empty trace.
    #[must_use]
    pub fn new() -> Self {
        ChromeTrace::default()
    }

    /// Adds `records` under process id `pid` named `name` (emits the
    /// `process_name` metadata event first).
    pub fn add_process(&mut self, pid: u32, name: &str, records: &[TelemetryRecord]) {
        self.events.push(format!(
            "{{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": {pid}, \"tid\": 0, \
             \"args\": {{\"name\": \"{name}\"}}}}"
        ));
        for r in records {
            let mut args = format!("\"epoch\": {}", r.epoch);
            let extra_len = args.len();
            args.push_str(", ");
            event_fields(&r.event, &mut args);
            if args.len() == extra_len + 2 {
                args.truncate(extra_len);
            }
            let tid = event_tid(&r.event);
            let ev = match r.event {
                // Execution spans know their duration: render a
                // complete event starting where the run began, on the
                // pipeline's own lane.
                TelemetryEvent::Exec { cycles, .. } => format!(
                    "{{\"name\": \"exec\", \"ph\": \"X\", \"ts\": {}, \"dur\": {cycles}, \
                     \"pid\": {pid}, \"tid\": {tid}, \"args\": {{{args}}}}}",
                    r.cycle.saturating_sub(cycles)
                ),
                _ => format!(
                    "{{\"name\": \"{}\", \"ph\": \"i\", \"ts\": {}, \"s\": \"t\", \
                     \"pid\": {pid}, \"tid\": {tid}, \"args\": {{{args}}}}}",
                    r.event.name(),
                    r.cycle
                ),
            };
            self.events.push(ev);
        }
    }

    /// Serializes the accumulated trace as a `{"traceEvents": [...]}`
    /// object.
    #[must_use]
    pub fn finish(&self) -> String {
        let mut out = String::from("{\"traceEvents\": [\n");
        for (i, ev) in self.events.iter().enumerate() {
            out.push_str(ev);
            if i + 1 < self.events.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("]}\n");
        out
    }
}

/// Single-process convenience wrapper over [`ChromeTrace`].
#[must_use]
pub fn chrome_trace(records: &[TelemetryRecord], process: &str) -> String {
    let mut trace = ChromeTrace::new();
    trace.add_process(0, process, records);
    trace.finish()
}

/// Renders a [`LifetimeSeries`] as Chrome `"C"` counter events (one
/// sample set per month on a months-as-microseconds timeline), so a
/// lifetime sweep is inspectable on the same Perfetto timeline as an
/// engine trace. Values here are physical quantities, so floats are
/// expected — golden-file tests pin the integer-only engine formats,
/// not this one.
#[must_use]
pub fn lifetime_counter_trace(series: &LifetimeSeries) -> String {
    let mut trace = ChromeTrace::new();
    trace.events.push(
        "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 0, \"tid\": 0, \
         \"args\": {\"name\": \"lifetime\"}}"
            .to_string(),
    );
    let counters: [(&str, &[f64]); 6] = [
        ("mean_vth_shift_v", &series.mean_vth),
        ("max_vth_shift_v", &series.max_vth),
        ("mttf_months", &series.mttf_months),
        ("norm_ipc", &series.norm_ipc),
        ("active_pipelines", &series.active_pipelines),
        ("hottest_layer_temp_c", &series.hottest_layer_temp),
    ];
    for (i, month) in series.months.iter().enumerate() {
        for (name, values) in &counters {
            let Some(v) = values.get(i) else { continue };
            trace.events.push(format!(
                "{{\"name\": \"{name}\", \"ph\": \"C\", \"ts\": {month}, \"pid\": 0, \
                 \"tid\": 0, \"args\": {{\"value\": {v}}}}}"
            ));
        }
    }
    trace.finish()
}

/// Validates a JSON-lines telemetry dump: every non-empty line must be
/// an object with integer `epoch`/`cycle` and a known `type`. Returns
/// the number of records on success.
pub fn validate_json_lines(text: &str) -> Result<usize, String> {
    let mut count = 0usize;
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = parse_json(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        for key in ["epoch", "cycle"] {
            v.get(key)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("line {}: missing integer \"{key}\"", i + 1))?;
        }
        let ty = v
            .get("type")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("line {}: missing string \"type\"", i + 1))?;
        if !TelemetryEvent::NAMES.contains(&ty) {
            return Err(format!("line {}: unknown event type \"{ty}\"", i + 1));
        }
        count += 1;
    }
    Ok(count)
}

/// Validates a Chrome trace-event file (object form): `traceEvents`
/// must be an array of events each carrying a string `name`, a phase
/// in {M, X, i, C} and integer `pid`/`tid`, with `ts` (and `dur` for
/// `"X"`) integers on non-metadata events. Returns the event count.
pub fn validate_chrome_trace(text: &str) -> Result<usize, String> {
    let v = parse_json(text)?;
    let events = match v.get("traceEvents") {
        Some(Value::Arr(items)) => items,
        _ => return Err("missing \"traceEvents\" array".to_string()),
    };
    for (i, ev) in events.iter().enumerate() {
        let err = |msg: &str| format!("traceEvents[{i}]: {msg}");
        ev.get("name").and_then(Value::as_str).ok_or_else(|| err("missing string \"name\""))?;
        let ph =
            ev.get("ph").and_then(Value::as_str).ok_or_else(|| err("missing string \"ph\""))?;
        if !matches!(ph, "M" | "X" | "i" | "C") {
            return Err(err(&format!("unsupported phase \"{ph}\"")));
        }
        ev.get("pid").and_then(Value::as_u64).ok_or_else(|| err("missing integer \"pid\""))?;
        ev.get("tid").and_then(Value::as_u64).ok_or_else(|| err("missing integer \"tid\""))?;
        if ph != "M" && ph != "C" {
            ev.get("ts").and_then(Value::as_u64).ok_or_else(|| err("missing integer \"ts\""))?;
        }
        if ph == "X" {
            ev.get("dur").and_then(Value::as_u64).ok_or_else(|| err("missing integer \"dur\""))?;
        }
    }
    Ok(events.len())
}

#[cfg(test)]
mod tests {
    use super::super::VerdictKind;
    use super::*;
    use r2d3_isa::Unit;
    use r2d3_pipeline_sim::StageId;

    fn sample_records() -> Vec<TelemetryRecord> {
        let dut = StageId::new(2, Unit::Exu);
        vec![
            TelemetryRecord {
                epoch: 0,
                cycle: 20_000,
                event: TelemetryEvent::Exec { pipe: 1, cycles: 20_000, retired: 512 },
            },
            TelemetryRecord {
                epoch: 0,
                cycle: 20_000,
                event: TelemetryEvent::Detect { dut, pipe: 1, latency: 412, suspended: false },
            },
            TelemetryRecord {
                epoch: 0,
                cycle: 20_000,
                event: TelemetryEvent::Verdict { dut, verdict: VerdictKind::Permanent, replays: 3 },
            },
        ]
    }

    #[test]
    fn json_lines_round_trips_through_validator() {
        let text = json_lines(&sample_records());
        assert_eq!(validate_json_lines(&text), Ok(3));
        assert!(text.lines().next().unwrap().contains("\"type\": \"exec\""));
        assert!(text.contains("\"dut\": \"L2.Exu\""));
        assert!(text.contains("\"verdict\": \"permanent\""));
    }

    #[test]
    fn chrome_trace_round_trips_through_validator() {
        let text = chrome_trace(&sample_records(), "engine");
        // 3 records + 1 process_name metadata event.
        assert_eq!(validate_chrome_trace(&text), Ok(4));
        assert!(text.contains("\"ph\": \"X\""));
        assert!(text.contains("\"dur\": 20000"));
        // Exec span starts at cycle - dur, on its pipeline's lane.
        assert!(text.contains("\"ts\": 0, \"dur\": 20000"));
        assert!(text.contains("\"dur\": 20000, \"pid\": 0, \"tid\": 1"));
    }

    #[test]
    fn validators_reject_malformed_input() {
        assert!(validate_json_lines("{\"epoch\": 1}\n").is_err());
        assert!(validate_json_lines("{\"epoch\": 1, \"cycle\": 2, \"type\": \"bogus\"}\n").is_err());
        assert!(validate_json_lines("not json\n").is_err());
        assert!(validate_chrome_trace("{}").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\": [{\"ph\": \"i\"}]}").is_err());
    }

    #[test]
    fn exporters_are_deterministic() {
        let records = sample_records();
        assert_eq!(json_lines(&records), json_lines(&records));
        assert_eq!(chrome_trace(&records, "a"), chrome_trace(&records, "a"));
    }
}
