//! Derived per-epoch metrics: counters and fixed-bucket histograms.
//!
//! The engine feeds a [`Metrics`] accumulator unconditionally — the
//! updates are a handful of integer increments per *event* (healthy
//! epochs touch it zero times beyond the epoch counter), so it costs
//! nothing measurable and, crucially, is identical whichever
//! [`crate::telemetry::TelemetrySink`] is installed. A serializable
//! [`MetricsSnapshot`] is taken on demand by
//! [`crate::engine::R2d3Engine::metrics`].
//!
//! Histograms use fixed bucket bounds so two snapshots merge and
//! compare exactly; everything renders as integers for byte-stable
//! JSON.

use crate::checkpoint::CheckpointStats;
use crate::telemetry::stage_label;
use r2d3_pipeline_sim::StageId;
use std::fmt::Write;

/// Detection-latency buckets (cycles): the paper's <50 / <500 / <5 k
/// analysis buckets, then epoch-scale bounds for the tail.
pub const DETECTION_LATENCY_BOUNDS: [u64; 7] = [50, 500, 5_000, 10_000, 20_000, 40_000, 80_000];

/// Replays-per-diagnosis buckets: 2 is the plain TMR vote, each
/// inconclusive retry adds one.
pub const REPLAY_COUNT_BOUNDS: [u64; 7] = [1, 2, 3, 4, 6, 8, 12];

/// Crossbar-operation buckets for one reformation (unassigns + assigns).
pub const REFORMATION_OPS_BOUNDS: [u64; 7] = [10, 20, 40, 60, 80, 120, 200];

/// Changed-slot buckets for one rotation.
pub const ROTATION_CHURN_BOUNDS: [u64; 7] = [0, 5, 10, 15, 20, 30, 40];

/// A fixed-bucket integer histogram: 7 inclusive upper bounds plus an
/// overflow bucket, with total/sum/max running alongside.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Histogram {
    bounds: [u64; 7],
    counts: [u64; 8],
    total: u64,
    sum: u64,
    max: u64,
}

impl Histogram {
    /// An empty histogram over `bounds` (must be strictly increasing).
    #[must_use]
    pub fn new(bounds: [u64; 7]) -> Self {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds must increase");
        Histogram { bounds, counts: [0; 8], total: 0, sum: 0, max: 0 }
    }

    /// Records one value: the first bucket whose bound is ≥ `value`
    /// (the last bucket is unbounded).
    pub fn record(&mut self, value: u64) {
        let idx = self.bounds.iter().position(|&b| value <= b).unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.total += 1;
        self.sum += value;
        self.max = self.max.max(value);
    }

    /// Rebuilds a histogram from serialized parts (the fields
    /// [`to_json`](Histogram::to_json) writes), e.g. when parsing a
    /// campaign shard file back for merging. Bounds must be strictly
    /// increasing; consistency of `counts`/`total`/`sum`/`max` is the
    /// caller's contract.
    #[must_use]
    pub fn from_parts(bounds: [u64; 7], counts: [u64; 8], total: u64, sum: u64, max: u64) -> Self {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds must increase");
        Histogram { bounds, counts, total, sum, max }
    }

    /// Adds another histogram's contents (bucket bounds must match).
    pub fn merge(&mut self, other: &Histogram) {
        debug_assert_eq!(self.bounds, other.bounds, "merging incompatible histograms");
        for (c, o) in self.counts.iter_mut().zip(&other.counts) {
            *c += o;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// Inclusive upper bounds of the first seven buckets.
    #[must_use]
    pub fn bounds(&self) -> &[u64; 7] {
        &self.bounds
    }

    /// Per-bucket counts (last bucket is the overflow bucket).
    #[must_use]
    pub fn counts(&self) -> &[u64; 8] {
        &self.counts
    }

    /// Values recorded.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Sum of recorded values.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded value (0 when empty).
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Deterministic single-line JSON object.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"bounds\": [");
        for (i, b) in self.bounds.iter().enumerate() {
            let _ = write!(out, "{}{b}", if i == 0 { "" } else { ", " });
        }
        out.push_str("], \"counts\": [");
        for (i, c) in self.counts.iter().enumerate() {
            let _ = write!(out, "{}{c}", if i == 0 { "" } else { ", " });
        }
        let _ = write!(
            out,
            "], \"total\": {}, \"sum\": {}, \"max\": {}}}",
            self.total, self.sum, self.max
        );
        out
    }
}

/// The engine's running metric accumulator (sink-independent; see the
/// module docs). Counters follow the semantics of the pre-telemetry
/// getters they replace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Metrics {
    /// Checker firings (detections) seen.
    pub detections: u64,
    /// Detection tests skipped for lack of a redundant stage.
    pub untested: u64,
    /// Tests that borrowed a suspended core's stage.
    pub suspensions: u64,
    /// Transient verdicts.
    pub transients: u64,
    /// Stages newly believed permanently faulty.
    pub permanents: u64,
    /// Inconclusive votes (double-quarantines).
    pub inconclusives: u64,
    /// Symptom-history escalations.
    pub escalations: u64,
    /// TMR replays performed.
    pub replays: u64,
    /// Repair reformations.
    pub repairs: u64,
    /// Calibration-window rotations applied.
    pub rotations: u64,
    /// Pipeline recoveries (rollbacks + restarts).
    pub recoveries: u64,
    /// Mux-select registers found disagreeing with routing intent and
    /// rewritten by the route scrub.
    pub reroutes: u64,
    /// TSV link bundles quarantined as routing constraints.
    pub link_quarantines: u64,
    /// Checkpoints committed.
    pub checkpoint_commits: u64,
    /// Checkpoint digests rejected during recovery.
    pub checkpoint_corruptions: u64,
    /// Symptom-to-scan detection latency (cycles).
    pub detection_latency: Histogram,
    /// Replays consumed per diagnosis.
    pub replay_count: Histogram,
    /// Crossbar operations per reformation.
    pub reformation_ops: Histogram,
    /// Changed slots per rotation.
    pub rotation_churn: Histogram,
}

impl Metrics {
    /// A zeroed accumulator with the standard bucket sets.
    #[must_use]
    pub fn new() -> Self {
        Metrics {
            detections: 0,
            untested: 0,
            suspensions: 0,
            transients: 0,
            permanents: 0,
            inconclusives: 0,
            escalations: 0,
            replays: 0,
            repairs: 0,
            rotations: 0,
            recoveries: 0,
            reroutes: 0,
            link_quarantines: 0,
            checkpoint_commits: 0,
            checkpoint_corruptions: 0,
            detection_latency: Histogram::new(DETECTION_LATENCY_BOUNDS),
            replay_count: Histogram::new(REPLAY_COUNT_BOUNDS),
            reformation_ops: Histogram::new(REFORMATION_OPS_BOUNDS),
            rotation_churn: Histogram::new(ROTATION_CHURN_BOUNDS),
        }
    }
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics::new()
    }
}

/// A serializable point-in-time view of everything the engine knows
/// about its own behavior — the single observation API that replaces
/// the pre-telemetry pile of one-off getters.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Epochs executed.
    pub epochs: u64,
    /// Checker firings seen.
    pub detections: u64,
    /// Detection tests skipped for lack of a redundant stage.
    pub untested: u64,
    /// Tests that borrowed a suspended core's stage.
    pub suspensions: u64,
    /// Transient faults classified.
    pub transients_seen: u64,
    /// Permanent faults diagnosed.
    pub permanents_diagnosed: u64,
    /// Inconclusive votes.
    pub inconclusives: u64,
    /// Symptom-history escalations.
    pub escalations: u64,
    /// TMR replays performed.
    pub replays: u64,
    /// Repair reformations.
    pub repairs: u64,
    /// Calibration-window rotations.
    pub rotations: u64,
    /// Pipeline recoveries.
    pub recoveries: u64,
    /// Mux-select registers rewritten by the route scrub.
    pub reroutes: u64,
    /// TSV link bundles quarantined as routing constraints.
    pub link_quarantines: u64,
    /// Telemetry records the installed sink lost (ring overwrite or
    /// stream overflow under a drop policy): nonzero means the trace is
    /// truncated even though the metrics here are complete.
    pub trace_dropped: u64,
    /// Stages believed permanently faulty, sorted.
    pub believed_faulty: Vec<StageId>,
    /// Links quarantined as routing constraints (their stages stay
    /// healthy and still vote), sorted.
    pub quarantined_links: Vec<StageId>,
    /// Nonzero decaying symptom scores, sorted by stage, in 1/1024
    /// symptom units.
    pub symptom_scores: Vec<(StageId, u64)>,
    /// Checkpoint/recovery accounting, when checkpointing is enabled.
    pub checkpoints: Option<CheckpointStats>,
    /// Symptom-to-scan detection latency (cycles).
    pub detection_latency: Histogram,
    /// Replays consumed per diagnosis.
    pub replay_count: Histogram,
    /// Crossbar operations per reformation.
    pub reformation_ops: Histogram,
    /// Changed slots per rotation.
    pub rotation_churn: Histogram,
}

impl MetricsSnapshot {
    /// Deterministic pretty-printed JSON: fixed key order, integers
    /// only, byte-identical for identical snapshots.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"epochs\": {},", self.epochs);
        let _ = writeln!(out, "  \"detections\": {},", self.detections);
        let _ = writeln!(out, "  \"untested\": {},", self.untested);
        let _ = writeln!(out, "  \"suspensions\": {},", self.suspensions);
        let _ = writeln!(out, "  \"transients_seen\": {},", self.transients_seen);
        let _ = writeln!(out, "  \"permanents_diagnosed\": {},", self.permanents_diagnosed);
        let _ = writeln!(out, "  \"inconclusives\": {},", self.inconclusives);
        let _ = writeln!(out, "  \"escalations\": {},", self.escalations);
        let _ = writeln!(out, "  \"replays\": {},", self.replays);
        let _ = writeln!(out, "  \"repairs\": {},", self.repairs);
        let _ = writeln!(out, "  \"rotations\": {},", self.rotations);
        let _ = writeln!(out, "  \"recoveries\": {},", self.recoveries);
        let _ = writeln!(out, "  \"reroutes\": {},", self.reroutes);
        let _ = writeln!(out, "  \"link_quarantines\": {},", self.link_quarantines);
        let _ = writeln!(out, "  \"trace_dropped\": {},", self.trace_dropped);
        out.push_str("  \"believed_faulty\": [");
        for (i, s) in self.believed_faulty.iter().enumerate() {
            let _ = write!(out, "{}\"{}\"", if i == 0 { "" } else { ", " }, stage_label(*s));
        }
        out.push_str("],\n  \"quarantined_links\": [");
        for (i, s) in self.quarantined_links.iter().enumerate() {
            let _ = write!(out, "{}\"{}\"", if i == 0 { "" } else { ", " }, stage_label(*s));
        }
        out.push_str("],\n  \"symptom_scores\": {");
        for (i, (s, score)) in self.symptom_scores.iter().enumerate() {
            let _ =
                write!(out, "{}\"{}\": {score}", if i == 0 { "" } else { ", " }, stage_label(*s));
        }
        out.push_str("},\n");
        match &self.checkpoints {
            Some(cp) => {
                let _ = writeln!(
                    out,
                    "  \"checkpoints\": {{\"commits\": {}, \"restores\": {}, \
                     \"restarts\": {}, \"lost_instructions\": {}, \
                     \"overhead_cycles\": {}, \"corruptions_detected\": {}, \
                     \"poisoned_restores\": {}}},",
                    cp.commits,
                    cp.restores,
                    cp.restarts,
                    cp.lost_instructions,
                    cp.overhead_cycles,
                    cp.corruptions_detected,
                    cp.poisoned_restores
                );
            }
            None => out.push_str("  \"checkpoints\": null,\n"),
        }
        let _ = writeln!(out, "  \"detection_latency\": {},", self.detection_latency.to_json());
        let _ = writeln!(out, "  \"replay_count\": {},", self.replay_count.to_json());
        let _ = writeln!(out, "  \"reformation_ops\": {},", self.reformation_ops.to_json());
        let _ = writeln!(out, "  \"rotation_churn\": {}", self.rotation_churn.to_json());
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use r2d3_isa::Unit;

    #[test]
    fn histogram_buckets_values_inclusively() {
        let mut h = Histogram::new(DETECTION_LATENCY_BOUNDS);
        h.record(0);
        h.record(50); // inclusive: first bucket
        h.record(51); // second bucket
        h.record(1_000_000); // overflow bucket
        assert_eq!(h.counts()[0], 2);
        assert_eq!(h.counts()[1], 1);
        assert_eq!(h.counts()[7], 1);
        assert_eq!(h.total(), 4);
        assert_eq!(h.max(), 1_000_000);
        assert_eq!(h.sum(), 1_000_101);
    }

    #[test]
    fn histogram_merge_adds_everything() {
        let mut a = Histogram::new(REPLAY_COUNT_BOUNDS);
        let mut b = Histogram::new(REPLAY_COUNT_BOUNDS);
        a.record(2);
        b.record(3);
        b.record(100);
        a.merge(&b);
        assert_eq!(a.total(), 3);
        assert_eq!(a.sum(), 105);
        assert_eq!(a.max(), 100);
        assert_eq!(a.counts()[1], 1);
        assert_eq!(a.counts()[2], 1);
        assert_eq!(a.counts()[7], 1);
    }

    #[test]
    fn histogram_json_is_deterministic_and_integer_only() {
        let mut h = Histogram::new(REPLAY_COUNT_BOUNDS);
        h.record(2);
        let j = h.to_json();
        assert_eq!(j, h.to_json());
        assert!(!j.contains('.'), "floats would break byte-determinism: {j}");
        assert!(j.starts_with("{\"bounds\": [1, 2, 3, 4, 6, 8, 12]"));
    }

    #[test]
    fn snapshot_json_round_keys() {
        let snap = MetricsSnapshot {
            epochs: 3,
            detections: 1,
            untested: 0,
            suspensions: 0,
            transients_seen: 0,
            permanents_diagnosed: 1,
            inconclusives: 0,
            escalations: 0,
            replays: 3,
            repairs: 1,
            rotations: 0,
            recoveries: 1,
            reroutes: 0,
            link_quarantines: 0,
            trace_dropped: 0,
            believed_faulty: vec![StageId::new(2, Unit::Exu)],
            quarantined_links: vec![],
            symptom_scores: vec![(StageId::new(1, Unit::Lsu), 1024)],
            checkpoints: None,
            detection_latency: Histogram::new(DETECTION_LATENCY_BOUNDS),
            replay_count: Histogram::new(REPLAY_COUNT_BOUNDS),
            reformation_ops: Histogram::new(REFORMATION_OPS_BOUNDS),
            rotation_churn: Histogram::new(ROTATION_CHURN_BOUNDS),
        };
        let j = snap.to_json();
        assert_eq!(j, snap.to_json());
        assert!(j.contains("\"trace_dropped\": 0"));
        assert!(j.contains("\"believed_faulty\": [\"L2.Exu\"]"));
        assert!(j.contains("\"symptom_scores\": {\"L1.Lsu\": 1024}"));
        assert!(j.contains("\"checkpoints\": null"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }
}
