//! Structured, deterministic telemetry for the R2D3 engine.
//!
//! R2D3's value claims are latency claims — detection within
//! `T_epoch + T_test`, one-cycle diagnosis stalls, bounded repair
//! reformation — and none of them are measurable from coarse end-of-run
//! counters. This module threads a cycle-stamped event stream through
//! the whole detect → diagnose → repair → prevent loop:
//!
//! * a [`TelemetrySink`] receives [`TelemetryRecord`]s from
//!   [`crate::engine::R2d3Engine::run_epoch`] — execution spans, scan
//!   summaries, per-detection latencies, every TMR replay, verdicts,
//!   checkpoint commits/verifications, recoveries, crossbar
//!   reformations and rotations;
//! * [`NullSink`] is the zero-cost default: `is_enabled()` is `false`,
//!   `record()` is a no-op, and the whole record path monomorphizes
//!   away;
//! * [`RingSink`] is a fixed-capacity ring buffer with a zero-alloc
//!   record path (records are `Copy`; the buffer is preallocated);
//! * [`StreamSink`] streams JSON-lines through a bounded channel to a
//!   writer thread, so million-epoch traces survive without the ring
//!   cap — with explicit backpressure accounting ([`OverflowPolicy`]);
//! * [`Metrics`]/[`MetricsSnapshot`] aggregate derived per-epoch
//!   metrics — counters plus fixed-bucket [`Histogram`]s for detection
//!   latency, replay count, reformation cost and rotation churn;
//! * [`export`] renders record streams as JSON-lines or Chrome
//!   trace-event JSON (loadable in Perfetto / `chrome://tracing`).
//!
//! # Determinism contract
//!
//! Every field of every record is derived from simulated state — cycle
//! counters, epoch indices, stage coordinates — never from host clocks,
//! allocation addresses or hash-iteration order. The sink is strictly
//! write-only from the engine's perspective: no verdict, repair or
//! rotation decision ever reads it. Consequently the engine's behavior
//! (and every campaign report) is byte-identical whichever sink is
//! installed, and two runs with the same seed produce identical traces.

mod export;
mod metrics;
mod stream;

pub use export::{
    chrome_trace, json_lines, lifetime_counter_trace, validate_chrome_trace, validate_json_lines,
    ChromeTrace,
};
pub use metrics::{
    Histogram, Metrics, MetricsSnapshot, DETECTION_LATENCY_BOUNDS, REFORMATION_OPS_BOUNDS,
    REPLAY_COUNT_BOUNDS, ROTATION_CHURN_BOUNDS,
};
pub use stream::{OverflowPolicy, StreamSink, StreamStats, DEFAULT_STREAM_CAPACITY};

use r2d3_pipeline_sim::StageId;

/// Verdict of one single-replay TMR diagnosis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VerdictKind {
    /// The symptom did not recur under replay: a consumed soft error.
    Transient,
    /// The majority vote localized a permanent fault.
    Permanent,
    /// Every vote split three ways; both comparison parties quarantined.
    Inconclusive,
}

impl VerdictKind {
    /// Stable export name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            VerdictKind::Transient => "transient",
            VerdictKind::Permanent => "permanent",
            VerdictKind::Inconclusive => "inconclusive",
        }
    }
}

/// One structured engine event. All variants are `Copy` so the record
/// path never allocates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TelemetryEvent {
    /// One pipeline's share of an epoch's execution (a span: it ends at
    /// the record's cycle stamp). Emitted once per logical pipeline per
    /// epoch so trace viewers render per-pipe lanes.
    Exec {
        /// The logical pipeline.
        pipe: u32,
        /// Cycles executed.
        cycles: u64,
        /// Operations the pipeline retired during the span (0 for
        /// broken/idle pipelines).
        retired: u64,
    },
    /// Epoch-boundary detection scan summary.
    Scan {
        /// DUT stages actually compared against a redundant stage.
        tested: u32,
        /// Mapped stages skipped (no redundant available / empty window).
        untested: u32,
        /// Symptoms found.
        detections: u32,
    },
    /// One checker firing, with its measured detection latency.
    Detect {
        /// The stage under test.
        dut: StageId,
        /// Pipeline that was using it.
        pipe: u32,
        /// Cycles from the symptom-producing operation to the scan that
        /// caught it (the paper's detection-latency claim).
        latency: u64,
        /// Whether the redundant stage was borrowed from a running core.
        suspended: bool,
    },
    /// One TMR replay of the symptom-generating operation.
    Replay {
        /// The stage that re-executed the operation.
        stage: StageId,
    },
    /// Diagnosis verdict for one detection.
    Verdict {
        /// The stage under test.
        dut: StageId,
        /// Classification.
        verdict: VerdictKind,
        /// Replays the diagnosis consumed (2 + third-voter retries).
        replays: u32,
    },
    /// Symptom-history escalation quarantined a stage.
    Escalated {
        /// The quarantined stage.
        stage: StageId,
        /// Its decayed symptom score when it crossed the threshold, in
        /// 1/1024 symptom units.
        score: u64,
    },
    /// Checkpoints were committed after a clean scan.
    CheckpointCommit {
        /// Pipelines committed.
        pipes: u32,
    },
    /// A committed slot's payload digest was checked during recovery.
    CheckpointVerify {
        /// Pipeline whose slot was verified.
        pipe: u32,
        /// `false` means the slot rotted since commit and was rejected.
        ok: bool,
    },
    /// A corrupted pipeline was recovered.
    Recovery {
        /// The recovered pipeline.
        pipe: u32,
        /// `true` for a checkpoint rollback, `false` for a restart.
        rolled_back: bool,
    },
    /// The crossbars were re-formed (repair or rotation).
    Reform {
        /// Complete pipelines after reformation.
        formed: u32,
        /// Crossbar operations performed (unassigns + assigns) — the
        /// reformation-cost proxy in this zero-latency-reconfig model.
        ops: u32,
        /// Slots whose serving stage changed.
        churn: u32,
        /// `true` for a calibration-window rotation, `false` for repair.
        rotation: bool,
    },
    /// A calibration-window rotation boundary was crossed.
    Rotate {
        /// Calibration-window index.
        window: u64,
    },
    /// Route scrub found a crossbar select register disagreeing with the
    /// controller's routing intent and rewrote it.
    Misroute {
        /// Pipeline whose slot was misrouted.
        pipe: u32,
        /// Layer the controller intended the slot to read.
        expected: u32,
        /// Layer the select register actually read (`u32::MAX` when the
        /// readback was empty).
        actual: u32,
    },
    /// A vertical TSV link bundle was quarantined as a routing
    /// constraint: repair avoids it without retiring its (healthy)
    /// stage.
    LinkQuarantine {
        /// The quarantined link (stage-coordinate addressed).
        link: StageId,
    },
    /// End of one `run_epoch` call.
    EpochEnd {
        /// [`crate::engine::EngineEvent`]s the epoch produced.
        events: u32,
    },
}

impl TelemetryEvent {
    /// Stable export name (the `type` field of the JSON schema).
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            TelemetryEvent::Exec { .. } => "exec",
            TelemetryEvent::Scan { .. } => "scan",
            TelemetryEvent::Detect { .. } => "detect",
            TelemetryEvent::Replay { .. } => "replay",
            TelemetryEvent::Verdict { .. } => "verdict",
            TelemetryEvent::Escalated { .. } => "escalate",
            TelemetryEvent::CheckpointCommit { .. } => "checkpoint_commit",
            TelemetryEvent::CheckpointVerify { .. } => "checkpoint_verify",
            TelemetryEvent::Recovery { .. } => "recovery",
            TelemetryEvent::Reform { .. } => "reform",
            TelemetryEvent::Rotate { .. } => "rotate",
            TelemetryEvent::Misroute { .. } => "misroute",
            TelemetryEvent::LinkQuarantine { .. } => "link_quarantine",
            TelemetryEvent::EpochEnd { .. } => "epoch_end",
        }
    }

    /// Every event name the exporters can emit, in schema order.
    pub const NAMES: [&'static str; 14] = [
        "exec",
        "scan",
        "detect",
        "replay",
        "verdict",
        "escalate",
        "checkpoint_commit",
        "checkpoint_verify",
        "recovery",
        "reform",
        "rotate",
        "misroute",
        "link_quarantine",
        "epoch_end",
    ];
}

/// A cycle-stamped telemetry record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TelemetryRecord {
    /// Engine epoch counter when the event was recorded.
    pub epoch: u64,
    /// Substrate cycle count when the event was recorded (simulated
    /// time, never host time).
    pub cycle: u64,
    /// The event.
    pub event: TelemetryEvent,
}

/// Receives engine telemetry. Implementations must never feed back into
/// engine decisions (see the module-level determinism contract).
pub trait TelemetrySink {
    /// Accepts one record. Called only when [`is_enabled`] is `true`,
    /// so disabled sinks pay nothing on the record path.
    ///
    /// [`is_enabled`]: TelemetrySink::is_enabled
    fn record(&mut self, record: TelemetryRecord);

    /// Whether the engine should construct and deliver records at all.
    /// Defaults to `true`; [`NullSink`] returns `false`, letting the
    /// whole instrumentation path compile away.
    #[must_use]
    fn is_enabled(&self) -> bool {
        true
    }

    /// Records this sink has lost (ring overwrite, channel overflow
    /// under a drop policy, …). Surfaced in
    /// [`MetricsSnapshot::trace_dropped`](crate::telemetry::MetricsSnapshot)
    /// so truncated traces are visible in reports. Lossless sinks keep
    /// the default of 0.
    #[must_use]
    fn dropped(&self) -> u64 {
        0
    }
}

/// The disabled sink: records are never constructed, the instrumented
/// paths monomorphize to the uninstrumented code.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullSink;

impl TelemetrySink for NullSink {
    #[inline]
    fn record(&mut self, _record: TelemetryRecord) {}

    #[inline]
    fn is_enabled(&self) -> bool {
        false
    }
}

/// Default [`RingSink`] capacity (records).
pub const DEFAULT_RING_CAPACITY: usize = 64 * 1024;

/// Fixed-capacity ring-buffer sink with a zero-alloc record path.
///
/// The buffer is preallocated at construction; once full, the oldest
/// record is overwritten and [`dropped`](RingSink::dropped) counts the
/// loss — recording never allocates and never fails.
#[derive(Debug, Clone)]
pub struct RingSink {
    buf: Vec<TelemetryRecord>,
    capacity: usize,
    head: usize,
    dropped: u64,
}

impl RingSink {
    /// A ring holding up to `capacity` records (at least one).
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        RingSink { buf: Vec::with_capacity(capacity), capacity, head: 0, dropped: 0 }
    }

    /// A ring with the default capacity ([`DEFAULT_RING_CAPACITY`]).
    #[must_use]
    pub fn new() -> Self {
        RingSink::with_capacity(DEFAULT_RING_CAPACITY)
    }

    /// Records currently held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the ring holds no records.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Maximum records the ring can hold.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Records overwritten because the ring was full.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The held records, oldest first.
    #[must_use]
    pub fn records(&self) -> Vec<TelemetryRecord> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        out
    }

    /// Empties the ring (capacity is kept).
    pub fn clear(&mut self) {
        self.buf.clear();
        self.head = 0;
        self.dropped = 0;
    }
}

impl Default for RingSink {
    fn default() -> Self {
        RingSink::new()
    }
}

impl TelemetrySink for RingSink {
    #[inline]
    fn record(&mut self, record: TelemetryRecord) {
        if self.buf.len() < self.capacity {
            self.buf.push(record);
        } else {
            self.buf[self.head] = record;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    #[inline]
    fn dropped(&self) -> u64 {
        self.dropped
    }
}

/// Renders a stage as the stable export label (e.g. `L2.Exu`), matching
/// the campaign report's stage notation.
#[must_use]
pub fn stage_label(stage: StageId) -> String {
    format!("L{}.{:?}", stage.layer, stage.unit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use r2d3_isa::Unit;

    fn rec(i: u64) -> TelemetryRecord {
        TelemetryRecord { epoch: i, cycle: i * 10, event: TelemetryEvent::EpochEnd { events: 0 } }
    }

    #[test]
    fn null_sink_is_disabled() {
        let mut sink = NullSink;
        assert!(!sink.is_enabled());
        sink.record(rec(1)); // no-op, must not panic
    }

    #[test]
    fn ring_keeps_newest_records_and_counts_drops() {
        let mut ring = RingSink::with_capacity(4);
        assert!(ring.is_empty());
        for i in 0..6 {
            ring.record(rec(i));
        }
        assert_eq!(ring.len(), 4);
        assert_eq!(ring.dropped(), 2);
        let epochs: Vec<u64> = ring.records().iter().map(|r| r.epoch).collect();
        assert_eq!(epochs, vec![2, 3, 4, 5], "oldest-first, newest kept");
    }

    #[test]
    fn ring_clear_resets() {
        let mut ring = RingSink::with_capacity(2);
        ring.record(rec(0));
        ring.record(rec(1));
        ring.record(rec(2));
        ring.clear();
        assert!(ring.is_empty());
        assert_eq!(ring.dropped(), 0);
        ring.record(rec(7));
        assert_eq!(ring.records()[0].epoch, 7);
    }

    #[test]
    fn event_names_match_schema_list() {
        let sample = [
            TelemetryEvent::Exec { pipe: 0, cycles: 1, retired: 0 },
            TelemetryEvent::Scan { tested: 0, untested: 0, detections: 0 },
            TelemetryEvent::Detect {
                dut: StageId::new(0, Unit::Exu),
                pipe: 0,
                latency: 0,
                suspended: false,
            },
            TelemetryEvent::Replay { stage: StageId::new(0, Unit::Exu) },
            TelemetryEvent::Verdict {
                dut: StageId::new(0, Unit::Exu),
                verdict: VerdictKind::Transient,
                replays: 2,
            },
            TelemetryEvent::Escalated { stage: StageId::new(0, Unit::Exu), score: 0 },
            TelemetryEvent::CheckpointCommit { pipes: 1 },
            TelemetryEvent::CheckpointVerify { pipe: 0, ok: true },
            TelemetryEvent::Recovery { pipe: 0, rolled_back: true },
            TelemetryEvent::Reform { formed: 0, ops: 0, churn: 0, rotation: false },
            TelemetryEvent::Rotate { window: 1 },
            TelemetryEvent::Misroute { pipe: 0, expected: 1, actual: 2 },
            TelemetryEvent::LinkQuarantine { link: StageId::new(0, Unit::Exu) },
            TelemetryEvent::EpochEnd { events: 0 },
        ];
        let names: Vec<&str> = sample.iter().map(TelemetryEvent::name).collect();
        assert_eq!(names, TelemetryEvent::NAMES);
    }
}
