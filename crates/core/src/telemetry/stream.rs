//! Streaming JSON-lines sink: a bounded channel into a writer thread.
//!
//! [`RingSink`](super::RingSink) keeps the newest 64k records and drops
//! the rest; for million-epoch lifetime studies that silently truncates
//! the trace. [`StreamSink`] instead formats each record as one
//! JSON-lines object (the exact [`json_lines`](super::json_lines)
//! schema) and hands it to a dedicated writer thread over a bounded
//! channel, so the simulation thread never does file I/O and a trace of
//! any length survives.
//!
//! Backpressure is explicit, never silent:
//!
//! * [`OverflowPolicy::Block`] — when the channel is full the record
//!   call blocks until the writer catches up. Lossless; the number of
//!   stalls is counted.
//! * [`OverflowPolicy::Drop`] — when the channel is full the record is
//!   discarded and counted, mirroring `RingSink::dropped()`.
//!
//! Either way [`StreamStats`] reconciles exactly:
//! `recorded == written + dropped`.
//!
//! The *trace file contents* under `Block` are byte-deterministic (the
//! record stream itself is, by the telemetry determinism contract).
//! Stall/drop *counts* depend on host scheduling and are diagnostics,
//! not part of any deterministic report.

use super::{TelemetryRecord, TelemetrySink};
use std::ffi::OsString;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::mpsc::{sync_channel, SyncSender, TrySendError};
use std::thread::JoinHandle;

/// Default bound of the record channel (records in flight).
pub const DEFAULT_STREAM_CAPACITY: usize = 8 * 1024;

/// What to do when the writer thread falls behind and the channel fills.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OverflowPolicy {
    /// Block the recording thread until space frees up (lossless).
    #[default]
    Block,
    /// Drop the record and count it (lossy, non-stalling).
    Drop,
}

/// End-of-run accounting for a [`StreamSink`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StreamStats {
    /// Records offered to the sink.
    pub recorded: u64,
    /// Records the writer thread serialized to the output.
    pub written: u64,
    /// Records discarded because the channel was full
    /// ([`OverflowPolicy::Drop`] only). `recorded == written + dropped`.
    pub dropped: u64,
    /// Times the recording thread had to wait for the writer
    /// ([`OverflowPolicy::Block`] only).
    pub stalls: u64,
}

enum WriterMsg {
    Record(TelemetryRecord),
    Flush,
}

/// A [`TelemetrySink`] that streams records as JSON-lines through a
/// bounded channel to a background writer thread.
///
/// Call [`finish`](StreamSink::finish) to flush, join the writer and
/// collect [`StreamStats`]; dropping the sink joins the writer too but
/// swallows late I/O errors.
#[derive(Debug)]
pub struct StreamSink {
    tx: Option<SyncSender<WriterMsg>>,
    writer: Option<JoinHandle<io::Result<u64>>>,
    policy: OverflowPolicy,
    recorded: u64,
    dropped: u64,
    stalls: u64,
}

impl StreamSink {
    /// Streams to `out` with the given channel bound and overflow
    /// policy. `capacity` is clamped to at least 1.
    pub fn with_capacity<W>(out: W, capacity: usize, policy: OverflowPolicy) -> Self
    where
        W: Write + Send + 'static,
    {
        let (tx, rx) = sync_channel::<WriterMsg>(capacity.max(1));
        let writer = std::thread::Builder::new()
            .name("r2d3-stream-sink".into())
            .spawn(move || {
                let mut out = out;
                let mut written = 0u64;
                for msg in rx {
                    match msg {
                        WriterMsg::Record(r) => {
                            let line = super::export::json_lines(std::slice::from_ref(&r));
                            out.write_all(line.as_bytes())?;
                            written += 1;
                        }
                        WriterMsg::Flush => out.flush()?,
                    }
                }
                out.flush()?;
                Ok(written)
            })
            .expect("spawn stream-sink writer thread");
        StreamSink {
            tx: Some(tx),
            writer: Some(writer),
            policy,
            recorded: 0,
            dropped: 0,
            stalls: 0,
        }
    }

    /// Streams to `out` with the default capacity
    /// ([`DEFAULT_STREAM_CAPACITY`]) and the blocking (lossless) policy.
    pub fn new<W>(out: W) -> Self
    where
        W: Write + Send + 'static,
    {
        StreamSink::with_capacity(out, DEFAULT_STREAM_CAPACITY, OverflowPolicy::Block)
    }

    /// Streams to a buffered file created (truncated) at `path`.
    ///
    /// Real-filesystem convenience constructor; chaos tests use
    /// [`to_file_with`](StreamSink::to_file_with) to route the writer
    /// thread's I/O through an injected [`Vfs`](crate::chaos::Vfs).
    pub fn to_file<P: AsRef<Path>>(path: P, policy: OverflowPolicy) -> io::Result<Self> {
        let file = BufWriter::new(File::create(path)?);
        Ok(StreamSink::with_capacity(file, DEFAULT_STREAM_CAPACITY, policy))
    }

    /// [`to_file`](StreamSink::to_file) through a
    /// [`Vfs`](crate::chaos::Vfs) seam: the writer thread's I/O goes
    /// through the injected filesystem, so chaos tests can tear writes
    /// and fill the disk under the sink. Write errors surface at
    /// [`finish`](StreamSink::finish) as always — the recording thread
    /// never blocks on a dead writer.
    pub fn to_file_with(
        vfs: &dyn crate::chaos::Vfs,
        path: &Path,
        policy: OverflowPolicy,
    ) -> io::Result<Self> {
        let file = BufWriter::new(vfs.create(path)?);
        Ok(StreamSink::with_capacity(file, DEFAULT_STREAM_CAPACITY, policy))
    }

    /// Streams to `path` with size-based segment rotation: once a segment
    /// would grow past `max_segment_bytes`, the writer closes it and
    /// continues in the next segment (`trace.jsonl`, `trace.jsonl.1`,
    /// `trace.jsonl.2`, …). Rotation happens *between* records, so every
    /// segment is itself a valid JSON-lines file, and the concatenation
    /// of all segments in order is byte-identical to the unrotated
    /// stream. `max_segment_bytes == 0` disables rotation (single
    /// unbounded segment, same as [`StreamSink::to_file`]).
    ///
    /// A record line larger than `max_segment_bytes` still lands whole in
    /// its own segment — rotation never splits a line.
    ///
    /// Accounting is unchanged: [`StreamStats`] reconcile exactly
    /// (`recorded == written + dropped`) across all segments combined.
    pub fn to_file_rotating<P: AsRef<Path>>(
        path: P,
        policy: OverflowPolicy,
        max_segment_bytes: u64,
    ) -> io::Result<Self> {
        let writer = RotatingFileWriter::create(path.as_ref(), max_segment_bytes)?;
        Ok(StreamSink::with_capacity(writer, DEFAULT_STREAM_CAPACITY, policy))
    }

    /// The on-disk path of rotated segment `index` for a base `path`:
    /// segment 0 is `path` itself, segment `n` is `path.n`.
    #[must_use]
    pub fn segment_path<P: AsRef<Path>>(path: P, index: usize) -> PathBuf {
        let path = path.as_ref();
        if index == 0 {
            return path.to_path_buf();
        }
        let mut name = OsString::from(path.as_os_str());
        name.push(format!(".{index}"));
        PathBuf::from(name)
    }

    /// The configured overflow policy.
    #[must_use]
    pub fn policy(&self) -> OverflowPolicy {
        self.policy
    }

    /// Records offered so far.
    #[must_use]
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Times the recording thread blocked on a full channel so far.
    #[must_use]
    pub fn stalls(&self) -> u64 {
        self.stalls
    }

    /// Asks the writer thread to flush its output (non-blocking best
    /// effort; a full channel under the drop policy skips the request).
    pub fn request_flush(&mut self) {
        if let Some(tx) = &self.tx {
            match self.policy {
                OverflowPolicy::Block => {
                    let _ = tx.send(WriterMsg::Flush);
                }
                OverflowPolicy::Drop => {
                    let _ = tx.try_send(WriterMsg::Flush);
                }
            }
        }
    }

    /// Closes the channel, joins the writer thread and returns the final
    /// accounting. An I/O error from the writer thread is returned here
    /// rather than panicking the simulation.
    pub fn finish(mut self) -> io::Result<StreamStats> {
        self.close()
    }

    fn close(&mut self) -> io::Result<StreamStats> {
        drop(self.tx.take());
        let written = match self.writer.take() {
            Some(handle) => match handle.join() {
                Ok(result) => result?,
                Err(_) => {
                    return Err(io::Error::other("stream-sink writer thread panicked"));
                }
            },
            None => 0,
        };
        Ok(StreamStats {
            recorded: self.recorded,
            written,
            dropped: self.dropped,
            stalls: self.stalls,
        })
    }
}

/// Size-rotated segment writer behind [`StreamSink::to_file_rotating`].
///
/// Each `write` call carries one complete JSON line (the writer thread
/// writes record-at-a-time), so checking the budget per call keeps every
/// segment line-aligned.
struct RotatingFileWriter {
    base: PathBuf,
    max_bytes: u64,
    segment: usize,
    segment_bytes: u64,
    out: BufWriter<File>,
}

impl RotatingFileWriter {
    fn create(base: &Path, max_bytes: u64) -> io::Result<Self> {
        Ok(RotatingFileWriter {
            base: base.to_path_buf(),
            max_bytes,
            segment: 0,
            segment_bytes: 0,
            out: BufWriter::new(File::create(base)?),
        })
    }

    fn rotate(&mut self) -> io::Result<()> {
        self.out.flush()?;
        self.segment += 1;
        self.segment_bytes = 0;
        let next = StreamSink::segment_path(&self.base, self.segment);
        self.out = BufWriter::new(File::create(next)?);
        Ok(())
    }
}

impl Write for RotatingFileWriter {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        // Rotate *before* a write that would overflow the segment — never
        // mid-line — except when the segment is empty (an oversized line
        // still lands whole in its own segment).
        if self.max_bytes > 0
            && self.segment_bytes > 0
            && self.segment_bytes + buf.len() as u64 > self.max_bytes
        {
            self.rotate()?;
        }
        self.out.write_all(buf)?;
        self.segment_bytes += buf.len() as u64;
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        self.out.flush()
    }
}

impl TelemetrySink for StreamSink {
    fn record(&mut self, record: TelemetryRecord) {
        self.recorded += 1;
        let Some(tx) = &self.tx else {
            self.dropped += 1;
            return;
        };
        match tx.try_send(WriterMsg::Record(record)) {
            Ok(()) => {}
            Err(TrySendError::Full(msg)) => match self.policy {
                OverflowPolicy::Block => {
                    self.stalls += 1;
                    if tx.send(msg).is_err() {
                        self.dropped += 1;
                    }
                }
                OverflowPolicy::Drop => {
                    self.dropped += 1;
                }
            },
            // Writer gone (I/O error surfaced at finish()): count the
            // loss instead of panicking mid-simulation.
            Err(TrySendError::Disconnected(_)) => {
                self.dropped += 1;
            }
        }
    }

    fn dropped(&self) -> u64 {
        self.dropped
    }
}

impl Drop for StreamSink {
    fn drop(&mut self) {
        if self.writer.is_some() {
            let _ = self.close();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::{validate_json_lines, TelemetryEvent};
    use super::*;
    use std::sync::{Arc, Mutex};

    /// Test writer capturing bytes behind a shared handle.
    #[derive(Clone, Default)]
    struct Shared(Arc<Mutex<Vec<u8>>>);

    impl Write for Shared {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    fn rec(i: u64) -> TelemetryRecord {
        TelemetryRecord { epoch: i, cycle: i * 10, event: TelemetryEvent::EpochEnd { events: 0 } }
    }

    #[test]
    fn blocking_stream_is_lossless_and_validates() {
        let out = Shared::default();
        let mut sink = StreamSink::with_capacity(out.clone(), 4, OverflowPolicy::Block);
        let n = 10_000u64;
        for i in 0..n {
            sink.record(rec(i));
        }
        let stats = sink.finish().unwrap();
        assert_eq!(stats.recorded, n);
        assert_eq!(stats.written, n);
        assert_eq!(stats.dropped, 0);
        assert_eq!(stats.recorded, stats.written + stats.dropped);
        let text = String::from_utf8(out.0.lock().unwrap().clone()).unwrap();
        assert_eq!(validate_json_lines(&text), Ok(n as usize));
        // Streamed lines are in record order.
        let first = text.lines().next().unwrap();
        assert!(first.starts_with("{\"epoch\": 0,"), "{first}");
    }

    #[test]
    fn drop_policy_accounts_exactly() {
        /// A writer that parks until allowed, forcing the channel full.
        struct Gated(Arc<Mutex<Vec<u8>>>, Arc<std::sync::atomic::AtomicBool>);
        impl Write for Gated {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                while !self.1.load(std::sync::atomic::Ordering::Acquire) {
                    std::thread::yield_now();
                }
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let bytes = Arc::new(Mutex::new(Vec::new()));
        let gate = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let mut sink =
            StreamSink::with_capacity(Gated(bytes.clone(), gate.clone()), 2, OverflowPolicy::Drop);
        for i in 0..64 {
            sink.record(rec(i));
        }
        gate.store(true, std::sync::atomic::Ordering::Release);
        let stats = sink.finish().unwrap();
        assert_eq!(stats.recorded, 64);
        assert!(stats.dropped > 0, "gated writer must have overflowed the channel");
        assert_eq!(stats.recorded, stats.written + stats.dropped);
        let text = String::from_utf8(bytes.lock().unwrap().clone()).unwrap();
        assert_eq!(validate_json_lines(&text), Ok(stats.written as usize));
    }

    #[test]
    fn rotating_file_sink_splits_on_line_boundaries_and_reconciles() {
        let dir = std::env::temp_dir().join(format!("r2d3-rotate-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let base = dir.join("trace.jsonl");
        let max = 512u64;
        let mut sink = StreamSink::to_file_rotating(&base, OverflowPolicy::Block, max).unwrap();
        let n = 200u64;
        for i in 0..n {
            sink.record(rec(i));
        }
        let stats = sink.finish().unwrap();
        assert_eq!(stats.recorded, n);
        assert_eq!(stats.dropped, 0);
        assert_eq!(stats.recorded, stats.written + stats.dropped);

        // Walk the segments in order; together they must reproduce the
        // full stream, each one a valid JSON-lines file within budget.
        let mut combined = String::new();
        let mut total_lines = 0usize;
        let mut segments = 0usize;
        loop {
            let path = StreamSink::segment_path(&base, segments);
            let Ok(text) = std::fs::read_to_string(&path) else { break };
            segments += 1;
            assert!(
                text.len() as u64 <= max,
                "segment {} is {} bytes, budget {}",
                segments - 1,
                text.len(),
                max
            );
            assert!(text.ends_with('\n'), "segment split mid-line");
            total_lines += validate_json_lines(&text).unwrap();
            combined.push_str(&text);
        }
        assert!(segments > 1, "{n} records never rotated a {max}-byte segment");
        assert_eq!(total_lines as u64, stats.written);
        assert_eq!(validate_json_lines(&combined), Ok(n as usize));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn zero_budget_disables_rotation() {
        let dir = std::env::temp_dir().join(format!("r2d3-norotate-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let base = dir.join("trace.jsonl");
        let mut sink = StreamSink::to_file_rotating(&base, OverflowPolicy::Block, 0).unwrap();
        for i in 0..100 {
            sink.record(rec(i));
        }
        let stats = sink.finish().unwrap();
        assert_eq!(stats.written, 100);
        assert!(std::fs::metadata(StreamSink::segment_path(&base, 1)).is_err());
        let text = std::fs::read_to_string(&base).unwrap();
        assert_eq!(validate_json_lines(&text), Ok(100));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn segment_paths_are_stable() {
        assert_eq!(StreamSink::segment_path("t.jsonl", 0), PathBuf::from("t.jsonl"));
        assert_eq!(StreamSink::segment_path("t.jsonl", 3), PathBuf::from("t.jsonl.3"));
    }

    #[test]
    fn finish_surfaces_writer_io_errors() {
        struct Failing;
        impl Write for Failing {
            fn write(&mut self, _buf: &[u8]) -> io::Result<usize> {
                Err(io::Error::other("disk full"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut sink = StreamSink::with_capacity(Failing, 2, OverflowPolicy::Drop);
        for i in 0..16 {
            sink.record(rec(i));
        }
        assert!(sink.finish().is_err());
    }
}
