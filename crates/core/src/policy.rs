//! Reconfiguration policies: NoRecon, Static, R2D3-Lite and R2D3-Pro.

use crate::activity::pro_layer_weights;
use crate::repair::{form_pipelines, FormedPipeline};
use r2d3_isa::Unit;
use r2d3_pipeline_sim::StageId;
use serde::{Deserialize, Serialize};

/// The four system configurations compared throughout the paper's
/// evaluation (§V).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PolicyKind {
    /// 3D stack without reconfiguration: a core dies with its first
    /// faulty stage, and nothing rotates.
    NoRecon,
    /// Failure-repairing static reconfiguration: pipelines are re-formed
    /// after a fault, but the same stages are used continuously.
    Static,
    /// R2D3-Lite: round-robin dynamic rotation every calibration window.
    Lite,
    /// R2D3-Pro: adaptive rotation driven by per-stage activity indices
    /// (Eq. 1–2), favoring stages less prone to heat-up and wearout.
    Pro,
}

impl PolicyKind {
    /// All four configurations, in the paper's order.
    pub const ALL: [PolicyKind; 4] =
        [PolicyKind::NoRecon, PolicyKind::Static, PolicyKind::Lite, PolicyKind::Pro];

    /// Display name matching the paper's figures.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::NoRecon => "NoRecon",
            PolicyKind::Static => "Static",
            PolicyKind::Lite => "R2D3-Lite",
            PolicyKind::Pro => "R2D3-Pro",
        }
    }

    /// Whether the configuration can repair (reroute around) faults.
    #[must_use]
    pub fn repairs(self) -> bool {
        !matches!(self, PolicyKind::NoRecon)
    }

    /// Whether the configuration rotates leftovers dynamically.
    #[must_use]
    pub fn rotates(self) -> bool {
        matches!(self, PolicyKind::Lite | PolicyKind::Pro)
    }

    /// Whether the design carries the R2D3 fabric (area/frequency/power
    /// overheads).
    #[must_use]
    pub fn has_fabric(self) -> bool {
        !matches!(self, PolicyKind::NoRecon)
    }
}

impl std::fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Rotation bookkeeping carried across calibration windows.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RotationState {
    /// Round-robin offset (Lite).
    pub offset: usize,
    /// Accumulated service per stage (Pro's weighted fairness), indexed by
    /// [`StageId::flat_index`].
    pub credits: Vec<f64>,
}

impl RotationState {
    /// Fresh state for a stack of `layers` tiers.
    #[must_use]
    pub fn new(layers: usize) -> Self {
        RotationState { offset: 0, credits: vec![0.0; layers * Unit::COUNT] }
    }
}

/// Selects the stage assignment for the next calibration window.
///
/// * `NoRecon` and `Static` return the canonical (sorted) formation — the
///   same stages serve until a fault changes the healthy set.
/// * `Lite` rotates each unit's healthy list by the window counter.
/// * `Pro` serves stages in increasing order of `credit / weight`, where
///   cooler (sink-near) layers carry larger weights — over time each
///   stage's duty converges to its activity index (Eq. 1).
#[must_use]
pub fn select_assignment(
    kind: PolicyKind,
    layers: usize,
    usable: &dyn Fn(StageId) -> bool,
    wanted: usize,
    state: &mut RotationState,
) -> Vec<FormedPipeline> {
    match kind {
        PolicyKind::NoRecon | PolicyKind::Static => form_pipelines(layers, usable, wanted),
        PolicyKind::Lite => {
            let per_unit: Vec<Vec<usize>> = Unit::ALL
                .iter()
                .map(|&u| {
                    let mut list: Vec<usize> =
                        (0..layers).filter(|&l| usable(StageId::new(l, u))).collect();
                    if !list.is_empty() {
                        let shift = state.offset % list.len();
                        list.rotate_left(shift);
                    }
                    list
                })
                .collect();
            state.offset += 1;
            assemble(&per_unit, wanted)
        }
        PolicyKind::Pro => {
            let weights = pro_layer_weights(layers);
            let per_unit: Vec<Vec<usize>> = Unit::ALL
                .iter()
                .map(|&u| {
                    let mut list: Vec<usize> =
                        (0..layers).filter(|&l| usable(StageId::new(l, u))).collect();
                    list.sort_by(|&a, &b| {
                        let ka = state.credits[StageId::new(a, u).flat_index()] / weights[a];
                        let kb = state.credits[StageId::new(b, u).flat_index()] / weights[b];
                        ka.total_cmp(&kb).then(a.cmp(&b))
                    });
                    list
                })
                .collect();
            let formed = assemble(&per_unit, wanted);
            for p in &formed {
                for u in Unit::ALL {
                    state.credits[p.stage(u).flat_index()] += 1.0;
                }
            }
            formed
        }
    }
}

/// Pairs the `i`-th candidate of each unit into pipeline `i`.
fn assemble(per_unit: &[Vec<usize>], wanted: usize) -> Vec<FormedPipeline> {
    let n = per_unit.iter().map(Vec::len).min().unwrap_or(0).min(wanted);
    (0..n)
        .map(|i| {
            let mut layer_of = [0usize; 5];
            for (ui, list) in per_unit.iter().enumerate() {
                layer_of[ui] = list[i];
            }
            FormedPipeline { layer_of }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn static_is_stable() {
        let mut st = RotationState::new(8);
        let a = select_assignment(PolicyKind::Static, 8, &|_| true, 6, &mut st);
        let b = select_assignment(PolicyKind::Static, 8, &|_| true, 6, &mut st);
        assert_eq!(a, b);
        assert_eq!(a.len(), 6);
    }

    #[test]
    fn lite_rotates_evenly() {
        // Over `layers` windows of 6-of-8 service, every layer's EXU must
        // have served either 6×8/8 = 6 windows (round robin).
        let mut st = RotationState::new(8);
        let mut served: HashMap<usize, usize> = HashMap::new();
        for _ in 0..8 {
            let formed = select_assignment(PolicyKind::Lite, 8, &|_| true, 6, &mut st);
            assert_eq!(formed.len(), 6);
            for p in &formed {
                *served.entry(p.stage(Unit::Exu).layer).or_default() += 1;
            }
        }
        for layer in 0..8 {
            assert_eq!(served[&layer], 6, "layer {layer} served {:?}", served);
        }
    }

    #[test]
    fn pro_favors_sink_near_layers() {
        let mut st = RotationState::new(8);
        let mut served = vec![0usize; 8];
        for _ in 0..32 {
            let formed = select_assignment(PolicyKind::Pro, 8, &|_| true, 6, &mut st);
            for p in &formed {
                served[p.stage(Unit::Exu).layer] += 1;
            }
        }
        assert!(
            served[0] > served[7],
            "cool layer 0 ({}) should serve more than hot layer 7 ({})",
            served[0],
            served[7]
        );
        // Everyone serves sometimes (graceful balancing, not starvation).
        assert!(served.iter().all(|&s| s > 0), "{served:?}");
    }

    #[test]
    fn faulty_stages_never_selected() {
        let bad = StageId::new(3, Unit::Lsu);
        let usable = move |s: StageId| s != bad;
        for kind in PolicyKind::ALL {
            let mut st = RotationState::new(8);
            for _ in 0..10 {
                let formed = select_assignment(kind, 8, &usable, 8, &mut st);
                for p in &formed {
                    assert_ne!(p.stage(Unit::Lsu), bad, "{kind} routed through a fault");
                }
            }
        }
    }

    #[test]
    fn kind_predicates() {
        assert!(!PolicyKind::NoRecon.repairs());
        assert!(PolicyKind::Static.repairs());
        assert!(!PolicyKind::Static.rotates());
        assert!(PolicyKind::Lite.rotates());
        assert!(PolicyKind::Pro.has_fabric());
        assert!(!PolicyKind::NoRecon.has_fabric());
    }
}
