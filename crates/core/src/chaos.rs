//! Deterministic I/O fault injection for the durable/serve stack.
//!
//! The engine injects faults into every layer of the *simulated*
//! hardware; this module turns the same discipline on the engine's own
//! substrate — the filesystem under [`crate::snapshot`], the telemetry
//! [`StreamSink`](crate::telemetry::StreamSink) and the `serve` daemon.
//! Three pieces:
//!
//! * **[`Vfs`]** — the injectable seam. Every byte the durable stack
//!   persists goes through this trait: create/append/read/rename/
//!   remove/dir-sync. [`RealFs`] passes straight through to `std::fs`.
//! * **[`MemFs`]** — an in-memory filesystem with an explicit
//!   *durable/volatile split* modeling strict POSIX crash semantics:
//!   file content becomes durable only on `sync_all`, directory entries
//!   (creates, renames, removals) become durable only when the parent
//!   directory is synced, and [`MemFs::crash`] discards everything
//!   volatile. This is what makes the classic rename-without-dir-fsync
//!   bug *observable* in a test.
//! * **[`FaultyFs`]** — a seeded, deterministic fault injector over a
//!   [`MemFs`]: torn/short writes, `ENOSPC`, fsync failure, rename
//!   failure, persistent disk-pressure windows, and crash points (stop
//!   the world at the k-th I/O operation). Every decision is a pure
//!   function of `(seed, op_index)` — same plan, same faults, every run.
//!
//! On top of the seam sit the recovery primitives the chaos harness
//! forces the stack to need: [`RetryPolicy`] (bounded exponential
//! backoff for transient failures) driven by a [`Clock`] that is real in
//! production and [virtual](VirtualClock) — deterministic, non-sleeping —
//! under test, bundled with a [`Vfs`] handle as an [`IoEnv`].
//!
//! Injected errors are *typed*: [`injected_fault`] recovers the exact
//! [`InjectedFault`] from any `std::io::Error` this module produced, and
//! the classifiers [`is_transient_io`] / [`is_disk_full`] /
//! [`is_injected_crash`] are what the daemon's retry and disk-pressure
//! parking decisions key on.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;
use std::io::{self, Read as _, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

// --- the seam ------------------------------------------------------

/// An open file handle behind the [`Vfs`] seam.
///
/// `Write` is the supertrait so a boxed handle slots anywhere a plain
/// writer does (e.g. [`StreamSink::with_capacity`]); `sync_all` is the
/// durability point — under [`MemFs`] semantics, content written but
/// never synced does not survive a [`MemFs::crash`].
///
/// [`StreamSink::with_capacity`]: crate::telemetry::StreamSink::with_capacity
pub trait VfsFile: Write + Send {
    /// Flushes and makes the file's *content* durable (fsync). Does not
    /// make the file's directory entry durable — that takes
    /// [`Vfs::sync_dir`] on the parent.
    fn sync_all(&mut self) -> io::Result<()>;
}

/// The injectable filesystem seam the durable stack writes through.
///
/// Implementations: [`RealFs`] (production), [`MemFs`] (crash-semantics
/// model), [`FaultyFs`] (seeded fault injection over a [`MemFs`]).
pub trait Vfs: Send + Sync + fmt::Debug {
    /// Creates (truncating) a file for writing.
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;
    /// Opens a file for appending, creating it if absent.
    fn open_append(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;
    /// Reads a whole file.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Atomically replaces `to` with `from`.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Removes a file.
    fn remove_file(&self, path: &Path) -> io::Result<()>;
    /// Creates a directory and its ancestors.
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;
    /// Makes a directory's entries durable (fsync of the directory).
    /// The durability point for creates, renames and removals in it.
    fn sync_dir(&self, path: &Path) -> io::Result<()>;
    /// Whether a file or directory exists at `path`.
    fn exists(&self, path: &Path) -> bool;
    /// Whether `path` is a directory.
    fn is_dir(&self, path: &Path) -> bool;
    /// The entries (files and directories) directly under `path`.
    fn read_dir(&self, path: &Path) -> io::Result<Vec<PathBuf>>;
}

// --- real filesystem -----------------------------------------------

/// Pass-through [`Vfs`] over `std::fs` — the production implementation.
#[derive(Debug, Clone, Copy, Default)]
pub struct RealFs;

struct RealFile(std::fs::File);

impl Write for RealFile {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0.write(buf)
    }
    fn flush(&mut self) -> io::Result<()> {
        self.0.flush()
    }
}

impl VfsFile for RealFile {
    fn sync_all(&mut self) -> io::Result<()> {
        self.0.sync_all()
    }
}

impl Vfs for RealFs {
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        Ok(Box::new(RealFile(std::fs::File::create(path)?)))
    }

    fn open_append(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        Ok(Box::new(RealFile(std::fs::OpenOptions::new().create(true).append(true).open(path)?)))
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let mut buf = Vec::new();
        std::fs::File::open(path)?.read_to_end(&mut buf)?;
        Ok(buf)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        std::fs::create_dir_all(path)
    }

    fn sync_dir(&self, path: &Path) -> io::Result<()> {
        // Unix: directories open as files and fsync persists their
        // entries. Platforms where they don't (Windows) get metadata
        // durability from the OS on rename already.
        #[cfg(unix)]
        {
            std::fs::File::open(path)?.sync_all()
        }
        #[cfg(not(unix))]
        {
            let _ = path;
            Ok(())
        }
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }

    fn is_dir(&self, path: &Path) -> bool {
        path.is_dir()
    }

    fn read_dir(&self, path: &Path) -> io::Result<Vec<PathBuf>> {
        let mut entries: Vec<PathBuf> =
            std::fs::read_dir(path)?.filter_map(|e| e.ok().map(|e| e.path())).collect();
        entries.sort();
        Ok(entries)
    }
}

// --- typed injected faults -----------------------------------------

/// What kind of fault an injected `io::Error` represents. Recoverable
/// from the error via [`injected_fault`] — injection is always typed,
/// never a panic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectedFault {
    /// A write persisted only a prefix of the buffer, then failed.
    TornWrite,
    /// `sync_all` failed; content durability is *not* established.
    FsyncFailed,
    /// A rename failed; the target is unchanged.
    RenameFailed,
    /// No space left on device (`ENOSPC`).
    DiskFull,
    /// The crash point was reached: the world has stopped. Every
    /// subsequent operation on the same [`FaultyFs`] fails with this
    /// until [`FaultyFs::restart`].
    Crash,
}

impl InjectedFault {
    fn describe(self) -> &'static str {
        match self {
            InjectedFault::TornWrite => "injected torn write",
            InjectedFault::FsyncFailed => "injected fsync failure",
            InjectedFault::RenameFailed => "injected rename failure",
            InjectedFault::DiskFull => "injected ENOSPC: no space left on device",
            InjectedFault::Crash => "injected crash: the world has stopped",
        }
    }
}

/// Error payload carried inside injected `io::Error`s.
#[derive(Debug)]
struct Injected(InjectedFault);

impl fmt::Display for Injected {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.0.describe())
    }
}

impl std::error::Error for Injected {}

fn injected_err(fault: InjectedFault) -> io::Error {
    let kind = match fault {
        InjectedFault::DiskFull => io::ErrorKind::StorageFull,
        _ => io::ErrorKind::Other,
    };
    io::Error::new(kind, Injected(fault))
}

/// The [`InjectedFault`] behind an `io::Error`, if it was injected by a
/// [`FaultyFs`].
#[must_use]
pub fn injected_fault(e: &io::Error) -> Option<InjectedFault> {
    e.get_ref().and_then(|inner| inner.downcast_ref::<Injected>()).map(|i| i.0)
}

/// Whether an I/O error is worth a bounded retry: injected torn-write /
/// fsync / rename faults (transient by construction — the next op index
/// rolls fresh dice) and real `Interrupted` errors. Disk-full and crash
/// are *not* transient: they take parking and restart respectively.
#[must_use]
pub fn is_transient_io(e: &io::Error) -> bool {
    match injected_fault(e) {
        Some(
            InjectedFault::TornWrite | InjectedFault::FsyncFailed | InjectedFault::RenameFailed,
        ) => true,
        Some(InjectedFault::DiskFull | InjectedFault::Crash) => false,
        None => e.kind() == io::ErrorKind::Interrupted,
    }
}

/// Whether an I/O error means the disk is full (real or injected
/// `ENOSPC`) — the trigger for the daemon's graceful-degradation
/// parking, never a retry.
#[must_use]
pub fn is_disk_full(e: &io::Error) -> bool {
    e.kind() == io::ErrorKind::StorageFull
}

/// Whether an I/O error is an injected crash point.
#[must_use]
pub fn is_injected_crash(e: &io::Error) -> bool {
    matches!(injected_fault(e), Some(InjectedFault::Crash))
}

// --- in-memory filesystem with crash semantics ---------------------

#[derive(Debug, Default)]
struct Inode {
    /// What the running program reads.
    visible: Vec<u8>,
    /// What survives a crash — established only by `sync_all`. `None`
    /// means the content was never synced: if the *entry* is durable
    /// but the content is not, a crash leaves a zero-length file (the
    /// torn case readers must reject with a typed error).
    durable: Option<Vec<u8>>,
}

#[derive(Debug, Default)]
struct MemInner {
    inodes: HashMap<u64, Inode>,
    /// Live namespace: what `read`/`exists`/`read_dir` see.
    visible_ns: BTreeMap<PathBuf, u64>,
    /// Crash-surviving namespace: updated only by `sync_dir`.
    durable_ns: BTreeMap<PathBuf, u64>,
    dirs_visible: BTreeSet<PathBuf>,
    dirs_durable: BTreeSet<PathBuf>,
    next_ino: u64,
}

impl MemInner {
    fn alloc(&mut self) -> u64 {
        self.next_ino += 1;
        self.next_ino
    }

    fn parent_exists(&self, path: &Path) -> bool {
        match path.parent() {
            None => true,
            Some(p) if p.as_os_str().is_empty() => true,
            Some(p) => self.dirs_visible.contains(p),
        }
    }
}

/// In-memory [`Vfs`] with strict-POSIX crash semantics: content is
/// durable only after `sync_all`, directory entries only after
/// [`Vfs::sync_dir`] on the parent, and [`MemFs::crash`] rolls the
/// filesystem back to exactly its durable state.
///
/// Clones share the same filesystem.
#[derive(Debug, Clone, Default)]
pub struct MemFs {
    inner: Arc<Mutex<MemInner>>,
}

struct MemFile {
    inner: Arc<Mutex<MemInner>>,
    ino: u64,
}

impl Write for MemFile {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let mut fs = self.inner.lock().unwrap();
        match fs.inodes.get_mut(&self.ino) {
            Some(inode) => {
                inode.visible.extend_from_slice(buf);
                Ok(buf.len())
            }
            // The inode was discarded by a crash under this handle.
            None => Err(io::Error::new(io::ErrorKind::NotFound, "file lost in crash")),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl VfsFile for MemFile {
    fn sync_all(&mut self) -> io::Result<()> {
        let mut fs = self.inner.lock().unwrap();
        match fs.inodes.get_mut(&self.ino) {
            Some(inode) => {
                inode.durable = Some(inode.visible.clone());
                Ok(())
            }
            None => Err(io::Error::new(io::ErrorKind::NotFound, "file lost in crash")),
        }
    }
}

impl MemFs {
    /// A fresh, empty in-memory filesystem.
    #[must_use]
    pub fn new() -> MemFs {
        MemFs::default()
    }

    /// Simulates a power loss: everything volatile is discarded. Files
    /// whose entries were never dir-synced vanish; renamed-over files
    /// revert; content written but never `sync_all`ed reverts (to the
    /// last synced content, or to zero bytes if never synced at all).
    pub fn crash(&self) {
        let mut fs = self.inner.lock().unwrap();
        fs.visible_ns = fs.durable_ns.clone();
        fs.dirs_visible = fs.dirs_durable.clone();
        let live: Vec<u64> = fs.visible_ns.values().copied().collect();
        for ino in live {
            if let Some(inode) = fs.inodes.get_mut(&ino) {
                inode.visible = inode.durable.clone().unwrap_or_default();
            }
        }
    }

    /// The current *visible* content of `path`, bypassing fault
    /// injection when this [`MemFs`] backs a [`FaultyFs`] (reference
    /// checks in the chaos harness).
    ///
    /// # Errors
    ///
    /// `NotFound` when the file does not exist.
    pub fn peek(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.read(path)
    }
}

fn not_found(path: &Path) -> io::Error {
    io::Error::new(io::ErrorKind::NotFound, format!("no such file: {}", path.display()))
}

impl Vfs for MemFs {
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let mut fs = self.inner.lock().unwrap();
        if !fs.parent_exists(path) {
            return Err(not_found(path));
        }
        let ino = match fs.visible_ns.get(path) {
            // Truncate in place: the entry's durability is unchanged,
            // the old durable content survives a crash.
            Some(&ino) => {
                if let Some(inode) = fs.inodes.get_mut(&ino) {
                    inode.visible.clear();
                }
                ino
            }
            None => {
                let ino = fs.alloc();
                fs.inodes.insert(ino, Inode::default());
                fs.visible_ns.insert(path.to_path_buf(), ino);
                ino
            }
        };
        Ok(Box::new(MemFile { inner: Arc::clone(&self.inner), ino }))
    }

    fn open_append(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let mut fs = self.inner.lock().unwrap();
        if !fs.parent_exists(path) {
            return Err(not_found(path));
        }
        let ino = match fs.visible_ns.get(path) {
            Some(&ino) => ino,
            None => {
                let ino = fs.alloc();
                fs.inodes.insert(ino, Inode::default());
                fs.visible_ns.insert(path.to_path_buf(), ino);
                ino
            }
        };
        Ok(Box::new(MemFile { inner: Arc::clone(&self.inner), ino }))
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let fs = self.inner.lock().unwrap();
        let ino = fs.visible_ns.get(path).ok_or_else(|| not_found(path))?;
        Ok(fs.inodes.get(ino).map(|i| i.visible.clone()).unwrap_or_default())
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        let mut fs = self.inner.lock().unwrap();
        let ino = fs.visible_ns.remove(from).ok_or_else(|| not_found(from))?;
        fs.visible_ns.insert(to.to_path_buf(), ino);
        Ok(())
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        let mut fs = self.inner.lock().unwrap();
        fs.visible_ns.remove(path).ok_or_else(|| not_found(path))?;
        Ok(())
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        let mut fs = self.inner.lock().unwrap();
        let mut p = path;
        loop {
            fs.dirs_visible.insert(p.to_path_buf());
            match p.parent() {
                Some(parent) if !parent.as_os_str().is_empty() => p = parent,
                _ => break,
            }
        }
        Ok(())
    }

    fn sync_dir(&self, path: &Path) -> io::Result<()> {
        let mut fs = self.inner.lock().unwrap();
        if !fs.dirs_visible.contains(path) {
            return Err(not_found(path));
        }
        // The directory itself (and its ancestors) become durable —
        // journalled filesystems persist the chain when a directory is
        // successfully fsynced.
        let mut p = path;
        loop {
            fs.dirs_durable.insert(p.to_path_buf());
            match p.parent() {
                Some(parent) if !parent.as_os_str().is_empty() => p = parent,
                _ => break,
            }
        }
        // Its direct entries become durable: current files pin their
        // inodes, removed/renamed-away names disappear, subdirectories
        // start existing.
        let updates: Vec<(PathBuf, u64)> = fs
            .visible_ns
            .iter()
            .filter(|(p, _)| p.parent() == Some(path))
            .map(|(p, &ino)| (p.clone(), ino))
            .collect();
        let removals: Vec<PathBuf> = fs
            .durable_ns
            .keys()
            .filter(|p| p.parent() == Some(path) && !fs.visible_ns.contains_key(*p))
            .cloned()
            .collect();
        for (p, ino) in updates {
            fs.durable_ns.insert(p, ino);
        }
        for p in removals {
            fs.durable_ns.remove(&p);
        }
        let subdirs: Vec<PathBuf> =
            fs.dirs_visible.iter().filter(|d| d.parent() == Some(path)).cloned().collect();
        for d in subdirs {
            fs.dirs_durable.insert(d);
        }
        Ok(())
    }

    fn exists(&self, path: &Path) -> bool {
        let fs = self.inner.lock().unwrap();
        fs.visible_ns.contains_key(path) || fs.dirs_visible.contains(path)
    }

    fn is_dir(&self, path: &Path) -> bool {
        self.inner.lock().unwrap().dirs_visible.contains(path)
    }

    fn read_dir(&self, path: &Path) -> io::Result<Vec<PathBuf>> {
        let fs = self.inner.lock().unwrap();
        if !fs.dirs_visible.contains(path) {
            return Err(not_found(path));
        }
        let mut entries: Vec<PathBuf> = fs
            .visible_ns
            .keys()
            .chain(fs.dirs_visible.iter())
            .filter(|p| p.parent() == Some(path))
            .cloned()
            .collect();
        entries.sort();
        entries.dedup();
        Ok(entries)
    }
}

// --- seeded fault injection ----------------------------------------

/// splitmix64 — the per-op decision mixer. Pure function of its input,
/// so a fault plan replays identically.
#[must_use]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

const SALT_TORN: u64 = 0x7042;
const SALT_ENOSPC: u64 = 0xE405;
const SALT_FSYNC: u64 = 0xF5C0;
const SALT_RENAME: u64 = 0x4E4A;

/// A deterministic fault schedule: `(seed, op_index)` decide every
/// injection. `*_in` fields are 1-in-N odds per eligible op (0 = never);
/// `crash_at` stops the world at that op index; `enospc_window` makes
/// every space-consuming op in `[start, end)` fail `ENOSPC` — the
/// persistent disk-pressure model the daemon's parking is tested
/// against.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Decision seed.
    pub seed: u64,
    /// 1-in-N odds a write is torn (prefix persisted, typed error).
    pub torn_write_in: u32,
    /// 1-in-N odds a write fails `ENOSPC`.
    pub enospc_in: u32,
    /// 1-in-N odds a `sync_all` fails.
    pub fsync_fail_in: u32,
    /// 1-in-N odds a rename fails.
    pub rename_fail_in: u32,
    /// Stop the world at this op index (sticky until restart).
    pub crash_at: Option<u64>,
    /// Every write/create/sync in `[start, end)` fails `ENOSPC`.
    pub enospc_window: Option<(u64, u64)>,
}

impl FaultPlan {
    /// A plan that injects nothing — the clean half of a chaos schedule.
    #[must_use]
    pub fn clean() -> FaultPlan {
        FaultPlan::default()
    }

    fn hit(&self, op: u64, salt: u64, one_in: u32) -> bool {
        one_in != 0
            && splitmix64(self.seed ^ salt ^ op.wrapping_mul(0x9e37_79b9_7f4a_7c15))
                .is_multiple_of(u64::from(one_in))
    }

    fn in_enospc_window(&self, op: u64) -> bool {
        self.enospc_window.is_some_and(|(start, end)| op >= start && op < end)
    }
}

#[derive(Debug)]
struct FaultState {
    mem: MemFs,
    plan: Mutex<FaultPlan>,
    ops: AtomicU64,
    crashed: AtomicBool,
}

/// Op categories the gate distinguishes (space-consuming ops are the
/// ones a full disk rejects).
#[derive(Clone, Copy, PartialEq)]
enum OpKind {
    Create,
    Write,
    Fsync,
    Rename,
    Other,
}

impl FaultState {
    /// Counts the op, applies crash/pressure gates, and returns the op
    /// index for per-kind dice.
    fn gate(&self, kind: OpKind) -> io::Result<u64> {
        if self.crashed.load(Ordering::SeqCst) {
            return Err(injected_err(InjectedFault::Crash));
        }
        let op = self.ops.fetch_add(1, Ordering::SeqCst);
        let plan = self.plan.lock().unwrap().clone();
        if plan.crash_at.is_some_and(|k| op >= k) {
            self.crashed.store(true, Ordering::SeqCst);
            return Err(injected_err(InjectedFault::Crash));
        }
        if matches!(kind, OpKind::Create | OpKind::Write | OpKind::Fsync)
            && plan.in_enospc_window(op)
        {
            return Err(injected_err(InjectedFault::DiskFull));
        }
        match kind {
            OpKind::Fsync if plan.hit(op, SALT_FSYNC, plan.fsync_fail_in) => {
                Err(injected_err(InjectedFault::FsyncFailed))
            }
            OpKind::Rename if plan.hit(op, SALT_RENAME, plan.rename_fail_in) => {
                Err(injected_err(InjectedFault::RenameFailed))
            }
            OpKind::Write if plan.hit(op, SALT_ENOSPC, plan.enospc_in) => {
                Err(injected_err(InjectedFault::DiskFull))
            }
            _ => Ok(op),
        }
    }
}

/// Seeded deterministic fault injection over a [`MemFs`].
///
/// Wraps every [`Vfs`] operation in a gate that counts it, consults the
/// [`FaultPlan`], and either passes through or fails with a typed
/// injected error. After the crash point fires, every operation fails
/// with [`InjectedFault::Crash`] until [`restart`](FaultyFs::restart),
/// which applies [`MemFs::crash`] (volatile state is lost) and clears
/// the latch — modeling a process that died and came back.
#[derive(Debug, Clone)]
pub struct FaultyFs {
    state: Arc<FaultState>,
}

struct FaultyFile {
    inner: Box<dyn VfsFile>,
    state: Arc<FaultState>,
}

impl Write for FaultyFile {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let op = self.state.gate(OpKind::Write)?;
        let plan = self.state.plan.lock().unwrap().clone();
        if !buf.is_empty() && plan.hit(op, SALT_TORN, plan.torn_write_in) {
            // Torn write: a deterministic prefix lands, then the error.
            let keep = (splitmix64(plan.seed ^ SALT_TORN ^ op) as usize) % buf.len();
            self.inner.write_all(&buf[..keep])?;
            return Err(injected_err(InjectedFault::TornWrite));
        }
        self.inner.write_all(buf)?;
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

impl VfsFile for FaultyFile {
    fn sync_all(&mut self) -> io::Result<()> {
        self.state.gate(OpKind::Fsync)?;
        self.inner.sync_all()
    }
}

impl FaultyFs {
    /// A fault injector over a fresh [`MemFs`].
    #[must_use]
    pub fn new(plan: FaultPlan) -> FaultyFs {
        FaultyFs::over(MemFs::new(), plan)
    }

    /// A fault injector over an existing [`MemFs`] (shared state).
    #[must_use]
    pub fn over(mem: MemFs, plan: FaultPlan) -> FaultyFs {
        FaultyFs {
            state: Arc::new(FaultState {
                mem,
                plan: Mutex::new(plan),
                ops: AtomicU64::new(0),
                crashed: AtomicBool::new(false),
            }),
        }
    }

    /// The backing [`MemFs`] — fault-free access for reference checks.
    #[must_use]
    pub fn mem(&self) -> MemFs {
        self.state.mem.clone()
    }

    /// Replaces the fault plan (e.g. switch to [`FaultPlan::clean`] for
    /// the recovery half of a schedule).
    pub fn set_plan(&self, plan: FaultPlan) {
        *self.state.plan.lock().unwrap() = plan;
    }

    /// I/O operations gated so far.
    #[must_use]
    pub fn op_count(&self) -> u64 {
        self.state.ops.load(Ordering::SeqCst)
    }

    /// Whether the crash point has fired.
    #[must_use]
    pub fn crashed(&self) -> bool {
        self.state.crashed.load(Ordering::SeqCst)
    }

    /// Simulates the process coming back after a crash: volatile
    /// filesystem state is discarded ([`MemFs::crash`]), the crash
    /// latch clears, and the crash point is consumed (a crash fires
    /// once, not on every later op). The op counter keeps counting, so
    /// probabilistic fault decisions never repeat.
    pub fn restart(&self) {
        self.state.mem.crash();
        self.state.plan.lock().unwrap().crash_at = None;
        self.state.crashed.store(false, Ordering::SeqCst);
    }
}

impl Vfs for FaultyFs {
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        self.state.gate(OpKind::Create)?;
        let inner = self.state.mem.create(path)?;
        Ok(Box::new(FaultyFile { inner, state: Arc::clone(&self.state) }))
    }

    fn open_append(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        self.state.gate(OpKind::Create)?;
        let inner = self.state.mem.open_append(path)?;
        Ok(Box::new(FaultyFile { inner, state: Arc::clone(&self.state) }))
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.state.gate(OpKind::Other)?;
        self.state.mem.read(path)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.state.gate(OpKind::Rename)?;
        self.state.mem.rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        self.state.gate(OpKind::Other)?;
        self.state.mem.remove_file(path)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        self.state.gate(OpKind::Create)?;
        self.state.mem.create_dir_all(path)
    }

    fn sync_dir(&self, path: &Path) -> io::Result<()> {
        self.state.gate(OpKind::Fsync)?;
        self.state.mem.sync_dir(path)
    }

    fn exists(&self, path: &Path) -> bool {
        // Existence probes are metadata reads; they don't consume ops
        // (keeps fault schedules stable across incidental probing).
        !self.state.crashed.load(Ordering::SeqCst) && self.state.mem.exists(path)
    }

    fn is_dir(&self, path: &Path) -> bool {
        !self.state.crashed.load(Ordering::SeqCst) && self.state.mem.is_dir(path)
    }

    fn read_dir(&self, path: &Path) -> io::Result<Vec<PathBuf>> {
        self.state.gate(OpKind::Other)?;
        self.state.mem.read_dir(path)
    }
}

// --- clocks and bounded retry --------------------------------------

/// Time source for retry backoff: real in production, virtual —
/// deterministic and non-sleeping — under test.
pub trait Clock: Send + Sync + fmt::Debug {
    /// Sleeps (or pretends to) for `ms` milliseconds.
    fn sleep_ms(&self, ms: u64);
    /// Milliseconds slept so far (virtual clocks) or 0 (real clock —
    /// wall time is not part of any deterministic contract).
    fn slept_ms(&self) -> u64;
}

/// Wall-clock [`Clock`]: `sleep_ms` really sleeps.
#[derive(Debug, Clone, Copy, Default)]
pub struct RealClock;

impl Clock for RealClock {
    fn sleep_ms(&self, ms: u64) {
        std::thread::sleep(std::time::Duration::from_millis(ms));
    }

    fn slept_ms(&self) -> u64 {
        0
    }
}

/// Deterministic [`Clock`]: `sleep_ms` advances a counter and returns
/// immediately, so chaos schedules with thousands of retries run in
/// microseconds and backoff arithmetic is exactly testable.
#[derive(Debug, Default)]
pub struct VirtualClock {
    now_ms: AtomicU64,
}

impl VirtualClock {
    /// A virtual clock at t = 0.
    #[must_use]
    pub fn new() -> VirtualClock {
        VirtualClock::default()
    }
}

impl Clock for VirtualClock {
    fn sleep_ms(&self, ms: u64) {
        self.now_ms.fetch_add(ms, Ordering::SeqCst);
    }

    fn slept_ms(&self) -> u64 {
        self.now_ms.load(Ordering::SeqCst)
    }
}

/// Bounded exponential backoff for transient I/O failures.
///
/// `attempts` is the *total* number of tries (1 = no retry); waits are
/// `base_ms << attempt`, capped at `max_ms`. Deterministic: the wait
/// sequence is a pure function of the policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts (first try included). Clamped to at least 1.
    pub attempts: u32,
    /// Backoff before the first retry, in milliseconds.
    pub base_ms: u64,
    /// Backoff ceiling, in milliseconds.
    pub max_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { attempts: 4, base_ms: 5, max_ms: 200 }
    }
}

impl RetryPolicy {
    /// No retries: fail on the first error.
    #[must_use]
    pub const fn disabled() -> RetryPolicy {
        RetryPolicy { attempts: 1, base_ms: 0, max_ms: 0 }
    }

    /// The wait before retry number `retry` (0-based), in milliseconds.
    #[must_use]
    pub fn backoff_ms(&self, retry: u32) -> u64 {
        self.base_ms.saturating_shl(retry.min(32)).min(self.max_ms)
    }

    /// Runs `op`, retrying transient failures (per [`is_transient_io`])
    /// with backoff on `clock` until success, a non-transient error, or
    /// the attempt budget runs out.
    ///
    /// # Errors
    ///
    /// The last error `op` returned.
    pub fn run<T>(
        &self,
        clock: &dyn Clock,
        mut op: impl FnMut() -> io::Result<T>,
    ) -> io::Result<T> {
        let attempts = self.attempts.max(1);
        let mut retry = 0u32;
        loop {
            match op() {
                Ok(v) => return Ok(v),
                Err(e) if retry + 1 < attempts && is_transient_io(&e) => {
                    clock.sleep_ms(self.backoff_ms(retry));
                    retry += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }
}

/// The durable stack's I/O environment: which filesystem to write
/// through, how hard to retry transient failures, and on whose clock.
/// [`IoEnv::default`] is the production configuration ([`RealFs`],
/// default policy, [`RealClock`]); chaos tests swap in a [`FaultyFs`]
/// and a [`VirtualClock`].
#[derive(Debug, Clone)]
pub struct IoEnv {
    /// The filesystem seam.
    pub vfs: Arc<dyn Vfs>,
    /// Retry budget for transient write/fsync/rename failures.
    pub retry: RetryPolicy,
    /// Clock the backoff sleeps on.
    pub clock: Arc<dyn Clock>,
}

impl Default for IoEnv {
    fn default() -> Self {
        IoEnv { vfs: Arc::new(RealFs), retry: RetryPolicy::default(), clock: Arc::new(RealClock) }
    }
}

impl IoEnv {
    /// The production environment (alias of [`IoEnv::default`]).
    #[must_use]
    pub fn real() -> IoEnv {
        IoEnv::default()
    }

    /// An environment over `vfs` with the default retry policy and a
    /// [`VirtualClock`] (deterministic, non-sleeping backoff).
    #[must_use]
    pub fn with_vfs(vfs: Arc<dyn Vfs>) -> IoEnv {
        IoEnv { vfs, retry: RetryPolicy::default(), clock: Arc::new(VirtualClock::new()) }
    }

    /// Runs an I/O closure under this environment's retry policy.
    ///
    /// # Errors
    ///
    /// The last error the closure returned.
    pub fn retry_io<T>(&self, op: impl FnMut() -> io::Result<T>) -> io::Result<T> {
        self.retry.run(self.clock.as_ref(), op)
    }

    /// Runs a snapshot-writing closure under this environment's retry
    /// policy: transient [`SnapshotError::Io`] failures are retried, any
    /// other error is final.
    ///
    /// # Errors
    ///
    /// The last error the closure returned.
    ///
    /// [`SnapshotError::Io`]: crate::snapshot::SnapshotError::Io
    pub fn retry_snapshot<T>(
        &self,
        mut op: impl FnMut() -> Result<T, crate::snapshot::SnapshotError>,
    ) -> Result<T, crate::snapshot::SnapshotError> {
        let attempts = self.retry.attempts.max(1);
        let mut retry = 0u32;
        loop {
            match op() {
                Ok(v) => return Ok(v),
                Err(crate::snapshot::SnapshotError::Io(e))
                    if retry + 1 < attempts && is_transient_io(&e) =>
                {
                    self.clock.sleep_ms(self.retry.backoff_ms(retry));
                    retry += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }
}

trait SaturatingShl {
    fn saturating_shl(self, rhs: u32) -> Self;
}

impl SaturatingShl for u64 {
    fn saturating_shl(self, rhs: u32) -> u64 {
        if rhs >= 64 {
            return u64::MAX;
        }
        self.checked_shl(rhs).unwrap_or(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memfs_rename_without_dir_sync_is_volatile() {
        let fs = MemFs::new();
        fs.create_dir_all(Path::new("/d")).unwrap();
        fs.sync_dir(Path::new("/d")).unwrap();

        // tmp+fsync+rename but NO dir sync: visible now, gone on crash.
        let mut f = fs.create(Path::new("/d/a.tmp")).unwrap();
        f.write_all(b"hello").unwrap();
        f.sync_all().unwrap();
        drop(f);
        fs.rename(Path::new("/d/a.tmp"), Path::new("/d/a")).unwrap();
        assert_eq!(fs.read(Path::new("/d/a")).unwrap(), b"hello");

        fs.crash();
        assert!(fs.read(Path::new("/d/a")).is_err(), "unsynced rename must not survive a crash");

        // Same sequence WITH the dir sync: survives.
        let mut f = fs.create(Path::new("/d/b.tmp")).unwrap();
        f.write_all(b"world").unwrap();
        f.sync_all().unwrap();
        drop(f);
        fs.rename(Path::new("/d/b.tmp"), Path::new("/d/b")).unwrap();
        fs.sync_dir(Path::new("/d")).unwrap();
        fs.crash();
        assert_eq!(fs.read(Path::new("/d/b")).unwrap(), b"world");
        assert!(!fs.exists(Path::new("/d/b.tmp")), "tmp name must not survive");
    }

    #[test]
    fn memfs_unsynced_content_tears_to_empty() {
        let fs = MemFs::new();
        fs.create_dir_all(Path::new("/d")).unwrap();
        let mut f = fs.create(Path::new("/d/a")).unwrap();
        f.write_all(b"data").unwrap();
        drop(f); // no sync_all
        fs.sync_dir(Path::new("/d")).unwrap(); // entry durable, content not
        fs.crash();
        assert_eq!(fs.read(Path::new("/d/a")).unwrap(), b"", "entry survives, content tears");
    }

    #[test]
    fn memfs_truncate_preserves_old_durable_content() {
        let fs = MemFs::new();
        fs.create_dir_all(Path::new("/d")).unwrap();
        let mut f = fs.create(Path::new("/d/a")).unwrap();
        f.write_all(b"v1").unwrap();
        f.sync_all().unwrap();
        drop(f);
        fs.sync_dir(Path::new("/d")).unwrap();

        // Rewrite without syncing: crash rolls back to v1.
        let mut f = fs.create(Path::new("/d/a")).unwrap();
        f.write_all(b"v2-much-longer").unwrap();
        drop(f);
        assert_eq!(fs.read(Path::new("/d/a")).unwrap(), b"v2-much-longer");
        fs.crash();
        assert_eq!(fs.read(Path::new("/d/a")).unwrap(), b"v1");
    }

    #[test]
    fn fault_plans_are_deterministic() {
        let plan = FaultPlan { seed: 42, torn_write_in: 3, ..FaultPlan::default() };
        let run = || {
            let fs = FaultyFs::new(plan.clone());
            fs.create_dir_all(Path::new("/d")).unwrap();
            let mut outcomes = Vec::new();
            for i in 0..32 {
                let p = PathBuf::from(format!("/d/f{i}"));
                let r = fs.create(&p).and_then(|mut f| f.write_all(&[0u8; 16]));
                outcomes.push(r.err().and_then(|e| injected_fault(&e)));
            }
            outcomes
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "same plan must inject the same faults");
        assert!(a.iter().any(|o| o == &Some(InjectedFault::TornWrite)), "plan never fired");
        assert!(a.iter().any(Option::is_none), "plan fired on every op");
    }

    #[test]
    fn crash_point_stops_the_world_until_restart() {
        let fs = FaultyFs::new(FaultPlan { crash_at: Some(4), ..FaultPlan::default() });
        fs.create_dir_all(Path::new("/d")).unwrap();
        fs.sync_dir(Path::new("/d")).unwrap();
        let mut failed = false;
        for i in 0..8 {
            let p = PathBuf::from(format!("/d/f{i}"));
            if let Err(e) = fs.create(&p).and_then(|mut f| f.write_all(b"x")) {
                assert!(is_injected_crash(&e));
                failed = true;
                break;
            }
        }
        assert!(failed, "crash point never fired");
        // Sticky: everything fails now.
        let e = fs.read(Path::new("/d/f0")).unwrap_err();
        assert!(is_injected_crash(&e));
        fs.restart();
        assert!(!fs.crashed());
        // Ops work again (content may have been lost — that's the point).
        fs.create_dir_all(Path::new("/d")).unwrap();
    }

    #[test]
    fn enospc_window_is_persistent_then_lifts() {
        let fs = FaultyFs::new(FaultPlan { enospc_window: Some((2, 6)), ..FaultPlan::default() });
        fs.create_dir_all(Path::new("/d")).unwrap(); // op 0
        fs.sync_dir(Path::new("/d")).unwrap(); // op 1
        let mut saw_full = 0;
        let mut saw_ok = false;
        for i in 0..10 {
            let p = PathBuf::from(format!("/d/f{i}"));
            match fs.create(&p) {
                Ok(_) => saw_ok = true,
                Err(e) => {
                    assert!(is_disk_full(&e), "window must inject ENOSPC, got {e}");
                    saw_full += 1;
                }
            }
        }
        assert!(saw_full >= 3, "window [2,6) must reject several creates");
        assert!(saw_ok, "pressure must lift after the window");
    }

    #[test]
    fn retry_recovers_transients_on_a_virtual_clock() {
        let clock = VirtualClock::new();
        let policy = RetryPolicy { attempts: 4, base_ms: 10, max_ms: 1000 };
        let mut calls = 0;
        let result = policy.run(&clock, || {
            calls += 1;
            if calls < 3 {
                Err(injected_err(InjectedFault::FsyncFailed))
            } else {
                Ok(calls)
            }
        });
        assert_eq!(result.unwrap(), 3);
        // Backoff 10 then 20 ms, virtually.
        assert_eq!(clock.slept_ms(), 30);

        // Non-transient errors never retry.
        let mut calls = 0;
        let result: io::Result<()> = policy.run(&clock, || {
            calls += 1;
            Err(injected_err(InjectedFault::DiskFull))
        });
        assert!(is_disk_full(&result.unwrap_err()));
        assert_eq!(calls, 1);

        // Budget exhaustion returns the last transient error.
        let mut calls = 0;
        let result: io::Result<()> = policy.run(&clock, || {
            calls += 1;
            Err(injected_err(InjectedFault::TornWrite))
        });
        assert_eq!(calls, 4);
        assert_eq!(injected_fault(&result.unwrap_err()), Some(InjectedFault::TornWrite));
    }

    #[test]
    fn backoff_is_capped() {
        let p = RetryPolicy { attempts: 64, base_ms: 8, max_ms: 100 };
        assert_eq!(p.backoff_ms(0), 8);
        assert_eq!(p.backoff_ms(1), 16);
        assert_eq!(p.backoff_ms(10), 100);
        assert_eq!(p.backoff_ms(63), 100);
    }

    #[test]
    fn realfs_round_trips_and_syncs() {
        let dir = std::env::temp_dir().join(format!("r2d3-chaos-realfs-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let fs = RealFs;
        fs.create_dir_all(&dir).unwrap();
        let path = dir.join("f");
        let mut f = fs.create(&path).unwrap();
        f.write_all(b"abc").unwrap();
        f.sync_all().unwrap();
        drop(f);
        fs.sync_dir(&dir).unwrap();
        assert_eq!(fs.read(&path).unwrap(), b"abc");
        let mut f = fs.open_append(&path).unwrap();
        f.write_all(b"def").unwrap();
        drop(f);
        assert_eq!(fs.read(&path).unwrap(), b"abcdef");
        assert!(fs.is_dir(&dir));
        assert_eq!(fs.read_dir(&dir).unwrap(), vec![path.clone()]);
        let renamed = dir.join("g");
        fs.rename(&path, &renamed).unwrap();
        assert!(!fs.exists(&path));
        fs.remove_file(&renamed).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
