//! Execution substrates behind the R2D3 engine.
//!
//! The controller ([`crate::R2d3Engine`]) never manipulates a concrete
//! simulator: everything it touches — epoch execution, the trace records
//! the inter-stage checkers compare, replay for the TMR vote, crossbar
//! reconfiguration, checkpoint/restore, health isolation — goes through
//! the [`ReliabilitySubstrate`] trait. Two backends implement it:
//!
//! * the **behavioral** substrate ([`r2d3_pipeline_sim::System3d`]):
//!   instruction-level pipelines whose faults are architectural bit
//!   effects ([`r2d3_pipeline_sim::FaultEffect`]);
//! * the **gate-level** substrate ([`NetlistSubstrate`]): each stage is
//!   its synthesized stage netlist, faults are real stuck-at faults from
//!   the ATPG fault universe, and checker comparisons operate on folded
//!   gate-level output vectors.
//!
//! The same detect → diagnose → repair scenario reaches the same verdicts
//! on both (see `tests/substrate_parity.rs`).

mod behavioral;
mod netlist;

pub use netlist::{GateFault, NetlistCheckpoint, NetlistSubstrate, NetlistSubstrateConfig};
pub use r2d3_pipeline_sim::LinkFault;

use crate::EngineError;
use r2d3_isa::Unit;
use r2d3_pipeline_sim::{ActivityStats, StageId, StageRecord};

/// Everything the R2D3 engine needs from an execution substrate.
///
/// A substrate is a 3D stack of `layers × 5` physical stages, a crossbar
/// mapping logical pipelines onto them, per-stage output traces, and a
/// notion of replaying a traced operation on any same-unit stage (the
/// paper's leftover-based detection and single-replay TMR diagnosis).
///
/// Implementations may panic on out-of-range [`StageId`]s, mirroring the
/// behavioral simulator's `health` accessor; the engine only passes
/// stages obtained from the substrate itself.
pub trait ReliabilitySubstrate {
    /// Per-pipeline architectural checkpoint (validated-commit recovery).
    type Checkpoint: Clone + std::fmt::Debug;
    /// Substrate-specific permanent-fault descriptor: an architectural
    /// bit effect behaviorally, a stuck-at net at gate level.
    type Fault;

    /// Tiers in the stack.
    fn layers(&self) -> usize;
    /// Logical pipelines the crossbar can form.
    fn pipeline_count(&self) -> usize;
    /// Current cycle count (never rewound, even across restores).
    fn now(&self) -> u64;
    /// Executes `cycles` of every formed pipeline.
    ///
    /// # Errors
    ///
    /// Propagates substrate execution errors.
    fn run(&mut self, cycles: u64) -> Result<(), EngineError>;
    /// The stage currently serving `pipe`'s `unit` slot, if assigned.
    fn stage_for(&self, pipe: usize, unit: Unit) -> Option<StageId>;
    /// Stages not assigned to any pipeline (detection redundancy pool).
    fn leftovers(&self) -> Vec<StageId>;
    /// The last `n` output records of a stage (oldest first).
    fn trace_window(&self, stage: StageId, n: usize) -> Vec<StageRecord>;
    /// Output `stage` produces re-executing the operation captured by
    /// `record` — the checker's redundant-side value and the TMR
    /// replay primitive. Permanent faults of `stage` manifest;
    /// one-shot transients (already consumed) do not recur.
    fn replay_output(&self, stage: StageId, record: &StageRecord) -> u32;
    /// Whether a stage may serve or vote (healthy or merely powered off
    /// by the controller — not known-faulty ground truth).
    fn stage_usable(&self, stage: StageId) -> bool;
    /// Power-gates a stage so it never serves again.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown stages.
    fn power_off(&mut self, stage: StageId) -> Result<(), EngineError>;
    /// Clears a crossbar slot (no-op when already empty).
    ///
    /// # Errors
    ///
    /// Returns an error for unknown pipelines.
    fn unassign(&mut self, pipe: usize, unit: Unit) -> Result<(), EngineError>;
    /// Routes `pipe`'s `unit` slot to `layer`'s stage of that unit.
    ///
    /// # Errors
    ///
    /// Returns an error on double-booking or unknown coordinates.
    fn assign(&mut self, pipe: usize, unit: Unit, layer: usize) -> Result<(), EngineError>;
    /// Whether a pipeline's architectural state is corrupted (tainted by
    /// a manifested fault, or crashed).
    fn pipeline_corrupted(&self, pipe: usize) -> bool;
    /// Instructions (operations) a pipeline has retired.
    fn retired(&self, pipe: usize) -> u64;
    /// Restarts a pipeline's program from the beginning.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown pipelines.
    fn restart_program(&mut self, pipe: usize) -> Result<(), EngineError>;
    /// Captures a pipeline's architectural state.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown pipelines.
    fn checkpoint_pipeline(&self, pipe: usize) -> Result<Self::Checkpoint, EngineError>;
    /// Retired-instruction count recorded in a checkpoint (rollback-loss
    /// accounting).
    fn checkpoint_retired(checkpoint: &Self::Checkpoint) -> u64;
    /// Rolls a pipeline back to a checkpoint (physical time is not
    /// rewound).
    ///
    /// # Errors
    ///
    /// Returns an error for unknown pipelines.
    fn restore_pipeline(
        &mut self,
        pipe: usize,
        checkpoint: &Self::Checkpoint,
    ) -> Result<(), EngineError>;
    /// Injects a permanent fault into a stage (ground truth; the engine
    /// only ever learns of it through detection).
    ///
    /// # Errors
    ///
    /// Returns an error for unknown stages or invalid fault descriptors.
    fn inject_fault(&mut self, stage: StageId, fault: Self::Fault) -> Result<(), EngineError>;
    /// Injects a substrate-appropriate, strongly-manifesting permanent
    /// fault derived from `seed` — the campaign harness's uniform fault
    /// lever (an architectural low-bit stuck-at behaviorally, a stuck
    /// observed-output net at gate level).
    ///
    /// # Errors
    ///
    /// Returns an error for unknown stages.
    fn inject_permanent_seeded(&mut self, stage: StageId, seed: u64) -> Result<(), EngineError>;
    /// Arms a one-shot transient derived from `seed`: the next operation
    /// `stage` performs is corrupted once, then the upset is consumed
    /// (it does not recur under replay).
    ///
    /// # Errors
    ///
    /// Returns an error for unknown stages.
    fn inject_transient_seeded(&mut self, stage: StageId, seed: u64) -> Result<(), EngineError>;
    /// Digest of a checkpoint's architectural payload; any flipped bit of
    /// the snapshot must change the digest (checkpoint-store integrity).
    fn checkpoint_digest(checkpoint: &Self::Checkpoint) -> u64;
    /// Flips one seed-selected bit of a checkpoint's payload — the
    /// campaign's model of checkpoint storage rot between commit and
    /// recover. Ground-truth corruption only; the engine never calls it.
    fn corrupt_checkpoint(checkpoint: &mut Self::Checkpoint, seed: u64);
    /// Arms a fault on the vertical TSV link bundle of `link`'s stage
    /// (ground truth). Link faults corrupt delivered values in flight —
    /// the stage computes correctly, the consumer and the snooped trace
    /// see the corruption — while the engine's replay network bypasses
    /// the TSVs, so replays come back clean.
    ///
    /// # Errors
    ///
    /// Returns an error for out-of-range links.
    fn inject_link_fault(&mut self, link: StageId, fault: LinkFault) -> Result<(), EngineError>;
    /// The layer `pipe`'s `unit` mux-select *hardware* actually reads —
    /// normally the assignment ([`stage_for`](Self::stage_for)'s layer),
    /// but a select-register upset makes the two disagree. The engine's
    /// route scrub compares this readback against its intent.
    fn route_readback(&self, pipe: usize, unit: Unit) -> Option<usize>;
    /// Upsets the mux-select register of `pipe`'s `unit` slot to read
    /// `layer` (ground-truth SEU in the crossbar configuration; the
    /// engine only learns of it through readback or data corruption).
    ///
    /// # Errors
    ///
    /// Returns an error for unknown coordinates.
    fn corrupt_route(&mut self, pipe: usize, unit: Unit, layer: usize) -> Result<(), EngineError>;
    /// Rewrites `pipe`'s `unit` select register from the assignment —
    /// the controller's route-scrub repair for select upsets.
    fn scrub_route(&mut self, pipe: usize, unit: Unit);
    /// Per-stage busy-cycle accounting.
    fn stats(&self) -> &ActivityStats;
    /// Zeroes the busy-cycle accounting.
    fn reset_stats(&mut self);
    /// Stable substrate name for reports and trace labels.
    fn name(&self) -> &'static str;
}
